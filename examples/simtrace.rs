//! `simtrace` — run one simulated priority-queue workload with the tracer
//! attached and export both trace artifacts:
//!
//! * `trace.json` — Chrome Trace Format; open in <https://ui.perfetto.dev>
//!   (or `chrome://tracing`) for per-processor timelines, hot-line
//!   occupancy rows, and per-region queue-depth counters;
//! * `timeseries.json` — windowed throughput / queue-delay / region-depth
//!   series for plotting.
//!
//! Examples:
//!
//! ```text
//! cargo run --release --example simtrace
//! cargo run --release --example simtrace -- --algo SingleLock --procs 64
//! cargo run --release --example simtrace -- --algo FunnelTree --procs 256 \
//!     --pris 128 --ops 64 --window 4096 --out /tmp/traces
//! ```
//!
//! Runs are deterministic for a given seed; the traced run is bit-identical
//! to the untraced one (tracing is purely observational).

use std::process::ExitCode;

use funnelpq_sim::trace::{chrome_trace_json, TimeSeries};
use funnelpq_simqueues::queues::Algorithm;
use funnelpq_simqueues::workload::{run_queue_workload_traced, Workload};

const USAGE: &str = "\
simtrace — trace one simulated priority-queue run and export Perfetto + time-series JSON

USAGE:
    cargo run --release --example simtrace -- [OPTIONS]

OPTIONS:
    --algo <NAME>    algorithm (SingleLock, HuntEtAl, SkipList, SimpleLinear,
                     SimpleTree, LinearFunnels, FunnelTree, HardwareTree)
                     [default: FunnelTree]
    --procs <N>      simulated processors                [default: 64]
    --pris <N>       priority range 0..N                 [default: 16]
    --ops <N>        queue accesses per processor        [default: 32]
    --seed <N>       experiment seed                     [default: 61453]
    --window <N>     time-series window, cycles          [default: ~1% of run]
    --hot-lines <N>  memory-line rows in the trace       [default: 16]
    --out <DIR>      output directory                    [default: .]
    -h, --help       show this help
";

struct Args {
    algo: Algorithm,
    procs: usize,
    pris: usize,
    ops: usize,
    seed: u64,
    window: Option<u64>,
    hot_lines: usize,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        algo: Algorithm::FunnelTree,
        procs: 64,
        pris: 16,
        ops: 32,
        seed: 61453,
        window: None,
        hot_lines: 16,
        out: ".".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "-h" || flag == "--help" {
            return Err(String::new());
        }
        let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
        let parse = |what: &str, v: &str| -> Result<usize, String> {
            v.parse().map_err(|_| format!("bad {what}: {v:?}"))
        };
        match flag.as_str() {
            "--algo" => args.algo = value.parse()?,
            "--procs" => args.procs = parse("--procs", &value)?,
            "--pris" => args.pris = parse("--pris", &value)?,
            "--ops" => args.ops = parse("--ops", &value)?,
            "--seed" => args.seed = parse("--seed", &value)? as u64,
            "--window" => args.window = Some(parse("--window", &value)? as u64),
            "--hot-lines" => args.hot_lines = parse("--hot-lines", &value)?,
            "--out" => args.out = value,
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if args.procs == 0 || args.pris == 0 || args.ops == 0 {
        return Err("--procs, --pris, and --ops must be positive".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let mut wl = Workload::standard(args.procs, args.pris);
    wl.ops_per_proc = args.ops;
    wl.seed = args.seed;
    let traced = run_queue_workload_traced(args.algo, &wl);

    let window = args
        .window
        .unwrap_or_else(|| (traced.result.total_cycles / 100).max(256));
    let series = TimeSeries::build(&traced.events, &traced.regions, window);
    let chrome = chrome_trace_json(
        &traced.events,
        &traced.regions,
        args.hot_lines,
        Some(&series),
    );

    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("error: cannot create {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    let trace_path = format!("{}/trace.json", args.out);
    let series_path = format!("{}/timeseries.json", args.out);
    if let Err(e) = std::fs::write(&trace_path, &chrome) {
        eprintln!("error: cannot write {trace_path}: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&series_path, series.to_json()) {
        eprintln!("error: cannot write {series_path}: {e}");
        return ExitCode::FAILURE;
    }

    println!(
        "{} at P={} N={}: {} accesses, {} cycles, {} trace events",
        args.algo,
        args.procs,
        args.pris,
        traced.result.all.count(),
        traced.result.total_cycles,
        traced.events.len(),
    );
    println!(
        "mean latency {:.0} cycles (p50 ≤ {}, p99 ≤ {})",
        traced.result.all.mean(),
        traced.result.all.p50(),
        traced.result.all.p99(),
    );
    println!("hot regions (by queueing delay):");
    for h in traced.result.hotspots.iter().take(5) {
        println!(
            "  {:24} {:>10} delay cycles over {:>7} accesses",
            h.label, h.queue_delay_cycles, h.accesses
        );
    }
    println!("wrote {trace_path} (load in https://ui.perfetto.dev)");
    println!("wrote {series_path} (window = {window} cycles)");
    ExitCode::SUCCESS
}
