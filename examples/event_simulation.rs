//! Parallel discrete-event simulation with a bounded time horizon — the
//! second classic consumer of bounded-range priority queues (the "timing
//! wheel" pattern: event timestamps map onto a bounded ring of buckets).
//!
//! Several workers repeatedly pull the earliest pending event and may post
//! follow-up events a bounded distance into the future. Because the
//! horizon is bounded, timestamps map onto `0..HORIZON` — exactly a
//! bounded-range priority queue.
//!
//! Run with: `cargo run --example event_simulation`

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use funnelpq::{BoundedPq, SimpleTreePq};

const WORKERS: usize = 4;
const HORIZON: usize = 64; // distinct pending timestamps

#[derive(Debug)]
struct Event {
    id: usize,
    /// How many follow-ups this event schedules.
    fanout: usize,
}

fn main() {
    let queue: Arc<SimpleTreePq<Event>> = Arc::new(SimpleTreePq::new(HORIZON, WORKERS));
    let processed = Arc::new(AtomicUsize::new(0));
    let max_seen = Arc::new(AtomicUsize::new(0));

    for id in 0..32 {
        queue.insert(0, id % 8, Event { id, fanout: 2 });
    }

    let handles: Vec<_> = (0..WORKERS)
        .map(|tid| {
            let queue = Arc::clone(&queue);
            let processed = Arc::clone(&processed);
            let max_seen = Arc::clone(&max_seen);
            std::thread::spawn(move || {
                let mut idle = 0;
                while idle < 3 {
                    match queue.delete_min(tid) {
                        Some((t, ev)) => {
                            idle = 0;
                            processed.fetch_add(1, Ordering::Relaxed);
                            max_seen.fetch_max(t, Ordering::Relaxed);
                            // Post follow-ups a bounded delay ahead,
                            // clamped to the horizon.
                            for k in 0..ev.fanout {
                                let when = (t + 5 + k * 3).min(HORIZON - 1);
                                if when > t {
                                    queue.insert(
                                        tid,
                                        when,
                                        Event {
                                            id: ev.id * 100 + k,
                                            fanout: 0,
                                        },
                                    );
                                }
                            }
                        }
                        None => {
                            idle += 1;
                            std::thread::yield_now();
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let n = processed.load(Ordering::Relaxed);
    println!(
        "processed {n} events up to virtual time {} with {WORKERS} workers",
        max_seen.load(Ordering::Relaxed)
    );
    assert!(queue.is_empty(), "event queue drained");
    assert_eq!(n, 32 + 32 * 2, "all seed and follow-up events processed");
    println!("event horizon respected, all events processed ✓");
}
