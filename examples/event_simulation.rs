//! Parallel discrete-event simulation with a bounded time horizon — the
//! second classic consumer of bounded-range priority queues (the "timing
//! wheel" pattern: event timestamps map onto a bounded ring of buckets).
//!
//! Several workers repeatedly pull the earliest pending event and may post
//! follow-up events a bounded distance into the future. Because the
//! horizon is bounded, timestamps map onto `0..HORIZON` — exactly a
//! bounded-range priority queue.
//!
//! Workers stop when the *count* of processed events reaches the known
//! total — a transient `None` from `delete_min` (or a `true` from
//! `is_empty`) can coincide with another worker about to post follow-ups.
//!
//! Run with: `cargo run --example event_simulation`

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use funnelpq::{Algorithm, PqBuilder};

const WORKERS: usize = 4;
const HORIZON: usize = 64; // distinct pending timestamps
                           // 32 seed events, each posting 2 follow-ups (fanout 2, follow-ups post
                           // none): a closed workload with a known total.
const TOTAL_EVENTS: usize = 32 + 32 * 2;

#[derive(Debug)]
struct Event {
    id: usize,
    /// How many follow-ups this event schedules.
    fanout: usize,
}

fn main() {
    let queue = Arc::new(PqBuilder::new(Algorithm::SimpleTree, HORIZON, WORKERS).build::<Event>());
    let processed = Arc::new(AtomicUsize::new(0));
    let max_seen = Arc::new(AtomicUsize::new(0));

    for id in 0..32 {
        queue.insert(0, id % 8, Event { id, fanout: 2 });
    }

    let handles: Vec<_> = (0..WORKERS)
        .map(|tid| {
            let queue = Arc::clone(&queue);
            let processed = Arc::clone(&processed);
            let max_seen = Arc::clone(&max_seen);
            std::thread::spawn(move || {
                while processed.load(Ordering::Acquire) < TOTAL_EVENTS {
                    match queue.delete_min(tid) {
                        Some((t, ev)) => {
                            max_seen.fetch_max(t, Ordering::Relaxed);
                            // Post follow-ups a bounded delay ahead,
                            // clamped to the horizon. Post before counting
                            // this event as processed so the count only
                            // reaches the total once nothing more will be
                            // enqueued.
                            for k in 0..ev.fanout {
                                let when = (t + 5 + k * 3).min(HORIZON - 1);
                                queue.insert(
                                    tid,
                                    when.max(t + 1).min(HORIZON - 1),
                                    Event {
                                        id: ev.id * 100 + k,
                                        fanout: 0,
                                    },
                                );
                            }
                            processed.fetch_add(1, Ordering::Release);
                        }
                        None => std::thread::yield_now(),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let n = processed.load(Ordering::Relaxed);
    println!(
        "processed {n} events up to virtual time {} with {WORKERS} workers",
        max_seen.load(Ordering::Relaxed)
    );
    // At quiescence (all workers joined) is_empty is exact again.
    assert!(queue.is_empty(), "event queue drained");
    assert_eq!(n, TOTAL_EVENTS, "all seed and follow-up events processed");
    println!("event horizon respected, all events processed ✓");
}
