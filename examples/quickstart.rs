//! Quickstart: build a FunnelTree bounded-range priority queue through
//! `PqBuilder`, share it across threads, drain it in priority order, and
//! print the metrics the attached recorder gathered.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use funnelpq::obs::AtomicRecorder;
use funnelpq::{Algorithm, PqBuilder};

fn main() {
    const THREADS: usize = 4;
    const PRIORITIES: usize = 32;

    // A queue supports a fixed priority range 0..N (smaller = more urgent)
    // and a fixed maximum number of registered threads. The builder fronts
    // all seven algorithms; the recorder is optional (omit it for zero
    // overhead).
    let rec = Arc::new(AtomicRecorder::new());
    let q = Arc::new(
        PqBuilder::new(Algorithm::FunnelTree, PRIORITIES, THREADS)
            .recorder(Arc::clone(&rec))
            .build::<String>(),
    );
    println!(
        "created {} ({}), {} priorities",
        q.algorithm_name(),
        q.consistency(),
        q.num_priorities()
    );

    // Each thread uses its own dense thread id (0..THREADS) for the
    // funnels' collision records.
    let handles: Vec<_> = (0..THREADS)
        .map(|tid| {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                for i in 0..8 {
                    let pri = (tid * 7 + i * 3) % PRIORITIES;
                    q.insert(tid, pri, format!("job-{tid}-{i}"));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // Drain at quiescence: items come out in priority order.
    let mut last = 0;
    let mut count = 0;
    while let Some((pri, item)) = q.delete_min(0) {
        assert!(pri >= last, "priority order violated");
        last = pri;
        count += 1;
        println!("  pri {pri:2}  {item}");
    }
    assert_eq!(count, THREADS * 8);
    println!("drained {count} items in priority order ✓");

    // What did the queue's internals get up to?
    let snap = rec.snapshot();
    println!(
        "metrics: {} inserts (mean {} ns), {} delete-mins (mean {} ns), \
         {} lock acquisitions, {} empty delete-mins",
        snap.insert.count,
        snap.insert.mean_nanos(),
        snap.delete_min.count,
        snap.delete_min.mean_nanos(),
        snap.event(funnelpq::obs::CounterEvent::LockAcquire),
        snap.event(funnelpq::obs::CounterEvent::EmptyDeleteMin),
    );
}
