//! Demonstrates the two consistency conditions of the paper's Appendix B.
//!
//! *Linearizable* queues (`SingleLockPq`, `HuntPq`, `SimpleLinearPq`)
//! respect real-time order even mid-flight. *Quiescently consistent*
//! queues (`FunnelTreePq`, …) only promise sequential behaviour between
//! quiescent points — but as the appendix proves, that still guarantees
//! that `k` delete-mins issued after a quiescent point, with no concurrent
//! inserts, return exactly the `k` smallest priorities.
//!
//! This example drives a `FunnelTreePq` through insert-storm / quiescent /
//! delete-storm phases and checks the k-smallest guarantee each round.
//!
//! Run with: `cargo run --example consistency_demo`

use std::sync::{Arc, Barrier, Mutex};

use funnelpq::{Algorithm, Consistency, PqBuilder};

const THREADS: usize = 4;
const ROUNDS: usize = 5;
const PER_THREAD: usize = 32;

fn main() {
    let q = Arc::new(
        PqBuilder::new(Algorithm::FunnelTree, 64, THREADS).build::<(usize, usize, usize)>(),
    );
    assert_eq!(q.consistency(), Consistency::QuiescentlyConsistent);
    println!(
        "{} is {}; checking the Appendix-B k-smallest guarantee…",
        q.algorithm_name(),
        q.consistency()
    );

    for round in 0..ROUNDS {
        let inserted = Arc::new(Mutex::new(Vec::new()));
        let deleted = Arc::new(Mutex::new(Vec::new()));
        let barrier = Arc::new(Barrier::new(THREADS));
        let handles: Vec<_> = (0..THREADS)
            .map(|tid| {
                let q = Arc::clone(&q);
                let inserted = Arc::clone(&inserted);
                let deleted = Arc::clone(&deleted);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    // Phase 1: concurrent insert storm.
                    let mut mine = Vec::new();
                    for i in 0..PER_THREAD {
                        let pri = (tid * 17 + i * 11 + round) % 64;
                        q.insert(tid, pri, (round, tid, i));
                        mine.push(pri);
                    }
                    inserted.lock().unwrap().extend(mine);
                    // Quiescent point: every insert completes before any
                    // delete starts.
                    barrier.wait();
                    // Phase 2: concurrent delete storm, half the items.
                    let mut got = Vec::new();
                    for _ in 0..PER_THREAD / 2 {
                        let (pri, _) = q.delete_min(tid).expect("items present");
                        got.push(pri);
                    }
                    deleted.lock().unwrap().extend(got);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        // The deleted multiset must be exactly the k smallest inserted.
        let k = THREADS * PER_THREAD / 2;
        let mut want = inserted.lock().unwrap().clone();
        want.sort_unstable();
        want.truncate(k);
        let mut got = deleted.lock().unwrap().clone();
        got.sort_unstable();
        assert_eq!(got, want, "k-smallest violated in round {round}");
        println!("  round {round}: {k} parallel delete-mins returned exactly the {k} smallest ✓");

        // Drain the leftovers so the next round starts clean.
        while q.delete_min(0).is_some() {}
    }
    println!("quiescent consistency held across {ROUNDS} rounds ✓");
}
