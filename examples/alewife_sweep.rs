//! Drive the simulated 256-processor ccNUMA machine directly: a miniature
//! version of the paper's Figure 7 experiment, printed as a table.
//!
//! Run with: `cargo run --release --example alewife_sweep`

use funnelpq_simqueues::queues::Algorithm;
use funnelpq_simqueues::workload::{run_queue_workload, Workload};

fn main() {
    println!("mean queue-access latency (simulated cycles), 16 priorities\n");
    print!("{:>5}", "P");
    for algo in Algorithm::SCALABLE {
        print!("{:>15}", algo.name());
    }
    println!();
    for p in [4usize, 16, 64, 256] {
        let mut wl = Workload::standard(p, 16);
        wl.ops_per_proc = 32;
        print!("{p:>5}");
        for algo in Algorithm::SCALABLE {
            let r = run_queue_workload(algo, &wl);
            print!("{:>15.0}", r.all.mean());
        }
        println!();
    }
    println!("\nExpect SimpleLinear to lead at small P and FunnelTree at large P.");
}
