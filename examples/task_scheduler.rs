//! A miniature multi-level-priority task scheduler — the workload the
//! paper's introduction motivates (bounded-range priority queues "can be
//! found for example in operating systems schedulers").
//!
//! Worker threads pull the most urgent ready task, "execute" it, and may
//! spawn follow-up tasks at lower urgency. Interactive tasks (priority 0–3)
//! must never starve behind batch tasks (priority 4–15).
//!
//! Workers stop when the *count* of executed tasks reaches the known total,
//! not when the queue looks empty: `is_empty()` (and a `None` from
//! `delete_min`) is a racy read that can fire while another worker still
//! holds a task whose follow-ups are about to be enqueued.
//!
//! Run with: `cargo run --example task_scheduler`

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use funnelpq::{Algorithm, PqBuilder};

const WORKERS: usize = 4;
const PRIORITIES: usize = 16;
// 40 batch + 8 interactive + 4 batch follow-ups * 2 + 8 interactive
// follow-ups: the workload is closed, so the total is known up front.
const TOTAL_TASKS: usize = 40 + 8 + 8 + 8;

#[derive(Debug, Clone)]
struct Task {
    name: String,
    /// Follow-up tasks spawned on completion: (priority, name suffix).
    spawns: usize,
}

fn main() {
    // Few priorities + high churn: the paper's sweet spot for
    // LinearFunnels.
    let ready =
        Arc::new(PqBuilder::new(Algorithm::LinearFunnels, PRIORITIES, WORKERS).build::<Task>());
    let executed = Arc::new(AtomicUsize::new(0));
    let interactive_done = Arc::new(AtomicUsize::new(0));

    // Seed: a burst of batch work plus a few interactive requests.
    for i in 0..40 {
        ready.insert(
            0,
            4 + (i % (PRIORITIES - 4)),
            Task {
                name: format!("batch-{i}"),
                spawns: if i % 10 == 0 { 2 } else { 0 },
            },
        );
    }
    for i in 0..8 {
        ready.insert(
            0,
            i % 4,
            Task {
                name: format!("interactive-{i}"),
                spawns: 1,
            },
        );
    }

    let handles: Vec<_> = (0..WORKERS)
        .map(|tid| {
            let ready = Arc::clone(&ready);
            let executed = Arc::clone(&executed);
            let interactive_done = Arc::clone(&interactive_done);
            std::thread::spawn(move || {
                while executed.load(Ordering::Acquire) < TOTAL_TASKS {
                    match ready.delete_min(tid) {
                        Some((pri, task)) => {
                            // "Execute" the task.
                            std::hint::black_box(task.name.len());
                            if pri < 4 {
                                interactive_done.fetch_add(1, Ordering::Relaxed);
                            }
                            // Completions can enqueue follow-ups at lower
                            // urgency. Enqueue *before* counting the task as
                            // executed, so the count can only reach the
                            // total once every follow-up is in the queue.
                            for s in 0..task.spawns {
                                ready.insert(
                                    tid,
                                    (pri + 6).min(PRIORITIES - 1),
                                    Task {
                                        name: format!("{}-followup-{s}", task.name),
                                        spawns: 0,
                                    },
                                );
                            }
                            executed.fetch_add(1, Ordering::Release);
                        }
                        None => std::thread::yield_now(),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let total = executed.load(Ordering::Relaxed);
    let interactive = interactive_done.load(Ordering::Relaxed);
    println!("executed {total} tasks ({interactive} interactive) across {WORKERS} workers");
    // At quiescence (all workers joined) is_empty is exact again.
    assert!(ready.is_empty(), "scheduler drained the ready queue");
    assert_eq!(interactive, 8, "every interactive task ran");
    assert_eq!(total, TOTAL_TASKS);
    println!("all tasks accounted for ✓");
}
