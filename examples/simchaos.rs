//! `simchaos` — run the simulated priority-queue workload under a matrix
//! of fault plans and audit every run.
//!
//! For each selected algorithm × plan × seed the harness runs the paper's
//! §4 workload with the fault layer attached, then drains the queue and
//! checks the recorded operation history: element conservation, ordering,
//! structural invariants at quiescence, and the livelock watchdog. Under
//! the `none` plan the run is additionally compared against the fault-free
//! driver — the fault layer switched off must be bit-identical.
//!
//! Any failing run dumps its full operation history to
//! `<dump>/chaos-<algo>-<plan>-<seed>.log` for offline diagnosis, and the
//! process exits non-zero.
//!
//! Examples:
//!
//! ```text
//! cargo run --release --example simchaos
//! cargo run --release --example simchaos -- --plan crash --algo FunnelTree --seeds 5
//! cargo run --release --example simchaos -- --procs 64 --ops 48 --dump /tmp/chaos
//! ```

use std::fmt::Write as _;
use std::process::ExitCode;

use funnelpq_sim::audit::OpRecord;
use funnelpq_sim::{FaultPlan, SpanPoint};
use funnelpq_simqueues::chaos::{chaos_build_params, run_chaos_workload, DEFAULT_WATCHDOG};
use funnelpq_simqueues::queues::Algorithm;
use funnelpq_simqueues::workload::{run_queue_workload_with, Workload};

const USAGE: &str = "\
simchaos — fault-injection conformance sweep over the simulated priority queues

USAGE:
    cargo run --release --example simchaos -- [OPTIONS]

OPTIONS:
    --algo <NAME>    one algorithm (SingleLock, HuntEtAl, SkipList, SimpleLinear,
                     SimpleTree, LinearFunnels, FunnelTree, HardwareTree,
                     MultiQueue) or 'all' for the paper's seven plus the
                     relaxed MultiQueue                 [default: all]
    --plan <NAME>    fault plan: none, combiner-stall, lock-stall,
                     latency-spike, crash, or 'all'     [default: all]
    --procs <N>      simulated processors               [default: 16]
    --pris <N>       priority range 0..N                [default: 16]
    --ops <N>        queue accesses per processor       [default: 24]
    --seeds <N>      seeds per algorithm × plan cell    [default: 3]
    --seed <N>       base experiment seed               [default: 61453]
    --watchdog <N>   livelock watchdog window, cycles   [default: 50000000]
    --dump <DIR>     where failing histories are written [default: .]
    -h, --help       show this help
";

const PLAN_NAMES: [&str; 5] = [
    "none",
    "combiner-stall",
    "lock-stall",
    "latency-spike",
    "crash",
];

/// Default sweep roster: the paper's seven plus the relaxed MultiQueue
/// (audited with sortedness replaced by the rank-error distribution).
fn default_algos() -> Vec<Algorithm> {
    let mut algos = Algorithm::ALL.to_vec();
    algos.push(Algorithm::MultiQueue);
    algos
}

struct Args {
    algos: Vec<Algorithm>,
    plans: Vec<&'static str>,
    procs: usize,
    pris: usize,
    ops: usize,
    seeds: u64,
    seed: u64,
    watchdog: u64,
    dump: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        algos: default_algos(),
        plans: PLAN_NAMES.to_vec(),
        procs: 16,
        pris: 16,
        ops: 24,
        seeds: 3,
        seed: 61453,
        watchdog: DEFAULT_WATCHDOG,
        dump: ".".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "-h" || flag == "--help" {
            return Err(String::new());
        }
        let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
        let parse = |what: &str, v: &str| -> Result<u64, String> {
            v.parse().map_err(|_| format!("bad {what}: {v:?}"))
        };
        match flag.as_str() {
            "--algo" if value == "all" => args.algos = default_algos(),
            "--algo" => args.algos = vec![value.parse()?],
            "--plan" if value == "all" => args.plans = PLAN_NAMES.to_vec(),
            "--plan" => {
                let name = PLAN_NAMES
                    .into_iter()
                    .find(|p| *p == value)
                    .ok_or_else(|| format!("unknown plan {value:?} (try {PLAN_NAMES:?})"))?;
                args.plans = vec![name];
            }
            "--procs" => args.procs = parse("--procs", &value)? as usize,
            "--pris" => args.pris = parse("--pris", &value)? as usize,
            "--ops" => args.ops = parse("--ops", &value)? as usize,
            "--seeds" => args.seeds = parse("--seeds", &value)?,
            "--seed" => args.seed = parse("--seed", &value)?,
            "--watchdog" => args.watchdog = parse("--watchdog", &value)?,
            "--dump" => args.dump = value,
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if args.procs < 2 || args.pris == 0 || args.ops == 0 || args.seeds == 0 {
        return Err("--procs must be >= 2; --pris, --ops, --seeds must be positive".to_string());
    }
    Ok(args)
}

/// The same plan shapes the `chaos_conformance` tests sweep.
fn build_plan(name: &str, seed: u64) -> FaultPlan {
    let plan = FaultPlan::new(seed ^ 0x5EED);
    match name {
        "none" => plan,
        "combiner-stall" => plan
            .stall_on_span("funnel-combine", SpanPoint::Begin, 1, 200_000)
            .stall_on_span("funnel-combine", SpanPoint::Begin, 7, 150_000),
        // The third rule reaches lock holders that never touch an MCS
        // lock (the MultiQueue's CAS try-locks, and the plain mutex
        // algorithms' critical sections).
        "lock-stall" => plan
            .stall_on_span("mcs-acquire", SpanPoint::End, 3, 200_000)
            .stall_on_span("mcs-acquire", SpanPoint::End, 11, 120_000)
            .stall_on_span("lock-hold", SpanPoint::Begin, 7, 150_000),
        "latency-spike" => plan
            .region_delay(0, 64, 0, 1_500_000, 40, 10)
            .jitter(0, 400_000, 16),
        "crash" => plan.crash(1, 3_000 + (seed % 5) * 1_000),
        other => unreachable!("unknown plan {other}"),
    }
}

fn dump_history(path: &str, header: &str, ops: &[OpRecord]) -> std::io::Result<()> {
    let mut out = String::new();
    let _ = writeln!(out, "# {header}");
    let _ = writeln!(out, "# proc kind phase pri item start end completed empty");
    for op in ops {
        let _ = writeln!(
            out,
            "{} {:?} {:?} {} {} {} {} {} {}",
            op.proc, op.kind, op.phase, op.pri, op.item, op.start, op.end, op.completed, op.empty
        );
    }
    std::fs::write(path, out)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let mut failures = 0usize;
    let mut runs = 0usize;
    for &algo in &args.algos {
        for plan_name in &args.plans {
            for s in 0..args.seeds {
                let seed = args.seed.wrapping_add(s.wrapping_mul(0x9E37_79B9));
                let mut wl = Workload::standard(args.procs, args.pris);
                wl.ops_per_proc = args.ops;
                wl.seed = seed;
                let plan = build_plan(plan_name, seed);
                runs += 1;
                match run_chaos_workload(algo, &wl, &plan, args.watchdog) {
                    Ok(run) => {
                        // With the fault layer attached but empty, the run
                        // must be bit-identical to the fault-free driver.
                        if *plan_name == "none" {
                            let base = run_queue_workload_with(algo, &wl, &chaos_build_params(&wl));
                            if run.result.total_cycles != base.total_cycles
                                || run.result.all != base.all
                                || run.result.stats.mem_accesses != base.stats.mem_accesses
                            {
                                failures += 1;
                                eprintln!(
                                    "FAIL {algo} {plan_name} seed {seed:#x}: fault layer off \
                                     is not bit-identical ({} vs {} cycles)",
                                    run.result.total_cycles, base.total_cycles
                                );
                                continue;
                            }
                        }
                        let f = &run.fault_summary;
                        println!(
                            "ok   {algo:13} {plan_name:14} seed {seed:#010x}: {} cycles, \
                             {} ins / {} del / {} empty, {} stalls, {} delayed, {} crashed{}",
                            run.result.total_cycles,
                            run.report.inserts,
                            run.report.deletes,
                            run.report.empty_deletes,
                            f.stalls,
                            f.events_delayed,
                            run.crashed.len(),
                            if run.wedged() {
                                ", wedged (tolerated)"
                            } else {
                                ""
                            },
                        );
                    }
                    Err(e) => {
                        failures += 1;
                        let path = format!("{}/chaos-{algo}-{plan_name}-{seed:#x}.log", args.dump);
                        eprintln!("FAIL {algo} {plan_name} seed {seed:#x}: {e}");
                        let header = format!("{algo} {plan_name} seed {seed:#x}: {e}");
                        match dump_history(&path, &header, e.history()) {
                            Ok(()) => eprintln!("     history dumped to {path}"),
                            Err(io) => eprintln!("     could not dump history: {io}"),
                        }
                    }
                }
            }
        }
    }

    println!(
        "{runs} runs, {failures} failures ({} algorithms × {} plans × {} seeds)",
        args.algos.len(),
        args.plans.len(),
        args.seeds,
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
