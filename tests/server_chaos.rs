//! Chaos tests for the `funnelpq-server` resilience layer: seeded fault
//! plans (dispatcher panics, stalls, admission bursts) driven against
//! live schedulers, with a conservation audit after every run — each
//! admitted job must be dispatched exactly once per firing, shed with the
//! job returned, or explicitly reported lost, and lost must be zero
//! whenever a healthy shard exists.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

use funnelpq::{MultiQueueConfig, PqConfig};
use funnelpq_server::{
    AdmitError, Deadline, FaultPlan, JobId, JobSpec, OverloadConfig, Scheduler, ServerConfig,
    ServerError, ServerReport, StopOutcome, SuperviseConfig, TenantId,
};
use funnelpq_util::XorShift64Star;

const SHARDS: usize = 2;
const TENANTS: usize = 8;
const CLIENTS: usize = 4;

fn backends() -> Vec<PqConfig> {
    vec![
        PqConfig::SingleLock,
        PqConfig::for_algorithm(funnelpq::Algorithm::FunnelTree).unwrap(),
        PqConfig::MultiQueue(MultiQueueConfig {
            factor: 4,
            ..MultiQueueConfig::default()
        }),
    ]
}

fn chaos_cfg(backend: PqConfig, plan: FaultPlan) -> ServerConfig {
    ServerConfig {
        shards: SHARDS,
        tenants: TENANTS,
        clients: CLIENTS,
        bands: 512,
        horizon_ns: 2_000_000_000,
        backend,
        drain_batch: 8,
        global_capacity: 2048,
        tenant_quota: 512,
        service_ns: 1, // unpaced: these tests assert recovery, not timing
        record_dispatches: true,
        // Pin tenants round-robin so both shards are guaranteed traffic
        // (and so per-shard fault triggers are guaranteed to fire).
        affinity: (0..TENANTS as u32)
            .map(|t| (TenantId(t), t as usize % SHARDS))
            .collect(),
        fault_plan: Some(plan),
        ..ServerConfig::default()
    }
}

fn drain(s: &Scheduler) {
    let mut spins = 0;
    while s.in_flight() > 0 {
        std::thread::sleep(Duration::from_millis(1));
        spins += 1;
        assert!(spins < 30_000, "scheduler failed to drain");
    }
}

/// Four client threads submit a seeded one-shot/periodic mix while the
/// dispatchers run (and crash, and recover). Returns admitted ids and the
/// stop report.
fn run_clients(s: &Arc<Scheduler>, seed: u64) -> HashSet<JobId> {
    let base = s.now_ns();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let s = Arc::clone(s);
            std::thread::spawn(move || {
                let mut rng = XorShift64Star::new(seed ^ (client as u64) << 32);
                let mut admitted = Vec::new();
                for k in 0..250 {
                    let tenant = TenantId(rng.below(TENANTS as u64) as u32);
                    let deadline = Deadline::At(base + 1_000_000 + rng.below(1_000_000_000));
                    let spec = if k % 10 == 0 {
                        JobSpec::periodic(tenant, deadline, k, 1_000, 3)
                    } else {
                        JobSpec::once(tenant, deadline, k)
                    };
                    match s.submit(client, spec) {
                        Ok(id) => admitted.push(id),
                        Err(ServerError::Admit(_)) => {}
                        Err(other) => panic!("unexpected submit error: {other}"),
                    }
                }
                admitted
            })
        })
        .collect();
    let mut admitted_ids = HashSet::new();
    for h in handles {
        for id in h.join().unwrap() {
            assert!(admitted_ids.insert(id), "job ids must be unique");
        }
    }
    admitted_ids
}

/// The conservation audit: every admitted job dispatched at least once and
/// exactly once per firing, nothing invented, nothing silently dropped.
fn assert_conserved(admitted: &HashSet<JobId>, report: &ServerReport) {
    assert_eq!(report.in_flight_at_stop, 0);
    assert_eq!(
        report.lost, 0,
        "no job may be lost while a shard is healthy"
    );
    assert_eq!(report.admitted, report.completed);
    let mut seen: HashSet<JobId> = HashSet::new();
    let mut firings = 0u64;
    for shard in &report.shards {
        for rec in &shard.dispatch_log {
            assert!(
                admitted.contains(&rec.job),
                "dispatched job {} was never admitted",
                rec.job
            );
            seen.insert(rec.job);
            firings += 1;
        }
    }
    assert_eq!(
        &seen, admitted,
        "every admitted job must be dispatched at least once"
    );
    assert_eq!(firings, report.dispatched);
    assert_eq!(
        report.dispatched,
        report.completed + report.rearmed,
        "each dispatch either completes a job or re-arms it"
    );
}

/// Crash sweep: both dispatchers panic mid-run on every backend × seed
/// combination; the supervisors must recover every job and `stop()` must
/// report the panics instead of re-raising them.
#[test]
fn dispatcher_panics_lose_no_jobs_across_backends_and_seeds() {
    for backend in backends() {
        for seed in [0xC0FFEE_u64, 0xBEEF, 0x5EED] {
            let plan = FaultPlan::new(seed)
                .dispatcher_panic(0, 20)
                .dispatcher_panic(1, 35);
            let s = Arc::new(Scheduler::new(chaos_cfg(backend.clone(), plan)).unwrap());
            s.start();
            let admitted = run_clients(&s, seed);
            drain(&s);
            let t = s.telemetry();
            let report = s.stop();

            assert_eq!(report.panics, 2, "both injected panics fired");
            assert_eq!(report.restarts, 2);
            assert_conserved(&admitted, &report);
            for stop in &report.stops {
                match &stop.outcome {
                    StopOutcome::Recovered {
                        restarts,
                        last_panic,
                        ..
                    } => {
                        assert_eq!(*restarts, 1);
                        assert!(last_panic.contains("injected"), "got {last_panic:?}");
                    }
                    other => panic!("shard {}: expected Recovered, got {other:?}", stop.shard),
                }
            }
            // Live telemetry reconciles with the authoritative report.
            assert_eq!(t.restarts(), report.restarts);
            assert_eq!(t.requeued(), report.requeued);
            assert_eq!(t.dispatched(), report.dispatched);
        }
    }
}

/// Stall + admission-burst sweep: dispatchers freeze mid-run while a
/// thundering herd lands at admission. Nothing panics, nothing is lost,
/// and the burst jobs are conserved like any others.
#[test]
fn dispatcher_stalls_and_bursts_conserve_jobs() {
    for backend in backends() {
        for seed in [1_u64, 2, 3] {
            let plan = FaultPlan::new(seed)
                .dispatcher_stall(0, 10, 5_000_000)
                .dispatcher_stall(1, 10, 5_000_000)
                .admission_burst(100, 64, 1_000_000_000);
            let s = Arc::new(Scheduler::new(chaos_cfg(backend.clone(), plan)).unwrap());
            s.start();
            // One-shot only: burst job ids are unknown to the clients, so
            // this sweep audits conservation by exact counts instead.
            let base = s.now_ns();
            let handles: Vec<_> = (0..CLIENTS)
                .map(|client| {
                    let s = Arc::clone(&s);
                    std::thread::spawn(move || {
                        let mut rng = XorShift64Star::new(seed ^ (client as u64) << 32);
                        for k in 0..250u64 {
                            let tenant = TenantId(rng.below(TENANTS as u64) as u32);
                            let deadline =
                                Deadline::At(base + 1_000_000 + rng.below(1_000_000_000));
                            match s.submit(client, JobSpec::once(tenant, deadline, k)) {
                                Ok(_) | Err(ServerError::Admit(_)) => {}
                                Err(other) => panic!("unexpected submit error: {other}"),
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            drain(&s);
            let report = s.stop();

            assert_eq!(report.panics, 0, "stalls are not crashes");
            assert_eq!(report.lost, 0);
            assert!(report.stops.iter().all(|s| s.outcome.is_clean()));
            assert!(
                report.submitted > 1_000,
                "the burst consumed ids beyond the clients' 1000"
            );
            assert_eq!(report.admitted, report.completed);
            assert_eq!(report.dispatched, report.completed, "one-shot only");
            // Exactly-once: the dispatch log holds one unique id per
            // admitted job.
            let mut seen = HashSet::new();
            let mut firings = 0u64;
            for shard in &report.shards {
                for rec in &shard.dispatch_log {
                    assert!(seen.insert(rec.job), "job {} dispatched twice", rec.job);
                    firings += 1;
                }
            }
            assert_eq!(firings, report.dispatched);
            assert_eq!(seen.len() as u64, report.admitted);
        }
    }
}

/// A shard with no restart budget fails over: its queue drains into the
/// healthy shard, later submits route around it, and nothing is lost.
#[test]
fn exhausted_restart_budget_fails_over_to_healthy_shards() {
    let plan = FaultPlan::new(7).dispatcher_panic(0, 5);
    let mut cfg = chaos_cfg(PqConfig::SingleLock, plan);
    cfg.supervise = SuperviseConfig {
        max_restarts: 0,
        ..SuperviseConfig::default()
    };
    let s = Arc::new(Scheduler::new(cfg).unwrap());
    let base = s.now_ns() + 1_000_000_000;
    // Tenant 0 is pinned to shard 0 (the doomed one), tenant 1 to shard 1.
    for k in 0..100u64 {
        s.submit(0, JobSpec::once(TenantId(0), Deadline::At(base + k), k))
            .unwrap();
    }
    for k in 0..10u64 {
        s.submit(0, JobSpec::once(TenantId(1), Deadline::At(base + k), k))
            .unwrap();
    }
    s.start();
    // Wait for shard 0 to give up...
    let mut spins = 0;
    while s.shard_healthy(0) {
        std::thread::sleep(Duration::from_millis(1));
        spins += 1;
        assert!(spins < 30_000, "shard 0 never gave up");
    }
    // ...then keep submitting for its pinned tenant: submits must reroute,
    // not bounce, not blackhole.
    for k in 0..20u64 {
        s.submit(
            0,
            JobSpec::once(TenantId(0), Deadline::At(base + k), 1_000 + k),
        )
        .unwrap();
    }
    drain(&s);
    let report = s.stop();

    assert_eq!(report.lost, 0, "the healthy shard absorbed everything");
    assert_eq!(report.admitted, 130);
    assert_eq!(report.completed, 130);
    assert!(report.requeued >= 90, "most of shard 0's queue failed over");
    match &report.stops[0].outcome {
        StopOutcome::GaveUp { restarts, lost, .. } => {
            assert_eq!(*restarts, 0);
            assert_eq!(*lost, 0);
        }
        other => panic!("expected GaveUp on shard 0, got {other:?}"),
    }
    assert!(report.stops[1].outcome.is_clean());
    // Shard 0 got at most its 5 pre-panic dispatches; shard 1 served the
    // rest, including every post-give-up submission.
    assert!(report.shards[0].dispatch_log.len() <= 5);
    assert!(report.shards[1].dispatch_log.len() >= 125);
    let late: Vec<_> = report.shards[1]
        .dispatch_log
        .iter()
        .filter(|r| r.tenant == TenantId(0))
        .collect();
    assert!(late.len() >= 115, "rerouted tenant-0 work ran on shard 1");
}

/// With a single shard there is nowhere to fail over: the give-up path
/// must release every stranded admission slot and report the jobs lost —
/// visible accounting, not a hang and not a leak.
#[test]
fn single_shard_give_up_reports_lost_jobs_and_releases_slots() {
    let plan = FaultPlan::new(11).dispatcher_panic(0, 5);
    let cfg = ServerConfig {
        shards: 1,
        tenants: 2,
        clients: 1,
        bands: 64,
        horizon_ns: 1_000_000_000,
        service_ns: 1,
        record_dispatches: true,
        supervise: SuperviseConfig {
            max_restarts: 0,
            ..SuperviseConfig::default()
        },
        fault_plan: Some(plan),
        ..ServerConfig::default()
    };
    let s = Scheduler::new(cfg).unwrap();
    let base = s.now_ns() + 1_000_000_000;
    for k in 0..50u64 {
        s.submit(0, JobSpec::once(TenantId(0), Deadline::At(base + k), k))
            .unwrap();
    }
    s.start();
    drain(&s); // give-up releases the stranded slots, so this terminates
    let report = s.stop();

    assert_eq!(report.admitted, 50);
    assert_eq!(
        report.completed + report.lost,
        report.admitted,
        "every admitted job is either completed or explicitly lost"
    );
    assert!(report.lost > 0, "the stranded queue had nowhere to go");
    assert_eq!(report.in_flight_at_stop, 0, "lost slots were released");
    match &report.stops[0].outcome {
        StopOutcome::GaveUp { lost, .. } => assert_eq!(*lost, report.lost),
        other => panic!("expected GaveUp, got {other:?}"),
    }
    // With every shard dark, further submits are refused with the typed
    // no-healthy-shard error (and the job comes back).
    let err = s
        .submit(0, JobSpec::once(TenantId(1), Deadline::In(1_000), 9))
        .unwrap_err();
    match err {
        ServerError::NoHealthyShard { job } => assert_eq!(job.payload, 9),
        other => panic!("expected NoHealthyShard, got {other:?}"),
    }
}

/// Overload shedding reacts to a stalled dispatcher: backlog piles up
/// behind the freeze, and a tight-deadline job is bounced with the
/// server's drain-time estimate instead of being admitted into a
/// guaranteed miss.
#[test]
fn shedding_reacts_to_a_stalled_dispatcher() {
    let plan = FaultPlan::new(13).dispatcher_stall(0, 0, 400_000_000);
    let cfg = ServerConfig {
        shards: 1,
        tenants: 2,
        clients: 1,
        bands: 512,
        horizon_ns: 60_000_000_000,
        service_ns: 50_000, // 50 µs per job
        overload: OverloadConfig {
            shed: true,
            margin_ns: 0,
        },
        fault_plan: Some(plan),
        ..ServerConfig::default()
    };
    let s = Scheduler::new(cfg).unwrap();
    // 60 long-deadline jobs: 3 ms of backlog at the pacing rate, far
    // within their 10 s slack — all admitted.
    for k in 0..60u64 {
        s.submit(
            0,
            JobSpec::once(TenantId(0), Deadline::In(10_000_000_000), k),
        )
        .unwrap();
    }
    s.start();
    // Give the dispatcher time to hit the stall (fires before dispatch 0).
    std::thread::sleep(Duration::from_millis(50));
    // A 1 ms deadline cannot clear the stalled backlog: shed with a hint.
    let err = s
        .submit(0, JobSpec::once(TenantId(1), Deadline::In(1_000_000), 7))
        .unwrap_err();
    match err {
        ServerError::Admit(AdmitError::Retry { after_ns, job }) => {
            assert!(after_ns > 0);
            assert_eq!(job.payload, 7);
        }
        other => panic!("expected Retry, got {other:?}"),
    }
    drain(&s);
    let report = s.stop();
    assert_eq!(report.shed, 1);
    assert_eq!(report.admitted, 60);
    assert_eq!(report.completed, 60);
    assert!(report.stops.iter().all(|x| x.outcome.is_clean()));
}
