//! End-to-end tests for the `funnelpq-server` scheduler: conservation
//! under concurrent seeded load, exact quota enforcement, strict-backend
//! deadline ordering within a shard, relaxed-backend conservation, and
//! affinity routing.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

use funnelpq::{MultiQueueConfig, PqConfig};
use funnelpq_server::{Deadline, JobId, JobSpec, Scheduler, ServerConfig, ServerError, TenantId};
use funnelpq_util::XorShift64Star;

const SHARDS: usize = 4;
const TENANTS: usize = 8;

fn cfg(backend: PqConfig) -> ServerConfig {
    ServerConfig {
        shards: SHARDS,
        tenants: TENANTS,
        clients: 4,
        bands: 512,
        horizon_ns: 2_000_000_000,
        backend,
        drain_batch: 8,
        global_capacity: 2048,
        tenant_quota: 512,
        service_ns: 1, // unpaced: these tests assert accounting, not timing
        record_dispatches: true,
        ..ServerConfig::default()
    }
}

fn drain(s: &Scheduler) {
    let mut spins = 0;
    while s.in_flight() > 0 {
        std::thread::sleep(Duration::from_millis(1));
        spins += 1;
        assert!(spins < 30_000, "scheduler failed to drain");
    }
}

/// Seeded concurrent load: `clients` threads submit one-shot and periodic
/// jobs for 8 tenants while the dispatchers run. Returns the admitted ids
/// and the stopped scheduler's report.
fn run_seeded(backend: PqConfig, seed: u64) -> (HashSet<JobId>, funnelpq_server::ServerReport) {
    let s = Arc::new(Scheduler::new(cfg(backend)).unwrap());
    s.start();
    let base = s.now_ns();
    let handles: Vec<_> = (0..4)
        .map(|client| {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                let mut rng = XorShift64Star::new(seed ^ (client as u64) << 32);
                let mut admitted = Vec::new();
                let mut rejected = 0u64;
                for k in 0..500 {
                    let tenant = TenantId(rng.below(TENANTS as u64) as u32);
                    let deadline = Deadline::At(base + 1_000_000 + rng.below(1_000_000_000));
                    let spec = if k % 10 == 0 {
                        // Every tenth job is a small periodic timer.
                        JobSpec::periodic(tenant, deadline, k, 1_000, 3)
                    } else {
                        JobSpec::once(tenant, deadline, k)
                    };
                    match s.submit(client, spec) {
                        Ok(id) => admitted.push(id),
                        Err(ServerError::Admit(e)) => {
                            // Quota/capacity refusal hands the job back.
                            assert_eq!(e.into_job().tenant, tenant);
                            rejected += 1;
                        }
                        Err(other) => panic!("unexpected submit error: {other}"),
                    }
                }
                (admitted, rejected)
            })
        })
        .collect();
    let mut admitted_ids = HashSet::new();
    let mut rejected = 0;
    for h in handles {
        let (ids, r) = h.join().unwrap();
        for id in ids {
            assert!(admitted_ids.insert(id), "job ids must be unique");
        }
        rejected += r;
    }
    drain(&s);
    let report = s.stop();
    assert_eq!(report.submitted, 2000);
    assert_eq!(report.admitted as usize, admitted_ids.len());
    assert_eq!(
        report.rejected_quota + report.rejected_capacity,
        rejected,
        "every admission refusal is tallied"
    );
    (admitted_ids, report)
}

/// Checks the conservation contract against the dispatch logs: every
/// admitted job dispatched (once per firing), none invented, all completed.
fn assert_conserved(admitted: &HashSet<JobId>, report: &funnelpq_server::ServerReport) {
    assert_eq!(report.in_flight_at_stop, 0);
    assert_eq!(report.admitted, report.completed);
    let mut seen: HashSet<JobId> = HashSet::new();
    let mut firings = 0u64;
    for shard in &report.shards {
        for rec in &shard.dispatch_log {
            assert!(
                admitted.contains(&rec.job),
                "dispatched job {} was never admitted",
                rec.job
            );
            seen.insert(rec.job);
            firings += 1;
        }
    }
    assert_eq!(
        &seen, admitted,
        "every admitted job must be dispatched at least once"
    );
    assert_eq!(firings, report.dispatched);
    assert_eq!(
        report.dispatched,
        report.completed + report.rearmed,
        "each dispatch either completes a job or re-arms it"
    );
    assert_eq!(report.latency_ns.count(), report.dispatched);
}

#[test]
fn strict_backend_conserves_jobs_under_concurrent_load() {
    let (admitted, report) = run_seeded(PqConfig::SingleLock, 0xC0FFEE);
    assert_conserved(&admitted, &report);
}

#[test]
fn funnel_tree_backend_conserves_jobs_under_concurrent_load() {
    let (admitted, report) = run_seeded(
        PqConfig::for_algorithm(funnelpq::Algorithm::FunnelTree).unwrap(),
        0xBEEF,
    );
    assert_conserved(&admitted, &report);
}

#[test]
fn multiqueue_backend_conserves_jobs_under_concurrent_load() {
    // Element conservation is exactly what the relaxed class still
    // guarantees; only ordering is weakened.
    let (admitted, report) = run_seeded(
        PqConfig::MultiQueue(MultiQueueConfig {
            factor: 4,
            ..MultiQueueConfig::default()
        }),
        0x5EED,
    );
    assert_conserved(&admitted, &report);
}

#[test]
fn numa_backend_conserves_jobs_and_surfaces_its_controller() {
    let (admitted, report) = run_seeded(
        PqConfig::NumaPq(funnelpq::NumaConfig {
            nodes: 2,
            ..funnelpq::NumaConfig::default()
        }),
        0xA10C,
    );
    assert_conserved(&admitted, &report);

    // Telemetry surfaces the adaptive controller: mode name in the
    // totals, a per-shard `numa` block in the JSON. A non-NUMA backend
    // has neither.
    let s = Scheduler::new(cfg(PqConfig::NumaPq(funnelpq::NumaConfig {
        nodes: 2,
        ..funnelpq::NumaConfig::default()
    })))
    .unwrap();
    let t = s.telemetry();
    assert_eq!(t.numa_mode(), Some("oblivious"), "fresh controller");
    assert!(t.shards.iter().all(|sh| sh.adaptive.is_some()));
    let json = t.to_json();
    assert!(json.contains("\"numa_mode\": \"oblivious\""));
    assert!(json.contains("\"mode_switches\": 0"));
    assert!(json.contains("\"remote_transfers\""));
    s.stop();

    let plain = Scheduler::new(cfg(PqConfig::SingleLock)).unwrap();
    let t = plain.telemetry();
    assert_eq!(t.numa_mode(), None);
    assert_eq!(t.mode_switches(), 0);
    assert!(!t.to_json().contains("numa_mode"));
    plain.stop();
}

#[test]
fn quota_is_enforced_to_the_job() {
    let mut c = cfg(PqConfig::SingleLock);
    c.tenant_quota = 16;
    c.global_capacity = 64;
    let s = Scheduler::new(c).unwrap();
    let base = s.now_ns() + 1_000_000;

    // One tenant asks for twice its quota before dispatch starts: exactly
    // `quota` jobs get in, every refusal names the quota and carries the
    // job back.
    let mut admitted = 0;
    let mut quota_rejects = 0;
    for k in 0..32u64 {
        match s.submit(0, JobSpec::once(TenantId(3), Deadline::At(base + k), k)) {
            Ok(_) => admitted += 1,
            Err(ServerError::Admit(e)) => {
                let job = match e {
                    funnelpq_server::AdmitError::TenantQuota { quota, job, .. } => {
                        assert_eq!(quota, 16);
                        job
                    }
                    other => panic!("expected TenantQuota, got {other:?}"),
                };
                assert_eq!(job.tenant, TenantId(3));
                assert_eq!(job.payload, k);
                quota_rejects += 1;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert_eq!(admitted, 16);
    assert_eq!(quota_rejects, 16);
    // Another tenant is unaffected by tenant 3 being at quota.
    s.submit(0, JobSpec::once(TenantId(0), Deadline::At(base), 99))
        .unwrap();

    s.start();
    drain(&s);
    let report = s.stop();
    assert_eq!(report.admitted, 17);
    assert_eq!(report.completed, 17);
    assert_eq!(report.rejected_quota, 16);

    // Global capacity binds across tenants: spread 80 submits over all 8
    // tenants (quota 16 each = 128 headroom) against capacity 64.
    let mut c = cfg(PqConfig::SingleLock);
    c.tenant_quota = 16;
    c.global_capacity = 64;
    let s = Scheduler::new(c).unwrap();
    let base = s.now_ns() + 1_000_000;
    let mut capacity_rejects = 0;
    for k in 0..80u64 {
        let spec = JobSpec::once(TenantId((k % 8) as u32), Deadline::At(base + k), k);
        match s.submit(0, spec) {
            Ok(_) => {}
            Err(ServerError::Admit(funnelpq_server::AdmitError::Capacity { capacity, .. })) => {
                assert_eq!(capacity, 64);
                capacity_rejects += 1;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert_eq!(capacity_rejects, 16);
    assert_eq!(s.in_flight(), 64);
    s.start();
    drain(&s);
    let report = s.stop();
    assert_eq!(report.rejected_capacity, 16);
    assert_eq!(report.completed, 64);
}

#[test]
fn strict_backend_dispatches_in_deadline_band_order_within_a_shard() {
    // All submissions precede start(), so the queue is quiescent when the
    // dispatcher begins: a strict (non-relaxed) backend must then drain
    // bands in non-decreasing order. One shard, one tenant, scrambled
    // deadlines across the whole horizon.
    let mut c = cfg(PqConfig::SingleLock);
    c.shards = 1;
    c.tenants = 1;
    let s = Scheduler::new(c).unwrap();
    let mut rng = XorShift64Star::new(42);
    for k in 0..400u64 {
        let deadline = Deadline::At(rng.below(1_999_000_000));
        s.submit(0, JobSpec::once(TenantId(0), deadline, k))
            .unwrap();
    }
    s.start();
    drain(&s);
    let report = s.stop();
    let log = &report.shards[0].dispatch_log;
    assert_eq!(log.len(), 400);
    for w in log.windows(2) {
        assert!(
            w[0].band <= w[1].band,
            "strict backend dispatched band {} after band {}",
            w[1].band,
            w[0].band
        );
    }
    // Dispatched in band order and unpaced from a quiescent queue: nothing
    // can miss on the virtual service clock.
    assert_eq!(report.misses, 0);
}

#[test]
fn affinity_pins_a_tenant_to_its_shard() {
    let mut c = cfg(PqConfig::SingleLock);
    let hot = TenantId(5);
    c.affinity = vec![(hot, 3)];
    let s = Arc::new(Scheduler::new(c).unwrap());
    assert_eq!(s.route(hot), 3);
    let base = s.now_ns() + 1_000_000;
    for k in 0..64u64 {
        let t = TenantId((k % TENANTS as u64) as u32);
        s.submit(0, JobSpec::once(t, Deadline::At(base + k), k))
            .unwrap();
    }
    s.start();
    drain(&s);
    let report = s.stop();
    let mut hot_dispatches = 0;
    for shard in &report.shards {
        for rec in &shard.dispatch_log {
            if rec.tenant == hot {
                assert_eq!(
                    shard.shard, 3,
                    "pinned tenant dispatched on shard {}",
                    shard.shard
                );
                hot_dispatches += 1;
            }
        }
    }
    assert_eq!(hot_dispatches, 8);
}

/// The telemetry snapshot's totals reconcile with the authoritative stop
/// report: per-tenant dispatch counts sum to the total, latency histogram
/// mass equals the dispatch count, windows partition the dispatches, and
/// the live depth gauge returns to zero once the scheduler drains.
#[test]
fn telemetry_reconciles_with_the_stop_report() {
    let s = Arc::new(Scheduler::new(cfg(PqConfig::SingleLock)).unwrap());
    let base = s.now_ns() + 1_000_000;
    // 12 jobs per tenant, submitted pre-start so admission never refuses.
    for k in 0..96u64 {
        let t = TenantId((k % TENANTS as u64) as u32);
        s.submit(0, JobSpec::once(t, Deadline::At(base + k), k))
            .unwrap();
    }
    s.start();
    drain(&s);
    let t = s.telemetry();
    let report = s.stop();

    assert_eq!(t.dispatched(), report.dispatched);
    assert_eq!(t.misses(), report.misses);
    assert_eq!(t.depth(), 0, "drained scheduler reports zero depth");
    assert_eq!(t.shards.len(), SHARDS);

    assert_eq!(t.tenants.len(), TENANTS, "every tenant saw traffic");
    let per_tenant: u64 = t.tenants.iter().map(|x| x.dispatched).sum();
    assert_eq!(per_tenant, report.dispatched);
    for tenant in &t.tenants {
        assert_eq!(tenant.dispatched, 12, "uniform load, exact per-tenant");
        assert_eq!(tenant.latency_ns.count(), tenant.dispatched);
        assert_eq!(tenant.slack_ns.count(), tenant.dispatched);
    }
    let per_shard: u64 = t.shards.iter().map(|x| x.dispatched).sum();
    assert_eq!(per_shard, report.dispatched);

    assert!(!t.windows.is_empty());
    let per_window: u64 = t.windows.iter().map(|w| w.dispatched).sum();
    assert_eq!(per_window, report.dispatched);

    // Strict backend: any sampled drain batches scored exactly zero
    // displacement (SingleLock drains under one lock hold, sorted).
    assert_eq!(
        t.shards.iter().map(|x| x.rank_error.sum()).sum::<u64>(),
        0,
        "strict backend must show zero rank error"
    );
    assert_eq!(t.rank_error_mean(), 0.0);

    let json = t.to_json();
    assert!(json.starts_with("{\n  \"schema_version\": 3,"));
    assert!(json.contains("\"backend\": \"SingleLock\""));
}

/// Sustained closed-loop load against the shallow-heap MultiQueue geometry
/// (the `pqstat` defaults): the sampled rank-error estimator must observe
/// genuine relaxation — nonzero displacements — while the same load on the
/// strict SingleLock backend scores exactly zero over the same sampler.
#[test]
fn rank_error_sampler_separates_relaxed_from_strict() {
    use std::sync::atomic::{AtomicBool, Ordering};

    fn run(backend: PqConfig) -> (u64, u64) {
        // Shallow per-heap depth: capacity 128 over many heaps forces
        // MultiQueue drains to cross heap boundaries mid-batch.
        let c = ServerConfig {
            shards: 1,
            tenants: 4,
            clients: 2,
            bands: 4096,
            horizon_ns: 60_000_000_000,
            backend,
            drain_batch: 8,
            global_capacity: 128,
            tenant_quota: 64,
            service_ns: 10_000,
            ..ServerConfig::default()
        };
        let s = Arc::new(Scheduler::new(c).unwrap());
        s.start();
        let stop = Arc::new(AtomicBool::new(false));
        let clients: Vec<_> = (0..2)
            .map(|client| {
                let s = Arc::clone(&s);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut rng = XorShift64Star::new(0xA11CE ^ (client as u64) << 32);
                    let mut k = 0u64;
                    while !stop.load(Ordering::Acquire) {
                        let t = TenantId(rng.below(4) as u32);
                        let d = Deadline::In(1_000_000 + rng.below(40_000_000));
                        match s.submit(client, JobSpec::once(t, d, k)) {
                            Ok(_) => k += 1,
                            Err(ServerError::Stopped { .. }) => break,
                            // Backlog full: that is the point — yield.
                            Err(_) => std::thread::yield_now(),
                        }
                    }
                })
            })
            .collect();
        // Run until the sampler has scored enough batches to be meaningful.
        let mut spins = 0;
        loop {
            std::thread::sleep(Duration::from_millis(10));
            let t = s.telemetry();
            let samples: u64 = t.shards.iter().map(|x| x.rank_samples).sum();
            if samples >= 20 {
                break;
            }
            spins += 1;
            assert!(spins < 1500, "rank sampler starved of batches");
        }
        stop.store(true, Ordering::Release);
        for h in clients {
            h.join().unwrap();
        }
        drain(&s);
        let t = s.telemetry();
        s.stop();
        let samples: u64 = t.shards.iter().map(|x| x.rank_samples).sum();
        let displacement: u64 = t.shards.iter().map(|x| x.rank_error.sum()).sum();
        (samples, displacement)
    }

    let (samples, displacement) = run(PqConfig::MultiQueue(MultiQueueConfig::default()));
    assert!(samples >= 20);
    assert!(
        displacement > 0,
        "relaxed MultiQueue drains must show nonzero sampled rank error"
    );

    let (samples, displacement) = run(PqConfig::SingleLock);
    assert!(samples >= 20);
    assert_eq!(
        displacement, 0,
        "strict SingleLock drains must score exactly zero"
    );
}

/// Property test for the admission race at capacity: four clients hammer
/// submits into a tiny global cap while paced dispatchers hold the
/// backlog pinned against it. The optimistic fetch-add/check/undo scheme
/// may transiently overshoot the cap by at most one slot per concurrently
/// racing client (the window between the add and the undo), never more —
/// and the books must balance exactly once the dust settles.
#[test]
fn concurrent_submits_at_capacity_never_overshoot_the_race_bound() {
    const CLIENTS: usize = 4;
    const CAPACITY: usize = 32;
    for backend in [
        PqConfig::SingleLock,
        PqConfig::for_algorithm(funnelpq::Algorithm::FunnelTree).unwrap(),
        PqConfig::MultiQueue(MultiQueueConfig {
            factor: 4,
            ..MultiQueueConfig::default()
        }),
    ] {
        let mut c = cfg(backend);
        c.global_capacity = CAPACITY;
        c.tenant_quota = CAPACITY;
        c.service_ns = 5_000; // paced: keeps the backlog pressed at the cap
        c.record_dispatches = false;
        let s = Arc::new(Scheduler::new(c).unwrap());
        s.start();

        let stop_monitor = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let monitor = {
            let s = Arc::clone(&s);
            let stop = Arc::clone(&stop_monitor);
            std::thread::spawn(move || {
                let mut peak = 0usize;
                let mut samples = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                    peak = peak.max(s.in_flight());
                    samples += 1;
                    std::thread::yield_now();
                }
                (peak, samples)
            })
        };

        let base = s.now_ns();
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let mut admitted = 0u64;
                    let mut rejected = 0u64;
                    for k in 0..300u64 {
                        let tenant = TenantId(((client as u64 * 300 + k) % 8) as u32);
                        let spec = JobSpec::once(tenant, Deadline::At(base + 1_000_000_000 + k), k);
                        match s.submit(client, spec) {
                            Ok(_) => admitted += 1,
                            Err(ServerError::Admit(e)) => {
                                assert_eq!(e.into_job().payload, k, "refusal returns the job");
                                rejected += 1;
                            }
                            Err(other) => panic!("unexpected submit error: {other}"),
                        }
                    }
                    (admitted, rejected)
                })
            })
            .collect();
        let mut admitted = 0u64;
        let mut rejected = 0u64;
        for h in handles {
            let (a, r) = h.join().unwrap();
            admitted += a;
            rejected += r;
        }
        stop_monitor.store(true, std::sync::atomic::Ordering::Release);
        let (peak, samples) = monitor.join().unwrap();
        drain(&s);
        let report = s.stop();

        // The race bound: the raw counter may overshoot by one per racing
        // client mid-undo, but no further — and every admitted job really
        // held a slot.
        assert!(samples > 0);
        assert!(
            peak <= CAPACITY + CLIENTS,
            "in-flight peak {peak} exceeds capacity {CAPACITY} + {CLIENTS} racing clients"
        );
        assert!(
            report.rejected_capacity > 0,
            "the cap must actually have been contended"
        );
        assert_eq!(report.admitted, admitted);
        assert_eq!(
            report.rejected_quota + report.rejected_capacity,
            rejected,
            "every refusal is tallied"
        );
        assert_eq!(report.admitted, report.completed, "no admitted job leaked");
        assert_eq!(report.in_flight_at_stop, 0);
        assert_eq!(report.lost, 0);
    }
}
