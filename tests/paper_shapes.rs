//! Small-scale guards on the paper's headline *shapes* — cheap versions of
//! the figure benches that fail loudly if the contention model or an
//! algorithm regresses. Absolute cycle counts are not asserted, only
//! orderings and ratios with generous margins.

use funnelpq_simqueues::funnel::{CounterMode, SimFunnelConfig};
use funnelpq_simqueues::queues::Algorithm;
use funnelpq_simqueues::workload::{run_counter_workload, run_queue_workload, Workload};

fn wl(procs: usize, pris: usize, ops: usize) -> Workload {
    let mut w = Workload::standard(procs, pris);
    w.ops_per_proc = ops;
    w
}

fn mean(algo: Algorithm, procs: usize, pris: usize, ops: usize) -> f64 {
    run_queue_workload(algo, &wl(procs, pris, ops)).all.mean()
}

/// Figure 6 shape: at low concurrency the centralized heap methods are the
/// slowest and SimpleLinear leads.
#[test]
fn low_concurrency_ordering() {
    let p = 16;
    let simple_linear = mean(Algorithm::SimpleLinear, p, 16, 24);
    let single_lock = mean(Algorithm::SingleLock, p, 16, 24);
    let hunt = mean(Algorithm::HuntEtAl, p, 16, 24);
    assert!(
        single_lock > 2.0 * simple_linear,
        "SingleLock ({single_lock:.0}) should be far slower than SimpleLinear ({simple_linear:.0}) at P={p}"
    );
    assert!(
        hunt > 1.5 * simple_linear,
        "HuntEtAl ({hunt:.0}) should be well above SimpleLinear ({simple_linear:.0}) at P={p}"
    );
}

/// Figure 7 shape: by high concurrency FunnelTree beats SimpleTree by a
/// wide margin (paper: ~8x at 256; we require >2x at 128 with small runs).
#[test]
fn funnel_tree_beats_simple_tree_at_high_concurrency() {
    let p = 128;
    let simple_tree = mean(Algorithm::SimpleTree, p, 16, 16);
    let funnel_tree = mean(Algorithm::FunnelTree, p, 16, 16);
    assert!(
        simple_tree > 2.0 * funnel_tree,
        "SimpleTree ({simple_tree:.0}) should trail FunnelTree ({funnel_tree:.0}) at P={p}"
    );
}

/// Figure 7 shape: SimpleLinear wins at low concurrency, loses to
/// FunnelTree at high concurrency (the crossover).
#[test]
fn simple_linear_funnel_tree_crossover() {
    let low_sl = mean(Algorithm::SimpleLinear, 8, 16, 24);
    let low_ft = mean(Algorithm::FunnelTree, 8, 16, 24);
    assert!(
        low_sl < low_ft,
        "SimpleLinear ({low_sl:.0}) should beat FunnelTree ({low_ft:.0}) at P=8"
    );
    let high_sl = mean(Algorithm::SimpleLinear, 256, 16, 16);
    let high_ft = mean(Algorithm::FunnelTree, 256, 16, 16);
    assert!(
        high_ft < high_sl,
        "FunnelTree ({high_ft:.0}) should beat SimpleLinear ({high_sl:.0}) at P=256"
    );
}

/// Figure 5 shape: with a 50/50 inc/dec mix at high concurrency,
/// elimination makes the bounded counter at least as fast as plain
/// combining fetch-and-add.
#[test]
fn elimination_helps_balanced_counter_traffic() {
    let w = wl(128, 1, 24);
    let cfg = SimFunnelConfig::for_procs(128);
    let faa = run_counter_workload(CounterMode::FetchAdd, 50, cfg.clone(), &w);
    let bfad = run_counter_workload(CounterMode::BOUNDED_AT_ZERO, 50, cfg, &w);
    assert!(
        bfad.all.mean() < faa.all.mean() * 1.05,
        "BFaD+elim ({:.0}) should not lose to FaA ({:.0}) at a balanced mix",
        bfad.all.mean(),
        faa.all.mean()
    );
}

/// The tree methods' insert is cheaper than their delete-min (Figure 8
/// observation: inserts update half as many counters on average).
#[test]
fn tree_insert_cheaper_than_delete() {
    for algo in [Algorithm::SimpleTree, Algorithm::FunnelTree] {
        let r = run_queue_workload(algo, &wl(32, 64, 24));
        assert!(
            r.insert.mean() < r.delete.mean(),
            "{algo}: insert ({:.0}) should be cheaper than delete ({:.0})",
            r.insert.mean(),
            r.delete.mean()
        );
    }
}
