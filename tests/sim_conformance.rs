//! Cross-crate conformance for the simulated queues: sequential behaviour
//! must match a sorted reference model, concurrent runs must conserve
//! items, and the whole machine must be deterministic.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use funnelpq_sim::{Machine, MachineConfig};
use funnelpq_simqueues::queues::{Algorithm, BuildParams, SimPq};
use funnelpq_simqueues::workload::{run_queue_workload, Workload};

fn build(m: &mut Machine, algo: Algorithm, procs: usize, pris: usize, cap: usize) -> Rc<SimPq> {
    let mut p = BuildParams::new(procs, pris);
    p.capacity = cap;
    Rc::new(SimPq::build(m, algo, &p))
}

/// Deterministic pseudo-random op sequence shared by queue and model.
fn op_sequence(len: usize, pris: u64, seed: u64) -> Vec<Option<u64>> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if (x >> 62) & 1 == 0 {
                Some((x >> 33) % pris)
            } else {
                None
            }
        })
        .collect()
}

/// All seven paper algorithms plus our hardware-counter ablation.
fn algorithms_under_test() -> impl Iterator<Item = Algorithm> {
    Algorithm::ALL.into_iter().chain([Algorithm::HardwareTree])
}

#[test]
fn sequential_model_conformance_all_algorithms() {
    for algo in algorithms_under_test() {
        for seed in [1u64, 99, 12345] {
            let mut m = Machine::new(MachineConfig::test_tiny(), seed);
            let q = build(&mut m, algo, 1, 12, 512);
            let ops = op_sequence(150, 12, seed);
            let ctx = m.ctx();
            let q2 = Rc::clone(&q);
            let failures = Rc::new(RefCell::new(Vec::new()));
            let f2 = Rc::clone(&failures);
            m.spawn(async move {
                let mut model: BTreeMap<u64, usize> = BTreeMap::new();
                let mut next_item = 0u64;
                for op in ops {
                    match op {
                        Some(pri) => {
                            q2.insert(&ctx, pri, next_item).await;
                            next_item += 1;
                            *model.entry(pri).or_insert(0) += 1;
                        }
                        None => {
                            let got = q2.delete_min(&ctx).await.map(|e| e.0);
                            let want = model.keys().next().copied();
                            if let Some(w) = want {
                                let c = model.get_mut(&w).unwrap();
                                *c -= 1;
                                if *c == 0 {
                                    model.remove(&w);
                                }
                            }
                            if got != want {
                                f2.borrow_mut().push((got, want));
                            }
                        }
                    }
                }
                // Drain.
                loop {
                    let got = q2.delete_min(&ctx).await.map(|e| e.0);
                    let want = model.keys().next().copied();
                    if let Some(w) = want {
                        let c = model.get_mut(&w).unwrap();
                        *c -= 1;
                        if *c == 0 {
                            model.remove(&w);
                        }
                    }
                    if got != want {
                        f2.borrow_mut().push((got, want));
                    }
                    if got.is_none() && want.is_none() {
                        break;
                    }
                }
            });
            assert!(m.run().is_quiescent(), "{algo} seed {seed} deadlocked");
            assert!(
                failures.borrow().is_empty(),
                "{algo} seed {seed}: mismatches {:?}",
                failures.borrow()
            );
        }
    }
}

#[test]
fn concurrent_conservation_all_algorithms() {
    const P: usize = 10;
    const N: usize = 16;
    for algo in algorithms_under_test() {
        let mut m = Machine::new(MachineConfig::alewife_like(), 77);
        let q = build(&mut m, algo, P + 1, 8, P * N + 8);
        let got = Rc::new(RefCell::new(Vec::new()));
        for p in 0..P {
            let ctx = m.ctx();
            let q = Rc::clone(&q);
            let got = Rc::clone(&got);
            m.spawn(async move {
                for i in 0..N {
                    q.insert(&ctx, ((p * 3 + i) % 8) as u64, (p * N + i) as u64)
                        .await;
                    if i % 2 == 0 {
                        if let Some((_, x)) = q.delete_min(&ctx).await {
                            got.borrow_mut().push(x);
                        }
                    }
                }
            });
        }
        assert!(m.run().is_quiescent(), "{algo} deadlocked");
        let ctx = m.ctx();
        let q2 = Rc::clone(&q);
        let got2 = Rc::clone(&got);
        m.spawn(async move {
            while let Some((_, x)) = q2.delete_min(&ctx).await {
                got2.borrow_mut().push(x);
            }
        });
        assert!(m.run().is_quiescent());
        let mut all = got.borrow().clone();
        all.sort_unstable();
        assert_eq!(
            all,
            (0..(P * N) as u64).collect::<Vec<_>>(),
            "{algo}: items lost or duplicated"
        );
    }
}

#[test]
fn quiescent_k_smallest_after_insert_phase() {
    // Parallel inserts, quiescent point, then drain: the drain sequence is
    // sorted and equals the inserted multiset.
    const P: usize = 12;
    const N: usize = 10;
    for algo in algorithms_under_test() {
        let mut m = Machine::new(MachineConfig::alewife_like(), 5);
        let q = build(&mut m, algo, P + 1, 16, P * N + 8);
        let inserted = Rc::new(RefCell::new(Vec::new()));
        for p in 0..P {
            let ctx = m.ctx();
            let q = Rc::clone(&q);
            let inserted = Rc::clone(&inserted);
            m.spawn(async move {
                for i in 0..N {
                    let pri = ((p * 7 + i * 3) % 16) as u64;
                    q.insert(&ctx, pri, (p * N + i) as u64).await;
                    inserted.borrow_mut().push(pri);
                }
            });
        }
        assert!(m.run().is_quiescent(), "{algo} insert phase deadlocked");
        let drained = Rc::new(RefCell::new(Vec::new()));
        let ctx = m.ctx();
        let q2 = Rc::clone(&q);
        let d2 = Rc::clone(&drained);
        m.spawn(async move {
            while let Some((pri, _)) = q2.delete_min(&ctx).await {
                d2.borrow_mut().push(pri);
            }
        });
        assert!(m.run().is_quiescent());
        let drained = drained.borrow().clone();
        assert!(
            drained.windows(2).all(|w| w[0] <= w[1]),
            "{algo}: drain out of order: {drained:?}"
        );
        let mut want = inserted.borrow().clone();
        want.sort_unstable();
        assert_eq!(drained, want, "{algo}: drained multiset mismatch");
    }
}

#[test]
fn workload_results_are_reproducible_across_algorithms() {
    for algo in [Algorithm::SimpleLinear, Algorithm::FunnelTree] {
        let mut wl = Workload::standard(12, 8);
        wl.ops_per_proc = 10;
        let a = run_queue_workload(algo, &wl);
        let b = run_queue_workload(algo, &wl);
        assert_eq!(a.total_cycles, b.total_cycles, "{algo} not deterministic");
        assert_eq!(a.all.sum(), b.all.sum());
        wl.seed ^= 0xABCD;
        let c = run_queue_workload(algo, &wl);
        assert_ne!(
            (a.total_cycles, a.all.sum()),
            (c.total_cycles, c.all.sum()),
            "{algo}: different seeds should differ"
        );
    }
}
