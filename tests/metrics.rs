//! Observability conformance: an `AtomicRecorder` attached through
//! `PqBuilder` must count operations *exactly* — every insert and every
//! delete-min call, across threads and algorithms — and its JSON snapshot
//! must carry those counts.

use std::sync::{Arc, Barrier};
use std::thread;

use funnelpq::obs::{AtomicRecorder, CounterEvent};
use funnelpq::{Algorithm, BoundedPq, PqBuilder};

const THREADS: usize = 4;
const INSERTS_PER_THREAD: usize = 250;
const DELETES_PER_THREAD: usize = 200;

/// Seeded multi-threaded stress: every thread performs a fixed, known
/// number of operations; the recorder must report exactly those totals for
/// every algorithm (op counts are exact even though which items the
/// delete-mins return is racy).
#[test]
fn atomic_recorder_counts_exact_op_totals() {
    for a in Algorithm::ALL {
        let rec = Arc::new(AtomicRecorder::new());
        let q: Arc<dyn BoundedPq<u64>> = Arc::from(
            PqBuilder::new(a, 16, THREADS)
                .recorder(Arc::clone(&rec))
                .build::<u64>(),
        );
        let barrier = Arc::new(Barrier::new(THREADS));
        let handles: Vec<_> = (0..THREADS)
            .map(|tid| {
                let q = Arc::clone(&q);
                let barrier = Arc::clone(&barrier);
                thread::spawn(move || {
                    barrier.wait();
                    // Deterministic per-thread op sequence (seeded by tid).
                    for i in 0..INSERTS_PER_THREAD {
                        q.insert(tid, (tid * 7 + i * 3) % 16, (tid * 1000 + i) as u64);
                        if i < DELETES_PER_THREAD {
                            q.delete_min(tid);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        let snap = rec.snapshot();
        assert_eq!(
            snap.insert.count,
            (THREADS * INSERTS_PER_THREAD) as u64,
            "{a}: insert count must be exact"
        );
        assert_eq!(
            snap.delete_min.count,
            (THREADS * DELETES_PER_THREAD) as u64,
            "{a}: delete_min count must be exact"
        );
        assert_eq!(
            snap.total_ops(),
            (THREADS * (INSERTS_PER_THREAD + DELETES_PER_THREAD)) as u64,
            "{a}: total op count must be exact"
        );
        // Latency totals are nonzero once anything was timed.
        assert!(snap.insert.total_nanos > 0, "{a}: insert latency recorded");
        assert!(
            snap.delete_min.total_nanos > 0,
            "{a}: delete_min latency recorded"
        );
        // Histogram mass equals op count.
        assert_eq!(
            snap.insert.buckets.iter().sum::<u64>(),
            snap.insert.count,
            "{a}: insert histogram mass"
        );
        assert_eq!(
            snap.delete_min.buckets.iter().sum::<u64>(),
            snap.delete_min.count,
            "{a}: delete_min histogram mass"
        );

        // The snapshot serializes with the exact counts embedded.
        let json = snap.to_json(a.name());
        assert!(json.contains(&format!("\"algorithm\": \"{}\"", a.name())));
        assert!(json.contains(&format!("\"count\": {}", snap.insert.count)));
    }
}

/// Lock-based algorithms must report substrate traffic (lock acquisitions);
/// an insert/delete pair on `SingleLock` takes the one heap lock exactly
/// once per operation.
#[test]
fn single_lock_lock_acquisitions_are_exact() {
    let rec = Arc::new(AtomicRecorder::with_shards(2));
    let q = PqBuilder::new(Algorithm::SingleLock, 8, 1)
        .recorder(Arc::clone(&rec))
        .build::<u8>();
    for i in 0..10 {
        q.insert(0, i % 8, i as u8);
    }
    for _ in 0..10 {
        q.delete_min(0);
    }
    // 10 inserts + 10 delete_mins, one lock() each; is_empty not called.
    let snap = rec.snapshot();
    assert_eq!(snap.event(CounterEvent::LockAcquire), 20);
    assert_eq!(snap.event(CounterEvent::EmptyDeleteMin), 0);
    // One more delete on the now-empty queue: counted as an op, flagged
    // empty, and still takes the lock once.
    q.delete_min(0);
    let snap = rec.snapshot();
    assert_eq!(snap.event(CounterEvent::LockAcquire), 21);
    assert_eq!(snap.event(CounterEvent::EmptyDeleteMin), 1);
    assert_eq!(snap.delete_min.count, 11);
}

/// Funnel algorithms under contention surface funnel-specific events; at
/// the very least the event channel is wired (counts are workload-dependent
/// so only structural properties are asserted).
#[test]
fn funnel_events_flow_into_the_recorder() {
    let rec = Arc::new(AtomicRecorder::new());
    let q: Arc<dyn BoundedPq<u64>> = Arc::from(
        PqBuilder::new(Algorithm::FunnelTree, 8, THREADS)
            .recorder(Arc::clone(&rec))
            .build::<u64>(),
    );
    let handles: Vec<_> = (0..THREADS)
        .map(|tid| {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                for i in 0..400 {
                    q.insert(tid, (tid + i) % 8, i as u64);
                    q.delete_min(tid);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = rec.snapshot();
    assert_eq!(snap.insert.count, (THREADS * 400) as u64);
    assert_eq!(snap.delete_min.count, (THREADS * 400) as u64);
    // FunnelTree's deeper counters are MCS-locked: lock traffic must show.
    assert!(snap.event(CounterEvent::LockAcquire) > 0);
    // Every event named in the JSON output round-trips.
    let json = snap.to_json("FunnelTree");
    for ev in CounterEvent::ALL {
        assert!(json.contains(ev.name()), "{} missing from JSON", ev.name());
    }
}
