//! Observability conformance: an `AtomicRecorder` attached through
//! `PqBuilder` must count operations *exactly* — every insert and every
//! delete-min call, across threads and algorithms — and its JSON snapshot
//! must carry those counts.

use std::sync::{Arc, Barrier};
use std::thread;

use funnelpq::obs::{record_batch_op, AtomicRecorder, CounterEvent, Recorder};
use funnelpq::{Algorithm, BoundedPq, NumaConfig, PqBuilder, PqConfig};

const THREADS: usize = 4;
const INSERTS_PER_THREAD: usize = 250;
const DELETES_PER_THREAD: usize = 200;

/// Seeded multi-threaded stress: every thread performs a fixed, known
/// number of operations; the recorder must report exactly those totals for
/// every algorithm (op counts are exact even though which items the
/// delete-mins return is racy).
#[test]
fn atomic_recorder_counts_exact_op_totals() {
    for a in Algorithm::ALL {
        let rec = Arc::new(AtomicRecorder::new());
        let q: Arc<dyn BoundedPq<u64>> = Arc::from(
            PqBuilder::new(a, 16, THREADS)
                .recorder(Arc::clone(&rec))
                .build::<u64>(),
        );
        let barrier = Arc::new(Barrier::new(THREADS));
        let handles: Vec<_> = (0..THREADS)
            .map(|tid| {
                let q = Arc::clone(&q);
                let barrier = Arc::clone(&barrier);
                thread::spawn(move || {
                    barrier.wait();
                    // Deterministic per-thread op sequence (seeded by tid).
                    for i in 0..INSERTS_PER_THREAD {
                        q.insert(tid, (tid * 7 + i * 3) % 16, (tid * 1000 + i) as u64);
                        if i < DELETES_PER_THREAD {
                            q.delete_min(tid);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        let snap = rec.snapshot();
        assert_eq!(
            snap.insert.count,
            (THREADS * INSERTS_PER_THREAD) as u64,
            "{a}: insert count must be exact"
        );
        assert_eq!(
            snap.delete_min.count,
            (THREADS * DELETES_PER_THREAD) as u64,
            "{a}: delete_min count must be exact"
        );
        assert_eq!(
            snap.total_ops(),
            (THREADS * (INSERTS_PER_THREAD + DELETES_PER_THREAD)) as u64,
            "{a}: total op count must be exact"
        );
        // Latency totals are nonzero once anything was timed.
        assert!(snap.insert.total_nanos > 0, "{a}: insert latency recorded");
        assert!(
            snap.delete_min.total_nanos > 0,
            "{a}: delete_min latency recorded"
        );
        // Histogram mass equals op count.
        assert_eq!(
            snap.insert.buckets.iter().sum::<u64>(),
            snap.insert.count,
            "{a}: insert histogram mass"
        );
        assert_eq!(
            snap.delete_min.buckets.iter().sum::<u64>(),
            snap.delete_min.count,
            "{a}: delete_min histogram mass"
        );

        // The snapshot serializes with the exact counts embedded.
        let json = snap.to_json(a.name());
        assert!(json.contains(&format!("\"algorithm\": \"{}\"", a.name())));
        assert!(json.contains(&format!("\"count\": {}", snap.insert.count)));
    }
}

/// Lock-based algorithms must report substrate traffic (lock acquisitions);
/// an insert/delete pair on `SingleLock` takes the one heap lock exactly
/// once per operation.
#[test]
fn single_lock_lock_acquisitions_are_exact() {
    let rec = Arc::new(AtomicRecorder::with_shards(2));
    let q = PqBuilder::new(Algorithm::SingleLock, 8, 1)
        .recorder(Arc::clone(&rec))
        .build::<u8>();
    for i in 0..10 {
        q.insert(0, i % 8, i as u8);
    }
    for _ in 0..10 {
        q.delete_min(0);
    }
    // 10 inserts + 10 delete_mins, one lock() each; is_empty not called.
    let snap = rec.snapshot();
    assert_eq!(snap.event(CounterEvent::LockAcquire), 20);
    assert_eq!(snap.event(CounterEvent::EmptyDeleteMin), 0);
    // One more delete on the now-empty queue: counted as an op, flagged
    // empty, and still takes the lock once.
    q.delete_min(0);
    let snap = rec.snapshot();
    assert_eq!(snap.event(CounterEvent::LockAcquire), 21);
    assert_eq!(snap.event(CounterEvent::EmptyDeleteMin), 1);
    assert_eq!(snap.delete_min.count, 11);
}

/// Funnel algorithms under contention surface funnel-specific events; at
/// the very least the event channel is wired (counts are workload-dependent
/// so only structural properties are asserted).
#[test]
fn funnel_events_flow_into_the_recorder() {
    let rec = Arc::new(AtomicRecorder::new());
    let q: Arc<dyn BoundedPq<u64>> = Arc::from(
        PqBuilder::new(Algorithm::FunnelTree, 8, THREADS)
            .recorder(Arc::clone(&rec))
            .build::<u64>(),
    );
    let handles: Vec<_> = (0..THREADS)
        .map(|tid| {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                for i in 0..400 {
                    q.insert(tid, (tid + i) % 8, i as u64);
                    q.delete_min(tid);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = rec.snapshot();
    assert_eq!(snap.insert.count, (THREADS * 400) as u64);
    assert_eq!(snap.delete_min.count, (THREADS * 400) as u64);
    // FunnelTree's deeper counters are MCS-locked: lock traffic must show.
    assert!(snap.event(CounterEvent::LockAcquire) > 0);
    // Every event named in the JSON output round-trips.
    let json = snap.to_json("FunnelTree");
    for ev in CounterEvent::ALL {
        assert!(json.contains(ev.name()), "{} missing from JSON", ev.name());
    }
}

/// Sharded aggregation is exact under concurrent writers: eight threads
/// hammer one recorder (more threads than shards, so shards are shared)
/// with a fixed per-thread schedule of events and batch samples; the
/// merged snapshot must report precisely the schedule times eight —
/// counts, item totals, and every size bucket.
#[test]
fn concurrent_writers_aggregate_exactly_across_shards() {
    const WRITERS: usize = 8;
    // Per-thread schedule: (batch size, how many batches). Log₂ buckets:
    // size 0 → bucket 0, 1 → 1, 6 → 3, 1000 → 10.
    const BATCHES: [(u64, u64); 4] = [(0, 3), (1, 5), (6, 4), (1000, 2)];
    for shards in [1, 4] {
        let rec = Arc::new(AtomicRecorder::with_shards(shards));
        let barrier = Arc::new(Barrier::new(WRITERS));
        let handles: Vec<_> = (0..WRITERS)
            .map(|_| {
                let rec = Arc::clone(&rec);
                let barrier = Arc::clone(&barrier);
                thread::spawn(move || {
                    barrier.wait();
                    for _ in 0..300 {
                        rec.record_event(CounterEvent::CasRetry);
                    }
                    rec.record_event_n(CounterEvent::ElimHit, 7);
                    for _ in 0..17 {
                        rec.record_event(CounterEvent::DeadlineMiss);
                    }
                    for (size, n) in BATCHES {
                        for _ in 0..n {
                            record_batch_op(&*rec, size);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        let snap = rec.snapshot();
        let w = WRITERS as u64;
        assert_eq!(snap.event(CounterEvent::CasRetry), 300 * w);
        assert_eq!(snap.event(CounterEvent::ElimHit), 7 * w);
        assert_eq!(snap.event(CounterEvent::DeadlineMiss), 17 * w);
        // Events the schedule never fired stay zero.
        assert_eq!(snap.event(CounterEvent::FunnelCollision), 0);
        assert_eq!(snap.event(CounterEvent::LockAcquire), 0);

        let batches_per_thread: u64 = BATCHES.iter().map(|&(_, n)| n).sum();
        let items_per_thread: u64 = BATCHES.iter().map(|&(s, n)| s * n).sum();
        assert_eq!(snap.event(CounterEvent::BatchOp), batches_per_thread * w);
        assert_eq!(snap.batch.count, batches_per_thread * w);
        assert_eq!(snap.batch.total_items, items_per_thread * w);
        assert_eq!(snap.batch.size_buckets[0], 3 * w, "empty batches");
        assert_eq!(snap.batch.size_buckets[1], 5 * w, "size-1 batches");
        assert_eq!(snap.batch.size_buckets[3], 4 * w, "size-6 batches");
        assert_eq!(snap.batch.size_buckets[10], 2 * w, "size-1000 batches");
        assert_eq!(
            snap.batch.size_buckets.iter().sum::<u64>(),
            snap.batch.count,
            "size-histogram mass ({shards} shards)"
        );
    }
}

/// Queue-level batch APIs report exactly one [`CounterEvent::BatchOp`] per
/// call (never per item) even when batch calls from several threads race:
/// the counts are per-call deterministic although which items each drain
/// returns is not.
#[test]
fn batch_ops_through_queues_count_once_per_call_under_contention() {
    const CALLS: usize = 40;
    const K: usize = 8;
    for a in [
        Algorithm::SingleLock,
        Algorithm::MultiQueue,
        Algorithm::NumaPq,
    ] {
        let rec = Arc::new(AtomicRecorder::new());
        let q: Arc<dyn BoundedPq<u64>> = Arc::from(
            PqBuilder::new(a, 64, THREADS)
                .recorder(Arc::clone(&rec))
                .build::<u64>(),
        );
        let barrier = Arc::new(Barrier::new(THREADS));
        let handles: Vec<_> = (0..THREADS)
            .map(|tid| {
                let q = Arc::clone(&q);
                let barrier = Arc::clone(&barrier);
                thread::spawn(move || {
                    barrier.wait();
                    let mut out = Vec::new();
                    for i in 0..CALLS {
                        let batch: Vec<_> =
                            (0..K).map(|j| ((tid + i + j) % 64, j as u64)).collect();
                        q.insert_batch(tid, batch).expect("unbounded backend");
                        q.delete_min_batch(tid, K, &mut out);
                        q.replace_min(tid, (tid + i) % 64, i as u64);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        // 3 batched calls per iteration per thread, each counted once.
        let calls = (THREADS * CALLS * 3) as u64;
        let snap = rec.snapshot();
        assert_eq!(snap.event(CounterEvent::BatchOp), calls, "{a}");
        assert_eq!(snap.batch.count, calls, "{a}");
        assert_eq!(
            snap.batch.size_buckets.iter().sum::<u64>(),
            calls,
            "{a}: size-histogram mass"
        );
        // Item totals: every insert_batch files exactly K, every
        // replace_min exactly 1; each drain takes 0..=K (racy), so the
        // aggregate is exactly bracketed.
        let floor = (THREADS * CALLS * (K + 1)) as u64;
        let ceil = (THREADS * CALLS * (2 * K + 1)) as u64;
        assert!(
            (floor..=ceil).contains(&snap.batch.total_items),
            "{a}: total_items {} outside [{floor}, {ceil}]",
            snap.batch.total_items
        );
    }
}

/// The NUMA-adaptive queue reports every controller switch-over both as a
/// [`CounterEvent::ModeSwitch`] on the attached recorder and in its
/// [`funnelpq::AdaptiveStats`] — and the two counts agree exactly.
#[test]
fn numa_mode_switches_are_counted_once_per_switch() {
    let rec = Arc::new(AtomicRecorder::new());
    let cfg = PqConfig::NumaPq(NumaConfig {
        nodes: 2,
        epoch_ops: 16,
        // Expensive emulated remote transfers: the controller must leave
        // oblivious mode within a few epochs.
        remote_ns: 2_000,
        ..NumaConfig::default()
    });
    // Two declared threads so the two-node topology survives clamping;
    // all operations still come from thread 0.
    let q = PqBuilder::from_config(cfg, 64, 2)
        .recorder(Arc::clone(&rec))
        .build::<u64>();
    for i in 0..400u64 {
        q.insert(0, (i % 64) as usize, i);
        q.delete_min(0);
    }
    let stats = q.adaptive_stats().expect("NumaPq exposes adaptive stats");
    let snap = rec.snapshot();
    assert!(
        stats.switches >= 1,
        "remote pressure must force at least one switch-over, got {stats:?}"
    );
    assert_eq!(
        snap.event(CounterEvent::ModeSwitch),
        stats.switches,
        "recorder and controller must agree on switch count"
    );
}
