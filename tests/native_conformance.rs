//! Sequential model-conformance for every native queue: any interleaving of
//! inserts and delete-mins, executed single-threaded, must match a sorted
//! reference model on returned priorities (item identity within equal
//! priorities is unspecified — bins are unordered pools).

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use funnelpq::{
    BoundedPq, FunnelTreePq, HuntPq, LinearFunnelsPq, SimpleLinearPq, SimpleTreePq, SingleLockPq,
    SkipListPq,
};

#[derive(Debug, Clone)]
enum Op {
    Insert(usize),
    DeleteMin,
}

fn op_strategy(num_pris: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0..num_pris).prop_map(Op::Insert),
        2 => Just(Op::DeleteMin),
    ]
}

/// Reference model: multiset of priorities.
#[derive(Default)]
struct Model {
    counts: BTreeMap<usize, usize>,
}

impl Model {
    fn insert(&mut self, pri: usize) {
        *self.counts.entry(pri).or_insert(0) += 1;
    }
    fn delete_min(&mut self) -> Option<usize> {
        let (&pri, _) = self.counts.iter().next()?;
        let c = self.counts.get_mut(&pri).unwrap();
        *c -= 1;
        if *c == 0 {
            self.counts.remove(&pri);
        }
        Some(pri)
    }
}

fn check_queue(q: &dyn BoundedPq<u64>, ops: &[Op]) {
    let mut model = Model::default();
    let mut next_item = 0u64;
    for op in ops {
        match op {
            Op::Insert(pri) => {
                q.insert(0, *pri, next_item);
                next_item += 1;
                model.insert(*pri);
            }
            Op::DeleteMin => {
                let got = q.delete_min(0).map(|(p, _)| p);
                let want = model.delete_min();
                assert_eq!(got, want, "delete_min priority mismatch");
            }
        }
    }
    // Full drain must also agree.
    loop {
        let got = q.delete_min(0).map(|(p, _)| p);
        let want = model.delete_min();
        assert_eq!(got, want, "drain mismatch");
        if got.is_none() {
            break;
        }
    }
    assert!(q.is_empty());
}

fn all_queues(num_pris: usize) -> Vec<(&'static str, Arc<dyn BoundedPq<u64>>)> {
    vec![
        ("SingleLock", Arc::new(SingleLockPq::new(num_pris, 1)) as _),
        (
            "HuntEtAl",
            Arc::new(HuntPq::with_capacity(num_pris, 1, 4096)) as _,
        ),
        ("SkipList", Arc::new(SkipListPq::new(num_pris, 1)) as _),
        (
            "SimpleLinear",
            Arc::new(SimpleLinearPq::new(num_pris, 1)) as _,
        ),
        ("SimpleTree", Arc::new(SimpleTreePq::new(num_pris, 1)) as _),
        (
            "LinearFunnels",
            Arc::new(LinearFunnelsPq::new(num_pris, 1)) as _,
        ),
        ("FunnelTree", Arc::new(FunnelTreePq::new(num_pris, 1)) as _),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_queues_match_model_16_priorities(ops in prop::collection::vec(op_strategy(16), 1..200)) {
        for (name, q) in all_queues(16) {
            let _ = name;
            check_queue(q.as_ref(), &ops);
        }
    }

    #[test]
    fn all_queues_match_model_5_priorities(ops in prop::collection::vec(op_strategy(5), 1..120)) {
        for (_name, q) in all_queues(5) {
            check_queue(q.as_ref(), &ops);
        }
    }

    #[test]
    fn all_queues_match_model_1_priority(ops in prop::collection::vec(op_strategy(1), 1..60)) {
        for (_name, q) in all_queues(1) {
            check_queue(q.as_ref(), &ops);
        }
    }
}

#[test]
fn deep_priority_range() {
    // 512 priorities, reversed insertion, full drain.
    for (name, q) in all_queues(512) {
        for p in (0..512).rev() {
            q.insert(0, p, p as u64);
        }
        for p in 0..512 {
            let got = q.delete_min(0);
            assert_eq!(got.map(|e| e.0), Some(p), "{name} at {p}");
        }
        assert_eq!(q.delete_min(0), None, "{name} should be empty");
    }
}

#[test]
fn items_survive_round_trips() {
    for (name, q) in all_queues(8) {
        for round in 0..10u64 {
            q.insert(0, (round % 8) as usize, round * 1000);
            let (_, item) = q.delete_min(0).unwrap();
            assert_eq!(item, round * 1000, "{name} round {round}");
        }
    }
}
