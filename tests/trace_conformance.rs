//! Cross-crate conformance for simulator tracing: attaching a tracer must
//! leave every algorithm's run bit-identical, the exported JSON must be
//! well-formed, and the time-resolved contention series must reproduce the
//! paper's hot-spot story (one lock serializes, funnels spread).

use funnelpq_sim::trace::{chrome_trace_json, TimeSeries};
use funnelpq_simqueues::funnel::{CounterMode, SimFunnelConfig};
use funnelpq_simqueues::queues::Algorithm;
use funnelpq_simqueues::workload::{
    run_counter_workload, run_counter_workload_traced, run_queue_workload,
    run_queue_workload_traced, TracedRun, Workload,
};

// ---------------------------------------------------------------------------
// A minimal hand-rolled JSON validator (the container builds offline, so no
// serde): accepts exactly the RFC 8259 grammar, rejecting trailing commas,
// unquoted keys and bare values.

fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
            *i += 1;
        }
    }
    fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
        skip_ws(b, i);
        match b.get(*i) {
            Some(b'{') => {
                *i += 1;
                skip_ws(b, i);
                if b.get(*i) == Some(&b'}') {
                    *i += 1;
                    return Ok(());
                }
                loop {
                    skip_ws(b, i);
                    string(b, i)?;
                    skip_ws(b, i);
                    if b.get(*i) != Some(&b':') {
                        return Err(format!("expected ':' at byte {i:?}"));
                    }
                    *i += 1;
                    value(b, i)?;
                    skip_ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b'}') => {
                            *i += 1;
                            return Ok(());
                        }
                        other => return Err(format!("expected ',' or '}}', got {other:?}")),
                    }
                }
            }
            Some(b'[') => {
                *i += 1;
                skip_ws(b, i);
                if b.get(*i) == Some(&b']') {
                    *i += 1;
                    return Ok(());
                }
                loop {
                    value(b, i)?;
                    skip_ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b']') => {
                            *i += 1;
                            return Ok(());
                        }
                        other => return Err(format!("expected ',' or ']', got {other:?}")),
                    }
                }
            }
            Some(b'"') => string(b, i),
            Some(c) if c.is_ascii_digit() || *c == b'-' => {
                *i += 1;
                while *i < b.len()
                    && matches!(b[*i], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
                {
                    *i += 1;
                }
                Ok(())
            }
            _ => {
                for lit in ["true", "false", "null"] {
                    if b[*i..].starts_with(lit.as_bytes()) {
                        *i += lit.len();
                        return Ok(());
                    }
                }
                Err(format!("unexpected value at byte {i}"))
            }
        }
    }
    fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
        if b.get(*i) != Some(&b'"') {
            return Err(format!("expected string at byte {i}"));
        }
        *i += 1;
        while let Some(&c) = b.get(*i) {
            match c {
                b'"' => {
                    *i += 1;
                    return Ok(());
                }
                b'\\' => *i += 2,
                _ => *i += 1,
            }
        }
        Err("unterminated string".into())
    }
    value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i == b.len() {
        Ok(())
    } else {
        Err(format!("trailing garbage at byte {i}"))
    }
}

#[test]
fn json_validator_rejects_malformed_documents() {
    assert!(validate_json(r#"{"a": [1, 2.5, "x\"y", true, null]}"#).is_ok());
    assert!(validate_json(r#"{"a": 1,}"#).is_err());
    assert!(validate_json(r#"{"a" 1}"#).is_err());
    assert!(validate_json(r#"[1, 2] garbage"#).is_err());
    assert!(validate_json(r#"{"a": }"#).is_err());
}

// ---------------------------------------------------------------------------
// Differential: tracing must be purely observational.

fn small_workload(procs: usize) -> Workload {
    let mut wl = Workload::standard(procs, 16);
    wl.ops_per_proc = 12;
    wl
}

#[test]
fn tracing_is_bit_identical_for_every_algorithm() {
    for algo in Algorithm::ALL {
        let wl = small_workload(8);
        let plain = run_queue_workload(algo, &wl);
        let traced = run_queue_workload_traced(algo, &wl);
        assert_eq!(
            traced.result.total_cycles, plain.total_cycles,
            "{algo}: total cycles diverge under tracing"
        );
        assert_eq!(traced.result.all.sum(), plain.all.sum(), "{algo}");
        assert_eq!(traced.result.all.count(), plain.all.count(), "{algo}");
        assert_eq!(
            traced.result.stats.mem_accesses, plain.stats.mem_accesses,
            "{algo}"
        );
        assert_eq!(
            traced.result.stats.queue_delay_cycles, plain.stats.queue_delay_cycles,
            "{algo}"
        );
        let traced_lines: Vec<_> = traced.result.stats.per_line().collect();
        let plain_lines: Vec<_> = plain.stats.per_line().collect();
        assert_eq!(traced_lines, plain_lines, "{algo}: per-line stats diverge");
        assert!(!traced.events.is_empty(), "{algo}: no events recorded");
    }
}

#[test]
fn tracing_is_bit_identical_for_the_counter_workload() {
    let mut wl = Workload::standard(8, 2);
    wl.ops_per_proc = 16;
    let cfg = SimFunnelConfig::for_procs(8);
    let plain = run_counter_workload(CounterMode::BOUNDED_AT_ZERO, 50, cfg.clone(), &wl);
    let traced = run_counter_workload_traced(CounterMode::BOUNDED_AT_ZERO, 50, cfg, &wl);
    assert_eq!(traced.result.total_cycles, plain.total_cycles);
    assert_eq!(traced.result.all.sum(), plain.all.sum());
    assert_eq!(traced.result.stats.mem_accesses, plain.stats.mem_accesses);
    assert!(!traced.events.is_empty());
}

// ---------------------------------------------------------------------------
// Exported artifacts.

fn series_of(traced: &TracedRun) -> TimeSeries {
    let window = (traced.result.total_cycles / 100).max(256);
    TimeSeries::build(&traced.events, &traced.regions, window)
}

#[test]
fn chrome_trace_and_timeseries_are_well_formed_json() {
    let traced = run_queue_workload_traced(Algorithm::FunnelTree, &small_workload(8));
    let series = series_of(&traced);
    let chrome = chrome_trace_json(&traced.events, &traced.regions, 8, Some(&series));
    validate_json(&chrome).expect("chrome trace must be valid JSON");
    validate_json(&series.to_json()).expect("time series must be valid JSON");
    // Perfetto needs the traceEvents wrapper and per-processor rows
    // (process/thread metadata plus at least one duration slice).
    assert!(chrome.contains("\"traceEvents\""));
    assert!(chrome.contains("thread_name"));
    assert!(chrome.contains("processors"));
    assert!(chrome.contains("\"ph\":\"X\""));
}

// ---------------------------------------------------------------------------
// The paper's story, time-resolved: at P=64, SingleLock parks almost the
// whole machine on its one lock for almost the whole run, while FunnelTree
// never sustains comparable depth on any one region.

#[test]
fn single_lock_serializes_where_funnel_tree_spreads() {
    let mut wl = Workload::standard(64, 16);
    wl.ops_per_proc = 16;

    let sl = run_queue_workload_traced(Algorithm::SingleLock, &wl);
    let sl_series = series_of(&sl);
    // MCS waiters park on their queue nodes, so the lock's serialization
    // shows as sustained blocked depth there.
    let lock_region = sl
        .regions
        .find("MCS queue nodes")
        .expect("SingleLock labels its MCS queue");
    let sl_peak = sl_series.peak_blocked_depth(lock_region);
    let sl_sustained = sl_series.sustained_blocked_fraction(lock_region, 16.0);
    assert!(
        sl_peak > 32.0,
        "SingleLock should park most of P=64 at once, peak {sl_peak:.1}"
    );
    assert!(
        sl_sustained > 0.5,
        "the lock queue should stay deep for most of the run, {sl_sustained:.2}"
    );

    let ft = run_queue_workload_traced(Algorithm::FunnelTree, &wl);
    let ft_series = series_of(&ft);
    let ft_worst_peak = (0..ft.regions.len())
        .map(|r| ft_series.peak_blocked_depth(r))
        .fold(0.0, f64::max);
    let ft_worst_sustained = (0..ft.regions.len())
        .map(|r| ft_series.sustained_blocked_fraction(r, 16.0))
        .fold(0.0, f64::max);
    assert!(
        ft_worst_peak < sl_peak / 2.0,
        "no FunnelTree region should concentrate waiters like the lock: \
         {ft_worst_peak:.1} vs {sl_peak:.1}"
    );
    assert!(
        ft_worst_sustained < 0.5,
        "FunnelTree must not sustain lock-like depth anywhere, {ft_worst_sustained:.2}"
    );
    // And it buys real time: the funnel run finishes far sooner.
    assert!(ft.result.total_cycles * 2 < sl.result.total_cycles);
}
