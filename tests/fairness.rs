//! Fairness tests for the FIFO-bin variants (§3.2 of the paper notes LIFO
//! bins "can cause unfairness (and even starvation) among items of equal
//! priority" and suggests FIFO bins as the fair alternative).

use std::sync::Arc;

use funnelpq::{BinOrder, BoundedPq, SimpleLinearPq, SimpleTreePq};

#[test]
fn fifo_bins_serve_equal_priorities_in_arrival_order() {
    let queues: Vec<(&str, Box<dyn BoundedPq<u64>>)> = vec![
        (
            "SimpleLinear",
            Box::new(SimpleLinearPq::with_order(4, 1, BinOrder::Fifo)),
        ),
        (
            "SimpleTree",
            Box::new(SimpleTreePq::with_order(4, 1, BinOrder::Fifo)),
        ),
    ];
    for (name, q) in queues {
        for i in 0..20 {
            q.insert(0, 2, i);
        }
        for i in 0..20 {
            assert_eq!(q.delete_min(0), Some((2, i)), "{name}: FIFO violated");
        }
    }
}

#[test]
fn lifo_bins_serve_equal_priorities_in_reverse() {
    let q = SimpleLinearPq::with_order(4, 1, BinOrder::Lifo);
    for i in 0..10u64 {
        q.insert(0, 1, i);
    }
    for i in (0..10).rev() {
        assert_eq!(q.delete_min(0), Some((1, i)));
    }
}

/// Under concurrency, FIFO bins preserve each producer's own order among
/// its equal-priority items (a weaker but meaningful fairness property).
#[test]
fn fifo_bins_preserve_per_thread_order_under_concurrency() {
    const THREADS: usize = 4;
    const N: u64 = 200;
    let q = Arc::new(SimpleLinearPq::with_order(1, THREADS + 1, BinOrder::Fifo));
    let handles: Vec<_> = (0..THREADS)
        .map(|tid| {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                for i in 0..N {
                    q.insert(tid, 0, (tid as u64) << 32 | i);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // Single-threaded drain: for each producer, items must appear in
    // increasing sequence order.
    let mut last_seen = [None::<u64>; THREADS];
    while let Some((_, x)) = q.delete_min(THREADS) {
        let tid = (x >> 32) as usize;
        let seq = x & 0xFFFF_FFFF;
        if let Some(prev) = last_seen[tid] {
            assert!(seq > prev, "thread {tid}: {seq} after {prev}");
        }
        last_seen[tid] = Some(seq);
    }
    for (tid, seen) in last_seen.iter().enumerate() {
        assert_eq!(*seen, Some(N - 1), "thread {tid}: all items recovered");
    }
}

/// The LIFO default can starve early items while later ones keep arriving —
/// demonstrate the contrast deterministically: with a LIFO bin, after
/// interleaved insert/delete pairs the *first* item is still inside.
#[test]
fn lifo_starvation_contrast() {
    let lifo = SimpleLinearPq::with_order(1, 1, BinOrder::Lifo);
    let fifo = SimpleLinearPq::with_order(1, 1, BinOrder::Fifo);
    lifo.insert(0, 0, 0u64);
    fifo.insert(0, 0, 0u64);
    for i in 1..=10 {
        lifo.insert(0, 0, i);
        fifo.insert(0, 0, i);
        // Each round one item is served.
        let (_, l) = lifo.delete_min(0).unwrap();
        let (_, f) = fifo.delete_min(0).unwrap();
        assert_eq!(l, i, "LIFO serves the newest item");
        assert_eq!(f, i - 1, "FIFO serves the oldest item");
    }
    // Item 0 never left the LIFO queue; the FIFO queue holds only the newest.
    assert_eq!(lifo.delete_min(0).map(|e| e.1), Some(0));
    assert_eq!(fifo.delete_min(0).map(|e| e.1), Some(10));
}
