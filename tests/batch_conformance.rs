//! Batched-operation conformance for every native queue: random sequences
//! of `insert_batch` / `delete_min_batch` / `replace_min`, executed
//! single-threaded, must conserve items exactly, and each batched delete
//! must return the current minima — rank error exactly 0 — for every
//! strict queue. The relaxed queues (MultiQueue, NumaPq) are instead held
//! to their structural bound: every returned priority is outranked by at
//! most the number of items resident when it was taken, and conservation
//! is exact. Sequences
//! come from the in-repo deterministic PRNG, so every run covers the same
//! cases.

use std::collections::BTreeMap;

use funnelpq::{Algorithm, BoundedPq, HuntConfig, PqBuilder, PqConfig};
use funnelpq_util::XorShift64Star;

const NUM_PRIS: usize = 16;

/// Default typed config for `a`, except HuntEtAl gets an explicit
/// capacity — the migrated form of the old `hunt_capacity` sweep knob.
fn configured(a: Algorithm, hunt_capacity: usize) -> PqConfig {
    match PqConfig::for_algorithm(a).expect("natively buildable") {
        PqConfig::HuntEtAl(_) => PqConfig::HuntEtAl(HuntConfig {
            capacity: hunt_capacity,
        }),
        cfg => cfg,
    }
}

/// Reference multiset of (priority, item) pairs.
#[derive(Default)]
struct Model {
    by_pri: BTreeMap<usize, Vec<u64>>,
    resident: usize,
}

impl Model {
    fn insert(&mut self, pri: usize, item: u64) {
        self.by_pri.entry(pri).or_default().push(item);
        self.resident += 1;
    }

    /// Number of resident entries strictly more urgent than `pri`.
    fn rank_of(&self, pri: usize) -> usize {
        self.by_pri.range(..pri).map(|(_, items)| items.len()).sum()
    }

    /// Removes one resident entry matching the queue's answer exactly.
    fn remove(&mut self, pri: usize, item: u64) {
        let items = self
            .by_pri
            .get_mut(&pri)
            .unwrap_or_else(|| panic!("delete returned pri {pri} not resident"));
        let at = items
            .iter()
            .position(|&x| x == item)
            .unwrap_or_else(|| panic!("delete returned item {item} not resident at {pri}"));
        items.swap_remove(at);
        if items.is_empty() {
            self.by_pri.remove(&pri);
        }
        self.resident -= 1;
    }
}

fn run_case(q: &dyn BoundedPq<u64>, strict: bool, rng: &mut XorShift64Star) {
    let mut model = Model::default();
    let mut next_item = 0u64;
    let rounds = 40 + rng.below(40);
    for _ in 0..rounds {
        match rng.below(5) {
            // Insert a batch of random size (empty batches allowed).
            0 | 1 => {
                let k = rng.below(20) as usize;
                let batch: Vec<(usize, u64)> = (0..k)
                    .map(|_| {
                        let pri = rng.below(NUM_PRIS as u64) as usize;
                        let item = next_item;
                        next_item += 1;
                        model.insert(pri, item);
                        (pri, item)
                    })
                    .collect();
                q.insert_batch(0, batch).expect("in-range batch must file");
            }
            // Grab a batch, possibly larger than what's resident.
            2 | 3 => {
                let k = rng.below(24) as usize;
                let mut out = Vec::new();
                let n = q.delete_min_batch(0, k, &mut out);
                assert_eq!(n, out.len(), "return value must match appended count");
                assert_eq!(
                    n,
                    k.min(model.resident),
                    "sequential grab must take min(k, resident)"
                );
                for &(pri, item) in &out {
                    if strict {
                        assert_eq!(model.rank_of(pri), 0, "strict queue returned a non-minimum");
                    } else {
                        assert!(
                            model.rank_of(pri) < model.resident,
                            "relaxed rank error exceeds residency"
                        );
                    }
                    model.remove(pri, item);
                }
            }
            // Fused replace_min.
            _ => {
                let pri = rng.below(NUM_PRIS as u64) as usize;
                let item = next_item;
                next_item += 1;
                let got = q.replace_min(0, pri, item);
                match got {
                    Some((p, x)) => {
                        if strict {
                            assert_eq!(model.rank_of(p), 0, "replace_min skipped a minimum");
                        }
                        model.remove(p, x);
                    }
                    None => assert_eq!(model.resident, 0, "replace_min missed resident items"),
                }
                model.insert(pri, item);
            }
        }
    }
    // Conservation: the full drain returns exactly the un-deleted inserts.
    let mut out = Vec::new();
    q.delete_min_batch(0, usize::MAX, &mut out);
    assert_eq!(out.len(), model.resident, "drain count mismatch");
    for (pri, item) in out {
        model.remove(pri, item);
    }
    assert_eq!(model.resident, 0);
    assert!(q.is_empty());
}

#[test]
fn batched_ops_conserve_items_and_strict_queues_stay_sorted() {
    for a in Algorithm::EVERY {
        if a == Algorithm::HardwareTree {
            continue;
        }
        let strict = !a.is_relaxed();
        for case in 0..24u64 {
            let q = PqBuilder::from_config(configured(a, 4096), NUM_PRIS, 1).build::<u64>();
            let mut rng = XorShift64Star::new(case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xBA7C4);
            run_case(q.as_ref(), strict, &mut rng);
        }
    }
}
