//! Concurrency stress tests for the native queues: conservation (no item
//! lost or duplicated) under mixed workloads, and the quiescent-consistency
//! guarantee from the paper's Appendix B — `k` delete-mins after a
//! quiescent point, with no concurrent inserts, return exactly the `k`
//! smallest priorities present.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::thread;

use funnelpq::{Algorithm, BoundedPq, PqBuilder};

const THREADS: usize = 8;

fn all_queues(num_pris: usize) -> Vec<(&'static str, Arc<dyn BoundedPq<u64>>)> {
    Algorithm::ALL
        .into_iter()
        .map(|a| {
            let q = PqBuilder::new(a, num_pris, THREADS)
                .hunt_capacity(1 << 15)
                .build::<u64>();
            (a.name(), Arc::from(q))
        })
        .collect()
}

/// Mixed inserts/deletes from every thread; at the end, deleted ∪ drained
/// must equal exactly the set of inserted items.
#[test]
fn conservation_under_mixed_load() {
    const OPS: usize = 400;
    for (name, q) in all_queues(16) {
        let deleted = Arc::new(Mutex::new(Vec::new()));
        let handles: Vec<_> = (0..THREADS)
            .map(|tid| {
                let q = Arc::clone(&q);
                let deleted = Arc::clone(&deleted);
                thread::spawn(move || {
                    let mut local = Vec::new();
                    for i in 0..OPS {
                        let item = (tid * OPS + i) as u64;
                        q.insert(tid, (item % 16) as usize, item);
                        if i % 2 == 0 {
                            if let Some((_, x)) = q.delete_min(tid) {
                                local.push(x);
                            }
                        }
                    }
                    deleted.lock().unwrap().extend(local);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut all = deleted.lock().unwrap().clone();
        while let Some((_, x)) = q.delete_min(0) {
            all.push(x);
        }
        all.sort_unstable();
        let expect: Vec<u64> = (0..(THREADS * OPS) as u64).collect();
        assert_eq!(all, expect, "{name}: items lost or duplicated");
        assert!(q.is_empty(), "{name}: queue should be empty after drain");
    }
}

/// Parallel insert phase, quiescent point, then parallel delete phase of
/// exactly k ≤ total items: the union of the deleted priorities must be
/// the k smallest inserted.
#[test]
fn quiescent_k_smallest() {
    const PER_THREAD: usize = 50;
    const K: usize = 200; // k = half the items
    for (name, q) in all_queues(32) {
        let inserted = Arc::new(Mutex::new(Vec::new()));
        let barrier = Arc::new(Barrier::new(THREADS));
        let deleted = Arc::new(Mutex::new(Vec::new()));
        let budget = Arc::new(AtomicUsize::new(K));
        let handles: Vec<_> = (0..THREADS)
            .map(|tid| {
                let q = Arc::clone(&q);
                let inserted = Arc::clone(&inserted);
                let deleted = Arc::clone(&deleted);
                let barrier = Arc::clone(&barrier);
                let budget = Arc::clone(&budget);
                thread::spawn(move || {
                    let mut mine = Vec::new();
                    for i in 0..PER_THREAD {
                        let pri = (tid * 13 + i * 7) % 32;
                        q.insert(tid, pri, (tid * PER_THREAD + i) as u64);
                        mine.push(pri);
                    }
                    inserted.lock().unwrap().extend(mine);
                    // Quiescent point: all inserts complete before any
                    // delete begins.
                    barrier.wait();
                    let mut got = Vec::new();
                    loop {
                        // Claim one unit of the delete budget.
                        let prev = budget.fetch_sub(1, Ordering::AcqRel);
                        if prev == 0 || prev > K {
                            budget.fetch_add(1, Ordering::AcqRel);
                            break;
                        }
                        let e = q.delete_min(tid);
                        match e {
                            Some((p, _)) => got.push(p),
                            None => panic!("delete_min returned None with items present"),
                        }
                    }
                    deleted.lock().unwrap().extend(got);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut want: Vec<usize> = inserted.lock().unwrap().clone();
        want.sort_unstable();
        want.truncate(K);
        let mut got = deleted.lock().unwrap().clone();
        got.sort_unstable();
        assert_eq!(got.len(), K, "{name}: exactly k deletions should succeed");
        assert_eq!(got, want, "{name}: deleted set must be the k smallest");
    }
}

/// Many threads hammer a single priority: items behave like a pool and the
/// queue never fabricates items.
#[test]
fn single_priority_pool_semantics() {
    const OPS: usize = 300;
    for (name, q) in all_queues(1) {
        let taken = Arc::new(Mutex::new(Vec::new()));
        let handles: Vec<_> = (0..THREADS)
            .map(|tid| {
                let q = Arc::clone(&q);
                let taken = Arc::clone(&taken);
                thread::spawn(move || {
                    let mut local = Vec::new();
                    for i in 0..OPS {
                        q.insert(tid, 0, (tid * OPS + i) as u64);
                        if let Some((p, x)) = q.delete_min(tid) {
                            assert_eq!(p, 0);
                            local.push(x);
                        }
                    }
                    taken.lock().unwrap().extend(local);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut all = taken.lock().unwrap().clone();
        while let Some((_, x)) = q.delete_min(0) {
            all.push(x);
        }
        all.sort_unstable();
        all.dedup();
        assert_eq!(
            all.len(),
            THREADS * OPS,
            "{name}: duplicates or losses detected"
        );
    }
}

/// The consistency documented per queue matches the claim table in lib.rs.
#[test]
fn consistency_labels() {
    use funnelpq::Consistency;
    let expect = |a: Algorithm| match a {
        Algorithm::SingleLock | Algorithm::HuntEtAl | Algorithm::SimpleLinear => {
            Consistency::Linearizable
        }
        _ => Consistency::QuiescentlyConsistent,
    };
    for (name, q) in all_queues(4) {
        assert_eq!(q.consistency(), expect(q.algorithm()), "{name}");
        assert_eq!(q.algorithm_name(), name);
    }
}
