//! Concurrency stress tests for the native queues: conservation (no item
//! lost or duplicated) under mixed workloads, and the quiescent-consistency
//! guarantee from the paper's Appendix B — `k` delete-mins after a
//! quiescent point, with no concurrent inserts, return exactly the `k`
//! smallest priorities present.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use funnelpq::{Algorithm, BoundedPq, HuntConfig, PqBuilder, PqConfig};

const THREADS: usize = 8;

/// Default typed config for `a`, except HuntEtAl gets a stress-sized
/// capacity — the migrated form of the old `hunt_capacity` sweep knob.
fn configured(a: Algorithm, hunt_capacity: usize) -> PqConfig {
    match PqConfig::for_algorithm(a).expect("natively buildable") {
        PqConfig::HuntEtAl(_) => PqConfig::HuntEtAl(HuntConfig {
            capacity: hunt_capacity,
        }),
        cfg => cfg,
    }
}

/// Wall-clock watchdog for the stress tests: a native queue bug that
/// livelocks (threads spinning forever on a lock or a funnel slot) would
/// otherwise hang the test runner with no diagnostic. Worker threads bump
/// their per-thread counter after every operation; if the scenario
/// exceeds the limit, the watchdog prints every thread's progress count —
/// pinpointing which threads stopped advancing — and aborts the process.
struct StressWatchdog {
    progress: Arc<Vec<AtomicUsize>>,
    done: Arc<AtomicBool>,
    monitor: Option<thread::JoinHandle<()>>,
}

impl StressWatchdog {
    fn arm(label: &'static str, threads: usize, limit: Duration) -> Self {
        let progress: Arc<Vec<AtomicUsize>> =
            Arc::new((0..threads).map(|_| AtomicUsize::new(0)).collect());
        let done = Arc::new(AtomicBool::new(false));
        let (p, d) = (Arc::clone(&progress), Arc::clone(&done));
        let monitor = thread::spawn(move || {
            let start = Instant::now();
            while !d.load(Ordering::Acquire) {
                thread::sleep(Duration::from_millis(50));
                if start.elapsed() > limit {
                    let counts: Vec<usize> = p.iter().map(|c| c.load(Ordering::Relaxed)).collect();
                    // A panic in a background thread cannot fail the hung
                    // test, so print the diagnostic and abort.
                    eprintln!(
                        "stress watchdog: {label} made no full pass within {limit:?}; \
                         per-thread op counts: {counts:?}"
                    );
                    std::process::abort();
                }
            }
        });
        StressWatchdog {
            progress,
            done,
            monitor: Some(monitor),
        }
    }

    /// Per-thread counters; worker `tid` bumps `progress()[tid]` after
    /// each operation.
    fn progress(&self) -> Arc<Vec<AtomicUsize>> {
        Arc::clone(&self.progress)
    }
}

impl Drop for StressWatchdog {
    fn drop(&mut self) {
        self.done.store(true, Ordering::Release);
        if let Some(h) = self.monitor.take() {
            let _ = h.join();
        }
    }
}

/// Generous limit per queue scenario: the workloads finish in milliseconds;
/// minutes of wall clock means wedged, not slow.
const STRESS_LIMIT: Duration = Duration::from_secs(120);

fn all_queues(num_pris: usize) -> Vec<(&'static str, Arc<dyn BoundedPq<u64>>)> {
    Algorithm::ALL
        .into_iter()
        .map(|a| {
            let q =
                PqBuilder::from_config(configured(a, 1 << 15), num_pris, THREADS).build::<u64>();
            (a.name(), Arc::from(q))
        })
        .collect()
}

/// Mixed inserts/deletes from every thread; at the end, deleted ∪ drained
/// must equal exactly the set of inserted items.
#[test]
fn conservation_under_mixed_load() {
    const OPS: usize = 400;
    for (name, q) in all_queues(16) {
        let watchdog = StressWatchdog::arm("conservation_under_mixed_load", THREADS, STRESS_LIMIT);
        let deleted = Arc::new(Mutex::new(Vec::new()));
        let handles: Vec<_> = (0..THREADS)
            .map(|tid| {
                let q = Arc::clone(&q);
                let deleted = Arc::clone(&deleted);
                let progress = watchdog.progress();
                thread::spawn(move || {
                    let mut local = Vec::new();
                    for i in 0..OPS {
                        let item = (tid * OPS + i) as u64;
                        q.insert(tid, (item % 16) as usize, item);
                        if i % 2 == 0 {
                            if let Some((_, x)) = q.delete_min(tid) {
                                local.push(x);
                            }
                        }
                        progress[tid].fetch_add(1, Ordering::Relaxed);
                    }
                    deleted.lock().unwrap().extend(local);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut all = deleted.lock().unwrap().clone();
        while let Some((_, x)) = q.delete_min(0) {
            all.push(x);
        }
        all.sort_unstable();
        let expect: Vec<u64> = (0..(THREADS * OPS) as u64).collect();
        assert_eq!(all, expect, "{name}: items lost or duplicated");
        assert!(q.is_empty(), "{name}: queue should be empty after drain");
    }
}

/// Parallel insert phase, quiescent point, then parallel delete phase of
/// exactly k ≤ total items: the union of the deleted priorities must be
/// the k smallest inserted.
#[test]
fn quiescent_k_smallest() {
    const PER_THREAD: usize = 50;
    const K: usize = 200; // k = half the items
    for (name, q) in all_queues(32) {
        let watchdog = StressWatchdog::arm("quiescent_k_smallest", THREADS, STRESS_LIMIT);
        let inserted = Arc::new(Mutex::new(Vec::new()));
        let barrier = Arc::new(Barrier::new(THREADS));
        let deleted = Arc::new(Mutex::new(Vec::new()));
        let budget = Arc::new(AtomicUsize::new(K));
        let handles: Vec<_> = (0..THREADS)
            .map(|tid| {
                let q = Arc::clone(&q);
                let inserted = Arc::clone(&inserted);
                let deleted = Arc::clone(&deleted);
                let barrier = Arc::clone(&barrier);
                let budget = Arc::clone(&budget);
                let progress = watchdog.progress();
                thread::spawn(move || {
                    let mut mine = Vec::new();
                    for i in 0..PER_THREAD {
                        let pri = (tid * 13 + i * 7) % 32;
                        q.insert(tid, pri, (tid * PER_THREAD + i) as u64);
                        mine.push(pri);
                        progress[tid].fetch_add(1, Ordering::Relaxed);
                    }
                    inserted.lock().unwrap().extend(mine);
                    // Quiescent point: all inserts complete before any
                    // delete begins.
                    barrier.wait();
                    let mut got = Vec::new();
                    loop {
                        // Claim one unit of the delete budget.
                        let prev = budget.fetch_sub(1, Ordering::AcqRel);
                        if prev == 0 || prev > K {
                            budget.fetch_add(1, Ordering::AcqRel);
                            break;
                        }
                        let e = q.delete_min(tid);
                        match e {
                            Some((p, _)) => got.push(p),
                            None => panic!("delete_min returned None with items present"),
                        }
                        progress[tid].fetch_add(1, Ordering::Relaxed);
                    }
                    deleted.lock().unwrap().extend(got);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut want: Vec<usize> = inserted.lock().unwrap().clone();
        want.sort_unstable();
        want.truncate(K);
        let mut got = deleted.lock().unwrap().clone();
        got.sort_unstable();
        assert_eq!(got.len(), K, "{name}: exactly k deletions should succeed");
        assert_eq!(got, want, "{name}: deleted set must be the k smallest");
    }
}

/// Many threads hammer a single priority: items behave like a pool and the
/// queue never fabricates items.
#[test]
fn single_priority_pool_semantics() {
    const OPS: usize = 300;
    for (name, q) in all_queues(1) {
        let watchdog = StressWatchdog::arm("single_priority_pool_semantics", THREADS, STRESS_LIMIT);
        let taken = Arc::new(Mutex::new(Vec::new()));
        let handles: Vec<_> = (0..THREADS)
            .map(|tid| {
                let q = Arc::clone(&q);
                let taken = Arc::clone(&taken);
                let progress = watchdog.progress();
                thread::spawn(move || {
                    let mut local = Vec::new();
                    for i in 0..OPS {
                        q.insert(tid, 0, (tid * OPS + i) as u64);
                        if let Some((p, x)) = q.delete_min(tid) {
                            assert_eq!(p, 0);
                            local.push(x);
                        }
                        progress[tid].fetch_add(1, Ordering::Relaxed);
                    }
                    taken.lock().unwrap().extend(local);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut all = taken.lock().unwrap().clone();
        while let Some((_, x)) = q.delete_min(0) {
            all.push(x);
        }
        all.sort_unstable();
        all.dedup();
        assert_eq!(
            all.len(),
            THREADS * OPS,
            "{name}: duplicates or losses detected"
        );
    }
}

/// The consistency documented per queue matches the claim table in lib.rs.
#[test]
fn consistency_labels() {
    use funnelpq::Consistency;
    let expect = |a: Algorithm| match a {
        Algorithm::SingleLock | Algorithm::SimpleLinear => Consistency::Linearizable,
        _ => Consistency::QuiescentlyConsistent,
    };
    for (name, q) in all_queues(4) {
        assert_eq!(q.consistency(), expect(q.algorithm()), "{name}");
        assert_eq!(q.algorithm_name(), name);
    }
}
