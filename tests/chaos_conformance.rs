//! Chaos conformance: the fault layer must be invisible when off, and the
//! seven algorithms must keep their invariants under every fault plan the
//! model can express.
//!
//! - Differential: a chaos run with an **empty attached plan** (gated
//!   event path exercised, watchdog armed) is bit-identical to the plain
//!   workload driver for every algorithm.
//! - Sweep: combiner-stall, lock-holder-stall, region-latency-spike, and
//!   one-processor crash-stop plans across all algorithms and several
//!   seeds, each run audited for conservation, ordering, and structure.
//! - Watchdog: fires with a diagnostic naming the stalled processor on an
//!   intentionally wedged run, and never on healthy runs.
//! - Quality: every strict algorithm's audited drain has exactly zero rank
//!   error on quiescent runs; the relaxed `MultiQueue` keeps conservation
//!   and causality strict while its drain sortedness is replaced by a
//!   rank-error bound enforced inside the audit.

use funnelpq_sim::fault::FaultSummary;
use funnelpq_sim::{FaultPlan, RunOutcome, SpanPoint};
use funnelpq_simqueues::chaos::{
    chaos_build_params, run_chaos_workload, run_chaos_workload_bounded, DEFAULT_WATCHDOG,
};
use funnelpq_simqueues::queues::Algorithm;
use funnelpq_simqueues::workload::{run_queue_workload_with, Workload};

fn small_workload(seed: u64) -> Workload {
    let mut wl = Workload::standard(8, 8);
    wl.ops_per_proc = 12;
    wl.seed = seed;
    wl
}

/// With an empty plan attached (so every event still flows through the
/// fault gate) and the watchdog armed tight, the phase-one result must be
/// bit-identical to the fault-free driver's, and nothing may wedge.
#[test]
fn empty_plan_is_bit_identical_for_all_algorithms() {
    let wl = small_workload(0xF00D);
    let plan = FaultPlan::new(1);
    assert!(plan.is_empty());
    for algo in Algorithm::ALL {
        let baseline = run_queue_workload_with(algo, &wl, &chaos_build_params(&wl));
        let run = run_chaos_workload(algo, &wl, &plan, 1_000_000)
            .unwrap_or_else(|e| panic!("{algo}: fault-free chaos run failed: {e}"));
        assert!(!run.wedged(), "{algo}: healthy run tripped the watchdog");
        assert_eq!(run.outcome, RunOutcome::Quiescent, "{algo}");
        assert_eq!(run.drain_outcome, Some(RunOutcome::Quiescent), "{algo}");
        assert_eq!(run.fault_summary, FaultSummary::default(), "{algo}");
        assert_eq!(
            run.result.total_cycles, baseline.total_cycles,
            "{algo}: total_cycles diverged with the fault layer attached-but-empty"
        );
        assert_eq!(run.result.all, baseline.all, "{algo}: 'all' acc diverged");
        assert_eq!(
            run.result.insert, baseline.insert,
            "{algo}: insert acc diverged"
        );
        assert_eq!(
            run.result.delete, baseline.delete,
            "{algo}: delete acc diverged"
        );
        assert_eq!(
            run.result.stats.mem_accesses, baseline.stats.mem_accesses,
            "{algo}: memory access count diverged"
        );
        assert_eq!(
            run.result.stats.queue_delay_cycles, baseline.stats.queue_delay_cycles,
            "{algo}: queueing delay diverged"
        );
        assert_eq!(
            run.result.hotspots, baseline.hotspots,
            "{algo}: hotspots diverged"
        );
        // Fault-free run: every insert drained, nothing in flight, and a
        // strict queue's drain has exactly zero rank error.
        assert_eq!(run.report.in_flight, 0, "{algo}");
        assert_eq!(run.report.leaked, 0, "{algo}");
        assert!(run.structural_items.is_some(), "{algo}");
        assert_eq!(
            run.report.rank_error.max(),
            0,
            "{algo}: a strict algorithm's drain must have zero rank error"
        );
    }
}

const SEEDS: [u64; 3] = [0xF00D, 0xBEEF, 0xCAFE];

/// Stalls the processor that just won a funnel collision (it now holds a
/// captured peer). Vacuous for non-funnel algorithms — the span never
/// opens — which is itself part of the contract.
fn combiner_stall_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed ^ 0x5EED)
        .stall_on_span("funnel-combine", SpanPoint::Begin, 1, 200_000)
        .stall_on_span("funnel-combine", SpanPoint::Begin, 7, 150_000)
}

/// Stalls a processor right after it acquires an MCS lock, i.e. while it
/// holds the lock with others queued behind it.
fn lock_holder_stall_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed ^ 0x5EED)
        .stall_on_span("mcs-acquire", SpanPoint::End, 3, 200_000)
        .stall_on_span("mcs-acquire", SpanPoint::End, 11, 120_000)
}

/// NUMA-asymmetry emulation: the first memory lines (locks, size words,
/// roots — the hottest structures) get slower for a window, plus global
/// jitter early in the run.
fn region_spike_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed ^ 0x5EED)
        .region_delay(0, 64, 0, 1_500_000, 40, 10)
        .jitter(0, 400_000, 16)
}

/// Crash-stops processor 1 early in the run, mid-operation with high
/// probability.
fn crash_plan(seed: u64, idx: usize) -> FaultPlan {
    FaultPlan::new(seed ^ 0x5EED).crash(1, 2_000 + 1_500 * idx as u64)
}

#[test]
fn chaos_sweep_combiner_stall() {
    for &seed in &SEEDS {
        let wl = small_workload(seed);
        let plan = combiner_stall_plan(seed);
        for algo in Algorithm::ALL {
            let run = run_chaos_workload(algo, &wl, &plan, DEFAULT_WATCHDOG)
                .unwrap_or_else(|e| panic!("{algo} seed {seed:#x}: {e}"));
            assert!(
                !run.wedged(),
                "{algo} seed {seed:#x}: stall plan wedged the run"
            );
            assert_eq!(run.report.leaked, 0, "{algo} seed {seed:#x}");
            assert_eq!(run.report.rank_error.max(), 0, "{algo} seed {seed:#x}");
        }
    }
}

#[test]
fn chaos_sweep_lock_holder_stall() {
    for &seed in &SEEDS {
        let wl = small_workload(seed);
        let plan = lock_holder_stall_plan(seed);
        for algo in Algorithm::ALL {
            let run = run_chaos_workload(algo, &wl, &plan, DEFAULT_WATCHDOG)
                .unwrap_or_else(|e| panic!("{algo} seed {seed:#x}: {e}"));
            assert!(
                !run.wedged(),
                "{algo} seed {seed:#x}: stall plan wedged the run"
            );
            assert!(
                run.fault_summary.stalls >= 1,
                "{algo} seed {seed:#x}: no MCS acquire ever stalled"
            );
            assert_eq!(run.report.leaked, 0, "{algo} seed {seed:#x}");
            assert_eq!(run.report.rank_error.max(), 0, "{algo} seed {seed:#x}");
        }
    }
}

#[test]
fn chaos_sweep_region_latency_spike() {
    for &seed in &SEEDS {
        let wl = small_workload(seed);
        let plan = region_spike_plan(seed);
        for algo in Algorithm::ALL {
            let run = run_chaos_workload(algo, &wl, &plan, DEFAULT_WATCHDOG)
                .unwrap_or_else(|e| panic!("{algo} seed {seed:#x}: {e}"));
            assert!(
                !run.wedged(),
                "{algo} seed {seed:#x}: latency plan wedged the run"
            );
            assert!(
                run.fault_summary.extra_latency_cycles > 0,
                "{algo} seed {seed:#x}: the spike never added latency"
            );
            assert_eq!(run.report.leaked, 0, "{algo} seed {seed:#x}");
            assert_eq!(run.report.rank_error.max(), 0, "{algo} seed {seed:#x}");
        }
    }
}

#[test]
fn chaos_sweep_crash_stop() {
    for (idx, &seed) in SEEDS.iter().enumerate() {
        let wl = small_workload(seed);
        let plan = crash_plan(seed, idx);
        for algo in Algorithm::ALL {
            let run = run_chaos_workload(algo, &wl, &plan, DEFAULT_WATCHDOG)
                .unwrap_or_else(|e| panic!("{algo} seed {seed:#x}: {e}"));
            assert_eq!(
                run.crashed,
                vec![1],
                "{algo} seed {seed:#x}: processor 1 should have crash-stopped"
            );
            // A crashed lock holder may legitimately wedge the rest of the
            // machine; quiescent crash runs must still conserve elements up
            // to the crash allowance — both are checked inside the audit.
        }
    }
}

/// An MCS lock holder stalled for ~100M cycles with a 1M-cycle watchdog:
/// the machine makes no progress, the watchdog must fire, and the
/// diagnostic must name the stalled processor.
#[test]
fn watchdog_fires_on_wedged_run_and_names_the_stalled_proc() {
    let wl = small_workload(0xF00D);
    let plan = FaultPlan::new(7).stall_on_span("mcs-acquire", SpanPoint::End, 1, 100_000_000);
    let run = run_chaos_workload(Algorithm::SingleLock, &wl, &plan, 1_000_000)
        .expect("a wedged run under a non-empty plan is tolerated, not an error");
    assert!(run.wedged());
    match &run.outcome {
        RunOutcome::Livelock { diag } => {
            let text = diag.to_string();
            assert!(
                text.contains("stalled"),
                "diagnostic does not name a stalled processor: {text}"
            );
        }
        other => panic!("expected a livelock, got {other}"),
    }
    assert_eq!(run.fault_summary.stalls, 1);
    assert!(run.drain_outcome.is_none(), "a wedged run must not drain");
}

/// Per-delete drain rank error the MultiQueue sweeps tolerate. Generous —
/// the real distributions sit near zero (see `BENCH_multiqueue.json`) —
/// but far below the ~50 items a run holds, so a queue that degenerated
/// into returning arbitrary elements would trip it.
const MQ_RANK_BOUND: u64 = 40;

/// The MultiQueue guards its heaps with raw CAS try-locks, not MCS locks,
/// so the `mcs-acquire` plans are vacuous for it; stall it inside its own
/// critical section instead.
fn mq_lock_holder_stall_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed ^ 0x5EED)
        .stall_on_span("lock-hold", SpanPoint::Begin, 3, 200_000)
        .stall_on_span("lock-hold", SpanPoint::Begin, 11, 120_000)
}

/// The shared `crash_plan` times target the strict algorithms' pace; the
/// MultiQueue finishes this workload in ~6k cycles, so crash earlier to
/// stay inside the run.
fn mq_crash_plan(seed: u64, idx: usize) -> FaultPlan {
    FaultPlan::new(seed ^ 0x5EED).crash(1, 1_500 + 600 * idx as u64)
}

/// With the fault layer attached-but-empty the relaxed queue is held to
/// the same bit-identity bar as the paper's seven, and its audit keeps
/// conservation and causality fully strict — only sortedness is relaxed,
/// into the rank-error bound.
#[test]
fn multiqueue_empty_plan_is_bit_identical_and_audits_clean() {
    let wl = small_workload(0xF00D);
    let plan = FaultPlan::new(1);
    let algo = Algorithm::MultiQueue;
    let baseline = run_queue_workload_with(algo, &wl, &chaos_build_params(&wl));
    let run = run_chaos_workload_bounded(algo, &wl, &plan, 1_000_000, Some(MQ_RANK_BOUND)).unwrap();
    assert!(!run.wedged());
    assert_eq!(run.result.total_cycles, baseline.total_cycles);
    assert_eq!(run.result.all, baseline.all);
    assert_eq!(run.result.stats.mem_accesses, baseline.stats.mem_accesses);
    assert_eq!(run.result.hotspots, baseline.hotspots);
    assert_eq!(run.report.in_flight, 0);
    assert_eq!(run.report.leaked, 0);
    assert!(run.structural_items.is_some());
    assert!(
        run.report.rank_error.count() > 0,
        "the drain must have produced rank-error samples"
    );
}

/// The full fault matrix (lock-holder stall, latency spike, crash-stop)
/// over the relaxed queue: conservation and causality are checked strictly
/// by the audit; drain quality is held to the rank-error bound.
#[test]
fn multiqueue_chaos_sweep_with_rank_bound() {
    let algo = Algorithm::MultiQueue;
    for (idx, &seed) in SEEDS.iter().enumerate() {
        let wl = small_workload(seed);
        for (name, plan) in [
            ("lock-stall", mq_lock_holder_stall_plan(seed)),
            ("latency-spike", region_spike_plan(seed)),
            ("crash", mq_crash_plan(seed, idx)),
        ] {
            let run =
                run_chaos_workload_bounded(algo, &wl, &plan, DEFAULT_WATCHDOG, Some(MQ_RANK_BOUND))
                    .unwrap_or_else(|e| panic!("{algo} {name} seed {seed:#x}: {e}"));
            if name == "crash" {
                assert_eq!(run.crashed, vec![1], "{name} seed {seed:#x}");
            } else {
                assert!(!run.wedged(), "{name} seed {seed:#x}: plan wedged the run");
                assert_eq!(run.report.leaked, 0, "{name} seed {seed:#x}");
            }
            if name == "lock-stall" {
                assert!(
                    run.fault_summary.stalls >= 1,
                    "{name} seed {seed:#x}: no lock holder ever stalled"
                );
            }
        }
    }
}

/// Satellite: the fault layer's regional-latency spikes are wired to the
/// topology model. On a *flat* two-node machine (`remote_ratio` 1) the
/// adaptive `SimNumaPq` controller never leaves oblivious mode — but
/// injecting a `region_delay` over exactly node 1's memory (the ranges
/// come from [`Machine::node_regions`]) makes every remote top expensive
/// enough that the measured-pressure controller must switch to
/// delegation, and the switch must land in the simulated switch counter.
///
/// The workload runs on a single node-0 processor so the spiked node
/// stays *remote* for the whole run: a node-1 processor measures a
/// healthy remote path (node 0 is not spiked) and would correctly vote
/// to stay oblivious once it is the only one left running.
#[test]
fn numa_controller_switches_modes_under_injected_remote_latency_spike() {
    use funnelpq::{NumaMode, NumaPolicy};
    use funnelpq_sim::{Machine, MachineConfig};
    use funnelpq_simqueues::queues::SimNumaPq;

    fn run(spike: bool) -> (u64, NumaMode) {
        let cfg = MachineConfig::test_tiny().with_topology(2, 1);
        let mut m = Machine::new(cfg, 0x5311);
        let q = SimNumaPq::build(&mut m, 1, 4096, 4, 2, 16, NumaPolicy::Adaptive);
        if spike {
            // Spike only node 1's memory, for the whole run: +64 cycles
            // per network leg dwarfs the flat 3-cycle access.
            let mut plan = FaultPlan::new(0x51C);
            for (addr, words) in m.node_regions(1) {
                plan = plan.region_delay(addr, words, 0, u64::MAX, 64, 0);
            }
            assert!(!plan.is_empty(), "topology must yield node-1 regions");
            m.attach_faults(&plan).expect("regions lie inside memory");
        }
        let ctx = m.ctx();
        let q2 = q.clone();
        m.spawn(async move {
            for i in 0..800u64 {
                q2.insert(&ctx, i % 64, i).await;
                q2.delete_min(&ctx).await;
            }
        });
        assert!(m.run().is_quiescent());
        q.validate(&m).expect("structure intact under the spike");
        (q.peek_switches(&m), q.peek_mode(&m))
    }

    let (healthy_switches, healthy_mode) = run(false);
    assert_eq!(healthy_mode, NumaMode::Oblivious);
    assert_eq!(healthy_switches, 0, "flat interconnect must never switch");

    let (switches, mode) = run(true);
    assert_eq!(mode, NumaMode::Delegation, "spike must flip the mode");
    assert!(switches >= 1, "the switch-over must be counted");
}
