//! History-based checker for the paper's Appendix-B quiescent-consistency
//! specification.
//!
//! Every operation is stamped with global begin/end sequence numbers. After
//! the run, we locate *quiescent points* — stamps at which no operation is
//! in flight — and check each window between consecutive quiescent points
//! against the appendix: if the queue held the multiset `E` at the window's
//! start and the window performed `k` successful delete-mins while
//! inserting `I`, then every returned priority must be bounded by the
//! `k`-th smallest priority of `E` (every member of both `Min_k(E)` and
//! `Min_k(E ∪ I)` is ≤ that bound). Conservation across windows is also
//! checked exactly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

use funnelpq::{
    BoundedPq, FunnelTreePq, LinearFunnelsPq, NumaConfig, PqBuilder, PqConfig, SimpleTreePq,
    SkipListPq,
};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Insert(usize),
    DeleteHit(usize),
    DeleteMiss,
}

#[derive(Debug, Clone, Copy)]
struct Event {
    begin: u64,
    end: u64,
    kind: OpKind,
}

fn record_history(q: &dyn BoundedPq<u64>, threads: usize, ops: usize) -> Vec<Event> {
    let clock = Arc::new(AtomicU64::new(0));
    let history = Arc::new(Mutex::new(Vec::new()));
    thread::scope(|s| {
        for tid in 0..threads {
            let clock = Arc::clone(&clock);
            let history = Arc::clone(&history);
            s.spawn(move || {
                let mut local = Vec::with_capacity(ops);
                for i in 0..ops {
                    // Burstiness: occasional yields open quiescent gaps.
                    if i % 7 == tid % 7 {
                        thread::yield_now();
                    }
                    let begin = clock.fetch_add(1, Ordering::SeqCst);
                    let kind = if (tid + i) % 2 == 0 {
                        let pri = (tid * 31 + i * 17) % 24;
                        q.insert(tid, pri, (tid * ops + i) as u64);
                        OpKind::Insert(pri)
                    } else {
                        match q.delete_min(tid) {
                            Some((pri, _)) => OpKind::DeleteHit(pri),
                            None => OpKind::DeleteMiss,
                        }
                    };
                    let end = clock.fetch_add(1, Ordering::SeqCst);
                    local.push(Event { begin, end, kind });
                }
                history.lock().unwrap().extend(local);
            });
        }
    });
    let mut h = Arc::try_unwrap(history).unwrap().into_inner().unwrap();
    h.sort_by_key(|e| e.begin);
    h
}

/// Splits the history at quiescent stamps and checks each window.
///
/// `slack` is the permitted rank error in priority units: a strict
/// (quiescently consistent) queue passes with `slack = 0`, while a relaxed
/// queue's returned priorities may exceed the Appendix-B bound by at most
/// `slack` priority levels — the windowed form of the structural "minima
/// can hide in unexamined heaps" allowance, generous in the same way as
/// the chaos harness's drain bound.
fn check_history(name: &str, history: &[Event], slack: usize) {
    // A stamp t is quiescent if no event has begin < t < end... we check
    // boundaries between events: gather all (begin, +1), (end, -1) deltas.
    let mut deltas: Vec<(u64, i64)> = Vec::with_capacity(history.len() * 2);
    for e in history {
        deltas.push((e.begin, 1));
        deltas.push((e.end, -1));
    }
    deltas.sort_unstable();
    let mut open = 0i64;
    let mut quiescent_points = vec![0u64];
    for (stamp, d) in deltas {
        open += d;
        if open == 0 {
            quiescent_points.push(stamp + 1);
        }
    }

    // Walk windows; `held` is the exact multiset of priorities in the queue
    // at each quiescent point (windows are cleanly separated, so it is
    // well-defined there).
    let mut held: Vec<usize> = Vec::new();
    let mut windows_checked = 0;
    for w in quiescent_points.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        let evs: Vec<&Event> = history
            .iter()
            .filter(|e| e.begin >= lo && e.begin < hi)
            .collect();
        if evs.is_empty() {
            continue;
        }
        let hits: Vec<usize> = evs
            .iter()
            .filter_map(|e| match e.kind {
                OpKind::DeleteHit(p) => Some(p),
                _ => None,
            })
            .collect();
        let k = hits.len();
        // Sound only for k ≤ |E| (see the sim checker for the argument).
        if k > 0 && k <= held.len() {
            let mut e_sorted = held.clone();
            e_sorted.sort_unstable();
            let bound = e_sorted[k - 1] + slack;
            for &p in &hits {
                assert!(
                    p <= bound,
                    "{name}: window [{lo},{hi}) returned priority {p} > \
                     Appendix-B bound {bound} (k={k}, slack={slack}, |E|={})",
                    e_sorted.len()
                );
            }
            windows_checked += 1;
        }
        // Within a window, operation order is unconstrained by quiescent
        // consistency: credit all inserts first, then remove the hits.
        for e in &evs {
            if let OpKind::Insert(p) = e.kind {
                held.push(p);
            }
        }
        for e in &evs {
            if let OpKind::DeleteHit(p) = e.kind {
                let pos = held
                    .iter()
                    .position(|&x| x == p)
                    .unwrap_or_else(|| panic!("{name}: phantom delete of {p}"));
                held.swap_remove(pos);
            }
        }
    }
    // The checker must have exercised at least the final full-history
    // window; usually the yields create many more.
    assert!(
        windows_checked >= 1 || history.iter().all(|e| e.kind == OpKind::DeleteMiss),
        "{name}: no checkable windows found"
    );
}

fn run_check(name: &str, q: &dyn BoundedPq<u64>) {
    run_check_with_slack(name, q, 0)
}

fn run_check_with_slack(name: &str, q: &dyn BoundedPq<u64>, slack: usize) {
    // Seed the queue (sequential = quiescent at the end) so windows with
    // k ≤ |E| are plentiful.
    let mut seed_events = Vec::new();
    for i in 0..800 {
        let pri = (i * 11) % 24;
        q.insert(0, pri, 1_000_000 + i as u64);
        seed_events.push(Event {
            begin: 0,
            end: 0,
            kind: OpKind::Insert(pri),
        });
    }
    let mut history = record_history(q, 6, 250);
    // Stamp the seed strictly before everything else.
    for e in &mut history {
        e.begin += 1;
        e.end += 1;
    }
    let mut full = seed_events;
    full.extend(history);
    let history = full;
    check_history(name, &history, slack);
    // Drain and verify conservation end-to-end.
    let inserted = history
        .iter()
        .filter(|e| matches!(e.kind, OpKind::Insert(_)))
        .count();
    let deleted = history
        .iter()
        .filter(|e| matches!(e.kind, OpKind::DeleteHit(_)))
        .count();
    let mut drained = 0;
    while q.delete_min(0).is_some() {
        drained += 1;
    }
    assert_eq!(inserted, deleted + drained, "{name}: conservation violated");
}

#[test]
fn funnel_tree_satisfies_appendix_b() {
    run_check("FunnelTree", &FunnelTreePq::new(24, 7));
}

#[test]
fn linear_funnels_satisfies_appendix_b() {
    run_check("LinearFunnels", &LinearFunnelsPq::new(24, 7));
}

#[test]
fn simple_tree_satisfies_appendix_b() {
    run_check("SimpleTree", &SimpleTreePq::new(24, 7));
}

#[test]
fn skip_list_satisfies_appendix_b() {
    run_check("SkipList", &SkipListPq::new(24, 7));
}

/// The relaxed NUMA-adaptive queue is audited against the same windowed
/// history, with a rank-error allowance: its two-choice delete-min draws
/// two of `2 * threads` partition heaps, so minima can transiently hide in
/// the unexamined ones. The allowance is half the priority range —
/// generous in the same spirit as the chaos drain bound — so gross
/// ordering violations still fail while two-choice relaxation passes.
/// Conservation stays exact with no slack at all.
#[test]
fn numa_pq_satisfies_appendix_b_with_bounded_rank_error() {
    let cfg = PqConfig::NumaPq(NumaConfig {
        nodes: 2,
        epoch_ops: 64,
        ..NumaConfig::default()
    });
    let q = PqBuilder::from_config(cfg, 24, 7).build::<u64>();
    run_check_with_slack("NumaPq", q.as_ref(), 12);
}
