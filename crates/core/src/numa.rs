//! `NumaPq`: a NUMA-adaptive relaxed priority queue — node-local
//! MultiQueues fronted by a delegation layer, with a live mode switch
//! (SmartPQ, arXiv 2406.06900).
//!
//! The structure is the [`crate::MultiQueuePq`] slot array partitioned over
//! a [`Topology`]: each NUMA node owns a contiguous block of heaps, and the
//! node's threads are co-located with them. Two serving disciplines share
//! that structure:
//!
//! * **Oblivious** ([`NumaMode::Oblivious`]): exactly the plain MultiQueue.
//!   Every thread inserts into and deletes from any slot directly; an
//!   episode that locks a remote slot is charged three remote cache-line
//!   transfers (lock word, published top, heap data) against
//!   [`Topology::charge`]. Cheapest when remote transfers are cheap.
//! * **Delegation** ([`NumaMode::Delegation`]): inserts stay in the
//!   caller's own node partition (zero remote traffic), and a delete-min
//!   whose two-choice winner is homed remotely is *delegated*: the caller
//!   publishes a request in its per-thread slot and spins locally while a
//!   thread co-located with the winning partition pops on its behalf and
//!   writes the response back — two transfers (request read, response
//!   write) instead of three, paid by the server that already owns the hot
//!   lines. Wins when remote transfers are expensive; loses at low
//!   contention, where the request/response round trip is pure overhead.
//!
//! The [`AdaptiveCtl`] flips between the two per epoch from live signals
//! (see [`crate::adaptive`]); every switch-over fires
//! [`CounterEvent::ModeSwitch`]. Delegated service is driven by
//! `serve_pending`, which every thread runs after each of its own
//! operations and periodically while spinning on a response, so requests
//! drain without dedicated server threads; a requester that spins out its
//! budget cancels and self-serves, so no thread ever blocks on an idle
//! peer.
//!
//! # Examples
//!
//! ```
//! use funnelpq::{BoundedPq, NumaConfig, NumaPq};
//! let q = NumaPq::new(16, 4, NumaConfig::default());
//! q.insert(0, 3, "c");
//! q.insert(3, 1, "a");
//! let mut got = vec![q.delete_min(1).unwrap(), q.delete_min(2).unwrap()];
//! got.sort();
//! assert_eq!(got, vec![(1, "a"), (3, "c")]);
//! assert_eq!(q.delete_min(0), None);
//! ```

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use funnelpq_sync::TtasMutex;
use funnelpq_util::{AtomicRng, CachePadded};

use crate::adaptive::{AdaptiveCtl, AdaptiveStats, NumaMode};
use crate::algorithm::Algorithm;
use crate::config::NumaConfig;
use crate::heap::BinaryHeap;
use crate::obs::{self, CounterEvent, NoopRecorder, OpKind, Recorder};
use crate::topology::Topology;
use crate::traits::{batch_reject, reject, BoundedPq, Consistency, PqBatchError, PqError};

/// Cached top priority of an empty internal heap (same sentinel as the
/// plain MultiQueue).
const EMPTY_TOP: usize = usize::MAX;

/// Request-slot state: no request outstanding.
const IDLE: usize = 0;
/// Request published; any thread on the home node may claim it.
const REQ: usize = 1;
/// A server claimed the request and is popping; the response is in flight.
const CLAIMED: usize = 2;
/// Response written; only the requester may consume it and return to IDLE.
const DONE: usize = 3;

/// Spin iterations a requester waits on its response slot before cancelling
/// and self-serving. Deliberately small: on an oversubscribed host the
/// server may not be scheduled, and self-serving (three charged transfers)
/// is always available.
const SPIN_BUDGET: u32 = 512;
/// While spinning, serve the requester's *own* node every this many
/// iterations, so two threads that delegated into each other's nodes
/// unblock each other instead of deadlocking on mutual requests.
const SERVE_EVERY: u32 = 32;
/// While spinning, yield the OS thread every this many iterations — on a
/// host with fewer cores than threads the server needs the CPU.
const YIELD_EVERY: u32 = 64;

/// One internal sequential heap plus its published minimum, identical to
/// the MultiQueue slot; the NUMA structure is in how slots are *homed*, not
/// in the slots themselves.
#[derive(Debug)]
struct Slot<T> {
    /// Smallest priority in `heap`, or [`EMPTY_TOP`]; written only while
    /// holding the lock, read locklessly by the two-choice sampler.
    top: AtomicUsize,
    heap: TtasMutex<BinaryHeap<T>>,
}

/// The response cell of a delegation request slot. Ownership is handed by
/// the `state` machine: the server writes between CLAIMED and DONE, the
/// requester reads after acquiring DONE — never both at once.
struct RespCell<T>(UnsafeCell<Option<(usize, T)>>);

// Safety: access is serialized by the request-slot state machine (see
// `RespCell` docs); the cell only ever moves `T: Send` values across
// threads, never shares a `&T`.
unsafe impl<T: Send> Sync for RespCell<T> {}

impl<T> std::fmt::Debug for RespCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RespCell(..)")
    }
}

/// Per-thread state: the choice RNG plus this thread's delegation request
/// slot. Padded so a spinning requester and its server never false-share.
#[derive(Debug)]
struct ThreadCtx<T> {
    rng: AtomicRng,
    /// IDLE → REQ (requester) → CLAIMED (server) → DONE (server) → IDLE
    /// (requester); cancellation is a requester CAS of REQ → IDLE racing
    /// the server's claim.
    state: AtomicUsize,
    /// Which node's partition the delegated delete-min should pop from.
    /// Written before REQ is published, read by the claiming server.
    node: AtomicUsize,
    resp: RespCell<T>,
}

/// The ninth algorithm: node-partitioned MultiQueue with a delegation layer
/// and an adaptive mode switch. See the [module docs](self) for the
/// protocol and `docs/ALGORITHMS.md` §9 for the design discussion.
#[derive(Debug)]
pub struct NumaPq<T, R: Recorder = NoopRecorder> {
    slots: Box<[CachePadded<Slot<T>>]>,
    threads: Box<[CachePadded<ThreadCtx<T>>]>,
    /// Outstanding-request hint per node: bumped on publish, dropped by
    /// whoever wins the claim/cancel race. Purely an optimization — servers
    /// skip the O(threads) scan while their node's count reads zero.
    pending: Box<[CachePadded<AtomicUsize>]>,
    topo: Topology,
    ctl: AdaptiveCtl,
    num_priorities: usize,
    max_threads: usize,
    recorder: Arc<R>,
}

impl<T: Send> NumaPq<T> {
    /// Creates a queue for priorities `0..num_priorities` with `cfg`'s
    /// topology and policy and no recorder.
    ///
    /// # Panics
    ///
    /// Panics if `num_priorities`, `max_threads`, `cfg.nodes`, or
    /// `cfg.factor` is zero.
    pub fn new(num_priorities: usize, max_threads: usize, cfg: NumaConfig) -> Self {
        Self::with_config(num_priorities, max_threads, cfg, Arc::new(NoopRecorder))
    }
}

impl<T: Send, R: Recorder> NumaPq<T, R> {
    /// Fully parameterized constructor; see [`NumaConfig`] for the knobs.
    /// The node count is clamped to `max_threads` (an unthreaded node could
    /// never serve), and the queue holds
    /// `max(factor · max_threads, 2 · nodes)` internal heaps so every node
    /// owns at least a two-choice pair.
    ///
    /// # Panics
    ///
    /// Panics if `num_priorities`, `max_threads`, `cfg.nodes`, or
    /// `cfg.factor` is zero, or if `num_priorities == usize::MAX`
    /// (reserved sentinel).
    pub fn with_config(
        num_priorities: usize,
        max_threads: usize,
        cfg: NumaConfig,
        recorder: Arc<R>,
    ) -> Self {
        assert!(num_priorities > 0, "need at least one priority");
        assert!(num_priorities < EMPTY_TOP, "priority range too large");
        assert!(max_threads > 0, "need at least one thread");
        assert!(cfg.nodes > 0, "need at least one node");
        assert!(cfg.factor > 0, "need a positive queue factor");
        let nodes = cfg.nodes.min(max_threads);
        let nqueues = (cfg.factor * max_threads).max(2 * nodes).max(2);
        let slots = (0..nqueues)
            .map(|_| {
                CachePadded::new(Slot {
                    top: AtomicUsize::new(EMPTY_TOP),
                    heap: TtasMutex::new(BinaryHeap::new()),
                })
            })
            .collect();
        let threads = (0..max_threads)
            .map(|tid| {
                CachePadded::new(ThreadCtx {
                    rng: AtomicRng::new(cfg.seed.wrapping_add(tid as u64)),
                    state: AtomicUsize::new(IDLE),
                    node: AtomicUsize::new(0),
                    resp: RespCell(UnsafeCell::new(None)),
                })
            })
            .collect();
        let pending = (0..nodes)
            .map(|_| CachePadded::new(AtomicUsize::new(0)))
            .collect();
        NumaPq {
            slots,
            threads,
            pending,
            topo: Topology::new(nodes, max_threads, cfg.remote_ns),
            ctl: AdaptiveCtl::new(cfg.policy, cfg.epoch_ops),
            num_priorities,
            max_threads,
            recorder,
        }
    }

    /// Number of internal heaps.
    pub fn num_queues(&self) -> usize {
        self.slots.len()
    }

    /// The queue's topology model — benches and chaos harnesses use
    /// [`Topology::set_remote_ns`] to move the emulated remote cost
    /// mid-run.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Serving mode currently in effect.
    pub fn mode(&self) -> NumaMode {
        self.ctl.mode()
    }

    /// Charges `transfers` emulated remote cache-line transfers and counts
    /// them into the adaptive stats.
    #[inline]
    fn charge(&self, transfers: u64) {
        self.ctl
            .remote_transfers
            .fetch_add(transfers, Ordering::Relaxed);
        self.topo.charge(transfers);
    }

    /// Closes the bookkeeping for one completed operation (possibly closing
    /// an epoch) and then serves any delegation requests pending on this
    /// thread's node — the whole serving discipline rides piggyback on
    /// ordinary operations.
    fn finish_op(&self, tid: usize, remote_win: Option<bool>) {
        if self.ctl.note_op(remote_win, &self.topo) && R::ENABLED {
            self.recorder.record_event(CounterEvent::ModeSwitch);
        }
        self.serve_pending(tid, self.topo.node_of_tid(tid));
    }

    /// Publishes `heap`'s new minimum for the lockless sampler. Must be
    /// called with the slot's lock held.
    fn publish_top(slot: &Slot<T>, heap: &BinaryHeap<T>) {
        slot.top
            .store(heap.peek_priority().unwrap_or(EMPTY_TOP), Ordering::Release);
    }

    /// Two distinct slot indices in `lo..hi` from this thread's RNG
    /// (`(lo, lo)` when the range has a single slot).
    fn draw_pair_in(&self, t: &ThreadCtx<T>, lo: usize, hi: usize) -> (usize, usize) {
        let n = (hi - lo) as u64;
        if n < 2 {
            return (lo, lo);
        }
        let a = t.rng.below(n) as usize;
        let mut b = t.rng.below(n - 1) as usize;
        if b >= a {
            b += 1;
        }
        (lo + a, lo + b)
    }

    /// Pushes `item` into the slot `q`, retrying the try-lock against a
    /// fresh draw from `lo..hi` on contention. Returns the slot that
    /// finally took it.
    fn push_into_range(&self, tid: usize, pri: usize, item: T, lo: usize, hi: usize) -> usize {
        let t = &*self.threads[tid];
        let mut item = Some(item);
        loop {
            let q = lo + t.rng.below((hi - lo) as u64) as usize;
            let slot = &*self.slots[q];
            match slot.heap.try_lock() {
                Some(mut g) => {
                    g.push(pri, item.take().expect("item filed once"));
                    Self::publish_top(slot, &g);
                    if R::ENABLED {
                        self.recorder.record_event(CounterEvent::LockAcquire);
                    }
                    return q;
                }
                None => {
                    self.ctl.note_cas_retry();
                    if R::ENABLED {
                        self.recorder.record_event(CounterEvent::CasRetry);
                    }
                }
            }
        }
    }

    /// Pops the best item reachable inside node `node`'s partition: local
    /// two-choice with a definitive blocking sweep of the partition as the
    /// empty fallback. `None` means every slot of the partition was seen
    /// empty. Never charges — the caller is responsible for any remote
    /// accounting.
    fn pop_from_node(&self, tid: usize, node: usize) -> Option<(usize, T)> {
        let (lo, hi) = self.topo.slot_range(node, self.slots.len());
        let t = &*self.threads[tid];
        loop {
            let (a, b) = self.draw_pair_in(t, lo, hi);
            let top_a = self.slots[a].top.load(Ordering::Acquire);
            let top_b = self.slots[b].top.load(Ordering::Acquire);
            if top_a == EMPTY_TOP && top_b == EMPTY_TOP {
                // Definitive partition sweep.
                for slot in self.slots[lo..hi].iter() {
                    let mut g = slot.heap.lock();
                    if R::ENABLED {
                        self.recorder.record_event(CounterEvent::LockAcquire);
                    }
                    if let Some(out) = g.pop() {
                        Self::publish_top(slot, &g);
                        return Some(out);
                    }
                    Self::publish_top(slot, &g);
                }
                return None;
            }
            let q = if top_b < top_a { b } else { a };
            let slot = &*self.slots[q];
            match slot.heap.try_lock() {
                Some(mut g) => {
                    if R::ENABLED {
                        self.recorder.record_event(CounterEvent::LockAcquire);
                    }
                    let out = g.pop();
                    Self::publish_top(slot, &g);
                    if let Some(out) = out {
                        return Some(out);
                    }
                    // Raced empty under a stale top: repaired above, retry.
                }
                None => {
                    self.ctl.note_cas_retry();
                    if R::ENABLED {
                        self.recorder.record_event(CounterEvent::CasRetry);
                    }
                }
            }
        }
    }

    /// Serves every delegation request currently pending on `node` (the
    /// calling thread's home). Each claim pops from the local partition and
    /// hands the response back for two charged transfers — the saving over
    /// the requester's three-transfer direct episode.
    fn serve_pending(&self, tid: usize, node: usize) {
        if self.pending[node].load(Ordering::Acquire) == 0 {
            return;
        }
        for ctx in self.threads.iter() {
            let ctx = &**ctx;
            if ctx.state.load(Ordering::Acquire) != REQ || ctx.node.load(Ordering::Relaxed) != node
            {
                continue;
            }
            if ctx
                .state
                .compare_exchange(REQ, CLAIMED, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
            {
                continue; // Lost to the canceller or another server.
            }
            // Re-read the target under the claim's exclusivity: between the
            // screen above and the CAS, the requester may have cancelled
            // and re-published toward a *different* home. Serving whatever
            // was actually claimed keeps the pending counters balanced.
            let home = ctx.node.load(Ordering::Relaxed);
            self.pending[home].fetch_sub(1, Ordering::Release);
            let out = self.pop_from_node(tid, home);
            // Request read + response write: two remote transfers, paid by
            // this server (plus a full remote episode in the rare re-publish
            // race where the claimed home is not the server's own node).
            self.charge(if home == node { 2 } else { 5 });
            // Safety: CLAIMED state grants this server exclusive access to
            // the cell until it stores DONE.
            unsafe { *ctx.resp.0.get() = out };
            ctx.state.store(DONE, Ordering::Release);
            self.ctl.delegated.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Delegates a delete-min against node `home` and spins locally for the
    /// response; cancels and self-serves after [`SPIN_BUDGET`]. `my_node`
    /// is the caller's home (served periodically while spinning).
    fn delegate_pop(&self, tid: usize, home: usize, my_node: usize) -> Option<(usize, T)> {
        let t = &*self.threads[tid];
        t.node.store(home, Ordering::Relaxed);
        t.state.store(REQ, Ordering::Release);
        self.pending[home].fetch_add(1, Ordering::Release);
        let mut spins = 0u32;
        loop {
            if t.state.load(Ordering::Acquire) == DONE {
                break;
            }
            spins += 1;
            if spins >= SPIN_BUDGET {
                // Cancel: the CAS races the server's claim; whoever wins
                // owns the pending decrement.
                if t.state
                    .compare_exchange(REQ, IDLE, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
                {
                    self.pending[home].fetch_sub(1, Ordering::Release);
                    self.ctl.self_served.fetch_add(1, Ordering::Relaxed);
                    let out = self.pop_from_node(tid, home);
                    self.charge(3);
                    return out;
                }
                // A server claimed it concurrently: its response is owed
                // and imminent; keep spinning for it.
                spins = SPIN_BUDGET - YIELD_EVERY;
            }
            if spins.is_multiple_of(SERVE_EVERY) {
                self.serve_pending(tid, my_node);
            }
            if spins.is_multiple_of(YIELD_EVERY) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        // Safety: DONE grants the requester exclusive access until it
        // stores IDLE.
        let out = unsafe { (*t.resp.0.get()).take() };
        t.state.store(IDLE, Ordering::Release);
        out
    }

    /// One insert episode under the current mode. Returns whether the
    /// filing slot was remote (always `false` in delegation mode, whose
    /// inserts are node-local by construction).
    fn insert_inner(&self, tid: usize, pri: usize, item: T) -> bool {
        let my_node = self.topo.node_of_tid(tid);
        match self.ctl.mode() {
            NumaMode::Delegation => {
                let (lo, hi) = self.topo.slot_range(my_node, self.slots.len());
                self.push_into_range(tid, pri, item, lo, hi);
                false
            }
            NumaMode::Oblivious => {
                let q = self.push_into_range(tid, pri, item, 0, self.slots.len());
                let remote = self.topo.node_of_slot(q, self.slots.len()) != my_node;
                if remote {
                    self.charge(3);
                }
                remote
            }
        }
    }

    /// One delete-min episode under the current mode. Returns the item (if
    /// any) and whether the *first* two-choice draw picked a remote winner
    /// — the mode-independent contention signal the controller feeds on.
    fn delete_min_inner(&self, tid: usize) -> (Option<(usize, T)>, Option<bool>) {
        let my_node = self.topo.node_of_tid(tid);
        let t = &*self.threads[tid];
        let mut first_draw_remote = None;
        loop {
            // Global two-choice draw in both modes, so the remote-win rate
            // reads the same either way.
            let (a, b) = self.draw_pair_in(t, 0, self.slots.len());
            let top_a = self.slots[a].top.load(Ordering::Acquire);
            let top_b = self.slots[b].top.load(Ordering::Acquire);
            if top_a == EMPTY_TOP && top_b == EMPTY_TOP {
                return (self.sweep(tid, my_node), first_draw_remote);
            }
            let q = if top_b < top_a { b } else { a };
            let home = self.topo.node_of_slot(q, self.slots.len());
            let remote = home != my_node;
            first_draw_remote.get_or_insert(remote);
            if remote && self.ctl.mode() == NumaMode::Delegation {
                if !self.topo.has_server(tid, home) {
                    // Nobody could ever serve: direct three-transfer pop.
                    self.ctl.self_served.fetch_add(1, Ordering::Relaxed);
                    let out = self.pop_from_node(tid, home);
                    self.charge(3);
                    if out.is_some() {
                        return (out, first_draw_remote);
                    }
                    continue; // Partition drained: redraw globally.
                }
                match self.delegate_pop(tid, home, my_node) {
                    Some(out) => return (Some(out), first_draw_remote),
                    // Partition was empty by service time; its tops are
                    // repaired, redraw globally.
                    None => continue,
                }
            }
            let slot = &*self.slots[q];
            match slot.heap.try_lock() {
                Some(mut g) => {
                    if R::ENABLED {
                        self.recorder.record_event(CounterEvent::LockAcquire);
                    }
                    let out = g.pop();
                    Self::publish_top(slot, &g);
                    match out {
                        Some(out) => {
                            if remote {
                                self.charge(3);
                            }
                            return (Some(out), first_draw_remote);
                        }
                        None => continue, // Stale top repaired above.
                    }
                }
                None => {
                    self.ctl.note_cas_retry();
                    if R::ENABLED {
                        self.recorder.record_event(CounterEvent::CasRetry);
                    }
                }
            }
        }
    }

    /// Slow path: blocking-lock every heap in order and pop the first
    /// non-empty one. `None` from here means every heap was seen empty —
    /// the quiescent-emptiness guarantee. Remote pops (not mere probes) are
    /// charged.
    fn sweep(&self, _tid: usize, my_node: usize) -> Option<(usize, T)> {
        for (q, slot) in self.slots.iter().enumerate() {
            let mut g = slot.heap.lock();
            if R::ENABLED {
                self.recorder.record_event(CounterEvent::LockAcquire);
            }
            if let Some(out) = g.pop() {
                Self::publish_top(slot, &g);
                if self.topo.node_of_slot(q, self.slots.len()) != my_node {
                    self.charge(3);
                }
                return Some(out);
            }
            Self::publish_top(slot, &g);
        }
        None
    }
}

impl<T: Send, R: Recorder> BoundedPq<T> for NumaPq<T, R> {
    fn algorithm(&self) -> Algorithm {
        Algorithm::NumaPq
    }

    fn num_priorities(&self) -> usize {
        self.num_priorities
    }

    fn max_threads(&self) -> usize {
        self.max_threads
    }

    #[inline]
    fn try_insert(&self, tid: usize, pri: usize, item: T) -> Result<(), PqError<T>> {
        if tid >= self.max_threads {
            return Err(PqError::TidOutOfRange {
                tid,
                max_threads: self.max_threads,
                item,
            });
        }
        if pri >= self.num_priorities {
            return Err(PqError::PriorityOutOfRange {
                pri,
                num_priorities: self.num_priorities,
                item,
            });
        }
        obs::timed(&*self.recorder, OpKind::Insert, || {
            self.insert_inner(tid, pri, item)
        });
        self.finish_op(tid, None);
        Ok(())
    }

    fn delete_min(&self, tid: usize) -> Option<(usize, T)> {
        assert!(tid < self.max_threads, "tid {tid} out of range");
        let (out, remote_win) = obs::timed(&*self.recorder, OpKind::DeleteMin, || {
            self.delete_min_inner(tid)
        });
        self.finish_op(tid, remote_win);
        if R::ENABLED && out.is_none() {
            self.recorder.record_event(CounterEvent::EmptyDeleteMin);
        }
        out
    }

    // The whole batch lands in one slot under one lock episode: node-local
    // in delegation mode, anywhere (with the remote episode charged) in
    // oblivious mode.
    fn insert_batch(&self, tid: usize, mut batch: Vec<(usize, T)>) -> Result<(), PqBatchError<T>> {
        if batch.is_empty() {
            return Ok(());
        }
        if tid >= self.max_threads {
            let max_threads = self.max_threads;
            return Err(batch_reject(batch, 0, |_, item| PqError::TidOutOfRange {
                tid,
                max_threads,
                item,
            }));
        }
        if let Some(bad) = batch
            .iter()
            .position(|&(pri, _)| pri >= self.num_priorities)
        {
            let num_priorities = self.num_priorities;
            return Err(batch_reject(batch, bad, |pri, item| {
                PqError::PriorityOutOfRange {
                    pri,
                    num_priorities,
                    item,
                }
            }));
        }
        batch.sort_unstable_by_key(|&(pri, _)| pri);
        let n = batch.len() as u64;
        obs::timed(&*self.recorder, OpKind::InsertBatch, || {
            let my_node = self.topo.node_of_tid(tid);
            let (lo, hi) = match self.ctl.mode() {
                NumaMode::Delegation => self.topo.slot_range(my_node, self.slots.len()),
                NumaMode::Oblivious => (0, self.slots.len()),
            };
            let t = &*self.threads[tid];
            let mut batch = Some(batch);
            loop {
                let q = lo + t.rng.below((hi - lo) as u64) as usize;
                let slot = &*self.slots[q];
                match slot.heap.try_lock() {
                    Some(mut g) => {
                        for (pri, item) in batch.take().expect("batch consumed once") {
                            g.push(pri, item);
                        }
                        Self::publish_top(slot, &g);
                        if R::ENABLED {
                            self.recorder.record_event(CounterEvent::LockAcquire);
                        }
                        if self.topo.node_of_slot(q, self.slots.len()) != my_node {
                            self.charge(3);
                        }
                        return;
                    }
                    None => {
                        self.ctl.note_cas_retry();
                        if R::ENABLED {
                            self.recorder.record_event(CounterEvent::CasRetry);
                        }
                    }
                }
            }
        });
        self.finish_op(tid, None);
        obs::record_batch_op(&*self.recorder, n);
        Ok(())
    }

    // A loop of single delete episodes (each possibly delegated) under one
    // timing span; the whole batch counts as one operation against the
    // adaptive epoch and fires one `BatchOp`.
    fn delete_min_batch(&self, tid: usize, k: usize, out: &mut Vec<(usize, T)>) -> usize {
        assert!(tid < self.max_threads, "tid {tid} out of range");
        if k == 0 {
            return 0;
        }
        let mut remote_win = None;
        let taken = obs::timed(&*self.recorder, OpKind::DeleteMinBatch, || {
            let mut taken = 0;
            while taken < k {
                let (e, win) = self.delete_min_inner(tid);
                remote_win = remote_win.or(win);
                match e {
                    Some(e) => {
                        out.push(e);
                        taken += 1;
                    }
                    None => break,
                }
            }
            taken
        });
        self.finish_op(tid, remote_win);
        obs::record_batch_op(&*self.recorder, taken as u64);
        if R::ENABLED && taken == 0 {
            self.recorder.record_event(CounterEvent::EmptyDeleteMin);
        }
        taken
    }

    // Fused as delete-then-insert: the delete may be delegated, the insert
    // follows the mode's placement; one timing span, one `BatchOp`, one
    // operation against the adaptive epoch.
    fn replace_min(&self, tid: usize, pri: usize, item: T) -> Option<(usize, T)> {
        assert!(tid < self.max_threads, "tid {tid} out of range");
        if pri >= self.num_priorities {
            reject(&PqError::PriorityOutOfRange {
                pri,
                num_priorities: self.num_priorities,
                item: (),
            });
        }
        let mut remote_win = None;
        let out = obs::timed(&*self.recorder, OpKind::ReplaceMin, || {
            let (removed, win) = self.delete_min_inner(tid);
            remote_win = win;
            self.insert_inner(tid, pri, item);
            removed
        });
        self.finish_op(tid, remote_win);
        obs::record_batch_op(&*self.recorder, 1);
        if R::ENABLED && out.is_none() {
            self.recorder.record_event(CounterEvent::EmptyDeleteMin);
        }
        out
    }

    // Delegated deletes interleave other threads' service episodes into a
    // drain, so batch-internal order does not isolate this queue's own
    // relaxation; keep the conservative default.
    fn ordered_batch_drain(&self) -> bool {
        false
    }

    fn is_empty(&self) -> bool {
        self.slots
            .iter()
            .all(|s| s.top.load(Ordering::Acquire) == EMPTY_TOP)
    }

    fn consistency(&self) -> Consistency {
        Consistency::Relaxed
    }

    fn adaptive_stats(&self) -> Option<AdaptiveStats> {
        Some(self.ctl.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::NumaPolicy;
    use std::collections::BTreeSet;

    fn cfg() -> NumaConfig {
        NumaConfig::default()
    }

    #[test]
    fn conserves_elements_single_thread() {
        let q = NumaPq::new(32, 1, cfg());
        assert!(q.is_empty());
        for i in 0..100usize {
            q.insert(0, (i * 7) % 32, i);
        }
        assert!(!q.is_empty());
        let mut got = BTreeSet::new();
        while let Some((pri, item)) = q.delete_min(0) {
            assert_eq!(pri, (item * 7) % 32);
            assert!(got.insert(item), "item {item} returned twice");
        }
        assert_eq!(got.len(), 100, "every insert must drain");
        assert!(q.is_empty());
        assert_eq!(q.delete_min(0), None);
    }

    #[test]
    fn conserves_elements_in_pinned_delegation_mode() {
        // With one thread per node, every remote winner lacks a server and
        // self-serves — the delegation plumbing's degenerate path.
        let q = NumaPq::new(
            32,
            2,
            NumaConfig {
                policy: NumaPolicy::Pinned(NumaMode::Delegation),
                ..cfg()
            },
        );
        assert_eq!(q.mode(), NumaMode::Delegation);
        for i in 0..100usize {
            q.insert(i % 2, (i * 7) % 32, i);
        }
        let mut got = BTreeSet::new();
        while let Some((_, item)) = q.delete_min(0) {
            assert!(got.insert(item), "item {item} returned twice");
        }
        assert_eq!(got.len(), 100);
        assert!(q.is_empty());
        let s = q.adaptive_stats().unwrap();
        assert_eq!(s.mode, NumaMode::Delegation);
        assert_eq!(s.switches, 0);
    }

    #[test]
    fn concurrent_delegation_conserves_and_delegates() {
        // Four threads on two nodes, delegation pinned: remote winners are
        // served cross-thread. Conservation must hold and some requests
        // must actually flow through the protocol.
        use std::sync::Arc as StdArc;
        const T: usize = 4;
        const N: usize = 800;
        let q = StdArc::new(NumaPq::new(
            16,
            T,
            NumaConfig {
                policy: NumaPolicy::Pinned(NumaMode::Delegation),
                ..cfg()
            },
        ));
        let handles: Vec<_> = (0..T)
            .map(|tid| {
                let q = StdArc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    for i in 0..N {
                        q.insert(tid, (tid + i) % 16, tid * N + i);
                        if i % 2 == 1 {
                            if let Some((_, item)) = q.delete_min(tid) {
                                got.push(item);
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        let mut seen = BTreeSet::new();
        for h in handles {
            for item in h.join().unwrap() {
                assert!(seen.insert(item), "item {item} returned twice");
            }
        }
        while let Some((_, item)) = q.delete_min(0) {
            assert!(seen.insert(item), "item {item} returned twice");
        }
        assert_eq!(seen.len(), T * N, "inserted and drained counts must match");
        assert!(q.is_empty());
        let s = q.adaptive_stats().unwrap();
        assert!(
            s.delegated + s.self_served > 0,
            "delegation mode never exercised the protocol: {s:?}"
        );
    }

    #[test]
    fn adaptive_mode_switches_under_emulated_remote_cost() {
        // Sequential workload, tiny epochs: with a huge emulated remote
        // cost the controller must leave oblivious mode, and dropping the
        // cost to zero must bring it back.
        let q = NumaPq::new(
            16,
            2,
            NumaConfig {
                epoch_ops: 16,
                ..cfg()
            },
        );
        assert_eq!(q.mode(), NumaMode::Oblivious);
        q.topology().set_remote_ns(2_000);
        for i in 0..400usize {
            q.insert(0, i % 16, i);
            q.delete_min(0);
        }
        assert_eq!(q.mode(), NumaMode::Delegation, "{:?}", q.adaptive_stats());
        q.topology().set_remote_ns(0);
        for i in 0..400usize {
            q.insert(0, i % 16, i);
            q.delete_min(0);
        }
        assert_eq!(q.mode(), NumaMode::Oblivious, "{:?}", q.adaptive_stats());
        let s = q.adaptive_stats().unwrap();
        assert!(s.switches >= 2, "expected a there-and-back flip: {s:?}");
        assert!(s.remote_transfers > 0, "remote episodes were never charged");
    }

    #[test]
    fn batch_ops_conserve_elements() {
        let q = NumaPq::new(32, 1, cfg());
        let batch: Vec<(usize, usize)> = (0..100).map(|i| ((i * 7) % 32, i)).collect();
        q.insert_batch(0, batch).unwrap();
        let swapped = q.replace_min(0, 31, 1000).expect("queue is non-empty");
        let mut got = BTreeSet::new();
        got.insert(swapped.1);
        let mut out = Vec::new();
        loop {
            out.clear();
            let n = q.delete_min_batch(0, 8, &mut out);
            for (_, item) in out.drain(..) {
                assert!(got.insert(item), "item {item} returned twice");
            }
            if n == 0 {
                break;
            }
        }
        assert_eq!(got.len(), 101, "100 batched + 1 via replace_min");
        assert!(q.is_empty());
    }

    #[test]
    fn batch_insert_validates_without_filing() {
        let q = NumaPq::new(4, 1, cfg());
        let err = q.insert_batch(0, vec![(0, 'a'), (9, 'x')]).unwrap_err();
        assert_eq!(err.failed_pri, 9);
        assert_eq!(err.unconsumed_len(), 2);
        assert!(q.is_empty());
    }

    #[test]
    fn replace_min_on_empty_queue_still_files() {
        let q = NumaPq::new(8, 1, cfg());
        assert_eq!(q.replace_min(0, 3, "x"), None);
        assert_eq!(q.delete_min(0), Some((3, "x")));
        assert!(q.is_empty());
    }

    #[test]
    fn reports_relaxed_consistency_and_stats() {
        let q: NumaPq<()> = NumaPq::new(4, 1, cfg());
        assert_eq!(q.algorithm(), Algorithm::NumaPq);
        assert_eq!(q.consistency(), Consistency::Relaxed);
        assert!(q.adaptive_stats().is_some());
        assert!(q.num_queues() >= 2);
    }

    #[test]
    fn try_insert_returns_the_item() {
        let q = NumaPq::new(4, 1, cfg());
        let err = q.try_insert(0, 9, "hot").unwrap_err();
        assert_eq!(err.into_item(), "hot");
        let err = q.try_insert(5, 0, "tid").unwrap_err();
        assert_eq!(err.into_item(), "tid");
        assert!(q.is_empty());
    }

    #[test]
    fn every_node_owns_a_two_choice_pair() {
        // factor 1 on one thread would give a single heap; the 2·nodes
        // floor must kick in.
        let q: NumaPq<u64> = NumaPq::new(
            8,
            2,
            NumaConfig {
                factor: 1,
                nodes: 2,
                ..cfg()
            },
        );
        assert!(q.num_queues() >= 4);
        // And a node count beyond the thread count is clamped.
        let q: NumaPq<u64> = NumaPq::new(8, 2, NumaConfig { nodes: 64, ..cfg() });
        assert_eq!(q.topology().nodes(), 2);
    }
}
