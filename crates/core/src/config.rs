//! Typed per-algorithm construction configs: the [`PqConfig`] enum.
//!
//! [`crate::PqBuilder`] originally exposed every algorithm-specific knob as
//! a flat method (`hunt_capacity`, `skiplist_seed`, `multiqueue_factor`, …)
//! that silently applied or not depending on the algorithm. That was
//! convenient for sweeps but made it impossible to tell from a type which
//! knobs a given algorithm actually has — and let callers configure
//! contradictions the builder could only ignore. This module replaces the
//! knob soup with one config struct per algorithm, grouped under
//! [`PqConfig`]; the old builder methods remain as deprecated shims that
//! rewrite into these structs.
//!
//! Each struct derives [`Default`] with the same defaults the flat knobs
//! had, so `PqConfig::for_algorithm(a)` (or a struct literal with
//! `..Default::default()`) reproduces the old behaviour exactly.
//!
//! ```
//! use funnelpq::{MultiQueueConfig, PqBuilder, PqConfig};
//!
//! let cfg = PqConfig::MultiQueue(MultiQueueConfig {
//!     factor: 4,
//!     ..Default::default()
//! });
//! let q = PqBuilder::from_config(cfg, 16, 2).build::<u64>();
//! q.insert(0, 3, 30);
//! assert_eq!(q.delete_min(1), Some((3, 30)));
//! ```

use funnelpq_sync::{BinOrder, FunnelConfig};

use crate::adaptive::NumaPolicy;
use crate::algorithm::Algorithm;
use crate::builder::BuildError;
use crate::funnel_tree::DEFAULT_FUNNEL_LEVELS;
use crate::multiqueue::{DEFAULT_MQ_FACTOR, DEFAULT_MQ_SEED, DEFAULT_MQ_STICKINESS};

/// Config for [`Algorithm::HuntEtAl`]: its heap is pre-allocated, so the
/// capacity is fixed at construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HuntConfig {
    /// Fixed item capacity of the pre-allocated heap. Must be at least 1.
    pub capacity: usize,
}

impl Default for HuntConfig {
    fn default() -> Self {
        HuntConfig { capacity: 1 << 16 }
    }
}

/// Config for [`Algorithm::SkipList`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkipListConfig {
    /// Tower-height RNG seed.
    pub seed: u64,
}

impl Default for SkipListConfig {
    fn default() -> Self {
        SkipListConfig { seed: 0x5EED_CAFE }
    }
}

/// Config for the locked-bin queues [`Algorithm::SimpleLinear`] and
/// [`Algorithm::SimpleTree`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BinPqConfig {
    /// Removal order among equal-priority items. Default LIFO, the paper's
    /// choice.
    pub order: BinOrder,
}

/// Config for [`Algorithm::LinearFunnels`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinearFunnelsConfig {
    /// Explicit combining-funnel parameters, or `None` for
    /// [`FunnelConfig::for_threads`] at build time.
    pub funnel: Option<FunnelConfig>,
}

/// Config for [`Algorithm::FunnelTree`].
#[derive(Debug, Clone, PartialEq)]
pub struct FunnelTreeConfig {
    /// Explicit combining-funnel parameters, or `None` for
    /// [`FunnelConfig::for_threads`] at build time.
    pub funnel: Option<FunnelConfig>,
    /// Number of counter-tree levels served by funnel counters (the rest
    /// use plain MCS-locked counters). Must be at least 1.
    pub funnel_levels: usize,
}

impl Default for FunnelTreeConfig {
    fn default() -> Self {
        FunnelTreeConfig {
            funnel: None,
            funnel_levels: DEFAULT_FUNNEL_LEVELS,
        }
    }
}

/// Config for the relaxed [`Algorithm::MultiQueue`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiQueueConfig {
    /// Internal-heap ratio `c`: the queue holds `c · max_threads` heaps
    /// (minimum two). Must be at least 1. Default 2, the MultiQueues
    /// paper's baseline; larger values buy less contention at the price of
    /// a larger rank-error envelope.
    pub factor: usize,
    /// Queue-choice stickiness: consecutive operations re-using the last
    /// choice before re-drawing. Must be at least 1 (1 disables). Default 8.
    pub stickiness: u32,
    /// Per-thread choice-RNG seed.
    pub seed: u64,
}

impl Default for MultiQueueConfig {
    fn default() -> Self {
        MultiQueueConfig {
            factor: DEFAULT_MQ_FACTOR,
            stickiness: DEFAULT_MQ_STICKINESS,
            seed: DEFAULT_MQ_SEED,
        }
    }
}

/// Config for the NUMA-adaptive [`Algorithm::NumaPq`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NumaConfig {
    /// NUMA nodes to partition threads and heaps over. Must be at least 1;
    /// clamped to `max_threads` at build time (an unthreaded node could
    /// never serve a delegated request). Default 2, the smallest topology
    /// with a local/remote distinction.
    pub nodes: usize,
    /// Internal-heap ratio `c` as in the MultiQueue: the queue holds
    /// `max(c · max_threads, 2 · nodes)` heaps. Must be at least 1.
    pub factor: usize,
    /// Per-thread choice-RNG seed.
    pub seed: u64,
    /// Emulated cost of one remote cache-line transfer in nanoseconds,
    /// charged as a calibrated busy-wait (see [`crate::Topology`]). Zero —
    /// the default — disables the emulation; benches raise it to make the
    /// NUMA crossover measurable on UMA hosts, and it stays live through
    /// [`crate::Topology::set_remote_ns`].
    pub remote_ns: u64,
    /// Operations per adaptive-controller epoch. Must be at least 1.
    pub epoch_ops: u32,
    /// Mode policy: adaptive (default) or pinned to one static mode.
    pub policy: NumaPolicy,
}

impl Default for NumaConfig {
    fn default() -> Self {
        NumaConfig {
            nodes: 2,
            factor: DEFAULT_MQ_FACTOR,
            seed: DEFAULT_MQ_SEED,
            remote_ns: 0,
            epoch_ops: 256,
            policy: NumaPolicy::Adaptive,
        }
    }
}

/// Typed construction parameters for every natively-buildable algorithm:
/// one variant per algorithm, carrying exactly the knobs that algorithm
/// has. [`Algorithm::HardwareTree`] has no variant — it exists only on the
/// simulator side, so "not constructible" is a type-level fact here rather
/// than a runtime error.
#[derive(Debug, Clone, PartialEq)]
pub enum PqConfig {
    /// Heap under one MCS lock; no knobs.
    SingleLock,
    /// Hunt et al. concurrent heap.
    HuntEtAl(HuntConfig),
    /// Bounded-range skip list of bins.
    SkipList(SkipListConfig),
    /// Array of MCS-locked bins.
    SimpleLinear(BinPqConfig),
    /// Tree of MCS-locked counters over locked bins.
    SimpleTree(BinPqConfig),
    /// Array of combining-funnel stacks.
    LinearFunnels(LinearFunnelsConfig),
    /// Tree with funnel counters at the top and funnel-stack bins.
    FunnelTree(FunnelTreeConfig),
    /// Relaxed MultiQueue.
    MultiQueue(MultiQueueConfig),
    /// NUMA-adaptive partitioned MultiQueue with a delegation layer.
    NumaPq(NumaConfig),
}

impl PqConfig {
    /// The default config for `algorithm`, or `None` for
    /// [`Algorithm::HardwareTree`] (simulator-only, nothing to configure
    /// natively).
    pub fn for_algorithm(algorithm: Algorithm) -> Option<PqConfig> {
        Some(match algorithm {
            Algorithm::SingleLock => PqConfig::SingleLock,
            Algorithm::HuntEtAl => PqConfig::HuntEtAl(HuntConfig::default()),
            Algorithm::SkipList => PqConfig::SkipList(SkipListConfig::default()),
            Algorithm::SimpleLinear => PqConfig::SimpleLinear(BinPqConfig::default()),
            Algorithm::SimpleTree => PqConfig::SimpleTree(BinPqConfig::default()),
            Algorithm::LinearFunnels => PqConfig::LinearFunnels(LinearFunnelsConfig::default()),
            Algorithm::FunnelTree => PqConfig::FunnelTree(FunnelTreeConfig::default()),
            Algorithm::MultiQueue => PqConfig::MultiQueue(MultiQueueConfig::default()),
            Algorithm::NumaPq => PqConfig::NumaPq(NumaConfig::default()),
            Algorithm::HardwareTree => return None,
        })
    }

    /// Which algorithm this config builds.
    pub fn algorithm(&self) -> Algorithm {
        match self {
            PqConfig::SingleLock => Algorithm::SingleLock,
            PqConfig::HuntEtAl(_) => Algorithm::HuntEtAl,
            PqConfig::SkipList(_) => Algorithm::SkipList,
            PqConfig::SimpleLinear(_) => Algorithm::SimpleLinear,
            PqConfig::SimpleTree(_) => Algorithm::SimpleTree,
            PqConfig::LinearFunnels(_) => Algorithm::LinearFunnels,
            PqConfig::FunnelTree(_) => Algorithm::FunnelTree,
            PqConfig::MultiQueue(_) => Algorithm::MultiQueue,
            PqConfig::NumaPq(_) => Algorithm::NumaPq,
        }
    }

    /// Checks the parameter ranges a queue constructor would otherwise
    /// assert on, so [`crate::PqBuilder::try_build`] reports them as typed
    /// [`BuildError::InvalidConfig`] values instead of panicking.
    pub fn validate(&self) -> Result<(), BuildError> {
        let invalid = |reason| {
            Err(BuildError::InvalidConfig {
                algorithm: self.algorithm(),
                reason,
            })
        };
        match self {
            PqConfig::HuntEtAl(c) if c.capacity == 0 => invalid("capacity must be at least 1"),
            PqConfig::FunnelTree(c) if c.funnel_levels == 0 => {
                invalid("funnel_levels must be at least 1")
            }
            PqConfig::MultiQueue(c) if c.factor == 0 => invalid("factor must be at least 1"),
            PqConfig::MultiQueue(c) if c.stickiness == 0 => {
                invalid("stickiness must be at least 1")
            }
            PqConfig::NumaPq(c) if c.nodes == 0 => invalid("nodes must be at least 1"),
            PqConfig::NumaPq(c) if c.factor == 0 => invalid("factor must be at least 1"),
            PqConfig::NumaPq(c) if c.epoch_ops == 0 => invalid("epoch_ops must be at least 1"),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_old_flat_knob_defaults() {
        assert_eq!(HuntConfig::default().capacity, 1 << 16);
        assert_eq!(SkipListConfig::default().seed, 0x5EED_CAFE);
        assert_eq!(BinPqConfig::default().order, BinOrder::Lifo);
        assert_eq!(LinearFunnelsConfig::default().funnel, None);
        let ft = FunnelTreeConfig::default();
        assert_eq!(ft.funnel, None);
        assert_eq!(ft.funnel_levels, DEFAULT_FUNNEL_LEVELS);
        let mq = MultiQueueConfig::default();
        assert_eq!(mq.factor, DEFAULT_MQ_FACTOR);
        assert_eq!(mq.stickiness, DEFAULT_MQ_STICKINESS);
        assert_eq!(mq.seed, DEFAULT_MQ_SEED);
    }

    #[test]
    fn for_algorithm_round_trips_and_skips_hardware_tree() {
        for a in Algorithm::EVERY {
            match PqConfig::for_algorithm(a) {
                Some(cfg) => {
                    assert_eq!(cfg.algorithm(), a);
                    assert_eq!(cfg.validate(), Ok(()));
                }
                None => assert_eq!(a, Algorithm::HardwareTree),
            }
        }
    }

    #[test]
    fn validate_catches_degenerate_parameters() {
        let bad = PqConfig::MultiQueue(MultiQueueConfig {
            factor: 0,
            ..Default::default()
        });
        assert_eq!(
            bad.validate(),
            Err(BuildError::InvalidConfig {
                algorithm: Algorithm::MultiQueue,
                reason: "factor must be at least 1",
            })
        );
        let bad = PqConfig::MultiQueue(MultiQueueConfig {
            stickiness: 0,
            ..Default::default()
        });
        assert!(matches!(
            bad.validate(),
            Err(BuildError::InvalidConfig { .. })
        ));
        let bad = PqConfig::HuntEtAl(HuntConfig { capacity: 0 });
        assert!(bad.validate().is_err());
        let bad = PqConfig::FunnelTree(FunnelTreeConfig {
            funnel_levels: 0,
            ..Default::default()
        });
        assert!(bad.validate().is_err());
    }
}
