//! The NUMA mode controller: flips [`crate::NumaPq`] between its
//! NUMA-oblivious and delegation modes from live contention signals.
//!
//! SmartPQ's observation (arXiv 2406.06900) is that neither mode wins
//! everywhere: under low contention a delegation layer only adds a
//! request/response round trip to operations a thread could have done
//! itself, while under high contention — or a high remote-access cost —
//! serving delete-min from threads co-located with the hot lines beats
//! every thread pulling those lines across the interconnect. So the mode
//! must follow the workload at run time.
//!
//! The controller is epoch-based: every [`NumaConfig::epoch_ops`]-th
//! completed operation closes an epoch, and the closing thread scores the
//! window with a *mode-independent* pressure signal measured in
//! nanoseconds-per-operation:
//!
//! ```text
//! pressure = remote_win_rate · 3·remote_ns  +  cas_retry_rate · 150ns
//! ```
//!
//! `remote_win_rate` is the fraction of delete-side two-choice draws whose
//! winner was homed on a remote node — both modes draw globally, so the
//! signal reads the same in either mode and the loop cannot self-oscillate
//! (a mode-dependent signal like *charged* remote time would collapse the
//! moment delegation engages, and the controller would thrash). The CAS
//! term folds in try-lock contention at an assumed retry cost.
//!
//! Hysteresis is double: an enter/exit threshold gap (600 vs 150 ns/op)
//! plus a two-epoch streak requirement, so one noisy epoch never flips the
//! mode. While delegation is in effect the score additionally carries a
//! structural floor of `3·remote_ns·(nodes-1)/nodes` — see
//! [`AdaptiveCtl::close_epoch`]'s comment — so remote traffic *avoided* by
//! delegation is not mistaken for remote traffic being cheap.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};

use crate::topology::Topology;

/// Which serving discipline [`crate::NumaPq`] is currently using.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NumaMode {
    /// NUMA-oblivious: every thread operates on any slot directly, exactly
    /// like the plain MultiQueue. Best when remote accesses are cheap.
    Oblivious,
    /// Delegation: inserts stay node-local, and a delete-min whose
    /// two-choice winner is remote is served by a thread co-located with
    /// that slot (the requester publishes a request and spins locally).
    Delegation,
}

impl NumaMode {
    /// Stable snake_case name, used in JSON telemetry.
    pub fn name(self) -> &'static str {
        match self {
            NumaMode::Oblivious => "oblivious",
            NumaMode::Delegation => "delegation",
        }
    }
}

impl std::fmt::Display for NumaMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How [`crate::NumaPq`] picks its mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NumaPolicy {
    /// Let the controller flip modes per epoch (the default).
    #[default]
    Adaptive,
    /// Pin one mode forever — the static baselines a sweep compares the
    /// adaptive controller against.
    Pinned(NumaMode),
}

/// A snapshot of the controller, exposed through
/// [`crate::BoundedPq::adaptive_stats`] so the serving layer can observe
/// hot-swaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveStats {
    /// Mode in effect when the snapshot was taken.
    pub mode: NumaMode,
    /// Mode switches since construction.
    pub switches: u64,
    /// Closed epochs since construction.
    pub epochs: u64,
    /// Delete-mins served remotely through the delegation protocol.
    pub delegated: u64,
    /// Delegation requests that timed out and were self-served.
    pub self_served: u64,
    /// Emulated remote cache-line transfers charged so far.
    pub remote_transfers: u64,
}

/// Pressure (ns/op) above which an epoch votes for delegation.
const ENTER_NS: u64 = 600;
/// Pressure (ns/op) below which an epoch votes for oblivious. The gap to
/// [`ENTER_NS`] is the hysteresis dead band: epochs landing between the
/// two vote for whatever mode is already in effect.
const EXIT_NS: u64 = 150;
/// Assumed cost of one failed try-lock CAS, folding lock contention into
/// the pressure score.
const CAS_RETRY_NS: u64 = 150;
/// Consecutive epochs that must vote against the current mode to flip it.
const STREAK: u32 = 2;

/// The controller state shared by all threads of one queue. All counters
/// are plain relaxed atomics: epoch boundaries are claimed by a single CAS
/// and a slightly torn window only perturbs one vote, which the streak
/// requirement absorbs.
#[derive(Debug)]
pub(crate) struct AdaptiveCtl {
    mode: AtomicU8,
    pinned: bool,
    epoch_ops: u64,
    /// Operations completed in the current epoch.
    ops: AtomicU64,
    /// Delete-side two-choice draws whose winner was remote, this epoch.
    remote_wins: AtomicU64,
    /// Failed try-lock acquisitions, this epoch.
    cas_retries: AtomicU64,
    /// Consecutive closed epochs voting against the current mode.
    streak: AtomicU32,
    switches: AtomicU64,
    epochs: AtomicU64,
    pub(crate) delegated: AtomicU64,
    pub(crate) self_served: AtomicU64,
    pub(crate) remote_transfers: AtomicU64,
}

impl AdaptiveCtl {
    pub(crate) fn new(policy: NumaPolicy, epoch_ops: u32) -> Self {
        let (mode, pinned) = match policy {
            NumaPolicy::Adaptive => (NumaMode::Oblivious, false),
            NumaPolicy::Pinned(m) => (m, true),
        };
        AdaptiveCtl {
            mode: AtomicU8::new(mode as u8),
            pinned,
            epoch_ops: u64::from(epoch_ops.max(1)),
            ops: AtomicU64::new(0),
            remote_wins: AtomicU64::new(0),
            cas_retries: AtomicU64::new(0),
            streak: AtomicU32::new(0),
            switches: AtomicU64::new(0),
            epochs: AtomicU64::new(0),
            delegated: AtomicU64::new(0),
            self_served: AtomicU64::new(0),
            remote_transfers: AtomicU64::new(0),
        }
    }

    #[inline]
    pub(crate) fn mode(&self) -> NumaMode {
        if self.mode.load(Ordering::Relaxed) == NumaMode::Delegation as u8 {
            NumaMode::Delegation
        } else {
            NumaMode::Oblivious
        }
    }

    #[inline]
    pub(crate) fn note_cas_retry(&self) {
        self.cas_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Closes the bookkeeping for one completed operation; `remote_win` is
    /// `Some(true)` when a delete-side two-choice draw picked a remote
    /// winner. Returns `true` when this call closed an epoch *and* flipped
    /// the mode, so the caller can record the switch event.
    #[inline]
    pub(crate) fn note_op(&self, remote_win: Option<bool>, topo: &Topology) -> bool {
        if remote_win == Some(true) {
            self.remote_wins.fetch_add(1, Ordering::Relaxed);
        }
        let n = self.ops.fetch_add(1, Ordering::Relaxed) + 1;
        if n < self.epoch_ops {
            return false;
        }
        // One thread claims the epoch boundary; the losers just keep
        // counting into the next window.
        if self
            .ops
            .compare_exchange(n, 0, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return false;
        }
        self.close_epoch(topo)
    }

    #[cold]
    fn close_epoch(&self, topo: &Topology) -> bool {
        let wins = self.remote_wins.swap(0, Ordering::Relaxed);
        let retries = self.cas_retries.swap(0, Ordering::Relaxed);
        self.epochs.fetch_add(1, Ordering::Relaxed);
        if self.pinned {
            return false;
        }
        // An oblivious remote lock episode moves ~3 lines; that is what
        // delegation avoids, so it is what remote wins are worth.
        let mut pressure = (wins * 3 * topo.remote_ns() + retries * CAS_RETRY_NS) / self.epoch_ops;
        let current = self.mode();
        if current == NumaMode::Delegation {
            // While delegating, inserts are node-local, remote partitions
            // drain, and the measured remote-win rate collapses — it
            // undercounts what *oblivious* mode would pay, because an
            // oblivious insert files into a uniformly random slot and hits
            // a remote one at the structural rate (nodes-1)/nodes no
            // matter the occupancy. Folding that floor into the exit
            // decision keeps the loop from oscillating: delegation is only
            // left when remote transfers are genuinely cheap, not merely
            // avoided.
            let nodes = topo.nodes() as u64;
            pressure += 3 * topo.remote_ns() * (nodes - 1) / nodes;
        }
        let want = if pressure >= ENTER_NS {
            NumaMode::Delegation
        } else if pressure <= EXIT_NS {
            NumaMode::Oblivious
        } else {
            current
        };
        if want == current {
            self.streak.store(0, Ordering::Relaxed);
            return false;
        }
        let streak = self.streak.fetch_add(1, Ordering::Relaxed) + 1;
        if streak < STREAK {
            return false;
        }
        self.streak.store(0, Ordering::Relaxed);
        self.mode.store(want as u8, Ordering::Relaxed);
        self.switches.fetch_add(1, Ordering::Relaxed);
        true
    }

    pub(crate) fn stats(&self) -> AdaptiveStats {
        AdaptiveStats {
            mode: self.mode(),
            switches: self.switches.load(Ordering::Relaxed),
            epochs: self.epochs.load(Ordering::Relaxed),
            delegated: self.delegated.load(Ordering::Relaxed),
            self_served: self.self_served.load(Ordering::Relaxed),
            remote_transfers: self.remote_transfers.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_epochs(ctl: &AdaptiveCtl, topo: &Topology, epochs: usize, remote_wins: bool) -> u64 {
        let mut switched = 0;
        for _ in 0..epochs {
            for _ in 0..ctl.epoch_ops {
                if ctl.note_op(Some(remote_wins), topo) {
                    switched += 1;
                }
            }
        }
        switched
    }

    #[test]
    fn switches_under_remote_pressure_with_streak_hysteresis() {
        let topo = Topology::new(2, 4, 2000);
        let ctl = AdaptiveCtl::new(NumaPolicy::Adaptive, 64);
        assert_eq!(ctl.mode(), NumaMode::Oblivious);
        // Every delete wins remote at 2µs/transfer: pressure 6000 ns/op.
        // One epoch is not enough (streak), two are.
        assert_eq!(run_epochs(&ctl, &topo, 1, true), 0);
        assert_eq!(ctl.mode(), NumaMode::Oblivious);
        assert_eq!(run_epochs(&ctl, &topo, 1, true), 1);
        assert_eq!(ctl.mode(), NumaMode::Delegation);
        // Pressure collapses: two quiet epochs swing it back.
        topo.set_remote_ns(0);
        assert_eq!(run_epochs(&ctl, &topo, 2, true), 1);
        assert_eq!(ctl.mode(), NumaMode::Oblivious);
        let s = ctl.stats();
        assert_eq!(s.switches, 2);
        assert_eq!(s.epochs, 4);
    }

    #[test]
    fn dead_band_keeps_the_current_mode() {
        // remote_ns such that pressure lands between EXIT and ENTER:
        // wins = epoch/2, pressure = 3 * remote_ns / 2 = 300 ns/op.
        let topo = Topology::new(2, 4, 200);
        let ctl = AdaptiveCtl::new(NumaPolicy::Adaptive, 64);
        // Alternate remote wins: half the ops win remote.
        for i in 0..(64 * 8u64) {
            assert!(!ctl.note_op(Some(i % 2 == 0), &topo), "dead band flipped");
        }
        assert_eq!(ctl.mode(), NumaMode::Oblivious);
        assert_eq!(ctl.stats().switches, 0);
    }

    #[test]
    fn pinned_policies_never_move() {
        let topo = Topology::new(2, 4, 50_000);
        let ctl = AdaptiveCtl::new(NumaPolicy::Pinned(NumaMode::Oblivious), 32);
        assert_eq!(run_epochs(&ctl, &topo, 8, true), 0);
        assert_eq!(ctl.mode(), NumaMode::Oblivious);
        let ctl = AdaptiveCtl::new(NumaPolicy::Pinned(NumaMode::Delegation), 32);
        topo.set_remote_ns(0);
        assert_eq!(run_epochs(&ctl, &topo, 8, false), 0);
        assert_eq!(ctl.mode(), NumaMode::Delegation);
        assert_eq!(ctl.stats().switches, 0);
        assert_eq!(ctl.stats().epochs, 8);
    }

    #[test]
    fn cas_retries_alone_can_push_into_delegation() {
        let topo = Topology::new(2, 4, 0);
        let ctl = AdaptiveCtl::new(NumaPolicy::Adaptive, 16);
        for _ in 0..2 {
            for _ in 0..16 {
                // >4 retries per op at 150ns each clears ENTER_NS.
                for _ in 0..5 {
                    ctl.note_cas_retry();
                }
                ctl.note_op(Some(false), &topo);
            }
        }
        assert_eq!(ctl.mode(), NumaMode::Delegation);
    }
}
