//! `SimpleTree` (paper Figure 3): tree of MCS-locked counters with
//! lock-based bins at the leaves.

use std::sync::Arc;

use funnelpq_sync::{BinOrder, Bounds, LockBin, LockedCounter};

use crate::algorithm::Algorithm;
use crate::counter_tree::CounterTree;
use crate::obs::{self, CounterEvent, NoopRecorder, OpKind, Recorder};
use crate::traits::{BoundedPq, PqError};

/// Binary tree of counters (each an MCS-locked integer) over lock-based
/// bins: `delete_min` costs `O(log N)` counter operations, `insert` half
/// that on average.
///
/// Every operation passes through the root counter, which becomes the
/// serial bottleneck at high concurrency — the behaviour `FunnelTree`
/// removes by swapping the hot counters for combining funnels.
///
/// # Examples
///
/// ```
/// use funnelpq::{BoundedPq, SimpleTreePq};
/// let q = SimpleTreePq::new(16, 4);
/// q.insert(0, 9, "i");
/// q.insert(1, 4, "d");
/// assert_eq!(q.delete_min(2), Some((4, "d")));
/// assert_eq!(q.delete_min(3), Some((9, "i")));
/// ```
#[derive(Debug)]
pub struct SimpleTreePq<T, R: Recorder = NoopRecorder> {
    tree: CounterTree<T, LockBin<T>>,
    recorder: Arc<R>,
}

impl<T: Send> SimpleTreePq<T> {
    /// Creates a queue for priorities `0..num_priorities`.
    ///
    /// # Panics
    ///
    /// Panics if `num_priorities` or `max_threads` is zero.
    pub fn new(num_priorities: usize, max_threads: usize) -> Self {
        Self::with_order(num_priorities, max_threads, BinOrder::Lifo)
    }

    /// Creates a queue whose equal-priority items come out in the given
    /// order ([`BinOrder::Fifo`] for fairness).
    ///
    /// # Panics
    ///
    /// Panics if `num_priorities` or `max_threads` is zero.
    pub fn with_order(num_priorities: usize, max_threads: usize, order: BinOrder) -> Self {
        Self::with_recorder(num_priorities, max_threads, order, Arc::new(NoopRecorder))
    }
}

impl<T: Send, R: Recorder> SimpleTreePq<T, R> {
    /// Like [`SimpleTreePq::with_order`], reporting metrics to `recorder`
    /// (counter locks and bin locks flow into the recorder's substrate
    /// sink).
    ///
    /// # Panics
    ///
    /// Panics if `num_priorities` or `max_threads` is zero.
    pub fn with_recorder(
        num_priorities: usize,
        max_threads: usize,
        order: BinOrder,
        recorder: Arc<R>,
    ) -> Self {
        let sink = recorder.sink();
        SimpleTreePq {
            tree: CounterTree::new(
                num_priorities,
                max_threads,
                |_depth| {
                    Box::new(LockedCounter::with_sink(
                        0,
                        Bounds::non_negative(),
                        sink.clone(),
                    ))
                },
                || LockBin::with_order_and_sink(order, sink.clone()),
            ),
            recorder,
        }
    }
}

impl<T: Send, R: Recorder> BoundedPq<T> for SimpleTreePq<T, R> {
    fn algorithm(&self) -> Algorithm {
        Algorithm::SimpleTree
    }

    fn num_priorities(&self) -> usize {
        self.tree.num_priorities()
    }

    fn max_threads(&self) -> usize {
        self.tree.max_threads()
    }

    // `#[inline]` lets the panicking `insert` wrapper's monomorphization
    // absorb this body, keeping the old direct-insert code shape (no extra
    // call or by-stack `Result` on the hot path).
    #[inline]
    fn try_insert(&self, tid: usize, pri: usize, item: T) -> Result<(), PqError<T>> {
        if tid >= self.tree.max_threads() {
            return Err(PqError::TidOutOfRange {
                tid,
                max_threads: self.tree.max_threads(),
                item,
            });
        }
        if pri >= self.tree.num_priorities() {
            return Err(PqError::PriorityOutOfRange {
                pri,
                num_priorities: self.tree.num_priorities(),
                item,
            });
        }
        obs::timed(&*self.recorder, OpKind::Insert, || {
            self.tree.insert(tid, pri, item)
        });
        Ok(())
    }

    fn delete_min(&self, tid: usize) -> Option<(usize, T)> {
        assert!(tid < self.tree.max_threads(), "tid {tid} out of range");
        let out = obs::timed(&*self.recorder, OpKind::DeleteMin, || {
            self.tree.delete_min(tid)
        });
        if R::ENABLED && out.is_none() {
            self.recorder.record_event(CounterEvent::EmptyDeleteMin);
        }
        out
    }

    fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_priority_order() {
        let q = SimpleTreePq::new(8, 1);
        for p in [7usize, 0, 3, 3, 5] {
            q.insert(0, p, p * 10);
        }
        let got: Vec<usize> = (0..5).map(|_| q.delete_min(0).unwrap().0).collect();
        assert_eq!(got, vec![0, 3, 3, 5, 7]);
        assert_eq!(q.delete_min(0), None);
        assert!(q.is_empty());
    }

    #[test]
    fn non_power_of_two_range() {
        let q = SimpleTreePq::new(5, 1);
        for p in (0..5).rev() {
            q.insert(0, p, p);
        }
        for p in 0..5 {
            assert_eq!(q.delete_min(0), Some((p, p)));
        }
        assert_eq!(q.delete_min(0), None);
    }

    #[test]
    fn single_priority_range() {
        let q = SimpleTreePq::new(1, 1);
        q.insert(0, 0, 'a');
        q.insert(0, 0, 'b');
        assert_eq!(q.delete_min(0).map(|e| e.0), Some(0));
        assert_eq!(q.delete_min(0).map(|e| e.0), Some(0));
        assert_eq!(q.delete_min(0), None);
    }
}
