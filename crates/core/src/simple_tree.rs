//! `SimpleTree` (paper Figure 3): tree of MCS-locked counters with
//! lock-based bins at the leaves.

use funnelpq_sync::{BinOrder, Bounds, LockBin, LockedCounter};

use crate::counter_tree::CounterTree;
use crate::traits::{BoundedPq, Consistency, PqInfo};

/// Binary tree of counters (each an MCS-locked integer) over lock-based
/// bins: `delete_min` costs `O(log N)` counter operations, `insert` half
/// that on average.
///
/// Every operation passes through the root counter, which becomes the
/// serial bottleneck at high concurrency — the behaviour `FunnelTree`
/// removes by swapping the hot counters for combining funnels.
///
/// # Examples
///
/// ```
/// use funnelpq::{BoundedPq, SimpleTreePq};
/// let q = SimpleTreePq::new(16, 4);
/// q.insert(0, 9, "i");
/// q.insert(1, 4, "d");
/// assert_eq!(q.delete_min(2), Some((4, "d")));
/// assert_eq!(q.delete_min(3), Some((9, "i")));
/// ```
#[derive(Debug)]
pub struct SimpleTreePq<T> {
    tree: CounterTree<T, LockBin<T>>,
}

impl<T: Send> SimpleTreePq<T> {
    /// Creates a queue for priorities `0..num_priorities`.
    ///
    /// # Panics
    ///
    /// Panics if `num_priorities` or `max_threads` is zero.
    pub fn new(num_priorities: usize, max_threads: usize) -> Self {
        Self::with_order(num_priorities, max_threads, BinOrder::Lifo)
    }

    /// Creates a queue whose equal-priority items come out in the given
    /// order ([`BinOrder::Fifo`] for fairness).
    ///
    /// # Panics
    ///
    /// Panics if `num_priorities` or `max_threads` is zero.
    pub fn with_order(num_priorities: usize, max_threads: usize, order: BinOrder) -> Self {
        SimpleTreePq {
            tree: CounterTree::new(
                num_priorities,
                max_threads,
                |_depth| Box::new(LockedCounter::new(0, Bounds::non_negative())),
                || LockBin::with_order(order),
            ),
        }
    }
}

impl<T: Send> BoundedPq<T> for SimpleTreePq<T> {
    fn num_priorities(&self) -> usize {
        self.tree.num_priorities()
    }
    fn max_threads(&self) -> usize {
        self.tree.max_threads()
    }
    fn insert(&self, tid: usize, pri: usize, item: T) {
        self.tree.insert(tid, pri, item);
    }
    fn delete_min(&self, tid: usize) -> Option<(usize, T)> {
        self.tree.delete_min(tid)
    }
    fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }
}

impl<T> PqInfo for SimpleTreePq<T> {
    fn algorithm_name(&self) -> &'static str {
        "SimpleTree"
    }
    fn consistency(&self) -> Consistency {
        Consistency::QuiescentlyConsistent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_priority_order() {
        let q = SimpleTreePq::new(8, 1);
        for p in [7usize, 0, 3, 3, 5] {
            q.insert(0, p, p * 10);
        }
        let got: Vec<usize> = (0..5).map(|_| q.delete_min(0).unwrap().0).collect();
        assert_eq!(got, vec![0, 3, 3, 5, 7]);
        assert_eq!(q.delete_min(0), None);
        assert!(q.is_empty());
    }

    #[test]
    fn non_power_of_two_range() {
        let q = SimpleTreePq::new(5, 1);
        for p in (0..5).rev() {
            q.insert(0, p, p);
        }
        for p in 0..5 {
            assert_eq!(q.delete_min(0), Some((p, p)));
        }
        assert_eq!(q.delete_min(0), None);
    }

    #[test]
    fn single_priority_range() {
        let q = SimpleTreePq::new(1, 1);
        q.insert(0, 0, 'a');
        q.insert(0, 0, 'b');
        assert_eq!(q.delete_min(0).map(|e| e.0), Some(0));
        assert_eq!(q.delete_min(0).map(|e| e.0), Some(0));
        assert_eq!(q.delete_min(0), None);
    }
}
