//! # funnelpq
//!
//! Scalable bounded-range concurrent priority queues, reproducing
//! Shavit & Zemach, *Scalable Concurrent Priority Queue Algorithms*
//! (PODC 1999).
//!
//! A *bounded-range* priority queue supports a fixed set of priorities
//! `0..N` (smaller = more urgent), like an OS scheduler's run queues. This
//! crate provides the paper's two new algorithms and all five baselines it
//! was evaluated against, behind one trait ([`BoundedPq`]) and one
//! construction front door ([`PqBuilder`]):
//!
//! | Type | Paper name | Structure | Consistency |
//! |------|-----------|-----------|-------------|
//! | [`SingleLockPq`] | SingleLock | heap + one MCS lock | linearizable |
//! | [`HuntPq`] | HuntEtAl | heap, per-node locks, bit-reversal | quiescent |
//! | [`SkipListPq`] | SkipList | skip list of bins + delete bin | quiescent |
//! | [`SimpleLinearPq`] | SimpleLinear | array of locked bins | linearizable |
//! | [`SimpleTreePq`] | SimpleTree | tree of locked counters | quiescent |
//! | [`LinearFunnelsPq`] | LinearFunnels | array of funnel stacks | quiescent |
//! | [`FunnelTreePq`] | FunnelTree | tree of funnel counters + funnel stacks | quiescent |
//!
//! Beyond the paper, [`MultiQueuePq`] implements the modern *relaxed*
//! answer to the same contention problem — `c·T` heaps behind try-locks
//! with two-choice delete-min — trading strict ordering
//! ([`Consistency::Relaxed`]) for near-linear scalability, and [`NumaPq`]
//! makes that structure NUMA-adaptive: heap partitions homed per node, a
//! delegation layer serving remote delete-mins from co-located threads,
//! and a live controller ([`AdaptiveStats`]) flipping between the
//! oblivious and delegated disciplines from contention signals.
//!
//! Every queue is also generic over a metrics [`obs::Recorder`]: attach an
//! [`obs::AtomicRecorder`] to count contention events (CAS retries,
//! eliminations, funnel collisions, lock acquisitions, …) and per-operation
//! latency histograms, or keep the default [`obs::NoopRecorder`], which
//! monomorphizes away to zero cost.
//!
//! ## Which one should I use?
//!
//! The paper's (and this reproduction's) answer: under low contention use
//! [`SimpleLinearPq`] (few priorities) or [`SimpleTreePq`] (many); under
//! high contention use [`LinearFunnelsPq`] (≤ ~4 priorities) or
//! [`FunnelTreePq`] (everything else).
//!
//! ## Example
//!
//! ```
//! use funnelpq::{Algorithm, PqBuilder};
//! use std::sync::Arc;
//!
//! let q = Arc::new(PqBuilder::new(Algorithm::FunnelTree, 32, 4).build::<usize>());
//! let handles: Vec<_> = (0..4).map(|tid| {
//!     let q = Arc::clone(&q);
//!     std::thread::spawn(move || {
//!         q.insert(tid, tid * 7 % 32, tid);
//!         q.delete_min(tid)
//!     })
//! }).collect();
//! let got = handles.into_iter().filter_map(|h| h.join().unwrap()).count();
//! assert_eq!(got, 4);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod adaptive;
mod algorithm;
mod builder;
mod config;
mod counter_tree;
mod error;
mod funnel_tree;
pub mod heap;
mod hunt;
mod linear_funnels;
mod multiqueue;
mod numa;
pub mod obs;
mod simple_linear;
mod simple_tree;
mod single_lock;
mod skiplist;
mod topology;
pub mod trace;
mod traits;

pub use adaptive::{AdaptiveStats, NumaMode, NumaPolicy};
pub use algorithm::Algorithm;
pub use builder::{BuildError, PqBuilder};
pub use config::{
    BinPqConfig, FunnelTreeConfig, HuntConfig, LinearFunnelsConfig, MultiQueueConfig, NumaConfig,
    PqConfig, SkipListConfig,
};
pub use error::Error;
pub use funnel_tree::{FunnelTreePq, DEFAULT_FUNNEL_LEVELS};
pub use hunt::HuntPq;
pub use linear_funnels::LinearFunnelsPq;
pub use multiqueue::{MultiQueuePq, DEFAULT_MQ_FACTOR, DEFAULT_MQ_SEED, DEFAULT_MQ_STICKINESS};
pub use numa::NumaPq;
pub use simple_linear::SimpleLinearPq;
pub use simple_tree::SimpleTreePq;
pub use single_lock::SingleLockPq;
pub use skiplist::SkipListPq;
pub use topology::Topology;
pub use traits::{BoundedPq, Consistency, PqBatchError, PqError};

// Re-export the substrate types a queue constructor may need.
pub use funnelpq_sync::{BinOrder, Bounds, FunnelConfig};
