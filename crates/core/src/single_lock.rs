//! `SingleLock`: a heap under one MCS lock — the paper's representative of
//! centralized lock-based algorithms.

use std::sync::Arc;

use funnelpq_sync::McsMutex;

use crate::algorithm::Algorithm;
use crate::heap::BinaryHeap;
use crate::obs::{self, CounterEvent, NoopRecorder, OpKind, Recorder};
use crate::traits::{BoundedPq, PqError};

/// Binary heap protected by a single MCS queue lock.
///
/// Linearizable, supports arbitrary priorities within the declared range,
/// and is perfectly serial: every operation holds the one lock for its whole
/// duration, so latency grows linearly with the number of contending
/// threads (Figure 6 of the paper).
///
/// # Examples
///
/// ```
/// use funnelpq::{BoundedPq, SingleLockPq};
/// let q = SingleLockPq::new(16, 4);
/// q.insert(0, 3, "c");
/// q.insert(0, 1, "a");
/// assert_eq!(q.delete_min(0), Some((1, "a")));
/// ```
#[derive(Debug)]
pub struct SingleLockPq<T, R: Recorder = NoopRecorder> {
    heap: McsMutex<BinaryHeap<T>>,
    num_priorities: usize,
    max_threads: usize,
    recorder: Arc<R>,
}

impl<T: Send> SingleLockPq<T> {
    /// Creates a queue for priorities `0..num_priorities`.
    ///
    /// # Panics
    ///
    /// Panics if `num_priorities` or `max_threads` is zero.
    pub fn new(num_priorities: usize, max_threads: usize) -> Self {
        Self::with_recorder(num_priorities, max_threads, Arc::new(NoopRecorder))
    }
}

impl<T: Send, R: Recorder> SingleLockPq<T, R> {
    /// Creates a queue reporting metrics to `recorder` (the heap lock's
    /// acquisitions flow into the recorder's substrate sink).
    ///
    /// # Panics
    ///
    /// Panics if `num_priorities` or `max_threads` is zero.
    pub fn with_recorder(num_priorities: usize, max_threads: usize, recorder: Arc<R>) -> Self {
        assert!(num_priorities > 0, "need at least one priority");
        assert!(max_threads > 0, "need at least one thread");
        let sink = recorder.sink();
        SingleLockPq {
            heap: McsMutex::with_sink(BinaryHeap::new(), sink),
            num_priorities,
            max_threads,
            recorder,
        }
    }
}

impl<T: Send, R: Recorder> BoundedPq<T> for SingleLockPq<T, R> {
    fn algorithm(&self) -> Algorithm {
        Algorithm::SingleLock
    }

    fn num_priorities(&self) -> usize {
        self.num_priorities
    }

    fn max_threads(&self) -> usize {
        self.max_threads
    }

    // `#[inline]` lets the panicking `insert` wrapper's monomorphization
    // absorb this body, keeping the old direct-insert code shape (no extra
    // call or by-stack `Result` on the hot path).
    #[inline]
    fn try_insert(&self, tid: usize, pri: usize, item: T) -> Result<(), PqError<T>> {
        if tid >= self.max_threads {
            return Err(PqError::TidOutOfRange {
                tid,
                max_threads: self.max_threads,
                item,
            });
        }
        if pri >= self.num_priorities {
            return Err(PqError::PriorityOutOfRange {
                pri,
                num_priorities: self.num_priorities,
                item,
            });
        }
        obs::timed(&*self.recorder, OpKind::Insert, || {
            self.heap.lock().push(pri, item)
        });
        Ok(())
    }

    fn delete_min(&self, tid: usize) -> Option<(usize, T)> {
        assert!(tid < self.max_threads, "tid {tid} out of range");
        let out = obs::timed(&*self.recorder, OpKind::DeleteMin, || {
            self.heap.lock().pop()
        });
        if R::ENABLED && out.is_none() {
            self.recorder.record_event(CounterEvent::EmptyDeleteMin);
        }
        out
    }

    fn is_empty(&self) -> bool {
        self.heap.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering() {
        let q = SingleLockPq::new(8, 1);
        assert!(q.is_empty());
        q.insert(0, 5, 50);
        q.insert(0, 2, 20);
        q.insert(0, 7, 70);
        assert_eq!(q.delete_min(0), Some((2, 20)));
        assert_eq!(q.delete_min(0), Some((5, 50)));
        assert_eq!(q.delete_min(0), Some((7, 70)));
        assert_eq!(q.delete_min(0), None);
    }

    #[test]
    #[should_panic(expected = "priority")]
    fn rejects_out_of_range_priority() {
        let q = SingleLockPq::new(4, 1);
        q.insert(0, 4, ());
    }

    #[test]
    fn try_insert_returns_the_item() {
        let q = SingleLockPq::new(4, 1);
        let err = q.try_insert(0, 9, "hot").unwrap_err();
        assert_eq!(err.into_item(), "hot");
        let err = q.try_insert(5, 0, "tid").unwrap_err();
        assert_eq!(err.into_item(), "tid");
        assert!(q.is_empty());
    }
}
