//! `SingleLock`: a heap under one MCS lock — the paper's representative of
//! centralized lock-based algorithms.

use funnelpq_sync::McsMutex;

use crate::heap::BinaryHeap;
use crate::traits::{BoundedPq, Consistency, PqInfo};

/// Binary heap protected by a single MCS queue lock.
///
/// Linearizable, supports arbitrary priorities within the declared range,
/// and is perfectly serial: every operation holds the one lock for its whole
/// duration, so latency grows linearly with the number of contending
/// threads (Figure 6 of the paper).
///
/// # Examples
///
/// ```
/// use funnelpq::{BoundedPq, SingleLockPq};
/// let q = SingleLockPq::new(16, 4);
/// q.insert(0, 3, "c");
/// q.insert(0, 1, "a");
/// assert_eq!(q.delete_min(0), Some((1, "a")));
/// ```
#[derive(Debug)]
pub struct SingleLockPq<T> {
    heap: McsMutex<BinaryHeap<T>>,
    num_priorities: usize,
    max_threads: usize,
}

impl<T: Send> SingleLockPq<T> {
    /// Creates a queue for priorities `0..num_priorities`.
    ///
    /// # Panics
    ///
    /// Panics if `num_priorities` or `max_threads` is zero.
    pub fn new(num_priorities: usize, max_threads: usize) -> Self {
        assert!(num_priorities > 0, "need at least one priority");
        assert!(max_threads > 0, "need at least one thread");
        SingleLockPq {
            heap: McsMutex::new(BinaryHeap::new()),
            num_priorities,
            max_threads,
        }
    }
}

impl<T: Send> BoundedPq<T> for SingleLockPq<T> {
    fn num_priorities(&self) -> usize {
        self.num_priorities
    }

    fn max_threads(&self) -> usize {
        self.max_threads
    }

    fn insert(&self, tid: usize, pri: usize, item: T) {
        assert!(tid < self.max_threads, "tid {tid} out of range");
        assert!(pri < self.num_priorities, "priority {pri} out of range");
        self.heap.lock().push(pri, item);
    }

    fn delete_min(&self, tid: usize) -> Option<(usize, T)> {
        assert!(tid < self.max_threads, "tid {tid} out of range");
        self.heap.lock().pop()
    }

    fn is_empty(&self) -> bool {
        self.heap.lock().is_empty()
    }
}

impl<T> PqInfo for SingleLockPq<T> {
    fn algorithm_name(&self) -> &'static str {
        "SingleLock"
    }
    fn consistency(&self) -> Consistency {
        Consistency::Linearizable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering() {
        let q = SingleLockPq::new(8, 1);
        assert!(q.is_empty());
        q.insert(0, 5, 50);
        q.insert(0, 2, 20);
        q.insert(0, 7, 70);
        assert_eq!(q.delete_min(0), Some((2, 20)));
        assert_eq!(q.delete_min(0), Some((5, 50)));
        assert_eq!(q.delete_min(0), Some((7, 70)));
        assert_eq!(q.delete_min(0), None);
    }

    #[test]
    #[should_panic(expected = "priority")]
    fn rejects_out_of_range_priority() {
        let q = SingleLockPq::new(4, 1);
        q.insert(0, 4, ());
    }
}
