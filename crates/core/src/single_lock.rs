//! `SingleLock`: a heap under one MCS lock — the paper's representative of
//! centralized lock-based algorithms.

use std::sync::Arc;

use funnelpq_sync::McsMutex;

use crate::algorithm::Algorithm;
use crate::heap::BinaryHeap;
use crate::obs::{self, CounterEvent, NoopRecorder, OpKind, Recorder};
use crate::traits::{batch_reject, reject, BoundedPq, PqBatchError, PqError};

/// Binary heap protected by a single MCS queue lock.
///
/// Linearizable, supports arbitrary priorities within the declared range,
/// and is perfectly serial: every operation holds the one lock for its whole
/// duration, so latency grows linearly with the number of contending
/// threads (Figure 6 of the paper).
///
/// # Examples
///
/// ```
/// use funnelpq::{BoundedPq, SingleLockPq};
/// let q = SingleLockPq::new(16, 4);
/// q.insert(0, 3, "c");
/// q.insert(0, 1, "a");
/// assert_eq!(q.delete_min(0), Some((1, "a")));
/// ```
#[derive(Debug)]
pub struct SingleLockPq<T, R: Recorder = NoopRecorder> {
    heap: McsMutex<BinaryHeap<T>>,
    num_priorities: usize,
    max_threads: usize,
    recorder: Arc<R>,
}

impl<T: Send> SingleLockPq<T> {
    /// Creates a queue for priorities `0..num_priorities`.
    ///
    /// # Panics
    ///
    /// Panics if `num_priorities` or `max_threads` is zero.
    pub fn new(num_priorities: usize, max_threads: usize) -> Self {
        Self::with_recorder(num_priorities, max_threads, Arc::new(NoopRecorder))
    }
}

impl<T: Send, R: Recorder> SingleLockPq<T, R> {
    /// Creates a queue reporting metrics to `recorder` (the heap lock's
    /// acquisitions flow into the recorder's substrate sink).
    ///
    /// # Panics
    ///
    /// Panics if `num_priorities` or `max_threads` is zero.
    pub fn with_recorder(num_priorities: usize, max_threads: usize, recorder: Arc<R>) -> Self {
        assert!(num_priorities > 0, "need at least one priority");
        assert!(max_threads > 0, "need at least one thread");
        let sink = recorder.sink();
        SingleLockPq {
            heap: McsMutex::with_sink(BinaryHeap::new(), sink),
            num_priorities,
            max_threads,
            recorder,
        }
    }
}

impl<T: Send, R: Recorder> BoundedPq<T> for SingleLockPq<T, R> {
    fn algorithm(&self) -> Algorithm {
        Algorithm::SingleLock
    }

    fn num_priorities(&self) -> usize {
        self.num_priorities
    }

    fn max_threads(&self) -> usize {
        self.max_threads
    }

    // `#[inline]` lets the panicking `insert` wrapper's monomorphization
    // absorb this body, keeping the old direct-insert code shape (no extra
    // call or by-stack `Result` on the hot path).
    #[inline]
    fn try_insert(&self, tid: usize, pri: usize, item: T) -> Result<(), PqError<T>> {
        if tid >= self.max_threads {
            return Err(PqError::TidOutOfRange {
                tid,
                max_threads: self.max_threads,
                item,
            });
        }
        if pri >= self.num_priorities {
            return Err(PqError::PriorityOutOfRange {
                pri,
                num_priorities: self.num_priorities,
                item,
            });
        }
        obs::timed(&*self.recorder, OpKind::Insert, || {
            self.heap.lock().push(pri, item)
        });
        Ok(())
    }

    fn delete_min(&self, tid: usize) -> Option<(usize, T)> {
        assert!(tid < self.max_threads, "tid {tid} out of range");
        let out = obs::timed(&*self.recorder, OpKind::DeleteMin, || {
            self.heap.lock().pop()
        });
        if R::ENABLED && out.is_none() {
            self.recorder.record_event(CounterEvent::EmptyDeleteMin);
        }
        out
    }

    // One MCS acquisition amortized over the whole batch. The batch is
    // sorted ascending first so each push lands above everything already
    // appended from the same batch and its sift-up is one comparison long.
    fn insert_batch(&self, tid: usize, mut batch: Vec<(usize, T)>) -> Result<(), PqBatchError<T>> {
        if batch.is_empty() {
            return Ok(());
        }
        if tid >= self.max_threads {
            let max_threads = self.max_threads;
            return Err(batch_reject(batch, 0, |_, item| PqError::TidOutOfRange {
                tid,
                max_threads,
                item,
            }));
        }
        if let Some(bad) = batch
            .iter()
            .position(|&(pri, _)| pri >= self.num_priorities)
        {
            let num_priorities = self.num_priorities;
            return Err(batch_reject(batch, bad, |pri, item| {
                PqError::PriorityOutOfRange {
                    pri,
                    num_priorities,
                    item,
                }
            }));
        }
        batch.sort_unstable_by_key(|&(pri, _)| pri);
        let n = batch.len() as u64;
        obs::timed(&*self.recorder, OpKind::InsertBatch, || {
            let mut heap = self.heap.lock();
            for (pri, item) in batch {
                heap.push(pri, item);
            }
        });
        obs::record_batch_op(&*self.recorder, n);
        Ok(())
    }

    // One MCS acquisition for up to `k` pops.
    fn delete_min_batch(&self, tid: usize, k: usize, out: &mut Vec<(usize, T)>) -> usize {
        assert!(tid < self.max_threads, "tid {tid} out of range");
        let taken = obs::timed(&*self.recorder, OpKind::DeleteMinBatch, || {
            let mut heap = self.heap.lock();
            let mut taken = 0;
            while taken < k {
                match heap.pop() {
                    Some(e) => {
                        out.push(e);
                        taken += 1;
                    }
                    None => break,
                }
            }
            taken
        });
        obs::record_batch_op(&*self.recorder, taken as u64);
        if R::ENABLED && taken == 0 && k > 0 {
            self.recorder.record_event(CounterEvent::EmptyDeleteMin);
        }
        taken
    }

    // Fused swap at the root: one lock hold, one sift, no sift-up.
    fn replace_min(&self, tid: usize, pri: usize, item: T) -> Option<(usize, T)> {
        assert!(tid < self.max_threads, "tid {tid} out of range");
        if pri >= self.num_priorities {
            reject(&PqError::PriorityOutOfRange {
                pri,
                num_priorities: self.num_priorities,
                item: (),
            });
        }
        let out = obs::timed(&*self.recorder, OpKind::ReplaceMin, || {
            self.heap.lock().replace_min(pri, item)
        });
        obs::record_batch_op(&*self.recorder, 1);
        if R::ENABLED && out.is_none() {
            self.recorder.record_event(CounterEvent::EmptyDeleteMin);
        }
        out
    }

    // The whole drain happens under one MCS hold, so a batch is always a
    // sorted prefix of the heap at one instant.
    fn ordered_batch_drain(&self) -> bool {
        true
    }

    fn is_empty(&self) -> bool {
        self.heap.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering() {
        let q = SingleLockPq::new(8, 1);
        assert!(q.is_empty());
        q.insert(0, 5, 50);
        q.insert(0, 2, 20);
        q.insert(0, 7, 70);
        assert_eq!(q.delete_min(0), Some((2, 20)));
        assert_eq!(q.delete_min(0), Some((5, 50)));
        assert_eq!(q.delete_min(0), Some((7, 70)));
        assert_eq!(q.delete_min(0), None);
    }

    #[test]
    #[should_panic(expected = "priority")]
    fn rejects_out_of_range_priority() {
        let q = SingleLockPq::new(4, 1);
        q.insert(0, 4, ());
    }

    #[test]
    fn batch_ops_round_trip() {
        let q = SingleLockPq::new(16, 2);
        q.insert_batch(1, vec![(9, 'i'), (3, 'c'), (7, 'g')])
            .unwrap();
        q.insert_batch(0, Vec::new()).unwrap();
        let mut out = Vec::new();
        assert_eq!(q.delete_min_batch(0, 2, &mut out), 2);
        assert_eq!(out, vec![(3, 'c'), (7, 'g')]);
        assert_eq!(q.replace_min(0, 1, 'a'), Some((9, 'i')));
        assert_eq!(q.replace_min(0, 5, 'e'), Some((1, 'a')));
        out.clear();
        assert_eq!(q.delete_min_batch(0, 8, &mut out), 1);
        assert_eq!(out, vec![(5, 'e')]);
        assert_eq!(q.replace_min(0, 2, 'b'), None, "empty queue still files");
        assert_eq!(q.delete_min(0), Some((2, 'b')));
    }

    #[test]
    fn batch_insert_rejects_bad_priority_without_filing_anything() {
        let q = SingleLockPq::new(4, 1);
        let err = q
            .insert_batch(0, vec![(1, 'a'), (4, 'x'), (2, 'b')])
            .unwrap_err();
        assert_eq!(err.failed_pri, 4);
        assert_eq!(err.unconsumed_len(), 3, "nothing may be filed on error");
        assert!(q.is_empty());
    }

    #[test]
    fn try_insert_returns_the_item() {
        let q = SingleLockPq::new(4, 1);
        let err = q.try_insert(0, 9, "hot").unwrap_err();
        assert_eq!(err.into_item(), "hot");
        let err = q.try_insert(5, 0, "tid").unwrap_err();
        assert_eq!(err.into_item(), "tid");
        assert!(q.is_empty());
    }
}
