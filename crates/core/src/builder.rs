//! One construction front door for all nine native queues.

use std::sync::Arc;

use funnelpq_sync::FunnelConfig;

use crate::algorithm::Algorithm;
use crate::config::PqConfig;
use crate::funnel_tree::FunnelTreePq;
use crate::hunt::HuntPq;
use crate::linear_funnels::LinearFunnelsPq;
use crate::multiqueue::MultiQueuePq;
use crate::numa::NumaPq;
use crate::obs::{NoopRecorder, Recorder};
use crate::simple_linear::SimpleLinearPq;
use crate::simple_tree::SimpleTreePq;
use crate::single_lock::SingleLockPq;
use crate::skiplist::SkipListPq;
use crate::traits::BoundedPq;

/// Why [`PqBuilder::try_build`] refused to construct a queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The algorithm has no native implementation (only
    /// [`Algorithm::HardwareTree`], which exists solely on the simulator
    /// side).
    UnsupportedAlgorithm(Algorithm),
    /// `num_priorities` was zero.
    ZeroPriorities,
    /// `max_threads` was zero.
    ZeroThreads,
    /// A per-algorithm parameter was outside the range its queue can be
    /// constructed with (see [`PqConfig::validate`]) — e.g. a MultiQueue
    /// `factor` of 0, which would otherwise panic inside the queue
    /// constructor and let a shard factory bring the whole server down.
    InvalidConfig {
        /// The algorithm whose config was rejected.
        algorithm: Algorithm,
        /// What was out of range.
        reason: &'static str,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::UnsupportedAlgorithm(a) => {
                write!(f, "{a} has no native implementation")
            }
            BuildError::ZeroPriorities => write!(f, "need at least one priority"),
            BuildError::ZeroThreads => write!(f, "need at least one thread"),
            BuildError::InvalidConfig { algorithm, reason } => {
                write!(f, "invalid {algorithm} config: {reason}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Builder constructing any of the nine native queues behind
/// `Box<dyn BoundedPq<T>>`, from a typed per-algorithm [`PqConfig`] plus
/// the two knobs every queue shares (`num_priorities`, `max_threads`) and
/// an optional metrics recorder.
///
/// Start from an algorithm with per-algorithm defaults
/// ([`PqBuilder::new`]) or from an explicit config
/// ([`PqBuilder::from_config`]). The old flat knob methods
/// (`hunt_capacity`, `skiplist_seed`, …) were deprecated shims over the
/// config and have been removed; every per-algorithm knob now lives on its
/// [`PqConfig`] variant.
///
/// # Examples
///
/// Uniform construction:
///
/// ```
/// use funnelpq::{Algorithm, PqBuilder};
///
/// let q = PqBuilder::new(Algorithm::FunnelTree, 32, 8).build::<u64>();
/// q.insert(0, 7, 700);
/// assert_eq!(q.delete_min(1), Some((7, 700)));
/// assert_eq!(q.algorithm(), Algorithm::FunnelTree);
/// ```
///
/// From a typed config, with metrics:
///
/// ```
/// use std::sync::Arc;
/// use funnelpq::obs::AtomicRecorder;
/// use funnelpq::{BinPqConfig, PqBuilder, PqConfig};
///
/// let rec = Arc::new(AtomicRecorder::new());
/// let q = PqBuilder::from_config(PqConfig::SimpleTree(BinPqConfig::default()), 16, 4)
///     .recorder(Arc::clone(&rec))
///     .build::<&str>();
/// q.insert(0, 3, "x");
/// q.delete_min(0);
/// let snap = rec.snapshot();
/// assert_eq!(snap.insert.count, 1);
/// assert_eq!(snap.delete_min.count, 1);
/// ```
#[derive(Debug, Clone)]
pub struct PqBuilder<R: Recorder = NoopRecorder> {
    algorithm: Algorithm,
    num_priorities: usize,
    max_threads: usize,
    // `None` exactly when `algorithm` has no native implementation
    // (HardwareTree), so `try_build` can still report it as a typed error.
    config: Option<PqConfig>,
    recorder: Arc<R>,
}

impl PqBuilder<NoopRecorder> {
    /// Starts a builder for `algorithm` with priorities `0..num_priorities`
    /// and thread ids `0..max_threads`, no metrics, and per-algorithm
    /// defaults for everything else ([`PqConfig::for_algorithm`]).
    pub fn new(algorithm: Algorithm, num_priorities: usize, max_threads: usize) -> Self {
        PqBuilder {
            algorithm,
            num_priorities,
            max_threads,
            config: PqConfig::for_algorithm(algorithm),
            recorder: Arc::new(NoopRecorder),
        }
    }

    /// Starts a builder from an explicit per-algorithm config — the typed
    /// replacement for the deprecated flat knob methods. The algorithm is
    /// implied by the config variant.
    pub fn from_config(config: PqConfig, num_priorities: usize, max_threads: usize) -> Self {
        PqBuilder {
            algorithm: config.algorithm(),
            num_priorities,
            max_threads,
            config: Some(config),
            recorder: Arc::new(NoopRecorder),
        }
    }
}

impl<R: Recorder> PqBuilder<R> {
    /// Attaches a metrics recorder; every operation and substrate event of
    /// the built queue flows into it. Replaces any previous recorder (the
    /// default is the zero-cost [`NoopRecorder`]).
    pub fn recorder<R2: Recorder>(self, recorder: Arc<R2>) -> PqBuilder<R2> {
        PqBuilder {
            algorithm: self.algorithm,
            num_priorities: self.num_priorities,
            max_threads: self.max_threads,
            config: self.config,
            recorder,
        }
    }

    /// The algorithm this builder will construct.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The typed per-algorithm config this builder will construct from, or
    /// `None` when the algorithm has no native implementation.
    pub fn config(&self) -> Option<&PqConfig> {
        self.config.as_ref()
    }

    /// Builds the queue, or reports why the parameters cannot produce one:
    /// an unsupported algorithm, a zero `num_priorities`/`max_threads`, or
    /// an out-of-range per-algorithm parameter ([`PqConfig::validate`]).
    /// Never panics — this is the front door for shard factories and other
    /// callers that must survive bad configuration.
    pub fn try_build<T: Send + 'static>(&self) -> Result<Box<dyn BoundedPq<T>>, BuildError> {
        if self.num_priorities == 0 {
            return Err(BuildError::ZeroPriorities);
        }
        if self.max_threads == 0 {
            return Err(BuildError::ZeroThreads);
        }
        let config = match &self.config {
            Some(c) => c,
            None => return Err(BuildError::UnsupportedAlgorithm(self.algorithm)),
        };
        config.validate()?;
        let n = self.num_priorities;
        let t = self.max_threads;
        let rec = Arc::clone(&self.recorder);
        let funnel_cfg = |explicit: &Option<FunnelConfig>| {
            explicit
                .clone()
                .unwrap_or_else(|| FunnelConfig::for_threads(t))
        };
        Ok(match config {
            PqConfig::SingleLock => Box::new(SingleLockPq::with_recorder(n, t, rec)),
            PqConfig::HuntEtAl(c) => Box::new(HuntPq::with_recorder(n, t, c.capacity, rec)),
            PqConfig::SkipList(c) => Box::new(SkipListPq::with_recorder(n, t, c.seed, rec)),
            PqConfig::SimpleLinear(c) => {
                Box::new(SimpleLinearPq::with_recorder(n, t, c.order, rec))
            }
            PqConfig::SimpleTree(c) => Box::new(SimpleTreePq::with_recorder(n, t, c.order, rec)),
            PqConfig::LinearFunnels(c) => Box::new(LinearFunnelsPq::with_recorder(
                n,
                funnel_cfg(&c.funnel),
                rec,
            )),
            PqConfig::FunnelTree(c) => Box::new(FunnelTreePq::with_recorder(
                n,
                funnel_cfg(&c.funnel),
                c.funnel_levels,
                rec,
            )),
            PqConfig::MultiQueue(c) => Box::new(MultiQueuePq::with_config(
                n,
                t,
                c.factor,
                c.stickiness,
                c.seed,
                rec,
            )),
            PqConfig::NumaPq(c) => Box::new(NumaPq::with_config(n, t, c.clone(), rec)),
        })
    }

    /// Builds the queue.
    ///
    /// # Panics
    ///
    /// Panics with the [`BuildError`]'s message exactly where
    /// [`PqBuilder::try_build`] would return it — an unsupported algorithm,
    /// zero `num_priorities`/`max_threads`, or an invalid per-algorithm
    /// config. Every validation goes through `try_build`, so `build` never
    /// reaches a queue constructor's internal assertions; callers that must
    /// not panic (shard factories, servers) use `try_build` directly.
    pub fn build<T: Send + 'static>(&self) -> Box<dyn BoundedPq<T>> {
        match self.try_build() {
            Ok(q) => q,
            Err(e) => panic!("{e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HuntConfig, MultiQueueConfig};
    use crate::obs::AtomicRecorder;

    #[test]
    fn builds_all_seven() {
        for a in Algorithm::ALL {
            let q = PqBuilder::new(a, 8, 2).build::<usize>();
            assert_eq!(q.algorithm(), a);
            assert_eq!(q.num_priorities(), 8);
            assert_eq!(q.max_threads(), 2);
            q.insert(0, 5, 50);
            q.insert(1, 2, 20);
            assert_eq!(q.delete_min(0), Some((2, 20)));
            assert_eq!(q.delete_min(1), Some((5, 50)));
            assert_eq!(q.delete_min(0), None);
        }
    }

    #[test]
    fn rejects_hardware_tree_and_zero_params() {
        assert_eq!(
            PqBuilder::new(Algorithm::HardwareTree, 8, 2)
                .try_build::<()>()
                .err(),
            Some(BuildError::UnsupportedAlgorithm(Algorithm::HardwareTree)),
        );
        assert_eq!(
            PqBuilder::new(Algorithm::FunnelTree, 0, 2)
                .try_build::<()>()
                .err(),
            Some(BuildError::ZeroPriorities),
        );
        assert_eq!(
            PqBuilder::new(Algorithm::FunnelTree, 8, 0)
                .try_build::<()>()
                .err(),
            Some(BuildError::ZeroThreads),
        );
    }

    #[test]
    fn try_build_rejects_degenerate_configs_instead_of_panicking() {
        let cfg = PqConfig::MultiQueue(MultiQueueConfig {
            factor: 0,
            ..Default::default()
        });
        assert_eq!(
            PqBuilder::from_config(cfg, 8, 2).try_build::<u64>().err(),
            Some(BuildError::InvalidConfig {
                algorithm: Algorithm::MultiQueue,
                reason: "factor must be at least 1",
            }),
        );
        let cfg = PqConfig::MultiQueue(MultiQueueConfig {
            stickiness: 0,
            ..Default::default()
        });
        assert!(PqBuilder::from_config(cfg, 8, 2)
            .try_build::<u64>()
            .is_err());
        let cfg = PqConfig::HuntEtAl(HuntConfig { capacity: 0 });
        assert!(PqBuilder::from_config(cfg, 8, 2)
            .try_build::<u64>()
            .is_err());
    }

    #[test]
    fn from_config_builds_with_the_typed_knobs() {
        let q = PqBuilder::from_config(PqConfig::HuntEtAl(HuntConfig { capacity: 2 }), 4, 1)
            .build::<u8>();
        q.insert(0, 0, 0);
        q.insert(0, 1, 1);
        assert!(q.try_insert(0, 2, 2).is_err(), "capacity 2 respected");
        assert_eq!(
            q.algorithm(),
            PqConfig::HuntEtAl(HuntConfig { capacity: 2 }).algorithm()
        );
    }

    #[test]
    fn builds_multiqueue_with_typed_knobs() {
        // Factor 1 on one thread still gets the two-heap minimum; with both
        // heaps sampled every delete, the sequential drain is strict.
        let cfg = PqConfig::MultiQueue(MultiQueueConfig {
            factor: 1,
            stickiness: 1,
            seed: 42,
        });
        let q = PqBuilder::from_config(cfg, 8, 1).build::<usize>();
        assert_eq!(q.algorithm(), Algorithm::MultiQueue);
        assert_eq!(q.consistency(), crate::traits::Consistency::Relaxed);
        q.insert(0, 5, 50);
        q.insert(0, 2, 20);
        assert_eq!(q.delete_min(0), Some((2, 20)));
        assert_eq!(q.delete_min(0), Some((5, 50)));
        assert_eq!(q.delete_min(0), None);
    }

    #[test]
    fn builds_numapq_from_config_and_rejects_degenerates() {
        use crate::config::NumaConfig;
        let q = PqBuilder::new(Algorithm::NumaPq, 8, 2).build::<usize>();
        assert_eq!(q.algorithm(), Algorithm::NumaPq);
        assert!(q.adaptive_stats().is_some(), "controller must be exposed");
        q.insert(0, 5, 50);
        q.insert(1, 2, 20);
        // Relaxed queue: drain order may deviate, conservation may not.
        let mut got = vec![q.delete_min(0).unwrap(), q.delete_min(1).unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![(2, 20), (5, 50)]);
        assert_eq!(q.delete_min(0), None);
        for bad in [
            NumaConfig {
                nodes: 0,
                ..Default::default()
            },
            NumaConfig {
                factor: 0,
                ..Default::default()
            },
            NumaConfig {
                epoch_ops: 0,
                ..Default::default()
            },
        ] {
            assert!(
                PqBuilder::from_config(PqConfig::NumaPq(bad), 8, 2)
                    .try_build::<u64>()
                    .is_err(),
                "degenerate NumaConfig must be a typed error"
            );
        }
    }

    #[test]
    fn recorder_attaches_through_the_builder() {
        let rec = Arc::new(AtomicRecorder::with_shards(4));
        let q = PqBuilder::new(Algorithm::SingleLock, 4, 1)
            .recorder(Arc::clone(&rec))
            .build::<u8>();
        q.insert(0, 1, 1);
        q.insert(0, 2, 2);
        q.delete_min(0);
        let snap = rec.snapshot();
        assert_eq!(snap.insert.count, 2);
        assert_eq!(snap.delete_min.count, 1);
    }
}
