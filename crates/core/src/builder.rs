//! One construction front door for all seven native queues.

use std::sync::Arc;

use funnelpq_sync::{BinOrder, FunnelConfig};

use crate::algorithm::Algorithm;
use crate::funnel_tree::{FunnelTreePq, DEFAULT_FUNNEL_LEVELS};
use crate::hunt::HuntPq;
use crate::linear_funnels::LinearFunnelsPq;
use crate::multiqueue::{MultiQueuePq, DEFAULT_MQ_FACTOR, DEFAULT_MQ_SEED, DEFAULT_MQ_STICKINESS};
use crate::obs::{NoopRecorder, Recorder};
use crate::simple_linear::SimpleLinearPq;
use crate::simple_tree::SimpleTreePq;
use crate::single_lock::SingleLockPq;
use crate::skiplist::SkipListPq;
use crate::traits::BoundedPq;

/// Why [`PqBuilder::try_build`] refused to construct a queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The algorithm has no native implementation (only
    /// [`Algorithm::HardwareTree`], which exists solely on the simulator
    /// side).
    UnsupportedAlgorithm(Algorithm),
    /// `num_priorities` was zero.
    ZeroPriorities,
    /// `max_threads` was zero.
    ZeroThreads,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::UnsupportedAlgorithm(a) => {
                write!(f, "{a} has no native implementation")
            }
            BuildError::ZeroPriorities => write!(f, "need at least one priority"),
            BuildError::ZeroThreads => write!(f, "need at least one thread"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Builder constructing any of the seven native queues behind
/// `Box<dyn BoundedPq<T>>`, with uniform knobs and an optional metrics
/// recorder.
///
/// Algorithm-specific knobs ([`PqBuilder::bin_order`],
/// [`PqBuilder::funnel_config`], [`PqBuilder::hunt_capacity`],
/// [`PqBuilder::skiplist_seed`]) apply where the algorithm supports them
/// and are ignored otherwise, so one configured builder can construct every
/// algorithm of a sweep.
///
/// # Examples
///
/// Uniform construction:
///
/// ```
/// use funnelpq::{Algorithm, PqBuilder};
///
/// let q = PqBuilder::new(Algorithm::FunnelTree, 32, 8).build::<u64>();
/// q.insert(0, 7, 700);
/// assert_eq!(q.delete_min(1), Some((7, 700)));
/// assert_eq!(q.algorithm(), Algorithm::FunnelTree);
/// ```
///
/// With metrics:
///
/// ```
/// use std::sync::Arc;
/// use funnelpq::obs::AtomicRecorder;
/// use funnelpq::{Algorithm, PqBuilder};
///
/// let rec = Arc::new(AtomicRecorder::new());
/// let q = PqBuilder::new(Algorithm::SimpleTree, 16, 4)
///     .recorder(Arc::clone(&rec))
///     .build::<&str>();
/// q.insert(0, 3, "x");
/// q.delete_min(0);
/// let snap = rec.snapshot();
/// assert_eq!(snap.insert.count, 1);
/// assert_eq!(snap.delete_min.count, 1);
/// ```
#[derive(Debug, Clone)]
pub struct PqBuilder<R: Recorder = NoopRecorder> {
    algorithm: Algorithm,
    num_priorities: usize,
    max_threads: usize,
    bin_order: BinOrder,
    funnel_config: Option<FunnelConfig>,
    hunt_capacity: Option<usize>,
    skiplist_seed: Option<u64>,
    multiqueue_factor: Option<usize>,
    multiqueue_stickiness: Option<u32>,
    multiqueue_seed: Option<u64>,
    recorder: Arc<R>,
}

impl PqBuilder<NoopRecorder> {
    /// Starts a builder for `algorithm` with priorities `0..num_priorities`
    /// and thread ids `0..max_threads`, no metrics, and per-algorithm
    /// defaults for everything else.
    pub fn new(algorithm: Algorithm, num_priorities: usize, max_threads: usize) -> Self {
        PqBuilder {
            algorithm,
            num_priorities,
            max_threads,
            bin_order: BinOrder::Lifo,
            funnel_config: None,
            hunt_capacity: None,
            skiplist_seed: None,
            multiqueue_factor: None,
            multiqueue_stickiness: None,
            multiqueue_seed: None,
            recorder: Arc::new(NoopRecorder),
        }
    }
}

impl<R: Recorder> PqBuilder<R> {
    /// Attaches a metrics recorder; every operation and substrate event of
    /// the built queue flows into it. Replaces any previous recorder (the
    /// default is the zero-cost [`NoopRecorder`]).
    pub fn recorder<R2: Recorder>(self, recorder: Arc<R2>) -> PqBuilder<R2> {
        PqBuilder {
            algorithm: self.algorithm,
            num_priorities: self.num_priorities,
            max_threads: self.max_threads,
            bin_order: self.bin_order,
            funnel_config: self.funnel_config,
            hunt_capacity: self.hunt_capacity,
            skiplist_seed: self.skiplist_seed,
            multiqueue_factor: self.multiqueue_factor,
            multiqueue_stickiness: self.multiqueue_stickiness,
            multiqueue_seed: self.multiqueue_seed,
            recorder,
        }
    }

    /// Removal order among equal-priority items in lock-based bins
    /// (`SimpleLinear`, `SimpleTree`). Default LIFO, the paper's choice.
    pub fn bin_order(mut self, order: BinOrder) -> Self {
        self.bin_order = order;
        self
    }

    /// Explicit combining-funnel parameters (`LinearFunnels`,
    /// `FunnelTree`). Default: [`FunnelConfig::for_threads`].
    pub fn funnel_config(mut self, cfg: FunnelConfig) -> Self {
        self.funnel_config = Some(cfg);
        self
    }

    /// Fixed capacity for `HuntEtAl` (its heap is pre-allocated). Default
    /// 2¹⁶ items.
    pub fn hunt_capacity(mut self, capacity: usize) -> Self {
        self.hunt_capacity = Some(capacity);
        self
    }

    /// Tower-height RNG seed for `SkipList`. Default: a fixed seed.
    pub fn skiplist_seed(mut self, seed: u64) -> Self {
        self.skiplist_seed = Some(seed);
        self
    }

    /// Internal-heap ratio `c` for `MultiQueue` (the queue holds
    /// `c · max_threads` heaps, minimum two). Default 2, the MultiQueues
    /// paper's baseline.
    pub fn multiqueue_factor(mut self, factor: usize) -> Self {
        self.multiqueue_factor = Some(factor);
        self
    }

    /// Queue-choice stickiness for `MultiQueue`: consecutive operations
    /// re-using the last choice before re-drawing (1 disables). Default 8.
    pub fn multiqueue_stickiness(mut self, stickiness: u32) -> Self {
        self.multiqueue_stickiness = Some(stickiness);
        self
    }

    /// Per-thread choice-RNG seed for `MultiQueue`. Default: a fixed seed.
    pub fn multiqueue_seed(mut self, seed: u64) -> Self {
        self.multiqueue_seed = Some(seed);
        self
    }

    /// The algorithm this builder will construct.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// Builds the queue, or reports why the parameters cannot produce one.
    pub fn try_build<T: Send + 'static>(&self) -> Result<Box<dyn BoundedPq<T>>, BuildError> {
        if self.num_priorities == 0 {
            return Err(BuildError::ZeroPriorities);
        }
        if self.max_threads == 0 {
            return Err(BuildError::ZeroThreads);
        }
        let n = self.num_priorities;
        let t = self.max_threads;
        let rec = Arc::clone(&self.recorder);
        let cfg = || {
            self.funnel_config
                .clone()
                .unwrap_or_else(|| FunnelConfig::for_threads(t))
        };
        Ok(match self.algorithm {
            Algorithm::SingleLock => Box::new(SingleLockPq::with_recorder(n, t, rec)),
            Algorithm::HuntEtAl => Box::new(HuntPq::with_recorder(
                n,
                t,
                self.hunt_capacity.unwrap_or(1 << 16),
                rec,
            )),
            Algorithm::SkipList => Box::new(SkipListPq::with_recorder(
                n,
                t,
                self.skiplist_seed.unwrap_or(0x5EED_CAFE),
                rec,
            )),
            Algorithm::SimpleLinear => {
                Box::new(SimpleLinearPq::with_recorder(n, t, self.bin_order, rec))
            }
            Algorithm::SimpleTree => {
                Box::new(SimpleTreePq::with_recorder(n, t, self.bin_order, rec))
            }
            Algorithm::LinearFunnels => Box::new(LinearFunnelsPq::with_recorder(n, cfg(), rec)),
            Algorithm::FunnelTree => Box::new(FunnelTreePq::with_recorder(
                n,
                cfg(),
                DEFAULT_FUNNEL_LEVELS,
                rec,
            )),
            Algorithm::HardwareTree => {
                return Err(BuildError::UnsupportedAlgorithm(Algorithm::HardwareTree))
            }
            Algorithm::MultiQueue => Box::new(MultiQueuePq::with_config(
                n,
                t,
                self.multiqueue_factor.unwrap_or(DEFAULT_MQ_FACTOR),
                self.multiqueue_stickiness.unwrap_or(DEFAULT_MQ_STICKINESS),
                self.multiqueue_seed.unwrap_or(DEFAULT_MQ_SEED),
                rec,
            )),
        })
    }

    /// Builds the queue, panicking where [`PqBuilder::try_build`] would
    /// return an error.
    pub fn build<T: Send + 'static>(&self) -> Box<dyn BoundedPq<T>> {
        match self.try_build() {
            Ok(q) => q,
            Err(e) => panic!("{e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::AtomicRecorder;

    #[test]
    fn builds_all_seven() {
        for a in Algorithm::ALL {
            let q = PqBuilder::new(a, 8, 2).build::<usize>();
            assert_eq!(q.algorithm(), a);
            assert_eq!(q.num_priorities(), 8);
            assert_eq!(q.max_threads(), 2);
            q.insert(0, 5, 50);
            q.insert(1, 2, 20);
            assert_eq!(q.delete_min(0), Some((2, 20)));
            assert_eq!(q.delete_min(1), Some((5, 50)));
            assert_eq!(q.delete_min(0), None);
        }
    }

    #[test]
    fn rejects_hardware_tree_and_zero_params() {
        assert_eq!(
            PqBuilder::new(Algorithm::HardwareTree, 8, 2)
                .try_build::<()>()
                .err(),
            Some(BuildError::UnsupportedAlgorithm(Algorithm::HardwareTree)),
        );
        assert_eq!(
            PqBuilder::new(Algorithm::FunnelTree, 0, 2)
                .try_build::<()>()
                .err(),
            Some(BuildError::ZeroPriorities),
        );
        assert_eq!(
            PqBuilder::new(Algorithm::FunnelTree, 8, 0)
                .try_build::<()>()
                .err(),
            Some(BuildError::ZeroThreads),
        );
    }

    #[test]
    fn knobs_apply_where_supported() {
        let q = PqBuilder::new(Algorithm::HuntEtAl, 4, 1)
            .hunt_capacity(2)
            .build::<u8>();
        q.insert(0, 0, 0);
        q.insert(0, 1, 1);
        assert!(q.try_insert(0, 2, 2).is_err(), "capacity 2 respected");

        let q = PqBuilder::new(Algorithm::SimpleLinear, 4, 1)
            .bin_order(BinOrder::Fifo)
            .build::<u8>();
        q.insert(0, 1, 10);
        q.insert(0, 1, 11);
        assert_eq!(q.delete_min(0), Some((1, 10)), "FIFO within a priority");
    }

    #[test]
    fn builds_multiqueue_with_knobs() {
        // Factor 1 on one thread still gets the two-heap minimum; with both
        // heaps sampled every delete, the sequential drain is strict.
        let q = PqBuilder::new(Algorithm::MultiQueue, 8, 1)
            .multiqueue_factor(1)
            .multiqueue_stickiness(1)
            .multiqueue_seed(42)
            .build::<usize>();
        assert_eq!(q.algorithm(), Algorithm::MultiQueue);
        assert_eq!(q.consistency(), crate::traits::Consistency::Relaxed);
        q.insert(0, 5, 50);
        q.insert(0, 2, 20);
        assert_eq!(q.delete_min(0), Some((2, 20)));
        assert_eq!(q.delete_min(0), Some((5, 50)));
        assert_eq!(q.delete_min(0), None);
    }

    #[test]
    fn recorder_attaches_through_the_builder() {
        let rec = Arc::new(AtomicRecorder::with_shards(4));
        let q = PqBuilder::new(Algorithm::SingleLock, 4, 1)
            .recorder(Arc::clone(&rec))
            .build::<u8>();
        q.insert(0, 1, 1);
        q.insert(0, 2, 2);
        q.delete_min(0);
        let snap = rec.snapshot();
        assert_eq!(snap.insert.count, 2);
        assert_eq!(snap.delete_min.count, 1);
    }
}
