//! `MultiQueue`: a *relaxed* priority queue — `c·T` sequential heaps behind
//! try-locks, with two-choice delete-min (Williams, Sanders & Dementiev,
//! *Engineering MultiQueues*).
//!
//! This is the one post-paper algorithm in the crate: instead of diffusing
//! the delete-min hot spot through combining funnels while keeping strict
//! semantics, it abandons strictness. `delete_min` samples two random heaps
//! and pops from the one whose cached top is smaller, so the returned item
//! is only *near* the minimum ([`Consistency::Relaxed`]); in exchange,
//! operations touch one uncontended cache line each and throughput scales
//! almost linearly with threads. The simulator's audit layer quantifies the
//! slack as per-operation *rank error* instead of asserting sortedness.

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;

use funnelpq_sync::TtasMutex;
use funnelpq_util::{AtomicRng, CachePadded};

use crate::algorithm::Algorithm;
use crate::heap::BinaryHeap;
use crate::obs::{self, CounterEvent, NoopRecorder, OpKind, Recorder};
use crate::traits::{batch_reject, reject, BoundedPq, Consistency, PqBatchError, PqError};

/// Default ratio of internal heaps to threads (`c` in the MultiQueues
/// papers; `c = 2` is their baseline configuration).
pub const DEFAULT_MQ_FACTOR: usize = 2;

/// Default stickiness: how many consecutive operations a thread re-uses its
/// last queue choice before re-drawing, amortizing lock acquisitions and
/// cache misses (the MultiQueues paper's batching/stickiness optimisation).
/// `1` disables stickiness (every operation draws fresh).
pub const DEFAULT_MQ_STICKINESS: u32 = 8;

/// Default seed for the per-thread choice RNGs.
pub const DEFAULT_MQ_SEED: u64 = 0x5EED_3141;

/// Cached top priority of an empty internal heap. Compares greater than any
/// real priority, so the two-choice `min` needs no special casing.
const EMPTY_TOP: usize = usize::MAX;

/// One internal sequential heap plus its published minimum. Each slot is
/// cache-padded so two threads working distinct queues never share a line —
/// the entire point of the algorithm.
#[derive(Debug)]
struct Slot<T> {
    /// Smallest priority in `heap`, or [`EMPTY_TOP`]; written only while
    /// holding the lock, read locklessly by the two-choice sampler.
    top: AtomicUsize,
    heap: TtasMutex<BinaryHeap<T>>,
}

/// Per-thread choice state. Owned by one thread (the queue's thread-id
/// contract) but stored in a shared padded array, hence the single-owner
/// `Relaxed` atomics — the same pattern as the funnel collision records.
#[derive(Debug)]
struct ThreadCtx {
    rng: AtomicRng,
    ins_q: AtomicUsize,
    ins_left: AtomicU32,
    del_a: AtomicUsize,
    del_b: AtomicUsize,
    del_left: AtomicU32,
}

/// The relaxed MultiQueue: `c·T` binary heaps, each under a test-and-set
/// try-lock, with power-of-two-choices delete-min and sticky queue reuse.
///
/// `insert` picks a random heap (re-drawing if its lock is held);
/// `delete_min` reads the published tops of two random heaps and pops from
/// the smaller. Neither guarantee strict ordering — see
/// [`Consistency::Relaxed`] — but element conservation is exact, and at
/// quiescence an empty return means the queue really is empty (a full
/// lock-sweep fallback backs the sampled fast path).
///
/// # Examples
///
/// ```
/// use funnelpq::{BoundedPq, MultiQueuePq};
/// let q = MultiQueuePq::new(16, 4);
/// q.insert(0, 3, "c");
/// q.insert(1, 1, "a");
/// let mut got = vec![q.delete_min(2).unwrap(), q.delete_min(3).unwrap()];
/// got.sort();
/// assert_eq!(got, vec![(1, "a"), (3, "c")]);
/// assert_eq!(q.delete_min(0), None);
/// ```
#[derive(Debug)]
pub struct MultiQueuePq<T, R: Recorder = NoopRecorder> {
    slots: Box<[CachePadded<Slot<T>>]>,
    threads: Box<[CachePadded<ThreadCtx>]>,
    num_priorities: usize,
    max_threads: usize,
    stickiness: u32,
    recorder: Arc<R>,
}

impl<T: Send> MultiQueuePq<T> {
    /// Creates a queue for priorities `0..num_priorities` with the default
    /// factor, stickiness, and seed.
    ///
    /// # Panics
    ///
    /// Panics if `num_priorities` or `max_threads` is zero.
    pub fn new(num_priorities: usize, max_threads: usize) -> Self {
        Self::with_recorder(num_priorities, max_threads, Arc::new(NoopRecorder))
    }
}

impl<T: Send, R: Recorder> MultiQueuePq<T, R> {
    /// Creates a queue reporting metrics to `recorder`, with the default
    /// factor, stickiness, and seed.
    ///
    /// # Panics
    ///
    /// Panics if `num_priorities` or `max_threads` is zero.
    pub fn with_recorder(num_priorities: usize, max_threads: usize, recorder: Arc<R>) -> Self {
        Self::with_config(
            num_priorities,
            max_threads,
            DEFAULT_MQ_FACTOR,
            DEFAULT_MQ_STICKINESS,
            DEFAULT_MQ_SEED,
            recorder,
        )
    }

    /// Fully parameterized constructor: `factor · max_threads` internal
    /// heaps (at least two), `stickiness` consecutive reuses of a queue
    /// choice (`1` disables stickiness), and `seed` for the per-thread
    /// choice RNGs.
    ///
    /// # Panics
    ///
    /// Panics if `num_priorities`, `max_threads`, `factor`, or `stickiness`
    /// is zero, or if `num_priorities == usize::MAX` (reserved sentinel).
    pub fn with_config(
        num_priorities: usize,
        max_threads: usize,
        factor: usize,
        stickiness: u32,
        seed: u64,
        recorder: Arc<R>,
    ) -> Self {
        assert!(num_priorities > 0, "need at least one priority");
        assert!(num_priorities < EMPTY_TOP, "priority range too large");
        assert!(max_threads > 0, "need at least one thread");
        assert!(factor > 0, "need a positive queue factor");
        assert!(stickiness > 0, "stickiness counts operations; minimum 1");
        let nqueues = (factor * max_threads).max(2);
        let slots = (0..nqueues)
            .map(|_| {
                CachePadded::new(Slot {
                    top: AtomicUsize::new(EMPTY_TOP),
                    heap: TtasMutex::new(BinaryHeap::new()),
                })
            })
            .collect();
        let threads = (0..max_threads)
            .map(|tid| {
                CachePadded::new(ThreadCtx {
                    rng: AtomicRng::new(seed.wrapping_add(tid as u64)),
                    ins_q: AtomicUsize::new(0),
                    ins_left: AtomicU32::new(0),
                    del_a: AtomicUsize::new(0),
                    del_b: AtomicUsize::new(0),
                    del_left: AtomicU32::new(0),
                })
            })
            .collect();
        MultiQueuePq {
            slots,
            threads,
            num_priorities,
            max_threads,
            stickiness,
            recorder,
        }
    }

    /// Number of internal heaps (`factor · max_threads`, at least two).
    pub fn num_queues(&self) -> usize {
        self.slots.len()
    }

    /// Publishes `heap`'s new minimum for the lockless sampler. Must be
    /// called with the slot's lock held.
    fn publish_top(slot: &Slot<T>, heap: &BinaryHeap<T>) {
        slot.top
            .store(heap.peek_priority().unwrap_or(EMPTY_TOP), Ordering::Release);
    }

    /// Two distinct queue indices from this thread's RNG.
    fn draw_pair(&self, t: &ThreadCtx) -> (usize, usize) {
        let n = self.slots.len() as u64;
        let a = t.rng.below(n) as usize;
        let mut b = t.rng.below(n - 1) as usize;
        if b >= a {
            b += 1;
        }
        (a, b)
    }

    fn insert_inner(&self, tid: usize, pri: usize, item: T) {
        let t = &*self.threads[tid];
        loop {
            let sticky = self.stickiness > 1 && t.ins_left.load(Ordering::Relaxed) > 0;
            let q = if sticky {
                t.ins_q.load(Ordering::Relaxed)
            } else {
                t.rng.below(self.slots.len() as u64) as usize
            };
            let slot = &*self.slots[q];
            match slot.heap.try_lock() {
                Some(mut g) => {
                    g.push(pri, item);
                    Self::publish_top(slot, &g);
                    if self.stickiness > 1 {
                        if sticky {
                            t.ins_left
                                .store(t.ins_left.load(Ordering::Relaxed) - 1, Ordering::Relaxed);
                        } else {
                            t.ins_q.store(q, Ordering::Relaxed);
                            t.ins_left.store(self.stickiness - 1, Ordering::Relaxed);
                        }
                    }
                    if R::ENABLED {
                        self.recorder.record_event(CounterEvent::LockAcquire);
                    }
                    return;
                }
                None => {
                    // Contended queue: drop stickiness and re-draw.
                    t.ins_left.store(0, Ordering::Relaxed);
                    if R::ENABLED {
                        self.recorder.record_event(CounterEvent::CasRetry);
                    }
                }
            }
        }
    }

    fn delete_min_inner(&self, tid: usize) -> Option<(usize, T)> {
        let t = &*self.threads[tid];
        loop {
            let sticky = self.stickiness > 1 && t.del_left.load(Ordering::Relaxed) > 0;
            let (a, b) = if sticky {
                (
                    t.del_a.load(Ordering::Relaxed),
                    t.del_b.load(Ordering::Relaxed),
                )
            } else {
                self.draw_pair(t)
            };
            let top_a = self.slots[a].top.load(Ordering::Acquire);
            let top_b = self.slots[b].top.load(Ordering::Acquire);
            if top_a == EMPTY_TOP && top_b == EMPTY_TOP {
                // Both samples look empty: fall back to a definitive sweep
                // so quiescent callers get an exact answer.
                t.del_left.store(0, Ordering::Relaxed);
                return self.sweep();
            }
            let q = if top_b < top_a { b } else { a };
            let slot = &*self.slots[q];
            match slot.heap.try_lock() {
                Some(mut g) => {
                    if R::ENABLED {
                        self.recorder.record_event(CounterEvent::LockAcquire);
                    }
                    match g.pop() {
                        Some(out) => {
                            Self::publish_top(slot, &g);
                            if self.stickiness > 1 {
                                if sticky {
                                    t.del_left.store(
                                        t.del_left.load(Ordering::Relaxed) - 1,
                                        Ordering::Relaxed,
                                    );
                                } else {
                                    t.del_a.store(a, Ordering::Relaxed);
                                    t.del_b.store(b, Ordering::Relaxed);
                                    t.del_left.store(self.stickiness - 1, Ordering::Relaxed);
                                }
                            }
                            return Some(out);
                        }
                        None => {
                            // Raced empty under a stale top: repair and retry.
                            Self::publish_top(slot, &g);
                            t.del_left.store(0, Ordering::Relaxed);
                        }
                    }
                }
                None => {
                    t.del_left.store(0, Ordering::Relaxed);
                    if R::ENABLED {
                        self.recorder.record_event(CounterEvent::CasRetry);
                    }
                }
            }
        }
    }

    /// Slow path: blocking-lock every heap in turn and pop the first
    /// non-empty one. Reached only when a sampled pair looked empty, so it
    /// is rare under load; its job is the quiescent-emptiness guarantee —
    /// `None` from here means every heap was seen empty.
    fn sweep(&self) -> Option<(usize, T)> {
        for slot in self.slots.iter() {
            let mut g = slot.heap.lock();
            if R::ENABLED {
                self.recorder.record_event(CounterEvent::LockAcquire);
            }
            if let Some(out) = g.pop() {
                Self::publish_top(slot, &g);
                return Some(out);
            }
            Self::publish_top(slot, &g);
        }
        None
    }
}

impl<T: Send, R: Recorder> BoundedPq<T> for MultiQueuePq<T, R> {
    fn algorithm(&self) -> Algorithm {
        Algorithm::MultiQueue
    }

    fn num_priorities(&self) -> usize {
        self.num_priorities
    }

    fn max_threads(&self) -> usize {
        self.max_threads
    }

    #[inline]
    fn try_insert(&self, tid: usize, pri: usize, item: T) -> Result<(), PqError<T>> {
        if tid >= self.max_threads {
            return Err(PqError::TidOutOfRange {
                tid,
                max_threads: self.max_threads,
                item,
            });
        }
        if pri >= self.num_priorities {
            return Err(PqError::PriorityOutOfRange {
                pri,
                num_priorities: self.num_priorities,
                item,
            });
        }
        obs::timed(&*self.recorder, OpKind::Insert, || {
            self.insert_inner(tid, pri, item)
        });
        Ok(())
    }

    fn delete_min(&self, tid: usize) -> Option<(usize, T)> {
        assert!(tid < self.max_threads, "tid {tid} out of range");
        let out = obs::timed(&*self.recorder, OpKind::DeleteMin, || {
            self.delete_min_inner(tid)
        });
        if R::ENABLED && out.is_none() {
            self.recorder.record_event(CounterEvent::EmptyDeleteMin);
        }
        out
    }

    // The sticky (or freshly drawn) queue absorbs the whole batch in one
    // try-lock episode: one CAS, one top publication, k pushes.
    fn insert_batch(&self, tid: usize, mut batch: Vec<(usize, T)>) -> Result<(), PqBatchError<T>> {
        if batch.is_empty() {
            return Ok(());
        }
        if tid >= self.max_threads {
            let max_threads = self.max_threads;
            return Err(batch_reject(batch, 0, |_, item| PqError::TidOutOfRange {
                tid,
                max_threads,
                item,
            }));
        }
        if let Some(bad) = batch
            .iter()
            .position(|&(pri, _)| pri >= self.num_priorities)
        {
            let num_priorities = self.num_priorities;
            return Err(batch_reject(batch, bad, |pri, item| {
                PqError::PriorityOutOfRange {
                    pri,
                    num_priorities,
                    item,
                }
            }));
        }
        batch.sort_unstable_by_key(|&(pri, _)| pri);
        let n = batch.len() as u64;
        obs::timed(&*self.recorder, OpKind::InsertBatch, || {
            let t = &*self.threads[tid];
            let mut batch = Some(batch);
            loop {
                let sticky = self.stickiness > 1 && t.ins_left.load(Ordering::Relaxed) > 0;
                let q = if sticky {
                    t.ins_q.load(Ordering::Relaxed)
                } else {
                    t.rng.below(self.slots.len() as u64) as usize
                };
                let slot = &*self.slots[q];
                match slot.heap.try_lock() {
                    Some(mut g) => {
                        for (pri, item) in batch.take().expect("batch consumed once") {
                            g.push(pri, item);
                        }
                        Self::publish_top(slot, &g);
                        // The whole batch counts as one operation against
                        // the stickiness budget.
                        if self.stickiness > 1 {
                            if sticky {
                                t.ins_left.store(
                                    t.ins_left.load(Ordering::Relaxed) - 1,
                                    Ordering::Relaxed,
                                );
                            } else {
                                t.ins_q.store(q, Ordering::Relaxed);
                                t.ins_left.store(self.stickiness - 1, Ordering::Relaxed);
                            }
                        }
                        if R::ENABLED {
                            self.recorder.record_event(CounterEvent::LockAcquire);
                        }
                        return;
                    }
                    None => {
                        t.ins_left.store(0, Ordering::Relaxed);
                        if R::ENABLED {
                            self.recorder.record_event(CounterEvent::CasRetry);
                        }
                    }
                }
            }
        });
        obs::record_batch_op(&*self.recorder, n);
        Ok(())
    }

    // Pops up to `k` items from the two-choice winner under one lock hold,
    // publishing its top once at the end; re-draws (or sweeps) only if the
    // winner runs dry early. Relaxation grows with `k` — the winner's
    // items are taken en bloc while other heaps may hold smaller ones —
    // which is exactly what the simulator's rank-error audit quantifies.
    fn delete_min_batch(&self, tid: usize, k: usize, out: &mut Vec<(usize, T)>) -> usize {
        assert!(tid < self.max_threads, "tid {tid} out of range");
        if k == 0 {
            return 0;
        }
        let taken = obs::timed(&*self.recorder, OpKind::DeleteMinBatch, || {
            let t = &*self.threads[tid];
            let mut taken = 0;
            while taken < k {
                let sticky = self.stickiness > 1 && t.del_left.load(Ordering::Relaxed) > 0;
                let (a, b) = if sticky {
                    (
                        t.del_a.load(Ordering::Relaxed),
                        t.del_b.load(Ordering::Relaxed),
                    )
                } else {
                    self.draw_pair(t)
                };
                let top_a = self.slots[a].top.load(Ordering::Acquire);
                let top_b = self.slots[b].top.load(Ordering::Acquire);
                if top_a == EMPTY_TOP && top_b == EMPTY_TOP {
                    t.del_left.store(0, Ordering::Relaxed);
                    match self.sweep() {
                        Some(e) => {
                            out.push(e);
                            taken += 1;
                            continue;
                        }
                        None => break,
                    }
                }
                let q = if top_b < top_a { b } else { a };
                let slot = &*self.slots[q];
                match slot.heap.try_lock() {
                    Some(mut g) => {
                        if R::ENABLED {
                            self.recorder.record_event(CounterEvent::LockAcquire);
                        }
                        let before = taken;
                        while taken < k {
                            match g.pop() {
                                Some(e) => {
                                    out.push(e);
                                    taken += 1;
                                }
                                None => break,
                            }
                        }
                        Self::publish_top(slot, &g);
                        if taken == before {
                            // Raced empty under a stale top: repaired above.
                            t.del_left.store(0, Ordering::Relaxed);
                        } else if self.stickiness > 1 {
                            if sticky {
                                t.del_left.store(
                                    t.del_left.load(Ordering::Relaxed) - 1,
                                    Ordering::Relaxed,
                                );
                            } else {
                                t.del_a.store(a, Ordering::Relaxed);
                                t.del_b.store(b, Ordering::Relaxed);
                                t.del_left.store(self.stickiness - 1, Ordering::Relaxed);
                            }
                        }
                    }
                    None => {
                        t.del_left.store(0, Ordering::Relaxed);
                        if R::ENABLED {
                            self.recorder.record_event(CounterEvent::CasRetry);
                        }
                    }
                }
            }
            taken
        });
        obs::record_batch_op(&*self.recorder, taken as u64);
        if R::ENABLED && taken == 0 {
            self.recorder.record_event(CounterEvent::EmptyDeleteMin);
        }
        taken
    }

    // Fused root swap on the two-choice winner: one try-lock episode, one
    // sift, one top publication — versus two full episodes for the unfused
    // delete+insert pair.
    fn replace_min(&self, tid: usize, pri: usize, item: T) -> Option<(usize, T)> {
        assert!(tid < self.max_threads, "tid {tid} out of range");
        if pri >= self.num_priorities {
            reject(&PqError::PriorityOutOfRange {
                pri,
                num_priorities: self.num_priorities,
                item: (),
            });
        }
        let out = obs::timed(&*self.recorder, OpKind::ReplaceMin, || {
            let t = &*self.threads[tid];
            let mut item = Some(item);
            loop {
                let sticky = self.stickiness > 1 && t.del_left.load(Ordering::Relaxed) > 0;
                let (a, b) = if sticky {
                    (
                        t.del_a.load(Ordering::Relaxed),
                        t.del_b.load(Ordering::Relaxed),
                    )
                } else {
                    self.draw_pair(t)
                };
                let top_a = self.slots[a].top.load(Ordering::Acquire);
                let top_b = self.slots[b].top.load(Ordering::Acquire);
                if top_a == EMPTY_TOP && top_b == EMPTY_TOP {
                    // Queue looks empty: definitive sweep for the removal,
                    // then file the new item on the ordinary insert path.
                    t.del_left.store(0, Ordering::Relaxed);
                    let removed = self.sweep();
                    self.insert_inner(tid, pri, item.take().expect("item filed once"));
                    return removed;
                }
                let q = if top_b < top_a { b } else { a };
                let slot = &*self.slots[q];
                match slot.heap.try_lock() {
                    Some(mut g) => {
                        if R::ENABLED {
                            self.recorder.record_event(CounterEvent::LockAcquire);
                        }
                        let removed = g.replace_min(pri, item.take().expect("item filed once"));
                        Self::publish_top(slot, &g);
                        if removed.is_none() {
                            // Stale top over an empty heap: the new item is
                            // filed there anyway; report the empty removal.
                            t.del_left.store(0, Ordering::Relaxed);
                        } else if self.stickiness > 1 {
                            if sticky {
                                t.del_left.store(
                                    t.del_left.load(Ordering::Relaxed) - 1,
                                    Ordering::Relaxed,
                                );
                            } else {
                                t.del_a.store(a, Ordering::Relaxed);
                                t.del_b.store(b, Ordering::Relaxed);
                                t.del_left.store(self.stickiness - 1, Ordering::Relaxed);
                            }
                        }
                        return removed;
                    }
                    None => {
                        t.del_left.store(0, Ordering::Relaxed);
                        if R::ENABLED {
                            self.recorder.record_event(CounterEvent::CasRetry);
                        }
                    }
                }
            }
        });
        obs::record_batch_op(&*self.recorder, 1);
        if R::ENABLED && out.is_none() {
            self.recorder.record_event(CounterEvent::EmptyDeleteMin);
        }
        out
    }

    // Batch items are en-bloc pops from whole heaps (plus redraws): every
    // inversion inside one batch is this queue's own two-choice
    // relaxation, which is precisely what an online rank-error sampler
    // should see.
    fn ordered_batch_drain(&self) -> bool {
        true
    }

    fn is_empty(&self) -> bool {
        self.slots
            .iter()
            .all(|s| s.top.load(Ordering::Acquire) == EMPTY_TOP)
    }

    fn consistency(&self) -> Consistency {
        Consistency::Relaxed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn conserves_elements_single_thread() {
        let q = MultiQueuePq::new(32, 1);
        assert!(q.is_empty());
        for i in 0..100usize {
            q.insert(0, (i * 7) % 32, i);
        }
        assert!(!q.is_empty());
        let mut got = BTreeSet::new();
        while let Some((pri, item)) = q.delete_min(0) {
            assert_eq!(pri, (item * 7) % 32);
            assert!(got.insert(item), "item {item} returned twice");
        }
        assert_eq!(got.len(), 100, "every insert must drain");
        assert!(q.is_empty());
        assert_eq!(q.delete_min(0), None);
    }

    #[test]
    fn drain_is_near_sorted_with_bounded_rank_error() {
        // Sequentially, each delete-min returns the min of two sampled heap
        // tops: the result can skip the global minimum, but never by more
        // than the number of heaps' worth of "stuck" smaller items.
        let q = MultiQueuePq::new(64, 2);
        for i in 0..200usize {
            q.insert(i % 2, (i * 13) % 64, i);
        }
        let mut drained = Vec::new();
        while let Some((pri, _)) = q.delete_min(0) {
            drained.push(pri);
        }
        assert_eq!(drained.len(), 200);
        // Rank error of each pop: smaller items still in the queue. Far
        // from sorted-strict, but two-choice keeps it well away from the
        // worst case (a fully random drain of this sequence lands near 60).
        let mut worst = 0usize;
        for (i, &p) in drained.iter().enumerate() {
            let rank = drained[i + 1..].iter().filter(|&&x| x < p).count();
            worst = worst.max(rank);
        }
        assert!(worst > 0, "a 4-heap sampled drain is not exactly sorted");
        assert!(worst < 40, "rank error {worst} out of line for 4 queues");
    }

    #[test]
    fn two_choice_prefers_the_smaller_top() {
        // With exactly two queues, a sequential delete-min always sees both
        // tops and must return the true minimum every time.
        let q: MultiQueuePq<usize> =
            MultiQueuePq::with_config(128, 1, 2, 1, 7, Arc::new(NoopRecorder));
        assert_eq!(q.num_queues(), 2);
        for i in 0..64usize {
            q.insert(0, (i * 37) % 128, i);
        }
        let mut pris = Vec::new();
        while let Some((pri, _)) = q.delete_min(0) {
            pris.push(pri);
        }
        let mut sorted = pris.clone();
        sorted.sort_unstable();
        assert_eq!(pris, sorted, "two queues sampled exhaustively = strict");
    }

    #[test]
    fn concurrent_conservation() {
        use std::sync::Arc as StdArc;
        const T: usize = 4;
        const N: usize = 500;
        let q = StdArc::new(MultiQueuePq::new(16, T));
        let handles: Vec<_> = (0..T)
            .map(|tid| {
                let q = StdArc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    for i in 0..N {
                        q.insert(tid, (tid + i) % 16, tid * N + i);
                        if i % 2 == 1 {
                            if let Some((_, item)) = q.delete_min(tid) {
                                got.push(item);
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        let mut seen = BTreeSet::new();
        for h in handles {
            for item in h.join().unwrap() {
                assert!(seen.insert(item), "item {item} returned twice");
            }
        }
        while let Some((_, item)) = q.delete_min(0) {
            assert!(seen.insert(item), "item {item} returned twice");
        }
        assert_eq!(seen.len(), T * N, "inserted and drained counts must match");
        assert!(q.is_empty());
    }

    #[test]
    fn batch_ops_conserve_elements() {
        let q = MultiQueuePq::new(32, 1);
        let batch: Vec<(usize, usize)> = (0..100).map(|i| ((i * 7) % 32, i)).collect();
        q.insert_batch(0, batch).unwrap();
        let swapped = q.replace_min(0, 31, 1000).expect("queue is non-empty");
        let mut got = BTreeSet::new();
        got.insert(swapped.1);
        let mut out = Vec::new();
        loop {
            out.clear();
            let n = q.delete_min_batch(0, 8, &mut out);
            for (_, item) in out.drain(..) {
                assert!(got.insert(item), "item {item} returned twice");
            }
            if n == 0 {
                break;
            }
        }
        assert_eq!(got.len(), 101, "100 batched + 1 via replace_min");
        assert!(q.is_empty());
    }

    #[test]
    fn replace_min_on_empty_queue_still_files() {
        let q = MultiQueuePq::new(8, 1);
        assert_eq!(q.replace_min(0, 3, "x"), None);
        assert_eq!(q.delete_min(0), Some((3, "x")));
        assert!(q.is_empty());
    }

    #[test]
    fn batch_insert_validates_without_filing() {
        let q = MultiQueuePq::new(4, 1);
        let err = q.insert_batch(0, vec![(0, 'a'), (9, 'x')]).unwrap_err();
        assert_eq!(err.failed_pri, 9);
        assert_eq!(err.unconsumed_len(), 2);
        assert!(q.is_empty());
    }

    #[test]
    fn reports_relaxed_consistency() {
        let q: MultiQueuePq<()> = MultiQueuePq::new(4, 1);
        assert_eq!(q.algorithm(), Algorithm::MultiQueue);
        assert_eq!(q.consistency(), Consistency::Relaxed);
    }

    #[test]
    fn try_insert_returns_the_item() {
        let q = MultiQueuePq::new(4, 1);
        let err = q.try_insert(0, 9, "hot").unwrap_err();
        assert_eq!(err.into_item(), "hot");
        let err = q.try_insert(5, 0, "tid").unwrap_err();
        assert_eq!(err.into_item(), "tid");
        assert!(q.is_empty());
    }
}
