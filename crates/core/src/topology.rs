//! Process-level NUMA topology model for the native queues.
//!
//! The paper's machine (and the simulator mirroring it) is ccNUMA: a cache
//! line has a *home node*, and touching a line homed elsewhere costs a
//! multiple of a local access. The native side of this workspace runs on
//! whatever host CI happens to give it — often a single socket, sometimes a
//! single core — so [`Topology`] models the part that matters to the
//! algorithms: a node count, a static placement of threads and heap slots
//! onto nodes, and an *emulated* per-remote-line-transfer cost
//! ([`Topology::remote_ns`]) charged as a calibrated busy-wait. With the
//! knob at zero (the default) the model is free and the host behaves as the
//! UMA machine it probably is; with it non-zero, remote episodes cost real
//! wall time and the NUMA crossover becomes measurable on any host.
//!
//! The knob is a live atomic on purpose: benches and chaos tests raise it
//! mid-run to emulate a regional latency spike (the native twin of the
//! simulator's `Fault::RegionDelay`) and watch the adaptive controller
//! react.

use std::sync::atomic::{AtomicU64, Ordering};

use funnelpq_util::mono_ns;

/// Static thread/slot placement over `nodes` NUMA nodes plus the live
/// remote-access cost knob. Shared by [`crate::NumaPq`] and its adaptive
/// controller.
#[derive(Debug)]
pub struct Topology {
    nodes: usize,
    max_threads: usize,
    /// Emulated cost of one remote cache-line transfer, in nanoseconds.
    /// Zero disables the emulation entirely.
    remote_ns: AtomicU64,
}

impl Topology {
    /// A topology of `nodes` nodes hosting `max_threads` threads, with the
    /// remote-transfer cost starting at `remote_ns` nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` or `max_threads` is zero.
    pub fn new(nodes: usize, max_threads: usize, remote_ns: u64) -> Self {
        assert!(nodes > 0, "need at least one node");
        assert!(max_threads > 0, "need at least one thread");
        Topology {
            nodes,
            max_threads,
            remote_ns: AtomicU64::new(remote_ns),
        }
    }

    /// Number of NUMA nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The node thread `tid` lives on: threads are split into `nodes`
    /// contiguous blocks, mirroring how a pinned-thread sweep fills sockets
    /// in order.
    #[inline]
    pub fn node_of_tid(&self, tid: usize) -> usize {
        debug_assert!(tid < self.max_threads);
        tid * self.nodes / self.max_threads
    }

    /// The home node of slot `slot` out of `nslots`: slots are split into
    /// `nodes` contiguous blocks, so a node's threads and its slots are
    /// co-located.
    #[inline]
    pub fn node_of_slot(&self, slot: usize, nslots: usize) -> usize {
        debug_assert!(slot < nslots);
        slot * self.nodes / nslots
    }

    /// The contiguous slot range `start..end` homed on `node`, given
    /// `nslots` total slots. Empty only when `nslots < nodes`.
    pub fn slot_range(&self, node: usize, nslots: usize) -> (usize, usize) {
        debug_assert!(node < self.nodes);
        let start = (node * nslots).div_ceil(self.nodes);
        let end = ((node + 1) * nslots).div_ceil(self.nodes);
        (start, end)
    }

    /// Whether any thread *other than* `tid` lives on `node` — i.e. whether
    /// a delegated request to `node` could ever be served.
    pub fn has_server(&self, tid: usize, node: usize) -> bool {
        let (lo, hi) = self.thread_range(node);
        hi - lo > usize::from(tid >= lo && tid < hi)
    }

    /// The contiguous thread range `start..end` living on `node`.
    pub fn thread_range(&self, node: usize) -> (usize, usize) {
        debug_assert!(node < self.nodes);
        let start = (node * self.max_threads).div_ceil(self.nodes);
        let end = ((node + 1) * self.max_threads).div_ceil(self.nodes);
        (start, end)
    }

    /// Current emulated remote-transfer cost in nanoseconds.
    #[inline]
    pub fn remote_ns(&self) -> u64 {
        self.remote_ns.load(Ordering::Relaxed)
    }

    /// Sets the emulated remote-transfer cost. Takes effect on the next
    /// charged access — raising it mid-run is the native analogue of the
    /// simulator's regional latency spike.
    pub fn set_remote_ns(&self, ns: u64) {
        self.remote_ns.store(ns, Ordering::Relaxed);
    }

    /// Charges `transfers` remote cache-line transfers to the calling
    /// thread as a busy-wait of `transfers * remote_ns()` nanoseconds.
    /// Free (one relaxed load, one branch) while the knob is zero.
    #[inline]
    pub fn charge(&self, transfers: u64) {
        let ns = self.remote_ns.load(Ordering::Relaxed);
        if ns == 0 {
            return;
        }
        self.charge_cold(transfers.saturating_mul(ns));
    }

    #[cold]
    fn charge_cold(&self, total_ns: u64) {
        let deadline = mono_ns().saturating_add(total_ns);
        while mono_ns() < deadline {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_partitions_threads_and_slots() {
        let t = Topology::new(2, 8, 0);
        let nodes: Vec<usize> = (0..8).map(|tid| t.node_of_tid(tid)).collect();
        assert_eq!(nodes, [0, 0, 0, 0, 1, 1, 1, 1]);
        assert_eq!(t.thread_range(0), (0, 4));
        assert_eq!(t.thread_range(1), (4, 8));
        let slots: Vec<usize> = (0..16).map(|s| t.node_of_slot(s, 16)).collect();
        assert_eq!(&slots[..8], &[0; 8]);
        assert_eq!(&slots[8..], &[1; 8]);
        assert_eq!(t.slot_range(0, 16), (0, 8));
        assert_eq!(t.slot_range(1, 16), (8, 16));
        // Ranges tile the slot space even when nothing divides evenly.
        let t = Topology::new(3, 5, 0);
        let mut covered = 0;
        for node in 0..3 {
            let (lo, hi) = t.slot_range(node, 7);
            assert_eq!(lo, covered);
            covered = hi;
            for s in lo..hi {
                assert_eq!(t.node_of_slot(s, 7), node);
            }
        }
        assert_eq!(covered, 7);
    }

    #[test]
    fn has_server_excludes_the_asking_thread() {
        let t = Topology::new(2, 2, 0);
        // One thread per node: nobody else can serve my own node, but the
        // other node has its one thread.
        assert!(!t.has_server(0, 0));
        assert!(t.has_server(0, 1));
        let t = Topology::new(2, 1, 0);
        assert!(!t.has_server(0, 0));
        assert!(!t.has_server(0, 1), "node 1 hosts no threads at all");
    }

    #[test]
    fn charge_is_free_at_zero_and_waits_otherwise() {
        let t = Topology::new(2, 2, 0);
        let before = mono_ns();
        for _ in 0..1000 {
            t.charge(3);
        }
        assert!(mono_ns() - before < 10_000_000, "zero knob must be ~free");
        t.set_remote_ns(200_000);
        let before = mono_ns();
        t.charge(2);
        assert!(mono_ns() - before >= 400_000, "charged wait too short");
    }
}
