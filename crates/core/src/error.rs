//! The unified crate-level error: one type every fallible surface of
//! `funnelpq` converts into.
//!
//! Construction failures ([`BuildError`]), single-insert rejections
//! ([`PqError`]) and batch rejections ([`PqBatchError`]) each have precise,
//! item-carrying types of their own — but a layer above the queues (the
//! `funnelpq-server` shard factory and submit path, for instance) wants to
//! propagate *one* error type through `?`. [`Error`] is that type: a
//! non-exhaustive sum of the three, generic over the item so ownership of
//! rejected items survives the conversion (`into_items` hands every carried
//! item back, exactly as `PqError::into_item` /
//! `PqBatchError::into_unconsumed` would have).
//!
//! ```
//! use funnelpq::{Algorithm, Error, PqBuilder};
//!
//! fn build_and_fill(n: usize) -> Result<(), Error<u64>> {
//!     let q = PqBuilder::new(Algorithm::SingleLock, n, 1).try_build::<u64>()?;
//!     q.try_insert(0, 0, 7)?;
//!     Ok(())
//! }
//! assert!(build_and_fill(8).is_ok());
//! assert!(matches!(build_and_fill(0), Err(Error::Build(_))));
//! ```

use crate::builder::BuildError;
use crate::traits::{PqBatchError, PqError};

/// Any error the `funnelpq` crate can produce, as one propagatable type.
///
/// The generic parameter is the queue's item type; errors that carry
/// rejected items ([`Error::Insert`], [`Error::Batch`]) keep them, and
/// [`Error::into_items`] recovers them. Item-free call sites (pure
/// construction) can use the default `Error<()>`.
///
/// Marked `#[non_exhaustive]`: later layers (persistence, networking) may
/// add variants, so match with a wildcard arm.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum Error<T = ()> {
    /// Queue construction was refused ([`crate::PqBuilder::try_build`]).
    Build(BuildError),
    /// A single insert was rejected, carrying its item.
    Insert(PqError<T>),
    /// A batched insert stopped partway, carrying everything unfiled.
    Batch(PqBatchError<T>),
}

impl<T> Error<T> {
    /// Recovers every item this error carries: none for a build error, the
    /// one rejected item for an insert, and all unfiled items (failing
    /// entry first) for a batch. Together with whatever the operation did
    /// file, this is exactly what the caller submitted — the same
    /// conservation contract as [`PqError::into_item`] and
    /// [`PqBatchError::into_unconsumed`], surviving the conversion.
    pub fn into_items(self) -> Vec<T> {
        match self {
            Error::Build(_) => Vec::new(),
            Error::Insert(e) => vec![e.into_item()],
            Error::Batch(e) => e.into_unconsumed().into_iter().map(|(_, t)| t).collect(),
        }
    }

    /// The build error inside, if this is one.
    pub fn as_build(&self) -> Option<&BuildError> {
        match self {
            Error::Build(e) => Some(e),
            _ => None,
        }
    }
}

impl<T> From<BuildError> for Error<T> {
    fn from(e: BuildError) -> Self {
        Error::Build(e)
    }
}

impl<T> From<PqError<T>> for Error<T> {
    fn from(e: PqError<T>) -> Self {
        Error::Insert(e)
    }
}

impl<T> From<PqBatchError<T>> for Error<T> {
    fn from(e: PqBatchError<T>) -> Self {
        Error::Batch(e)
    }
}

impl<T> std::fmt::Display for Error<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Build(e) => write!(f, "build: {e}"),
            Error::Insert(e) => write!(f, "insert: {e}"),
            Error::Batch(e) => write!(f, "batch: {e}"),
        }
    }
}

impl<T: std::fmt::Debug + 'static> std::error::Error for Error<T> {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Build(e) => Some(e),
            Error::Insert(e) => Some(e),
            Error::Batch(e) => Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Algorithm;
    use std::error::Error as _;

    #[test]
    fn insert_error_round_trips_with_its_item() {
        let e: Error<String> = PqError::CapacityExhausted {
            item: "payload".to_string(),
        }
        .into();
        assert!(e.to_string().contains("capacity exhausted"));
        match e.clone() {
            Error::Insert(inner) => assert_eq!(inner.into_item(), "payload"),
            other => panic!("wrong variant: {other:?}"),
        }
        assert_eq!(e.into_items(), vec!["payload".to_string()]);
    }

    #[test]
    fn batch_error_round_trips_every_unconsumed_item() {
        let batch_err = PqBatchError {
            error: PqError::PriorityOutOfRange {
                pri: 9,
                num_priorities: 8,
                item: "b",
            },
            failed_pri: 9,
            rest: vec![(0, "a"), (2, "c")],
        };
        let e: Error<&str> = batch_err.clone().into();
        // The conversion must not lose or reorder ownership: matching back
        // out yields the same unconsumed partition.
        match e.clone() {
            Error::Batch(inner) => {
                assert_eq!(inner.into_unconsumed(), batch_err.into_unconsumed());
            }
            other => panic!("wrong variant: {other:?}"),
        }
        let mut items = e.into_items();
        assert_eq!(items.remove(0), "b", "failing item first");
        items.sort_unstable();
        assert_eq!(items, vec!["a", "c"]);
    }

    #[test]
    fn build_error_converts_and_carries_no_items() {
        let e: Error<u64> = BuildError::ZeroPriorities.into();
        assert_eq!(e.as_build(), Some(&BuildError::ZeroPriorities));
        assert!(e.to_string().starts_with("build: "));
        assert!(e.source().is_some());
        assert!(e.into_items().is_empty());
    }

    #[test]
    fn question_mark_propagation_compiles_across_all_three() {
        fn f(which: u8) -> Result<(), Error<u32>> {
            match which {
                0 => Err(BuildError::UnsupportedAlgorithm(Algorithm::HardwareTree))?,
                1 => Err(PqError::CapacityExhausted { item: 1u32 })?,
                _ => Err(PqBatchError {
                    error: PqError::CapacityExhausted { item: 2u32 },
                    failed_pri: 0,
                    rest: vec![],
                })?,
            }
        }
        assert!(matches!(f(0), Err(Error::Build(_))));
        assert!(matches!(f(1), Err(Error::Insert(_))));
        assert!(matches!(f(2), Err(Error::Batch(_))));
    }
}
