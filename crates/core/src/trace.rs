//! Native runtime tracing: a per-thread lock-free flight recorder for
//! queue operations, lock intervals and CAS-retry bursts, rendered
//! through the same Chrome-trace exporter as the simulator.
//!
//! The counter layer ([`crate::obs`]) answers *how much* contention a run
//! saw; this module answers *when and where*: each instrumented thread
//! appends fixed-width records to its own [`SeqRing`] (a seqlock ring —
//! writers never block, the newest records win), and
//! [`TracingRecorder::chrome_trace`] drains every ring into one Chrome
//! Trace Format document that loads in `chrome://tracing` or
//! <https://ui.perfetto.dev> next to the simulator's traces.
//!
//! [`TracingRecorder`] wraps an [`AtomicRecorder`], so attaching it buys
//! spans *and* the usual [`MetricsSnapshot`] counters with one recorder.
//! Like every recorder, it is opt-in per queue: the default
//! [`crate::obs::NoopRecorder`] still monomorphizes all instrumentation
//! (including the clock reads) to nothing, which the `obs_overhead`
//! bench's noop/tracing A/B asserts.
//!
//! Record encoding (`[u64; 4]`): `w0` is a tag — `0..=4` are
//! [`OpKind::index`] op spans, [`TAG_LOCK`] a lock interval, [`TAG_CAS`]
//! a CAS-retry burst — and `w1..w3` are tag-specific timestamps/counts on
//! the [`mono_ns`] timeline. Lock intervals arrive via the substrate
//! [`EventSink::lock_span`] hook (MCS locks time wait→hold→release when a
//! sink is attached); CAS bursts arrive via `event_n(CasRetry, n)`, which
//! the substrate already batches per operation episode, so one record is
//! one burst.

use std::sync::Arc;

use funnelpq_util::chrome::{Arg, ChromeTrace};
use funnelpq_util::{mono_ns, SeqRing};

use crate::obs::{
    shard_index, AtomicRecorder, CounterEvent, EventSink, MetricsSnapshot, OpKind, Recorder,
    SinkRef,
};

/// Tag word for a lock wait→hold→release interval record.
const TAG_LOCK: u64 = 16;
/// Tag word for a CAS-retry burst record.
const TAG_CAS: u64 = 17;

/// Default records per ring (a power of two; ~128 KiB per ring).
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// A decoded trace record, as returned by [`TracingRecorder::drain`].
/// `ring` is the per-thread ring the record came from (threads map onto
/// rings by the same dense index the recorder shards use).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceRecord {
    /// One queue operation span.
    Op {
        /// Source ring index.
        ring: usize,
        /// Which operation.
        kind: OpKind,
        /// Span start, [`mono_ns`] timeline.
        start_ns: u64,
        /// Span end.
        end_ns: u64,
    },
    /// One lock acquire→hold→release interval.
    Lock {
        /// Source ring index.
        ring: usize,
        /// When the acquirer started waiting.
        wait_start_ns: u64,
        /// When it got the lock.
        acquired_ns: u64,
        /// When it released.
        released_ns: u64,
    },
    /// One CAS-retry burst (the substrate batches retries per episode).
    CasBurst {
        /// Source ring index.
        ring: usize,
        /// When the burst was reported (end of the episode).
        at_ns: u64,
        /// Retries in the burst.
        count: u64,
    },
}

/// A [`Recorder`] + [`EventSink`] that keeps everything an
/// [`AtomicRecorder`] keeps *and* appends span/interval/burst records to
/// per-thread lock-free rings. Attach it through
/// [`crate::PqBuilder::recorder`] like any recorder.
///
/// # Examples
///
/// ```
/// use funnelpq::trace::TracingRecorder;
/// use funnelpq::{Algorithm, PqBuilder};
/// use std::sync::Arc;
///
/// let rec = Arc::new(TracingRecorder::new());
/// let q = PqBuilder::new(Algorithm::SingleLock, 16, 2)
///     .recorder(Arc::clone(&rec))
///     .build::<u64>();
/// q.insert(0, 3, 30);
/// q.delete_min(0);
/// assert!(rec.drain().iter().any(|r| matches!(
///     r,
///     funnelpq::trace::TraceRecord::Op { .. }
/// )));
/// let json = rec.chrome_trace();
/// assert!(json.contains("\"traceEvents\""));
/// ```
pub struct TracingRecorder {
    inner: AtomicRecorder,
    rings: Box<[SeqRing<4>]>,
}

impl std::fmt::Debug for TracingRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TracingRecorder")
            .field("rings", &self.rings.len())
            .field("records_pushed", &self.records_pushed())
            .finish_non_exhaustive()
    }
}

impl Default for TracingRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TracingRecorder {
    /// One ring per hardware thread, [`DEFAULT_RING_CAPACITY`] records
    /// each.
    pub fn new() -> Self {
        let rings = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(8);
        Self::with_config(rings, DEFAULT_RING_CAPACITY)
    }

    /// Explicit ring count and per-ring record capacity (both rounded up
    /// to powers of two internally where required).
    pub fn with_config(rings: usize, capacity: usize) -> Self {
        let rings = rings.max(1);
        TracingRecorder {
            inner: AtomicRecorder::new(),
            rings: (0..rings).map(|_| SeqRing::new(capacity)).collect(),
        }
    }

    fn ring(&self) -> &SeqRing<4> {
        &self.rings[shard_index(self.rings.len())]
    }

    /// Number of per-thread rings.
    pub fn rings(&self) -> usize {
        self.rings.len()
    }

    /// Total records ever claimed across all rings (including ones later
    /// overwritten by the flight-recorder window).
    pub fn records_pushed(&self) -> u64 {
        self.rings.iter().map(|r| r.pushed()).sum()
    }

    /// Counter/histogram snapshot, exactly as [`AtomicRecorder::snapshot`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.inner.snapshot()
    }

    /// Decodes the current contents of every ring, per-ring in append
    /// order. A consistent sample with flight-recorder semantics: records
    /// mid-write or overwritten during the scan are skipped.
    pub fn drain(&self) -> Vec<TraceRecord> {
        let mut out = Vec::new();
        for (ring, r) in self.rings.iter().enumerate() {
            for rec in r.drain() {
                let decoded = match rec[0] {
                    TAG_LOCK => TraceRecord::Lock {
                        ring,
                        wait_start_ns: rec[1],
                        acquired_ns: rec[2],
                        released_ns: rec[3],
                    },
                    TAG_CAS => TraceRecord::CasBurst {
                        ring,
                        at_ns: rec[1],
                        count: rec[2],
                    },
                    tag => match OpKind::ALL.get(tag as usize) {
                        Some(&kind) => TraceRecord::Op {
                            ring,
                            kind,
                            start_ns: rec[1],
                            end_ns: rec[2],
                        },
                        None => continue,
                    },
                };
                out.push(decoded);
            }
        }
        out
    }

    /// Drains every ring and renders one Chrome Trace Format document:
    ///
    /// * **process 0 "native ops"** — one thread row per ring; op spans as
    ///   `X` slices, CAS bursts as instants carrying their retry count;
    /// * **process 1 "locks"** — per-ring rows of back-to-back `X` slices,
    ///   `lock_wait` (acquire latency) then `lock_hold`.
    ///
    /// Timestamps are nanoseconds written into the microsecond field —
    /// like the simulator's cycles, the unit label is cosmetic (read
    /// "1 µs" as "1 ns"); what matters is that native and sim traces load
    /// in the same UI.
    pub fn chrome_trace(&self) -> String {
        const PID_OPS: u32 = 0;
        const PID_LOCKS: u32 = 1;
        let records = self.drain();
        let mut t = ChromeTrace::new();
        t.process_name(PID_OPS, "native ops");
        let mut ring_seen = vec![false; self.rings.len()];
        let mut lock_seen = vec![false; self.rings.len()];
        for r in &records {
            match *r {
                TraceRecord::Lock { ring, .. } => lock_seen[ring] = true,
                TraceRecord::Op { ring, .. } | TraceRecord::CasBurst { ring, .. } => {
                    ring_seen[ring] = true
                }
            }
        }
        for (i, seen) in ring_seen.iter().enumerate() {
            if *seen {
                t.thread_name(PID_OPS, i as u64, &format!("ring {i}"));
            }
        }
        if lock_seen.iter().any(|&s| s) {
            t.process_name(PID_LOCKS, "locks");
            for (i, seen) in lock_seen.iter().enumerate() {
                if *seen {
                    t.thread_name(PID_LOCKS, i as u64, &format!("ring {i}"));
                }
            }
        }
        for r in &records {
            match *r {
                TraceRecord::Op {
                    ring,
                    kind,
                    start_ns,
                    end_ns,
                } => t.complete(
                    kind.name(),
                    "op",
                    PID_OPS,
                    ring as u64,
                    start_ns,
                    end_ns.saturating_sub(start_ns),
                    &[],
                ),
                TraceRecord::Lock {
                    ring,
                    wait_start_ns,
                    acquired_ns,
                    released_ns,
                } => {
                    t.complete(
                        "lock_wait",
                        "lock",
                        PID_LOCKS,
                        ring as u64,
                        wait_start_ns,
                        acquired_ns.saturating_sub(wait_start_ns),
                        &[],
                    );
                    t.complete(
                        "lock_hold",
                        "lock",
                        PID_LOCKS,
                        ring as u64,
                        acquired_ns,
                        released_ns.saturating_sub(acquired_ns),
                        &[],
                    );
                }
                TraceRecord::CasBurst { ring, at_ns, count } => t.instant(
                    "cas_burst",
                    "cas",
                    PID_OPS,
                    ring as u64,
                    at_ns,
                    &[("retries", Arg::U64(count))],
                ),
            }
        }
        t.finish()
    }
}

impl Recorder for TracingRecorder {
    const ENABLED: bool = true;

    fn record_event_n(&self, event: CounterEvent, n: u64) {
        self.inner.record_event_n(event, n);
        if event == CounterEvent::CasRetry {
            self.ring().push([TAG_CAS, mono_ns(), n, 0]);
        }
    }

    fn record_op(&self, kind: OpKind, nanos: u64) {
        // Duration-only report (no span endpoints): histogram only.
        self.inner.record_op(kind, nanos);
    }

    fn record_op_span(&self, kind: OpKind, start_ns: u64, end_ns: u64) {
        self.inner.record_op(kind, end_ns.saturating_sub(start_ns));
        self.ring().push([kind.index() as u64, start_ns, end_ns, 0]);
    }

    fn record_batch(&self, size: u64) {
        self.inner.record_batch(size);
    }

    fn sink(self: &Arc<Self>) -> Option<SinkRef> {
        Some(Arc::clone(self) as SinkRef)
    }
}

impl EventSink for TracingRecorder {
    fn event_n(&self, event: CounterEvent, n: u64) {
        self.record_event_n(event, n);
    }

    fn lock_span(&self, wait_start_ns: u64, acquired_ns: u64, released_ns: u64) {
        self.ring()
            .push([TAG_LOCK, wait_start_ns, acquired_ns, released_ns]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Algorithm, PqBuilder};

    #[test]
    fn records_op_spans_and_counters_together() {
        let rec = Arc::new(TracingRecorder::with_config(2, 64));
        let q = PqBuilder::new(Algorithm::SingleLock, 32, 2)
            .recorder(Arc::clone(&rec))
            .build::<u64>();
        for i in 0..10u64 {
            q.insert(0, (i as usize * 3) % 32, i);
        }
        while q.delete_min(0).is_some() {}
        let snap = rec.snapshot();
        assert_eq!(snap.insert.count, 10);
        let recs = rec.drain();
        let inserts = recs
            .iter()
            .filter(|r| {
                matches!(
                    r,
                    TraceRecord::Op {
                        kind: OpKind::Insert,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(inserts, 10);
        for r in &recs {
            if let TraceRecord::Op {
                start_ns, end_ns, ..
            } = r
            {
                assert!(start_ns <= end_ns);
            }
        }
    }

    #[test]
    fn lock_spans_flow_from_the_substrate() {
        let rec = Arc::new(TracingRecorder::with_config(1, 256));
        let q = PqBuilder::new(Algorithm::SingleLock, 8, 1)
            .recorder(Arc::clone(&rec))
            .build::<u64>();
        q.insert(0, 1, 1);
        q.delete_min(0);
        let locks: Vec<_> = rec
            .drain()
            .into_iter()
            .filter(|r| matches!(r, TraceRecord::Lock { .. }))
            .collect();
        assert!(!locks.is_empty(), "MCS lock spans missing");
        for l in locks {
            if let TraceRecord::Lock {
                wait_start_ns,
                acquired_ns,
                released_ns,
                ..
            } = l
            {
                assert!(wait_start_ns <= acquired_ns && acquired_ns <= released_ns);
            }
        }
    }

    #[test]
    fn cas_bursts_carry_their_count() {
        let rec = Arc::new(TracingRecorder::with_config(1, 64));
        rec.record_event_n(CounterEvent::CasRetry, 5);
        rec.record_event(CounterEvent::LockAcquire); // no trace record
        let recs = rec.drain();
        assert_eq!(recs.len(), 1);
        assert!(matches!(recs[0], TraceRecord::CasBurst { count: 5, .. }));
        assert_eq!(rec.snapshot().event(CounterEvent::CasRetry), 5);
        assert_eq!(rec.snapshot().event(CounterEvent::LockAcquire), 1);
    }

    #[test]
    fn chrome_export_has_both_processes() {
        let rec = Arc::new(TracingRecorder::with_config(1, 256));
        let q = PqBuilder::new(Algorithm::SingleLock, 8, 1)
            .recorder(Arc::clone(&rec))
            .build::<u64>();
        q.insert(0, 1, 1);
        q.delete_min(0);
        let j = rec.chrome_trace();
        assert!(j.starts_with("{\"displayTimeUnit\""));
        assert!(j.contains("\"name\":\"native ops\""));
        assert!(j.contains("\"name\":\"locks\""));
        assert!(j.contains("\"name\":\"insert\""));
        assert!(j.contains("\"name\":\"lock_hold\""));
        assert!(!j.contains(",\n]"));
    }

    #[test]
    fn flight_recorder_keeps_newest() {
        let rec = TracingRecorder::with_config(1, 8);
        for i in 0..100u64 {
            rec.record_op_span(OpKind::Insert, i, i + 1);
        }
        let recs = rec.drain();
        assert_eq!(recs.len(), 8);
        assert!(matches!(
            recs.last(),
            Some(TraceRecord::Op { start_ns: 99, .. })
        ));
    }
}
