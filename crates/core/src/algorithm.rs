//! The shared algorithm name list: one enum for both the native queues in
//! this crate and the simulated queues in `funnelpq-simqueues`.

use crate::traits::Consistency;

/// Which of the paper's algorithms to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Heap under one MCS lock.
    SingleLock,
    /// Hunt et al. concurrent heap.
    HuntEtAl,
    /// Bounded-range skip list of bins with a delete bin.
    SkipList,
    /// Array of MCS-locked bins, scanned.
    SimpleLinear,
    /// Tree of MCS-locked counters over locked bins.
    SimpleTree,
    /// Array of combining-funnel stacks, scanned.
    LinearFunnels,
    /// Tree with funnel counters at the top and funnel-stack bins.
    FunnelTree,
    /// Ablation: tree with hardware fetch-and-add counters. Not one of the
    /// paper's seven (its machine model has no fetch-and-add) and only
    /// buildable on the simulator side — [`crate::PqBuilder`] rejects it.
    HardwareTree,
}

impl Algorithm {
    /// All seven algorithms, in the paper's presentation order.
    pub const ALL: [Algorithm; 7] = [
        Algorithm::SingleLock,
        Algorithm::HuntEtAl,
        Algorithm::SkipList,
        Algorithm::SimpleLinear,
        Algorithm::SimpleTree,
        Algorithm::LinearFunnels,
        Algorithm::FunnelTree,
    ];

    /// The four algorithms the paper carries into its high-concurrency
    /// comparisons (Figures 7–9).
    pub const SCALABLE: [Algorithm; 4] = [
        Algorithm::SimpleLinear,
        Algorithm::SimpleTree,
        Algorithm::LinearFunnels,
        Algorithm::FunnelTree,
    ];

    /// The algorithm's name as printed in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::SingleLock => "SingleLock",
            Algorithm::HuntEtAl => "HuntEtAl",
            Algorithm::SkipList => "SkipList",
            Algorithm::SimpleLinear => "SimpleLinear",
            Algorithm::SimpleTree => "SimpleTree",
            Algorithm::LinearFunnels => "LinearFunnels",
            Algorithm::FunnelTree => "FunnelTree",
            Algorithm::HardwareTree => "HardwareTree",
        }
    }

    /// The consistency condition this algorithm provides (paper Appendix B).
    ///
    /// `HuntEtAl` is classified quiescently consistent, not linearizable:
    /// its hand-over-hand sift-down can transiently park a freshly swapped
    /// large value at the root while a smaller settled item sits deeper in
    /// the heap, and a concurrent `delete_min` that locks the root in that
    /// window returns the non-minimal value. The simulated machine's
    /// history audit produces concrete interval counterexamples (a delete
    /// overlapped by nothing returning priority `p` while a smaller item
    /// was present for its whole duration), so the stronger claim does not
    /// hold for this implementation.
    pub fn consistency(&self) -> Consistency {
        match self {
            Algorithm::SingleLock | Algorithm::SimpleLinear => Consistency::Linearizable,
            Algorithm::HuntEtAl
            | Algorithm::SkipList
            | Algorithm::SimpleTree
            | Algorithm::LinearFunnels
            | Algorithm::FunnelTree
            | Algorithm::HardwareTree => Consistency::QuiescentlyConsistent,
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Algorithm {
    type Err = String;

    /// Parses a paper name (case-insensitive), e.g. `"FunnelTree"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Algorithm::ALL
            .into_iter()
            .chain([Algorithm::HardwareTree])
            .find(|a| a.name().eq_ignore_ascii_case(s))
            .ok_or_else(|| format!("unknown algorithm {s:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_from_str() {
        for a in Algorithm::ALL.into_iter().chain([Algorithm::HardwareTree]) {
            assert_eq!(a.name().parse::<Algorithm>().unwrap(), a);
            assert_eq!(a.name().to_lowercase().parse::<Algorithm>().unwrap(), a);
        }
        assert!("nope".parse::<Algorithm>().is_err());
    }

    #[test]
    fn scalable_is_a_subset_of_all() {
        for a in Algorithm::SCALABLE {
            assert!(Algorithm::ALL.contains(&a));
        }
    }

    #[test]
    fn paper_consistency_labels() {
        use Consistency::*;
        assert_eq!(Algorithm::SingleLock.consistency(), Linearizable);
        assert_eq!(Algorithm::HuntEtAl.consistency(), QuiescentlyConsistent);
        assert_eq!(Algorithm::SimpleLinear.consistency(), Linearizable);
        assert_eq!(Algorithm::SkipList.consistency(), QuiescentlyConsistent);
        assert_eq!(Algorithm::SimpleTree.consistency(), QuiescentlyConsistent);
        assert_eq!(
            Algorithm::LinearFunnels.consistency(),
            QuiescentlyConsistent
        );
        assert_eq!(Algorithm::FunnelTree.consistency(), QuiescentlyConsistent);
    }
}
