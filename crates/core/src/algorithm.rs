//! The shared algorithm name list: one enum for both the native queues in
//! this crate and the simulated queues in `funnelpq-simqueues`.

use crate::traits::Consistency;

/// Which of the paper's algorithms to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Heap under one MCS lock.
    SingleLock,
    /// Hunt et al. concurrent heap.
    HuntEtAl,
    /// Bounded-range skip list of bins with a delete bin.
    SkipList,
    /// Array of MCS-locked bins, scanned.
    SimpleLinear,
    /// Tree of MCS-locked counters over locked bins.
    SimpleTree,
    /// Array of combining-funnel stacks, scanned.
    LinearFunnels,
    /// Tree with funnel counters at the top and funnel-stack bins.
    FunnelTree,
    /// Ablation: tree with hardware fetch-and-add counters. Not one of the
    /// paper's seven (its machine model has no fetch-and-add) and only
    /// buildable on the simulator side — [`crate::PqBuilder`] rejects it.
    HardwareTree,
    /// Relaxed MultiQueue (Williams, Sanders & Dementiev): `c·T` sequential
    /// heaps behind try-locks, delete-min sampling two and popping the
    /// smaller top. Not one of the paper's seven — it trades strict
    /// delete-min for [`Consistency::Relaxed`] ordering — so it stays out
    /// of [`Algorithm::ALL`] and the paper-replication sweeps.
    MultiQueue,
    /// NUMA-adaptive MultiQueue (SmartPQ, arXiv 2406.06900): node-local
    /// heap partitions fronted by a delegation layer, with a live
    /// controller flipping between NUMA-oblivious and delegated serving
    /// from contention signals. Relaxed like the MultiQueue it partitions,
    /// so likewise outside [`Algorithm::ALL`].
    NumaPq,
}

impl Algorithm {
    /// All seven algorithms, in the paper's presentation order.
    pub const ALL: [Algorithm; 7] = [
        Algorithm::SingleLock,
        Algorithm::HuntEtAl,
        Algorithm::SkipList,
        Algorithm::SimpleLinear,
        Algorithm::SimpleTree,
        Algorithm::LinearFunnels,
        Algorithm::FunnelTree,
    ];

    /// The four algorithms the paper carries into its high-concurrency
    /// comparisons (Figures 7–9).
    pub const SCALABLE: [Algorithm; 4] = [
        Algorithm::SimpleLinear,
        Algorithm::SimpleTree,
        Algorithm::LinearFunnels,
        Algorithm::FunnelTree,
    ];

    /// Every variant the workspace knows, paper or not. Name parsing and
    /// tooling sweeps that want "everything buildable somewhere" go through
    /// this; paper-replication sweeps stay on [`Algorithm::ALL`].
    ///
    /// Completeness is compiler-enforced: `roster_index` matches on every
    /// variant, and the `every_is_complete_and_in_roster_order` test pins
    /// this array to it, so adding a variant without extending `EVERY`
    /// fails the build.
    pub const EVERY: [Algorithm; 10] = [
        Algorithm::SingleLock,
        Algorithm::HuntEtAl,
        Algorithm::SkipList,
        Algorithm::SimpleLinear,
        Algorithm::SimpleTree,
        Algorithm::LinearFunnels,
        Algorithm::FunnelTree,
        Algorithm::HardwareTree,
        Algorithm::MultiQueue,
        Algorithm::NumaPq,
    ];

    /// The slot each variant occupies in [`Algorithm::EVERY`]. Exists to
    /// make the variant list `match`-exhaustive in exactly one place: a new
    /// variant fails to compile here (and in `name`/`consistency`/every
    /// builder match) until it is wired through, and the `const` assertion
    /// below pins `EVERY`'s completeness at compile time.
    const fn roster_index(self) -> usize {
        match self {
            Algorithm::SingleLock => 0,
            Algorithm::HuntEtAl => 1,
            Algorithm::SkipList => 2,
            Algorithm::SimpleLinear => 3,
            Algorithm::SimpleTree => 4,
            Algorithm::LinearFunnels => 5,
            Algorithm::FunnelTree => 6,
            Algorithm::HardwareTree => 7,
            Algorithm::MultiQueue => 8,
            Algorithm::NumaPq => 9,
        }
    }

    /// `true` for algorithms with [`Consistency::Relaxed`] semantics, whose
    /// histories are audited with a rank-error bound instead of drain
    /// sortedness.
    pub fn is_relaxed(&self) -> bool {
        self.consistency() == Consistency::Relaxed
    }

    /// The algorithm's name as printed in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::SingleLock => "SingleLock",
            Algorithm::HuntEtAl => "HuntEtAl",
            Algorithm::SkipList => "SkipList",
            Algorithm::SimpleLinear => "SimpleLinear",
            Algorithm::SimpleTree => "SimpleTree",
            Algorithm::LinearFunnels => "LinearFunnels",
            Algorithm::FunnelTree => "FunnelTree",
            Algorithm::HardwareTree => "HardwareTree",
            Algorithm::MultiQueue => "MultiQueue",
            Algorithm::NumaPq => "NumaPq",
        }
    }

    /// The consistency condition this algorithm provides (paper Appendix B).
    ///
    /// `HuntEtAl` is classified quiescently consistent, not linearizable:
    /// its hand-over-hand sift-down can transiently park a freshly swapped
    /// large value at the root while a smaller settled item sits deeper in
    /// the heap, and a concurrent `delete_min` that locks the root in that
    /// window returns the non-minimal value. The simulated machine's
    /// history audit produces concrete interval counterexamples (a delete
    /// overlapped by nothing returning priority `p` while a smaller item
    /// was present for its whole duration), so the stronger claim does not
    /// hold for this implementation.
    pub fn consistency(&self) -> Consistency {
        match self {
            Algorithm::SingleLock | Algorithm::SimpleLinear => Consistency::Linearizable,
            Algorithm::HuntEtAl
            | Algorithm::SkipList
            | Algorithm::SimpleTree
            | Algorithm::LinearFunnels
            | Algorithm::FunnelTree
            | Algorithm::HardwareTree => Consistency::QuiescentlyConsistent,
            Algorithm::MultiQueue | Algorithm::NumaPq => Consistency::Relaxed,
        }
    }
}

// `EVERY` lists each variant exactly once, in `roster_index` order —
// checked when this crate compiles, not when a test happens to run.
const _: () = {
    let mut i = 0;
    while i < Algorithm::EVERY.len() {
        assert!(Algorithm::EVERY[i].roster_index() == i);
        i += 1;
    }
};

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Algorithm {
    type Err = String;

    /// Parses a paper name (case-insensitive), e.g. `"FunnelTree"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Algorithm::EVERY
            .into_iter()
            .find(|a| a.name().eq_ignore_ascii_case(s))
            .ok_or_else(|| format!("unknown algorithm {s:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_from_str() {
        for a in Algorithm::EVERY {
            assert_eq!(a.name().parse::<Algorithm>().unwrap(), a);
            assert_eq!(a.name().to_lowercase().parse::<Algorithm>().unwrap(), a);
        }
        assert!("nope".parse::<Algorithm>().is_err());
    }

    #[test]
    fn scalable_is_a_subset_of_all() {
        for a in Algorithm::SCALABLE {
            assert!(Algorithm::ALL.contains(&a));
        }
    }

    #[test]
    fn every_is_complete_and_in_roster_order() {
        // ALL is EVERY minus the three non-paper variants, same order.
        let paper: Vec<_> = Algorithm::EVERY
            .into_iter()
            .filter(|a| {
                !matches!(
                    a,
                    Algorithm::HardwareTree | Algorithm::MultiQueue | Algorithm::NumaPq
                )
            })
            .collect();
        assert_eq!(paper, Algorithm::ALL);
    }

    #[test]
    fn multiqueue_is_relaxed_and_not_in_the_paper_sweeps() {
        assert_eq!(Algorithm::MultiQueue.consistency(), Consistency::Relaxed);
        assert!(Algorithm::MultiQueue.is_relaxed());
        assert!(Algorithm::NumaPq.is_relaxed());
        assert!(!Algorithm::FunnelTree.is_relaxed());
        for relaxed in [Algorithm::MultiQueue, Algorithm::NumaPq] {
            assert!(!Algorithm::ALL.contains(&relaxed));
            assert!(!Algorithm::SCALABLE.contains(&relaxed));
        }
    }

    #[test]
    fn paper_consistency_labels() {
        use Consistency::*;
        assert_eq!(Algorithm::SingleLock.consistency(), Linearizable);
        assert_eq!(Algorithm::HuntEtAl.consistency(), QuiescentlyConsistent);
        assert_eq!(Algorithm::SimpleLinear.consistency(), Linearizable);
        assert_eq!(Algorithm::SkipList.consistency(), QuiescentlyConsistent);
        assert_eq!(Algorithm::SimpleTree.consistency(), QuiescentlyConsistent);
        assert_eq!(
            Algorithm::LinearFunnels.consistency(),
            QuiescentlyConsistent
        );
        assert_eq!(Algorithm::FunnelTree.consistency(), QuiescentlyConsistent);
    }
}
