//! The bounded-range concurrent priority queue interface.

/// A concurrent priority queue over the fixed priority range
/// `0..num_priorities()`, where **smaller is more urgent**.
///
/// This is the interface from §2 of the paper: `insert` files an item under
/// a priority, `delete_min` removes an item of the smallest priority
/// currently present.
///
/// # Thread ids
///
/// Implementations based on combining funnels coordinate through dense
/// per-thread records, so every operation takes the caller's thread id
/// (`0..max_threads()`). Two threads using one id concurrently is a logic
/// error — results may be wrong — but never memory-unsafe. Lock-based
/// implementations ignore the id.
///
/// # Consistency
///
/// Each implementation documents whether it is **linearizable** or
/// **quiescently consistent** (see the paper's Appendix B). Both guarantee
/// that at quiescence the queue contains exactly the un-deleted inserts, and
/// that `k` delete-mins running after a quiescent point with no concurrent
/// inserts return the `k` smallest priorities present.
pub trait BoundedPq<T: Send>: Send + Sync {
    /// The number of allowed priorities; valid priorities are
    /// `0..num_priorities()`.
    fn num_priorities(&self) -> usize;

    /// Maximum number of distinct thread ids this queue accepts.
    fn max_threads(&self) -> usize;

    /// Inserts `item` with priority `pri`.
    ///
    /// # Panics
    ///
    /// Panics if `pri >= num_priorities()` or `tid >= max_threads()`.
    fn insert(&self, tid: usize, pri: usize, item: T);

    /// Removes and returns an item with the smallest present priority, or
    /// `None` if the queue appears empty.
    ///
    /// Under concurrency, `None` can also be returned when every item the
    /// operation could reach was raced away (the paper's `delete-min`
    /// likewise may return NULL); callers that know the queue is non-empty
    /// at quiescence can rely on `Some`.
    ///
    /// # Panics
    ///
    /// Panics if `tid >= max_threads()`.
    fn delete_min(&self, tid: usize) -> Option<(usize, T)>;

    /// Advisory emptiness test. Exact only at quiescence.
    fn is_empty(&self) -> bool;
}

/// Consistency condition offered by a queue (paper Appendix B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Consistency {
    /// Operations appear to take effect at a point inside their execution
    /// interval, consistently with real-time order.
    Linearizable,
    /// Operations appear to take effect at a point between surrounding
    /// quiescent states; real-time order between overlapping-with-a-common
    /// operation calls may be reordered.
    QuiescentlyConsistent,
}

impl std::fmt::Display for Consistency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Consistency::Linearizable => write!(f, "linearizable"),
            Consistency::QuiescentlyConsistent => write!(f, "quiescently consistent"),
        }
    }
}

/// Metadata about a queue implementation, used by benches and examples.
pub trait PqInfo {
    /// Short algorithm name as used in the paper (e.g. `"FunnelTree"`).
    fn algorithm_name(&self) -> &'static str;
    /// The consistency condition the implementation provides.
    fn consistency(&self) -> Consistency;
}
