//! The bounded-range concurrent priority queue interface.

use crate::algorithm::Algorithm;

/// Why an insert was rejected. Carries the item back so callers can retry
/// or recover it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PqError<T> {
    /// `tid >= max_threads()`.
    TidOutOfRange {
        /// The offending thread id.
        tid: usize,
        /// The queue's thread-id bound.
        max_threads: usize,
        /// The item that was not inserted.
        item: T,
    },
    /// `pri >= num_priorities()`.
    PriorityOutOfRange {
        /// The offending priority.
        pri: usize,
        /// The queue's priority bound.
        num_priorities: usize,
        /// The item that was not inserted.
        item: T,
    },
    /// The queue's fixed capacity is full (only queues with a construction-
    /// time capacity, e.g. `HuntPq`, report this).
    CapacityExhausted {
        /// The item that was not inserted.
        item: T,
    },
}

impl<T> PqError<T> {
    /// Recovers the item the rejected insert carried.
    pub fn into_item(self) -> T {
        match self {
            PqError::TidOutOfRange { item, .. }
            | PqError::PriorityOutOfRange { item, .. }
            | PqError::CapacityExhausted { item } => item,
        }
    }
}

impl<T> std::fmt::Display for PqError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PqError::TidOutOfRange {
                tid, max_threads, ..
            } => {
                write!(f, "tid {tid} out of range (max_threads {max_threads})")
            }
            PqError::PriorityOutOfRange {
                pri,
                num_priorities,
                ..
            } => {
                write!(
                    f,
                    "priority {pri} out of range (num_priorities {num_priorities})"
                )
            }
            PqError::CapacityExhausted { .. } => write!(f, "queue capacity exhausted"),
        }
    }
}

impl<T: std::fmt::Debug> std::error::Error for PqError<T> {}

// Keeps the panic formatting machinery out of the inlined `insert` fast
// path (it costs measurable ns/op on the cheapest queues otherwise).
#[cold]
#[inline(never)]
fn reject(e: &dyn std::fmt::Display) -> ! {
    panic!("{e}");
}

/// A concurrent priority queue over the fixed priority range
/// `0..num_priorities()`, where **smaller is more urgent**.
///
/// This is the interface from §2 of the paper: `insert` files an item under
/// a priority, `delete_min` removes an item of the smallest priority
/// currently present. Construct implementations uniformly with
/// [`crate::PqBuilder`], or directly through each type's constructors.
///
/// # Thread ids
///
/// Implementations based on combining funnels coordinate through dense
/// per-thread records, so every operation takes the caller's thread id
/// (`0..max_threads()`). Two threads using one id concurrently is a logic
/// error — results may be wrong — but never memory-unsafe. Lock-based
/// implementations ignore the id (but still validate it).
///
/// # Panic policy
///
/// The fallible form of insertion is [`BoundedPq::try_insert`], which
/// reports rejected arguments (and exhausted fixed capacity) as a
/// [`PqError`] carrying the item back. [`BoundedPq::insert`] is a thin
/// wrapper that panics with the error's message instead; `delete_min`
/// panics on a tid outside `0..max_threads()`. Nothing else in the
/// interface panics.
///
/// # Consistency
///
/// Each implementation is either **linearizable** or **quiescently
/// consistent** (see the paper's Appendix B), queryable via
/// [`BoundedPq::consistency`]. Both guarantee that at quiescence the queue
/// contains exactly the un-deleted inserts, and that `k` delete-mins running
/// after a quiescent point with no concurrent inserts return the `k`
/// smallest priorities present.
pub trait BoundedPq<T: Send>: Send + Sync {
    /// Which of the paper's algorithms this queue implements.
    fn algorithm(&self) -> Algorithm;

    /// The number of allowed priorities; valid priorities are
    /// `0..num_priorities()`.
    fn num_priorities(&self) -> usize;

    /// Maximum number of distinct thread ids this queue accepts.
    fn max_threads(&self) -> usize;

    /// Inserts `item` with priority `pri`, or returns it inside a
    /// [`PqError`] if `tid`/`pri` is out of range or a fixed-capacity queue
    /// is full. Never panics (see the trait-level panic policy).
    fn try_insert(&self, tid: usize, pri: usize, item: T) -> Result<(), PqError<T>>;

    /// Inserts `item` with priority `pri`, panicking where
    /// [`BoundedPq::try_insert`] would return an error (see the trait-level
    /// panic policy).
    fn insert(&self, tid: usize, pri: usize, item: T) {
        if let Err(e) = self.try_insert(tid, pri, item) {
            reject(&e);
        }
    }

    /// Removes and returns an item with the smallest present priority, or
    /// `None` if the queue appears empty.
    ///
    /// Under concurrency, `None` can also be returned when every item the
    /// operation could reach was raced away (the paper's `delete-min`
    /// likewise may return NULL); callers that know the queue is non-empty
    /// at quiescence can rely on `Some`.
    fn delete_min(&self, tid: usize) -> Option<(usize, T)>;

    /// Advisory emptiness test: a racy read that is exact **only at
    /// quiescence**. Never use it to terminate a loop while other threads
    /// may still insert — count operations instead (a `false` may already be
    /// stale when acted on, and `true` says nothing about in-flight
    /// inserts).
    fn is_empty(&self) -> bool;

    /// Short algorithm name as used in the paper (e.g. `"FunnelTree"`).
    fn algorithm_name(&self) -> &'static str {
        self.algorithm().name()
    }

    /// The consistency condition the implementation provides.
    fn consistency(&self) -> Consistency {
        self.algorithm().consistency()
    }
}

/// Consistency condition offered by a queue (paper Appendix B, plus the
/// post-paper *relaxed* class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Consistency {
    /// Operations appear to take effect at a point inside their execution
    /// interval, consistently with real-time order.
    Linearizable,
    /// Operations appear to take effect at a point between surrounding
    /// quiescent states; real-time order between overlapping-with-a-common
    /// operation calls may be reordered.
    QuiescentlyConsistent,
    /// `delete_min` may return an item that is *near* the minimum rather
    /// than the minimum itself, even at quiescence — the MultiQueue trade
    /// (Williams, Sanders & Dementiev, "Engineering MultiQueues"). Element
    /// conservation still holds exactly; only the ordering guarantee is
    /// weakened, and the audit layer measures the slack as per-operation
    /// *rank error* instead of asserting sortedness.
    Relaxed,
}

impl std::fmt::Display for Consistency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Consistency::Linearizable => write!(f, "linearizable"),
            Consistency::QuiescentlyConsistent => write!(f, "quiescently consistent"),
            Consistency::Relaxed => write!(f, "relaxed"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pq_error_messages_and_item_recovery() {
        let e = PqError::PriorityOutOfRange {
            pri: 9,
            num_priorities: 8,
            item: "x",
        };
        assert_eq!(e.to_string(), "priority 9 out of range (num_priorities 8)");
        assert_eq!(e.into_item(), "x");

        let e = PqError::TidOutOfRange {
            tid: 3,
            max_threads: 2,
            item: 7u32,
        };
        assert_eq!(e.to_string(), "tid 3 out of range (max_threads 2)");
        assert_eq!(e.into_item(), 7);

        let e = PqError::CapacityExhausted { item: () };
        assert!(e.to_string().contains("capacity exhausted"));
    }
}
