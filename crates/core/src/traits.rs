//! The bounded-range concurrent priority queue interface.

use crate::algorithm::Algorithm;

/// Why an insert was rejected. Carries the item back so callers can retry
/// or recover it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PqError<T> {
    /// `tid >= max_threads()`.
    TidOutOfRange {
        /// The offending thread id.
        tid: usize,
        /// The queue's thread-id bound.
        max_threads: usize,
        /// The item that was not inserted.
        item: T,
    },
    /// `pri >= num_priorities()`.
    PriorityOutOfRange {
        /// The offending priority.
        pri: usize,
        /// The queue's priority bound.
        num_priorities: usize,
        /// The item that was not inserted.
        item: T,
    },
    /// The queue's fixed capacity is full (only queues with a construction-
    /// time capacity, e.g. `HuntPq`, report this).
    CapacityExhausted {
        /// The item that was not inserted.
        item: T,
    },
}

impl<T> PqError<T> {
    /// Recovers the item the rejected insert carried.
    pub fn into_item(self) -> T {
        match self {
            PqError::TidOutOfRange { item, .. }
            | PqError::PriorityOutOfRange { item, .. }
            | PqError::CapacityExhausted { item } => item,
        }
    }
}

impl<T> std::fmt::Display for PqError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PqError::TidOutOfRange {
                tid, max_threads, ..
            } => {
                write!(f, "tid {tid} out of range (max_threads {max_threads})")
            }
            PqError::PriorityOutOfRange {
                pri,
                num_priorities,
                ..
            } => {
                write!(
                    f,
                    "priority {pri} out of range (num_priorities {num_priorities})"
                )
            }
            PqError::CapacityExhausted { .. } => write!(f, "queue capacity exhausted"),
        }
    }
}

impl<T: std::fmt::Debug> std::error::Error for PqError<T> {}

/// Why a batched insert stopped partway. Carries everything that was *not*
/// filed, so the caller can recover or retry: the failing entry rides in
/// [`PqBatchError::error`] (a [`PqError`] holding its item), the remaining
/// unconsumed entries in [`PqBatchError::rest`].
///
/// The contract is conservation, not order: the entries successfully filed
/// before the error plus [`PqBatchError::into_unconsumed`] partition the
/// submitted batch exactly, but implementations may file a batch in any
/// order (sorted, sharded), so *which* entries were consumed — and the
/// order of `rest` — is unspecified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PqBatchError<T> {
    /// The rejection the failing entry hit, carrying its item.
    pub error: PqError<T>,
    /// The priority the failing entry was submitted under.
    pub failed_pri: usize,
    /// Every other entry that was not filed, in unspecified order.
    pub rest: Vec<(usize, T)>,
}

impl<T> PqBatchError<T> {
    /// Recovers every entry the batch did not file: the failing entry
    /// first, then the rest. Together with the entries already filed this
    /// is exactly the submitted batch.
    pub fn into_unconsumed(self) -> Vec<(usize, T)> {
        let mut v = Vec::with_capacity(1 + self.rest.len());
        v.push((self.failed_pri, self.error.into_item()));
        v.extend(self.rest);
        v
    }

    /// Number of entries that were not filed (failing entry included).
    pub fn unconsumed_len(&self) -> usize {
        1 + self.rest.len()
    }
}

impl<T> std::fmt::Display for PqBatchError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "batch insert stopped with {} entries unconsumed: {}",
            self.unconsumed_len(),
            self.error
        )
    }
}

impl<T: std::fmt::Debug> std::error::Error for PqBatchError<T> {}

// Keeps the panic formatting machinery out of the inlined `insert` fast
// path (it costs measurable ns/op on the cheapest queues otherwise).
#[cold]
#[inline(never)]
pub(crate) fn reject(e: &dyn std::fmt::Display) -> ! {
    panic!("{e}");
}

/// Builds a [`PqBatchError`] out of a still-owned batch: entry `idx` is the
/// failing one (its error built by `make`), everything else becomes `rest`.
/// For overrides that validate or fail before consuming any entry; kept
/// cold so batch fast paths don't inline the Vec surgery.
#[cold]
#[inline(never)]
pub(crate) fn batch_reject<T>(
    mut batch: Vec<(usize, T)>,
    idx: usize,
    make: impl FnOnce(usize, T) -> PqError<T>,
) -> PqBatchError<T> {
    let (pri, item) = batch.swap_remove(idx);
    PqBatchError {
        error: make(pri, item),
        failed_pri: pri,
        rest: batch,
    }
}

/// A concurrent priority queue over the fixed priority range
/// `0..num_priorities()`, where **smaller is more urgent**.
///
/// This is the interface from §2 of the paper: `insert` files an item under
/// a priority, `delete_min` removes an item of the smallest priority
/// currently present. Construct implementations uniformly with
/// [`crate::PqBuilder`], or directly through each type's constructors.
///
/// # Thread ids
///
/// Implementations based on combining funnels coordinate through dense
/// per-thread records, so every operation takes the caller's thread id
/// (`0..max_threads()`). Two threads using one id concurrently is a logic
/// error — results may be wrong — but never memory-unsafe. Lock-based
/// implementations ignore the id (but still validate it).
///
/// # Panic policy
///
/// The fallible form of insertion is [`BoundedPq::try_insert`], which
/// reports rejected arguments (and exhausted fixed capacity) as a
/// [`PqError`] carrying the item back. [`BoundedPq::insert`] is a thin
/// wrapper that panics with the error's message instead; `delete_min`
/// panics on a tid outside `0..max_threads()`. Nothing else in the
/// interface panics.
///
/// # Consistency
///
/// Each implementation is either **linearizable** or **quiescently
/// consistent** (see the paper's Appendix B), queryable via
/// [`BoundedPq::consistency`]. Both guarantee that at quiescence the queue
/// contains exactly the un-deleted inserts, and that `k` delete-mins running
/// after a quiescent point with no concurrent inserts return the `k`
/// smallest priorities present.
///
/// # Batched and fused operations
///
/// [`BoundedPq::insert_batch`], [`BoundedPq::delete_min_batch`] and the
/// fused [`BoundedPq::replace_min`] amortize synchronization events over
/// `k` items — the paper's cost model says those events, not the heap
/// arithmetic, are the bottleneck. Semantically a batch is exactly `k`
/// individual operations that happen to run back-to-back: it is **not**
/// atomic, concurrent operations may interleave between its items, and each
/// item takes effect with the queue's usual consistency class. Every queue
/// gets correct loop-over-singles defaults; structures where one
/// synchronization episode can cover the whole batch override them (see
/// `docs/ALGORITHMS.md` §8).
pub trait BoundedPq<T: Send>: Send + Sync {
    /// Which of the paper's algorithms this queue implements.
    fn algorithm(&self) -> Algorithm;

    /// The number of allowed priorities; valid priorities are
    /// `0..num_priorities()`.
    fn num_priorities(&self) -> usize;

    /// Maximum number of distinct thread ids this queue accepts.
    fn max_threads(&self) -> usize;

    /// Inserts `item` with priority `pri`, or returns it inside a
    /// [`PqError`] if `tid`/`pri` is out of range or a fixed-capacity queue
    /// is full. Never panics (see the trait-level panic policy).
    fn try_insert(&self, tid: usize, pri: usize, item: T) -> Result<(), PqError<T>>;

    /// Inserts `item` with priority `pri`, panicking where
    /// [`BoundedPq::try_insert`] would return an error (see the trait-level
    /// panic policy).
    fn insert(&self, tid: usize, pri: usize, item: T) {
        if let Err(e) = self.try_insert(tid, pri, item) {
            reject(&e);
        }
    }

    /// Removes and returns an item with the smallest present priority, or
    /// `None` if the queue appears empty.
    ///
    /// Under concurrency, `None` can also be returned when every item the
    /// operation could reach was raced away (the paper's `delete-min`
    /// likewise may return NULL); callers that know the queue is non-empty
    /// at quiescence can rely on `Some`.
    fn delete_min(&self, tid: usize) -> Option<(usize, T)>;

    /// Files every `(pri, item)` entry of `batch`, or stops at the first
    /// rejection and returns a [`PqBatchError`] carrying everything that
    /// was not filed. Entries may be filed in any order (implementations
    /// sort or shard the batch to amortize synchronization); on error, the
    /// filed entries plus [`PqBatchError::into_unconsumed`] partition the
    /// batch exactly. Not atomic: concurrent operations may interleave
    /// between entries.
    ///
    /// The default loops [`BoundedPq::try_insert`]; overrides amortize one
    /// synchronization episode over the whole batch.
    fn insert_batch(&self, tid: usize, batch: Vec<(usize, T)>) -> Result<(), PqBatchError<T>> {
        let mut it = batch.into_iter();
        while let Some((pri, item)) = it.next() {
            if let Err(error) = self.try_insert(tid, pri, item) {
                return Err(PqBatchError {
                    failed_pri: pri,
                    error,
                    rest: it.collect(),
                });
            }
        }
        Ok(())
    }

    /// Removes up to `k` smallest-priority items, appending them to `out`
    /// in the order deleted, and returns how many were taken. Stops early —
    /// without spinning the remaining attempts — as soon as a delete finds
    /// the queue (apparently) empty. Equivalent to `k` back-to-back
    /// [`BoundedPq::delete_min`] calls, with the same caveat that under
    /// concurrency an early stop does not prove the queue was empty.
    fn delete_min_batch(&self, tid: usize, k: usize, out: &mut Vec<(usize, T)>) -> usize {
        let mut taken = 0;
        while taken < k {
            match self.delete_min(tid) {
                Some(e) => {
                    out.push(e);
                    taken += 1;
                }
                None => break,
            }
        }
        taken
    }

    /// Fused delete-min + insert: removes an item of the smallest present
    /// priority (or `None` if the queue appears empty) and files `item`
    /// under `pri`, in one operation. Heap-backed queues override this to
    /// replace the root and sift once instead of paying two full
    /// synchronization episodes — the Dijkstra/DES inner-loop shape.
    ///
    /// Panics where [`BoundedPq::insert`] would; the default restores the
    /// removed minimum before panicking so no item is lost.
    fn replace_min(&self, tid: usize, pri: usize, item: T) -> Option<(usize, T)> {
        let removed = self.delete_min(tid);
        if let Err(e) = self.try_insert(tid, pri, item) {
            if let Some((p, x)) = removed {
                // The slot we just freed readmits the minimum even in a
                // fixed-capacity queue, so this cannot fail for capacity
                // reasons; ignore the (arg-error) result and report `e`.
                let _ = self.try_insert(tid, p, x);
            }
            reject(&e);
        }
        removed
    }

    /// Whether the item order within one [`BoundedPq::delete_min_batch`]
    /// result reflects this queue's own dequeue policy, even under
    /// concurrent inserts.
    ///
    /// `true` means every out-of-order pair inside a single batch is
    /// attributable to the queue (deliberate relaxation, or none): a
    /// strict backend drains the batch in one synchronization episode and
    /// returns it sorted (SingleLock holds its one lock across the whole
    /// drain), while a relaxed MultiQueue's en-bloc heap pops expose
    /// exactly its rank error. `false` — the conservative default, kept
    /// by multi-episode drains like HuntEtAl's per-iteration root locks
    /// or SkipList's bin walk, and by the loop-over-singles default —
    /// means a concurrent insert landing mid-drain can create inversions
    /// that are *not* rank error (the history still linearizes).
    ///
    /// Online rank-error estimators (the server's telemetry sampler) must
    /// only score batches from queues that return `true`; anything else
    /// would report phantom relaxation for strict backends.
    fn ordered_batch_drain(&self) -> bool {
        false
    }

    /// Advisory emptiness test: a racy read that is exact **only at
    /// quiescence**. Never use it to terminate a loop while other threads
    /// may still insert — count operations instead (a `false` may already be
    /// stale when acted on, and `true` says nothing about in-flight
    /// inserts).
    fn is_empty(&self) -> bool;

    /// Short algorithm name as used in the paper (e.g. `"FunnelTree"`).
    fn algorithm_name(&self) -> &'static str {
        self.algorithm().name()
    }

    /// The consistency condition the implementation provides.
    fn consistency(&self) -> Consistency {
        self.algorithm().consistency()
    }

    /// Snapshot of the NUMA-adaptive mode controller, for queues that have
    /// one ([`crate::NumaPq`]); `None` — the default — for everything else.
    /// The serving layer surfaces this through its telemetry so mode
    /// hot-swaps are observable from outside the queue.
    fn adaptive_stats(&self) -> Option<crate::AdaptiveStats> {
        None
    }
}

/// Consistency condition offered by a queue (paper Appendix B, plus the
/// post-paper *relaxed* class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Consistency {
    /// Operations appear to take effect at a point inside their execution
    /// interval, consistently with real-time order.
    Linearizable,
    /// Operations appear to take effect at a point between surrounding
    /// quiescent states; real-time order between overlapping-with-a-common
    /// operation calls may be reordered.
    QuiescentlyConsistent,
    /// `delete_min` may return an item that is *near* the minimum rather
    /// than the minimum itself, even at quiescence — the MultiQueue trade
    /// (Williams, Sanders & Dementiev, "Engineering MultiQueues"). Element
    /// conservation still holds exactly; only the ordering guarantee is
    /// weakened, and the audit layer measures the slack as per-operation
    /// *rank error* instead of asserting sortedness.
    Relaxed,
}

impl std::fmt::Display for Consistency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Consistency::Linearizable => write!(f, "linearizable"),
            Consistency::QuiescentlyConsistent => write!(f, "quiescently consistent"),
            Consistency::Relaxed => write!(f, "relaxed"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pq_error_messages_and_item_recovery() {
        let e = PqError::PriorityOutOfRange {
            pri: 9,
            num_priorities: 8,
            item: "x",
        };
        assert_eq!(e.to_string(), "priority 9 out of range (num_priorities 8)");
        assert_eq!(e.into_item(), "x");

        let e = PqError::TidOutOfRange {
            tid: 3,
            max_threads: 2,
            item: 7u32,
        };
        assert_eq!(e.to_string(), "tid 3 out of range (max_threads 2)");
        assert_eq!(e.into_item(), 7);

        let e = PqError::CapacityExhausted { item: () };
        assert!(e.to_string().contains("capacity exhausted"));
    }

    #[test]
    fn batch_error_recovers_every_unconsumed_entry() {
        let e = batch_reject(vec![(0, "a"), (9, "b"), (2, "c")], 1, |pri, item| {
            PqError::PriorityOutOfRange {
                pri,
                num_priorities: 8,
                item,
            }
        });
        assert_eq!(e.failed_pri, 9);
        assert_eq!(e.unconsumed_len(), 3);
        assert!(e.to_string().contains("3 entries unconsumed"));
        assert!(e.to_string().contains("priority 9 out of range"));
        let mut back = e.into_unconsumed();
        assert_eq!(back[0], (9, "b"), "failing entry must come first");
        back.sort_unstable();
        assert_eq!(back, vec![(0, "a"), (2, "c"), (9, "b")]);
    }
}
