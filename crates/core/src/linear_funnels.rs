//! `LinearFunnels` (paper §3.2): `SimpleLinear` with combining-funnel
//! stacks in place of lock-based bins.

use std::sync::Arc;

use funnelpq_sync::{FunnelConfig, FunnelStack};

use crate::algorithm::Algorithm;
use crate::obs::{self, CounterEvent, NoopRecorder, OpKind, Recorder};
use crate::traits::{BoundedPq, PqError};

/// One combining-funnel stack per priority; `delete_min` scans stacks
/// smallest-first, popping from the first non-empty one.
///
/// Emptiness is a single read of each stack's head pointer, so the scan
/// stays cheap; the funnels parallelize the per-bin traffic and eliminate
/// concurrent insert/delete pairs of equal priority. Quiescently
/// consistent. The paper's method of choice at 256 processors when the
/// priority range is very small (≤4).
///
/// # Examples
///
/// ```
/// use funnelpq::{BoundedPq, LinearFunnelsPq};
/// let q = LinearFunnelsPq::new(4, 8);
/// q.insert(0, 2, 'x');
/// assert_eq!(q.delete_min(1), Some((2, 'x')));
/// ```
#[derive(Debug)]
pub struct LinearFunnelsPq<T, R: Recorder = NoopRecorder> {
    stacks: Vec<FunnelStack<T>>,
    max_threads: usize,
    recorder: Arc<R>,
}

impl<T: Send> LinearFunnelsPq<T> {
    /// Creates a queue with default funnel parameters for `max_threads`.
    pub fn new(num_priorities: usize, max_threads: usize) -> Self {
        Self::with_config(num_priorities, FunnelConfig::for_threads(max_threads))
    }

    /// Creates a queue with explicit funnel parameters.
    ///
    /// # Panics
    ///
    /// Panics if `num_priorities` is zero or the config is invalid.
    pub fn with_config(num_priorities: usize, cfg: FunnelConfig) -> Self {
        Self::with_recorder(num_priorities, cfg, Arc::new(NoopRecorder))
    }
}

impl<T: Send, R: Recorder> LinearFunnelsPq<T, R> {
    /// Like [`LinearFunnelsPq::with_config`], reporting metrics to
    /// `recorder` (funnel collisions, eliminations, adaptions and central
    /// locks flow into the recorder's substrate sink).
    ///
    /// # Panics
    ///
    /// Panics if `num_priorities` is zero or the config is invalid.
    pub fn with_recorder(num_priorities: usize, cfg: FunnelConfig, recorder: Arc<R>) -> Self {
        assert!(num_priorities > 0, "need at least one priority");
        let max_threads = cfg.max_threads;
        let sink = recorder.sink();
        LinearFunnelsPq {
            stacks: (0..num_priorities)
                .map(|_| FunnelStack::with_sink(cfg.clone(), sink.clone()))
                .collect(),
            max_threads,
            recorder,
        }
    }
}

impl<T: Send, R: Recorder> BoundedPq<T> for LinearFunnelsPq<T, R> {
    fn algorithm(&self) -> Algorithm {
        Algorithm::LinearFunnels
    }

    fn num_priorities(&self) -> usize {
        self.stacks.len()
    }

    fn max_threads(&self) -> usize {
        self.max_threads
    }

    // `#[inline]` lets the panicking `insert` wrapper's monomorphization
    // absorb this body, keeping the old direct-insert code shape (no extra
    // call or by-stack `Result` on the hot path).
    #[inline]
    fn try_insert(&self, tid: usize, pri: usize, item: T) -> Result<(), PqError<T>> {
        if tid >= self.max_threads {
            return Err(PqError::TidOutOfRange {
                tid,
                max_threads: self.max_threads,
                item,
            });
        }
        if pri >= self.stacks.len() {
            return Err(PqError::PriorityOutOfRange {
                pri,
                num_priorities: self.stacks.len(),
                item,
            });
        }
        obs::timed(&*self.recorder, OpKind::Insert, || {
            self.stacks[pri].push(tid, item)
        });
        Ok(())
    }

    fn delete_min(&self, tid: usize) -> Option<(usize, T)> {
        assert!(tid < self.max_threads, "tid {tid} out of range");
        let out = obs::timed(&*self.recorder, OpKind::DeleteMin, || {
            for (pri, stack) in self.stacks.iter().enumerate() {
                if !stack.is_empty() {
                    if let Some(item) = stack.pop(tid) {
                        return Some((pri, item));
                    }
                }
            }
            None
        });
        if R::ENABLED && out.is_none() {
            self.recorder.record_event(CounterEvent::EmptyDeleteMin);
        }
        out
    }

    fn is_empty(&self) -> bool {
        self.stacks.iter().all(|s| s.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn sequential_order() {
        let q = LinearFunnelsPq::new(6, 1);
        q.insert(0, 5, 500);
        q.insert(0, 0, 0);
        q.insert(0, 3, 300);
        assert_eq!(q.delete_min(0), Some((0, 0)));
        assert_eq!(q.delete_min(0), Some((3, 300)));
        assert_eq!(q.delete_min(0), Some((5, 500)));
        assert_eq!(q.delete_min(0), None);
    }

    #[test]
    fn concurrent_conservation() {
        const T: usize = 8;
        const N: usize = 300;
        let q = Arc::new(LinearFunnelsPq::new(4, T));
        let taken = Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for t in 0..T {
            let q = Arc::clone(&q);
            let taken = Arc::clone(&taken);
            handles.push(thread::spawn(move || {
                for i in 0..N {
                    q.insert(t, (t + i) % 4, t * N + i);
                    if i % 2 == 0 {
                        if let Some((_, x)) = q.delete_min(t) {
                            taken.lock().unwrap().push(x);
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Drain the remainder.
        let mut all = taken.lock().unwrap().clone();
        while let Some((_, x)) = q.delete_min(0) {
            all.push(x);
        }
        all.sort_unstable();
        assert_eq!(all, (0..T * N).collect::<Vec<_>>());
    }
}
