//! Sequential binary min-heap used by the lock-based queues and as the
//! reference model in tests.

/// An array-based binary min-heap of `(priority, item)` pairs, smallest
/// priority first. Ties are broken arbitrarily.
///
/// # Examples
///
/// ```
/// use funnelpq::heap::BinaryHeap;
/// let mut h = BinaryHeap::new();
/// h.push(3, 'c');
/// h.push(1, 'a');
/// h.push(2, 'b');
/// assert_eq!(h.pop(), Some((1, 'a')));
/// assert_eq!(h.peek_priority(), Some(2));
/// ```
#[derive(Debug, Clone, Default)]
pub struct BinaryHeap<T> {
    entries: Vec<(usize, T)>,
}

impl<T> BinaryHeap<T> {
    /// Creates an empty heap.
    pub fn new() -> Self {
        BinaryHeap {
            entries: Vec::new(),
        }
    }

    /// Creates an empty heap with room for `cap` entries.
    pub fn with_capacity(cap: usize) -> Self {
        BinaryHeap {
            entries: Vec::with_capacity(cap),
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Smallest stored priority, if any.
    pub fn peek_priority(&self) -> Option<usize> {
        self.entries.first().map(|e| e.0)
    }

    /// Inserts an item under a priority.
    pub fn push(&mut self, pri: usize, item: T) {
        self.entries.push((pri, item));
        self.sift_up(self.entries.len() - 1);
    }

    /// Fused pop + push: swaps a smallest-priority entry for `(pri, item)`
    /// with a single sift from the root, instead of a pop's sift-down plus
    /// a push's sift-up. Returns the removed entry, or `None` when the heap
    /// was empty (the new entry is still inserted).
    pub fn replace_min(&mut self, pri: usize, item: T) -> Option<(usize, T)> {
        if self.entries.is_empty() {
            self.entries.push((pri, item));
            return None;
        }
        let out = std::mem::replace(&mut self.entries[0], (pri, item));
        self.sift_down(0);
        Some(out)
    }

    /// Removes and returns a smallest-priority entry.
    pub fn pop(&mut self) -> Option<(usize, T)> {
        if self.entries.is_empty() {
            return None;
        }
        let last = self.entries.len() - 1;
        self.entries.swap(0, last);
        let out = self.entries.pop();
        if !self.entries.is_empty() {
            self.sift_down(0);
        }
        out
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.entries[i].0 < self.entries[parent].0 {
                self.entries.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.entries.len();
        loop {
            let l = 2 * i + 1;
            let r = l + 1;
            let mut smallest = i;
            if l < n && self.entries[l].0 < self.entries[smallest].0 {
                smallest = l;
            }
            if r < n && self.entries[r].0 < self.entries[smallest].0 {
                smallest = r;
            }
            if smallest == i {
                return;
            }
            self.entries.swap(i, smallest);
            i = smallest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_priority_order() {
        let mut h = BinaryHeap::new();
        for (i, p) in [5usize, 3, 9, 1, 7, 3, 0].iter().enumerate() {
            h.push(*p, i);
        }
        let mut pris = Vec::new();
        while let Some((p, _)) = h.pop() {
            pris.push(p);
        }
        assert_eq!(pris, vec![0, 1, 3, 3, 5, 7, 9]);
    }

    #[test]
    fn empty_behaviour() {
        let mut h: BinaryHeap<()> = BinaryHeap::new();
        assert!(h.is_empty());
        assert_eq!(h.pop(), None);
        assert_eq!(h.peek_priority(), None);
        h.push(2, ());
        assert!(!h.is_empty());
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn replace_min_matches_pop_then_push() {
        let seq = [7usize, 2, 9, 2, 0, 5, 8, 1, 6];
        let mut fused = BinaryHeap::new();
        let mut naive = BinaryHeap::new();
        for (k, &p) in seq.iter().enumerate() {
            fused.push(p, k);
            naive.push(p, k);
        }
        for new_pri in [4usize, 0, 9, 3, 3, 11] {
            let a = fused.replace_min(new_pri, 99);
            let b = naive.pop();
            naive.push(new_pri, 99);
            assert_eq!(a.map(|e| e.0), b.map(|e| e.0));
        }
        let drain = |mut h: BinaryHeap<usize>| {
            let mut v = Vec::new();
            while let Some((p, _)) = h.pop() {
                v.push(p);
            }
            v
        };
        assert_eq!(drain(fused), drain(naive));
    }

    #[test]
    fn replace_min_on_empty_inserts() {
        let mut h = BinaryHeap::new();
        assert_eq!(h.replace_min(3, 'x'), None);
        assert_eq!(h.pop(), Some((3, 'x')));
    }

    #[test]
    fn interleaved_push_pop_matches_sorted_model() {
        let mut h = BinaryHeap::new();
        let mut model: Vec<usize> = Vec::new();
        let seq = [3usize, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5];
        for (k, &p) in seq.iter().enumerate() {
            h.push(p, k);
            model.push(p);
            if k % 3 == 2 {
                model.sort_unstable();
                let want = model.remove(0);
                assert_eq!(h.pop().map(|e| e.0), Some(want));
            }
        }
    }
}
