//! `HuntEtAl`: the concurrent heap of Hunt, Michael, Parthasarathy & Scott
//! (*An Efficient Algorithm for Concurrent Priority Queue Heaps*, IPL 1996).
//!
//! A single short-lived lock protects the heap size; every heap node has its
//! own lock and a *tag* (`Empty`, `Available`, or the inserting thread's
//! id). Insertions place their item at a bit-reversed bottom position and
//! bubble it up with hand-over-hand locking, chasing the item by tag if a
//! concurrent deletion swapped it elsewhere; deletions take the bit-reversed
//! last item, place it at the root, and sift down. Bit-reversing the
//! insertion positions scatters consecutive insertions across disjoint
//! root-to-leaf paths so their lock sets rarely overlap.

use std::sync::Arc;

use funnelpq_sync::{McsMutex, TtasMutex};

use crate::algorithm::Algorithm;
use crate::obs::{self, CounterEvent, NoopRecorder, OpKind, Recorder};
use crate::traits::{batch_reject, reject, BoundedPq, PqBatchError, PqError};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tag {
    /// No item stored.
    Empty,
    /// Item present and at rest.
    Available,
    /// Item present but still being inserted by thread `tid`.
    Owned(usize),
}

#[derive(Debug)]
struct Node<T> {
    tag: Tag,
    entry: Option<(usize, T)>,
}

impl<T> Node<T> {
    fn priority(&self) -> usize {
        self.entry.as_ref().expect("occupied node").0
    }
}

/// Position of the `s`-th item (1-based) in the bit-reversed filling order:
/// within each heap level, offsets are visited in bit-reversed order.
fn bit_reversed_position(s: usize) -> usize {
    debug_assert!(s >= 1);
    let level = (usize::BITS - 1 - s.leading_zeros()) as usize; // floor(log2 s)
    if level == 0 {
        return 1;
    }
    let offset = s - (1usize << level);
    let rev = offset.reverse_bits() >> (usize::BITS as usize - level);
    (1usize << level) + rev
}

/// The concurrent heap priority queue of Hunt et al.
///
/// Quiescently consistent (see [`crate::Algorithm::consistency`] for the
/// sift-down race that rules out linearizability); supports any priority
/// in the declared range; fixed capacity chosen at construction.
///
/// # Examples
///
/// ```
/// use funnelpq::{BoundedPq, HuntPq};
/// let q = HuntPq::with_capacity(16, 2, 64);
/// q.insert(0, 9, "z");
/// q.insert(1, 1, "a");
/// assert_eq!(q.delete_min(0), Some((1, "a")));
/// ```
pub struct HuntPq<T, R: Recorder = NoopRecorder> {
    /// Guards `size`; held only while reserving/releasing a position.
    size: McsMutex<usize>,
    /// Heap nodes, 1-based; `nodes[0]` unused.
    nodes: Vec<TtasMutex<Node<T>>>,
    capacity: usize,
    num_priorities: usize,
    max_threads: usize,
    recorder: Arc<R>,
}

impl<T: Send> HuntPq<T> {
    /// Creates a queue with a default capacity of 2¹⁶ items.
    pub fn new(num_priorities: usize, max_threads: usize) -> Self {
        Self::with_capacity(num_priorities, max_threads, 1 << 16)
    }

    /// Creates a queue holding at most `capacity` simultaneous items.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn with_capacity(num_priorities: usize, max_threads: usize, capacity: usize) -> Self {
        Self::with_recorder(
            num_priorities,
            max_threads,
            capacity,
            Arc::new(NoopRecorder),
        )
    }
}

impl<T: Send, R: Recorder> HuntPq<T, R> {
    /// Like [`HuntPq::with_capacity`], reporting metrics to `recorder` (the
    /// size lock's acquisitions flow into the recorder's substrate sink).
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn with_recorder(
        num_priorities: usize,
        max_threads: usize,
        capacity: usize,
        recorder: Arc<R>,
    ) -> Self {
        assert!(num_priorities > 0, "need at least one priority");
        assert!(max_threads > 0, "need at least one thread");
        assert!(capacity > 0, "capacity must be positive");
        let nodes = (0..=capacity)
            .map(|_| {
                TtasMutex::new(Node {
                    tag: Tag::Empty,
                    entry: None,
                })
            })
            .collect();
        let sink = recorder.sink();
        HuntPq {
            size: McsMutex::with_sink(0, sink),
            nodes,
            capacity,
            num_priorities,
            max_threads,
            recorder,
        }
    }
}

impl<T: Send, R: Recorder> BoundedPq<T> for HuntPq<T, R> {
    fn algorithm(&self) -> Algorithm {
        Algorithm::HuntEtAl
    }

    fn num_priorities(&self) -> usize {
        self.num_priorities
    }

    fn max_threads(&self) -> usize {
        self.max_threads
    }

    // `#[inline]` lets the panicking `insert` wrapper's monomorphization
    // absorb this body, keeping the old direct-insert code shape (no extra
    // call or by-stack `Result` on the hot path).
    #[inline]
    fn try_insert(&self, tid: usize, pri: usize, item: T) -> Result<(), PqError<T>> {
        if tid >= self.max_threads {
            return Err(PqError::TidOutOfRange {
                tid,
                max_threads: self.max_threads,
                item,
            });
        }
        if pri >= self.num_priorities {
            return Err(PqError::PriorityOutOfRange {
                pri,
                num_priorities: self.num_priorities,
                item,
            });
        }
        obs::timed(&*self.recorder, OpKind::Insert, || {
            // Reserve a position under the size lock; lock the target node
            // before releasing it so a racing delete of the same position
            // blocks until our item is in place.
            let i;
            {
                let mut size = self.size.lock();
                if *size >= self.capacity {
                    return Err(PqError::CapacityExhausted { item });
                }
                *size += 1;
                i = bit_reversed_position(*size);
                let mut node = self.nodes[i].lock();
                drop(size);
                node.entry = Some((pri, item));
                node.tag = Tag::Owned(tid);
            }
            self.bubble_up(tid, i);
            Ok(())
        })
    }

    fn delete_min(&self, tid: usize) -> Option<(usize, T)> {
        assert!(tid < self.max_threads, "tid {tid} out of range");
        let out = obs::timed(&*self.recorder, OpKind::DeleteMin, || {
            self.delete_min_inner()
        });
        if R::ENABLED && out.is_none() {
            self.recorder.record_event(CounterEvent::EmptyDeleteMin);
        }
        out
    }

    // One size-lock hold reserves and fills every position; the bubbles run
    // lock-free of the size lock afterwards. Deadlock-free because the size
    // lock is always acquired before node locks and never the other way
    // around, and node locks are taken in increasing-index pairs.
    fn insert_batch(&self, tid: usize, mut batch: Vec<(usize, T)>) -> Result<(), PqBatchError<T>> {
        if batch.is_empty() {
            return Ok(());
        }
        if tid >= self.max_threads {
            let max_threads = self.max_threads;
            return Err(batch_reject(batch, 0, |_, item| PqError::TidOutOfRange {
                tid,
                max_threads,
                item,
            }));
        }
        if let Some(bad) = batch
            .iter()
            .position(|&(pri, _)| pri >= self.num_priorities)
        {
            let num_priorities = self.num_priorities;
            return Err(batch_reject(batch, bad, |pri, item| {
                PqError::PriorityOutOfRange {
                    pri,
                    num_priorities,
                    item,
                }
            }));
        }
        // Ascending order: each bubble stops as soon as it meets an
        // earlier (smaller) item from the same batch.
        batch.sort_unstable_by_key(|&(pri, _)| pri);
        let submitted = batch.len();
        let leftover = obs::timed(&*self.recorder, OpKind::InsertBatch, || {
            let mut positions = Vec::with_capacity(submitted);
            let mut it = batch.into_iter();
            {
                let mut size = self.size.lock();
                let room = self.capacity - *size;
                for (pri, item) in (&mut it).take(room) {
                    *size += 1;
                    let i = bit_reversed_position(*size);
                    let mut node = self.nodes[i].lock();
                    node.entry = Some((pri, item));
                    node.tag = Tag::Owned(tid);
                    drop(node);
                    positions.push(i);
                }
            }
            for &i in &positions {
                self.bubble_up(tid, i);
            }
            it.collect::<Vec<(usize, T)>>()
        });
        obs::record_batch_op(&*self.recorder, (submitted - leftover.len()) as u64);
        if leftover.is_empty() {
            Ok(())
        } else {
            // Capacity hit mid-batch: the first unfiled entry is the
            // failing one, the tail comes back unconsumed.
            Err(batch_reject(leftover, 0, |_, item| {
                PqError::CapacityExhausted { item }
            }))
        }
    }

    // One size-lock hold detaches up to `k` bit-reversed bottoms; the
    // detached items then settle against the root one result at a time.
    // Each result is exactly min(root, smallest detached item), so a
    // sequential batch returns the same items as `k` single deletes.
    fn delete_min_batch(&self, tid: usize, k: usize, out: &mut Vec<(usize, T)>) -> usize {
        assert!(tid < self.max_threads, "tid {tid} out of range");
        if k == 0 {
            return 0;
        }
        let taken = obs::timed(&*self.recorder, OpKind::DeleteMinBatch, || {
            let mut saved: Vec<(usize, T)> = Vec::new();
            {
                let mut size = self.size.lock();
                let m = k.min(*size);
                saved.reserve(m);
                for _ in 0..m {
                    let bottom = bit_reversed_position(*size);
                    *size -= 1;
                    let mut bg = self.nodes[bottom].lock();
                    saved.push(bg.entry.take().expect("bottom node occupied"));
                    bg.tag = Tag::Empty;
                }
            }
            saved.sort_unstable_by_key(|e| e.0);
            let mut dq: std::collections::VecDeque<(usize, T)> = saved.into();
            let mut taken = 0;
            while !dq.is_empty() {
                let root = self.nodes[1].lock();
                let take_saved = match root.tag {
                    Tag::Empty => true,
                    _ => dq.front().expect("nonempty deque").0 <= root.priority(),
                };
                if take_saved {
                    // The smallest detached item beats the root: no heap
                    // structure needs touching at all.
                    drop(root);
                    out.push(dq.pop_front().expect("nonempty deque"));
                } else {
                    // The root is the minimum; refill it with the largest
                    // detached item and sift once.
                    let mut ig = root;
                    let min = ig.entry.take().expect("root occupied");
                    ig.entry = Some(dq.pop_back().expect("nonempty deque"));
                    ig.tag = Tag::Available;
                    self.sift_down(ig);
                    out.push(min);
                }
                taken += 1;
            }
            taken
        });
        obs::record_batch_op(&*self.recorder, taken as u64);
        if R::ENABLED && taken == 0 {
            self.recorder.record_event(CounterEvent::EmptyDeleteMin);
        }
        taken
    }

    // Fused swap at the root when it is at rest: one node-lock episode, one
    // sift, and — unlike delete+insert — no size-lock traffic at all.
    fn replace_min(&self, tid: usize, pri: usize, item: T) -> Option<(usize, T)> {
        assert!(tid < self.max_threads, "tid {tid} out of range");
        if pri >= self.num_priorities {
            reject(&PqError::PriorityOutOfRange {
                pri,
                num_priorities: self.num_priorities,
                item: (),
            });
        }
        let out = obs::timed(&*self.recorder, OpKind::ReplaceMin, || {
            let mut root = self.nodes[1].lock();
            if root.tag == Tag::Available {
                let min = root.entry.take().expect("root occupied");
                root.entry = Some((pri, item));
                self.sift_down(root);
                return Some(min);
            }
            drop(root);
            // Root empty or mid-insertion: fall back to the unfused pair.
            let removed = self.delete_min_inner();
            if let Err(e) = self.try_insert(tid, pri, item) {
                if let Some((p, x)) = removed {
                    let _ = self.try_insert(tid, p, x);
                }
                reject(&e);
            }
            removed
        });
        obs::record_batch_op(&*self.recorder, 1);
        if R::ENABLED && out.is_none() {
            self.recorder.record_event(CounterEvent::EmptyDeleteMin);
        }
        out
    }

    fn is_empty(&self) -> bool {
        *self.size.lock() == 0
    }
}

impl<T: Send, R: Recorder> HuntPq<T, R> {
    /// Bubbles the item a thread just placed (tagged `Owned(tid)`) at
    /// position `i` up to its resting place, with hand-over-hand
    /// (parent, child) locking.
    fn bubble_up(&self, tid: usize, mut i: usize) {
        let backoff = funnelpq_util::Backoff::new();
        while i > 1 {
            let parent = i / 2;
            let mut pg = self.nodes[parent].lock();
            let mut ig = self.nodes[i].lock();
            if pg.tag == Tag::Available && ig.tag == Tag::Owned(tid) {
                if ig.priority() < pg.priority() {
                    std::mem::swap(&mut pg.entry, &mut ig.entry);
                    ig.tag = Tag::Available;
                    pg.tag = Tag::Owned(tid);
                    i = parent;
                } else {
                    ig.tag = Tag::Available;
                    i = 0;
                }
            } else if pg.tag == Tag::Empty {
                // The whole path above was consumed; our item went with it.
                i = 0;
            } else if ig.tag != Tag::Owned(tid) {
                // A concurrent delete swapped our item upward; chase it.
                i = parent;
            } else {
                // The parent is mid-insertion by another thread: release
                // both locks and retry at the same position. Back off
                // before retrying — a batched inserter can leave many
                // positions pending at once, and a tight relock loop
                // starves it of the CPU it needs to clear them.
                drop(ig);
                drop(pg);
                backoff.snooze();
            }
        }
        if i == 1 {
            let mut root = self.nodes[1].lock();
            if root.tag == Tag::Owned(tid) {
                root.tag = Tag::Available;
            }
        }
    }

    /// Sifts the just-installed root entry down to its resting place,
    /// hand-over-hand; consumes (and finally releases) the root's guard.
    fn sift_down<'a>(&'a self, mut ig: funnelpq_sync::TtasGuard<'a, Node<T>>) {
        let mut i = 1;
        loop {
            let l = 2 * i;
            let r = 2 * i + 1;
            if l > self.capacity {
                break;
            }
            let lg = self.nodes[l].lock();
            let rg = if r <= self.capacity {
                Some(self.nodes[r].lock())
            } else {
                None
            };
            // Pick the smallest-priority occupied child, if any. (With
            // bit-reversed filling, a right child can be occupied while the
            // left is empty.)
            let use_right = match (&lg.tag, rg.as_ref().map(|g| g.tag)) {
                (Tag::Empty, Some(Tag::Empty)) | (Tag::Empty, None) => {
                    break;
                }
                (Tag::Empty, Some(_)) => true,
                (_, Some(Tag::Empty)) | (_, None) => false,
                (_, Some(_)) => rg.as_ref().unwrap().priority() < lg.priority(),
            };
            let mut cg = if use_right {
                drop(lg);
                rg.unwrap()
            } else {
                drop(rg);
                lg
            };
            let child = if use_right { r } else { l };
            if cg.priority() < ig.entry.as_ref().expect("node occupied").0 {
                std::mem::swap(&mut ig.entry, &mut cg.entry);
                std::mem::swap(&mut ig.tag, &mut cg.tag);
                drop(ig);
                ig = cg;
                i = child;
            } else {
                break;
            }
        }
        drop(ig);
    }

    fn delete_min_inner(&self) -> Option<(usize, T)> {
        // Detach the bit-reversed last item.
        let saved: (usize, T);
        {
            let mut size = self.size.lock();
            if *size == 0 {
                return None;
            }
            let bottom = bit_reversed_position(*size);
            *size -= 1;
            let mut bg = self.nodes[bottom].lock();
            drop(size);
            saved = bg.entry.take().expect("bottom node occupied");
            bg.tag = Tag::Empty;
        }
        // Replace the root item with the detached one and sift down.
        let mut ig = self.nodes[1].lock();
        if ig.tag == Tag::Empty {
            // The detached bottom *was* the root (or the root was consumed
            // by a concurrent delete that raced us): the saved item is the
            // answer.
            return Some(saved);
        }
        let min = ig.entry.take().expect("root occupied");
        ig.entry = Some(saved);
        ig.tag = Tag::Available;
        self.sift_down(ig);
        Some(min)
    }
}

impl<T: std::fmt::Debug, R: Recorder> std::fmt::Debug for HuntPq<T, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HuntPq")
            .field("capacity", &self.capacity)
            .field("num_priorities", &self.num_priorities)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_reversed_positions_first_levels() {
        // Level 0: position 1. Level 1: 2, 3. Level 2: 4, 6, 5, 7.
        let got: Vec<usize> = (1..=7).map(bit_reversed_position).collect();
        assert_eq!(got[0], 1);
        assert_eq!(&got[1..3], &[2, 3]);
        // Level 2 must be a permutation of 4..8 in bit-reversed order.
        assert_eq!(&got[3..7], &[4, 6, 5, 7]);
    }

    #[test]
    fn bit_reversed_positions_are_a_permutation() {
        let mut got: Vec<usize> = (1..=64).map(bit_reversed_position).collect();
        got.sort_unstable();
        assert_eq!(got, (1..=64).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_order() {
        let q = HuntPq::with_capacity(32, 1, 128);
        for p in [17usize, 3, 3, 25, 0, 9] {
            q.insert(0, p, p);
        }
        let got: Vec<usize> = (0..6).map(|_| q.delete_min(0).unwrap().0).collect();
        assert_eq!(got, vec![0, 3, 3, 9, 17, 25]);
        assert_eq!(q.delete_min(0), None);
        assert!(q.is_empty());
    }

    #[test]
    fn refill_after_drain() {
        let q = HuntPq::with_capacity(8, 1, 32);
        for round in 0..4 {
            for p in 0..8 {
                q.insert(0, (p + round) % 8, p);
            }
            let mut last = 0;
            for _ in 0..8 {
                let (p, _) = q.delete_min(0).unwrap();
                assert!(p >= last);
                last = p;
            }
            assert!(q.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "capacity exhausted")]
    fn capacity_overflow_panics() {
        let q = HuntPq::with_capacity(4, 1, 2);
        q.insert(0, 0, ());
        q.insert(0, 1, ());
        q.insert(0, 2, ());
    }

    #[test]
    fn batch_ops_match_singles() {
        let q = HuntPq::with_capacity(32, 1, 128);
        q.insert_batch(
            0,
            vec![(17, 17u64), (3, 3), (3, 103), (25, 25), (0, 0), (9, 9)],
        )
        .unwrap();
        let mut out = Vec::new();
        assert_eq!(q.delete_min_batch(0, 4, &mut out), 4);
        let pris: Vec<usize> = out.iter().map(|e| e.0).collect();
        assert_eq!(pris, vec![0, 3, 3, 9]);
        assert_eq!(q.replace_min(0, 2, 99), Some((17, 17)));
        assert_eq!(q.delete_min(0), Some((2, 99)));
        out.clear();
        assert_eq!(q.delete_min_batch(0, 10, &mut out), 1, "stops when dry");
        assert_eq!(out[0].0, 25);
        assert!(q.is_empty());
    }

    #[test]
    fn batch_insert_capacity_hit_returns_unconsumed_tail() {
        use crate::traits::PqBatchError;
        let q = HuntPq::with_capacity(8, 1, 3);
        q.insert(0, 7, 70u64);
        let err: PqBatchError<u64> = q
            .insert_batch(0, vec![(5, 50), (1, 10), (6, 60), (2, 20)])
            .unwrap_err();
        assert!(matches!(err.error, PqError::CapacityExhausted { .. }));
        // Two of four fit (capacity 3, one pre-filled); the batch files in
        // ascending order, so 1 and 2 got in, 5 and 6 come back.
        let mut back: Vec<usize> = err.into_unconsumed().iter().map(|e| e.0).collect();
        back.sort_unstable();
        assert_eq!(back, vec![5, 6]);
        let mut out = Vec::new();
        assert_eq!(q.delete_min_batch(0, 8, &mut out), 3);
        assert_eq!(out.iter().map(|e| e.0).collect::<Vec<_>>(), vec![1, 2, 7]);
    }

    #[test]
    fn batch_delete_settles_detached_items_exactly() {
        // Regression shape: the batch detaches bottoms whose priorities are
        // *smaller* than what the root holds after the first settle; the
        // min(root, saved) rule must still return exact ascending results.
        let q = HuntPq::with_capacity(16, 1, 64);
        q.insert_batch(0, vec![(0, 0u64), (1, 1), (5, 5)]).unwrap();
        let mut out = Vec::new();
        assert_eq!(q.delete_min_batch(0, 2, &mut out), 2);
        assert_eq!(out.iter().map(|e| e.0).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(q.delete_min(0), Some((5, 5)));
    }
}
