//! `FunnelTree` (paper §3.2): the tree-of-counters queue with combining
//! funnels at the hot spots — the paper's headline algorithm.

use std::sync::Arc;

use funnelpq_sync::{
    Bounds, FunnelConfig, FunnelCounter, FunnelStack, LockedCounter, SharedCounter,
};

use crate::algorithm::Algorithm;
use crate::counter_tree::CounterTree;
use crate::obs::{self, CounterEvent, NoopRecorder, OpKind, Recorder};
use crate::traits::{BoundedPq, PqError};

/// How many levels from the root use combining-funnel counters; deeper,
/// lower-traffic counters fall back to MCS locks (paper: "only for counters
/// at the top four levels of the tree").
pub const DEFAULT_FUNNEL_LEVELS: usize = 4;

/// Tree of counters whose top levels are combining funnels (with bounded
/// fetch-and-decrement and elimination) and whose leaf bins are
/// combining-funnel stacks.
///
/// Identical layout to [`crate::SimpleTreePq`]; only the implementation of
/// the potential hot spots changes, which is exactly the paper's design
/// thesis: "massage" the trouble spots with a localized adaptive mechanism
/// instead of replacing the whole structure. Quiescently consistent.
///
/// # Examples
///
/// ```
/// use funnelpq::{BoundedPq, FunnelTreePq};
/// let q = FunnelTreePq::new(16, 8);
/// q.insert(0, 12, "l");
/// q.insert(1, 3, "c");
/// assert_eq!(q.delete_min(2), Some((3, "c")));
/// assert_eq!(q.delete_min(3), Some((12, "l")));
/// ```
#[derive(Debug)]
pub struct FunnelTreePq<T, R: Recorder = NoopRecorder> {
    tree: CounterTree<T, FunnelStack<T>>,
    recorder: Arc<R>,
}

impl<T: Send> FunnelTreePq<T> {
    /// Creates a queue with default funnel parameters and the paper's
    /// four-level funnel cutoff.
    pub fn new(num_priorities: usize, max_threads: usize) -> Self {
        Self::with_config(
            num_priorities,
            FunnelConfig::for_threads(max_threads),
            DEFAULT_FUNNEL_LEVELS,
        )
    }

    /// Creates a queue with explicit funnel parameters and funnel-level
    /// cutoff (`funnel_levels = 0` degrades to per-node locked counters
    /// with funnel-stack bins; `usize::MAX` uses funnels throughout — the
    /// ablation of §3.2).
    ///
    /// # Panics
    ///
    /// Panics if `num_priorities` is zero or the config is invalid.
    pub fn with_config(num_priorities: usize, cfg: FunnelConfig, funnel_levels: usize) -> Self {
        Self::with_recorder(num_priorities, cfg, funnel_levels, Arc::new(NoopRecorder))
    }
}

impl<T: Send, R: Recorder> FunnelTreePq<T, R> {
    /// Like [`FunnelTreePq::with_config`], reporting metrics to `recorder`
    /// (funnel collisions, eliminations, CAS retries, adaptions and the
    /// deeper counters' lock acquisitions flow into the recorder's
    /// substrate sink).
    ///
    /// # Panics
    ///
    /// Panics if `num_priorities` is zero or the config is invalid.
    pub fn with_recorder(
        num_priorities: usize,
        cfg: FunnelConfig,
        funnel_levels: usize,
        recorder: Arc<R>,
    ) -> Self {
        let max_threads = cfg.max_threads;
        let counter_cfg = cfg.clone();
        let sink = recorder.sink();
        let counter_sink = sink.clone();
        FunnelTreePq {
            tree: CounterTree::new(
                num_priorities,
                max_threads,
                move |depth| -> Box<dyn SharedCounter> {
                    if depth < funnel_levels {
                        Box::new(FunnelCounter::with_sink(
                            0,
                            Bounds::non_negative(),
                            counter_cfg.clone(),
                            counter_sink.clone(),
                        ))
                    } else {
                        Box::new(LockedCounter::with_sink(
                            0,
                            Bounds::non_negative(),
                            counter_sink.clone(),
                        ))
                    }
                },
                move || FunnelStack::with_sink(cfg.clone(), sink.clone()),
            ),
            recorder,
        }
    }
}

impl<T: Send, R: Recorder> BoundedPq<T> for FunnelTreePq<T, R> {
    fn algorithm(&self) -> Algorithm {
        Algorithm::FunnelTree
    }

    fn num_priorities(&self) -> usize {
        self.tree.num_priorities()
    }

    fn max_threads(&self) -> usize {
        self.tree.max_threads()
    }

    // `#[inline]` lets the panicking `insert` wrapper's monomorphization
    // absorb this body, keeping the old direct-insert code shape (no extra
    // call or by-stack `Result` on the hot path).
    #[inline]
    fn try_insert(&self, tid: usize, pri: usize, item: T) -> Result<(), PqError<T>> {
        if tid >= self.tree.max_threads() {
            return Err(PqError::TidOutOfRange {
                tid,
                max_threads: self.tree.max_threads(),
                item,
            });
        }
        if pri >= self.tree.num_priorities() {
            return Err(PqError::PriorityOutOfRange {
                pri,
                num_priorities: self.tree.num_priorities(),
                item,
            });
        }
        obs::timed(&*self.recorder, OpKind::Insert, || {
            self.tree.insert(tid, pri, item)
        });
        Ok(())
    }

    fn delete_min(&self, tid: usize) -> Option<(usize, T)> {
        assert!(tid < self.tree.max_threads(), "tid {tid} out of range");
        let out = obs::timed(&*self.recorder, OpKind::DeleteMin, || {
            self.tree.delete_min(tid)
        });
        if R::ENABLED && out.is_none() {
            self.recorder.record_event(CounterEvent::EmptyDeleteMin);
        }
        out
    }

    fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_priority_order() {
        let q = FunnelTreePq::new(8, 2);
        for p in [6usize, 1, 4, 1, 7] {
            q.insert(0, p, p);
        }
        let got: Vec<usize> = (0..5).map(|_| q.delete_min(0).unwrap().0).collect();
        assert_eq!(got, vec![1, 1, 4, 6, 7]);
        assert_eq!(q.delete_min(0), None);
    }

    #[test]
    fn funnels_throughout_variant_works() {
        let q = FunnelTreePq::with_config(8, FunnelConfig::for_threads(2), usize::MAX);
        q.insert(0, 5, 'x');
        q.insert(1, 2, 'y');
        assert_eq!(q.delete_min(0), Some((2, 'y')));
        assert_eq!(q.delete_min(1), Some((5, 'x')));
    }

    #[test]
    fn zero_funnel_levels_variant_works() {
        let q = FunnelTreePq::with_config(4, FunnelConfig::for_threads(2), 0);
        q.insert(0, 3, 3);
        q.insert(0, 0, 0);
        assert_eq!(q.delete_min(0), Some((0, 0)));
        assert_eq!(q.delete_min(0), Some((3, 3)));
    }
}
