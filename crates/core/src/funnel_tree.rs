//! `FunnelTree` (paper §3.2): the tree-of-counters queue with combining
//! funnels at the hot spots — the paper's headline algorithm.

use funnelpq_sync::{
    Bounds, FunnelConfig, FunnelCounter, FunnelStack, LockedCounter, SharedCounter,
};

use crate::counter_tree::CounterTree;
use crate::traits::{BoundedPq, Consistency, PqInfo};

/// How many levels from the root use combining-funnel counters; deeper,
/// lower-traffic counters fall back to MCS locks (paper: "only for counters
/// at the top four levels of the tree").
pub const DEFAULT_FUNNEL_LEVELS: usize = 4;

/// Tree of counters whose top levels are combining funnels (with bounded
/// fetch-and-decrement and elimination) and whose leaf bins are
/// combining-funnel stacks.
///
/// Identical layout to [`crate::SimpleTreePq`]; only the implementation of
/// the potential hot spots changes, which is exactly the paper's design
/// thesis: "massage" the trouble spots with a localized adaptive mechanism
/// instead of replacing the whole structure. Quiescently consistent.
///
/// # Examples
///
/// ```
/// use funnelpq::{BoundedPq, FunnelTreePq};
/// let q = FunnelTreePq::new(16, 8);
/// q.insert(0, 12, "l");
/// q.insert(1, 3, "c");
/// assert_eq!(q.delete_min(2), Some((3, "c")));
/// assert_eq!(q.delete_min(3), Some((12, "l")));
/// ```
#[derive(Debug)]
pub struct FunnelTreePq<T> {
    tree: CounterTree<T, FunnelStack<T>>,
}

impl<T: Send> FunnelTreePq<T> {
    /// Creates a queue with default funnel parameters and the paper's
    /// four-level funnel cutoff.
    pub fn new(num_priorities: usize, max_threads: usize) -> Self {
        Self::with_config(
            num_priorities,
            FunnelConfig::for_threads(max_threads),
            DEFAULT_FUNNEL_LEVELS,
        )
    }

    /// Creates a queue with explicit funnel parameters and funnel-level
    /// cutoff (`funnel_levels = 0` degrades to per-node locked counters
    /// with funnel-stack bins; `usize::MAX` uses funnels throughout — the
    /// ablation of §3.2).
    ///
    /// # Panics
    ///
    /// Panics if `num_priorities` is zero or the config is invalid.
    pub fn with_config(num_priorities: usize, cfg: FunnelConfig, funnel_levels: usize) -> Self {
        let max_threads = cfg.max_threads;
        let counter_cfg = cfg.clone();
        FunnelTreePq {
            tree: CounterTree::new(
                num_priorities,
                max_threads,
                move |depth| -> Box<dyn SharedCounter> {
                    if depth < funnel_levels {
                        Box::new(FunnelCounter::new(
                            0,
                            Bounds::non_negative(),
                            counter_cfg.clone(),
                        ))
                    } else {
                        Box::new(LockedCounter::new(0, Bounds::non_negative()))
                    }
                },
                move || FunnelStack::new(cfg.clone()),
            ),
        }
    }
}

impl<T: Send> BoundedPq<T> for FunnelTreePq<T> {
    fn num_priorities(&self) -> usize {
        self.tree.num_priorities()
    }
    fn max_threads(&self) -> usize {
        self.tree.max_threads()
    }
    fn insert(&self, tid: usize, pri: usize, item: T) {
        self.tree.insert(tid, pri, item);
    }
    fn delete_min(&self, tid: usize) -> Option<(usize, T)> {
        self.tree.delete_min(tid)
    }
    fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }
}

impl<T> PqInfo for FunnelTreePq<T> {
    fn algorithm_name(&self) -> &'static str {
        "FunnelTree"
    }
    fn consistency(&self) -> Consistency {
        Consistency::QuiescentlyConsistent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_priority_order() {
        let q = FunnelTreePq::new(8, 2);
        for p in [6usize, 1, 4, 1, 7] {
            q.insert(0, p, p);
        }
        let got: Vec<usize> = (0..5).map(|_| q.delete_min(0).unwrap().0).collect();
        assert_eq!(got, vec![1, 1, 4, 6, 7]);
        assert_eq!(q.delete_min(0), None);
    }

    #[test]
    fn funnels_throughout_variant_works() {
        let q = FunnelTreePq::with_config(8, FunnelConfig::for_threads(2), usize::MAX);
        q.insert(0, 5, 'x');
        q.insert(1, 2, 'y');
        assert_eq!(q.delete_min(0), Some((2, 'y')));
        assert_eq!(q.delete_min(1), Some((5, 'x')));
    }

    #[test]
    fn zero_funnel_levels_variant_works() {
        let q = FunnelTreePq::with_config(4, FunnelConfig::for_threads(2), 0);
        q.insert(0, 3, 3);
        q.insert(0, 0, 0);
        assert_eq!(q.delete_min(0), Some((0, 0)));
        assert_eq!(q.delete_min(0), Some((3, 3)));
    }
}
