//! `SkipList` (paper Figure 12): a bounded-range priority queue built on a
//! concurrent skip list of pre-allocated per-priority bins, with Johnson's
//! "delete bin" to reduce deletion contention.
//!
//! One skip-list node is pre-allocated per priority, each holding a bin. An
//! insert adds its item to the bin and, if the node is not currently
//! *threaded* into the list, splices it in with Pugh-style per-node locks.
//! Deletes drain the current *delete bin*; whoever finds it empty unlinks
//! the first (minimal) node and retargets the delete bin to it.
//!
//! Two small deviations from the paper's pseudocode, both documented in
//! DESIGN.md: `delete_min` prefers the list head when its priority beats
//! the delete bin's (one extra shared read), and advancing the delete bin
//! re-threads a non-empty previous bin — together these restore exact
//! min-ordering at quiescence, which the bare pseudocode lacks.

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

use funnelpq_sync::{BinOrder, LockBin, TtasMutex};
use funnelpq_util::XorShift64Star;

use crate::algorithm::Algorithm;
use crate::obs::{self, CounterEvent, NoopRecorder, OpKind, Recorder};
use crate::traits::{batch_reject, BoundedPq, PqBatchError, PqError};

const NONE: usize = usize::MAX;
const HEAD: usize = usize::MAX - 1;

const UNTHREADED: u8 = 0;
const THREADING: u8 = 1;
const THREADED: u8 = 2;
const UNLINKING: u8 = 3;

struct Node<T> {
    bin: LockBin<T>,
    height: usize,
    state: AtomicU8,
    /// Next node index per level; NONE terminates. Guarded by `lock` for
    /// writers and for readers that redirect around this node.
    forward: Vec<AtomicUsize>,
    lock: TtasMutex<()>,
}

/// Bounded-range concurrent skip-list priority queue.
///
/// Quiescently consistent. The paper uses it to represent the family of
/// search-structure-based queues; it performs well at low concurrency and
/// saturates once the delete bin and the head become hot.
///
/// # Examples
///
/// ```
/// use funnelpq::{BoundedPq, SkipListPq};
/// let q = SkipListPq::new(16, 2);
/// q.insert(0, 9, "z");
/// q.insert(1, 4, "a");
/// assert_eq!(q.delete_min(0), Some((4, "a")));
/// assert_eq!(q.delete_min(1), Some((9, "z")));
/// assert_eq!(q.delete_min(0), None);
/// ```
pub struct SkipListPq<T, R: Recorder = NoopRecorder> {
    nodes: Vec<Node<T>>,
    head_forward: Vec<AtomicUsize>,
    head_lock: TtasMutex<()>,
    del_bin: AtomicUsize,
    del_lock: TtasMutex<()>,
    max_threads: usize,
    max_level: usize,
    recorder: Arc<R>,
}

impl<T: Send> SkipListPq<T> {
    /// Creates a queue for priorities `0..num_priorities`. Tower heights
    /// are drawn once, deterministically, at construction.
    ///
    /// # Panics
    ///
    /// Panics if `num_priorities` or `max_threads` is zero.
    pub fn new(num_priorities: usize, max_threads: usize) -> Self {
        Self::with_seed(num_priorities, max_threads, 0x5EED_CAFE)
    }

    /// Like [`SkipListPq::new`] with an explicit height-RNG seed.
    pub fn with_seed(num_priorities: usize, max_threads: usize, seed: u64) -> Self {
        Self::with_recorder(num_priorities, max_threads, seed, Arc::new(NoopRecorder))
    }
}

impl<T: Send, R: Recorder> SkipListPq<T, R> {
    /// Like [`SkipListPq::with_seed`], reporting metrics to `recorder` (every
    /// bin lock's acquisitions flow into the recorder's substrate sink).
    ///
    /// # Panics
    ///
    /// Panics if `num_priorities` or `max_threads` is zero.
    pub fn with_recorder(
        num_priorities: usize,
        max_threads: usize,
        seed: u64,
        recorder: Arc<R>,
    ) -> Self {
        assert!(num_priorities > 0, "need at least one priority");
        assert!(max_threads > 0, "need at least one thread");
        let max_level = (usize::BITS - num_priorities.leading_zeros()) as usize;
        let max_level = max_level.clamp(1, 20);
        let mut rng = XorShift64Star::new(seed);
        let sink = recorder.sink();
        let nodes = (0..num_priorities)
            .map(|_| {
                let mut h = 1;
                while h < max_level && rng.bool_with(0.5) {
                    h += 1;
                }
                Node {
                    bin: LockBin::with_order_and_sink(BinOrder::Lifo, sink.clone()),
                    height: h,
                    state: AtomicU8::new(UNTHREADED),
                    forward: (0..h).map(|_| AtomicUsize::new(NONE)).collect(),
                    lock: TtasMutex::new(()),
                }
            })
            .collect();
        SkipListPq {
            nodes,
            head_forward: (0..max_level).map(|_| AtomicUsize::new(NONE)).collect(),
            head_lock: TtasMutex::new(()),
            del_bin: AtomicUsize::new(NONE),
            del_lock: TtasMutex::new(()),
            max_threads,
            max_level,
            recorder,
        }
    }

    fn forward_of(&self, idx: usize, level: usize) -> usize {
        if idx == HEAD {
            self.head_forward[level].load(Ordering::Acquire)
        } else {
            self.nodes[idx].forward[level].load(Ordering::Acquire)
        }
    }

    fn set_forward(&self, idx: usize, level: usize, to: usize) {
        if idx == HEAD {
            self.head_forward[level].store(to, Ordering::Release);
        } else {
            self.nodes[idx].forward[level].store(to, Ordering::Release);
        }
    }

    /// Last node at `level` whose priority precedes `pri` (or HEAD).
    fn find_pred(&self, pri: usize, level: usize) -> usize {
        let mut x = HEAD;
        loop {
            let nxt = self.forward_of(x, level);
            if nxt != NONE && nxt < pri {
                x = nxt;
            } else {
                return x;
            }
        }
    }

    fn lock_of(&self, idx: usize) -> &TtasMutex<()> {
        if idx == HEAD {
            &self.head_lock
        } else {
            &self.nodes[idx].lock
        }
    }

    /// Splices node `pri` into every level of the list. Caller must hold
    /// the THREADING state.
    fn splice(&self, pri: usize) {
        let node = &self.nodes[pri];
        for level in 0..node.height {
            loop {
                let pred = self.find_pred(pri, level);
                let _g = self.lock_of(pred).lock();
                // Validate under the lock: pred must still be in the list
                // and still our immediate predecessor at this level.
                if pred != HEAD && self.nodes[pred].state.load(Ordering::Acquire) != THREADED {
                    continue;
                }
                let succ = self.forward_of(pred, level);
                if succ != NONE && succ < pri {
                    continue; // someone spliced in between; re-search
                }
                debug_assert_ne!(succ, pri, "node already threaded");
                node.forward[level].store(succ, Ordering::Release);
                self.set_forward(pred, level, pri);
                break;
            }
        }
    }

    /// Ensures node `pri` is threaded (idempotent; races resolved by the
    /// node's state machine).
    fn thread_node(&self, pri: usize) {
        let node = &self.nodes[pri];
        loop {
            match node.state.compare_exchange(
                UNTHREADED,
                THREADING,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.splice(pri);
                    node.state.store(THREADED, Ordering::Release);
                    return;
                }
                Err(THREADED) => return,
                Err(_) => {
                    // THREADING or UNLINKING in progress: wait for a stable
                    // state and re-check (the in-flight transition makes or
                    // keeps our item reachable either way). Yield so the
                    // in-flight thread can finish even on a single core.
                    std::thread::yield_now();
                    if node.state.load(Ordering::Acquire) == THREADED {
                        return;
                    }
                }
            }
        }
    }

    /// Unlinks node `pri` from every level. Caller holds the delete lock.
    fn unlink(&self, pri: usize) {
        let node = &self.nodes[pri];
        // Wait out a concurrent splice, then claim the node.
        loop {
            match node.state.compare_exchange(
                THREADED,
                UNLINKING,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(_) => std::thread::yield_now(),
            }
        }
        // Publish the delete bin *before* detaching from the list: a
        // concurrent delete must never observe both an empty list head and
        // a stale delete bin while this node's items are in flight.
        self.del_bin.store(pri, Ordering::Release);
        for level in (0..node.height).rev() {
            loop {
                let pred = self.find_pred(pri, level);
                let _pg = self.lock_of(pred).lock();
                let _ng = node.lock.lock();
                if self.forward_of(pred, level) == pri {
                    let succ = node.forward[level].load(Ordering::Acquire);
                    self.set_forward(pred, level, succ);
                    break;
                }
                // Stale predecessor; retry.
            }
        }
        node.state.store(UNTHREADED, Ordering::Release);
    }
}

impl<T: Send, R: Recorder> BoundedPq<T> for SkipListPq<T, R> {
    fn algorithm(&self) -> Algorithm {
        Algorithm::SkipList
    }

    fn num_priorities(&self) -> usize {
        self.nodes.len()
    }

    fn max_threads(&self) -> usize {
        self.max_threads
    }

    // `#[inline]` lets the panicking `insert` wrapper's monomorphization
    // absorb this body, keeping the old direct-insert code shape (no extra
    // call or by-stack `Result` on the hot path).
    #[inline]
    fn try_insert(&self, tid: usize, pri: usize, item: T) -> Result<(), PqError<T>> {
        if tid >= self.max_threads {
            return Err(PqError::TidOutOfRange {
                tid,
                max_threads: self.max_threads,
                item,
            });
        }
        if pri >= self.nodes.len() {
            return Err(PqError::PriorityOutOfRange {
                pri,
                num_priorities: self.nodes.len(),
                item,
            });
        }
        obs::timed(&*self.recorder, OpKind::Insert, || {
            // Bin first (paper order): once the item is in the bin, either
            // the node is/becomes threaded or a delete-bin drain can reach
            // it.
            self.nodes[pri].bin.insert(item);
            if self.nodes[pri].state.load(Ordering::Acquire) != THREADED {
                self.thread_node(pri);
            }
        });
        Ok(())
    }

    fn delete_min(&self, tid: usize) -> Option<(usize, T)> {
        assert!(tid < self.max_threads, "tid {tid} out of range");
        let out = obs::timed(&*self.recorder, OpKind::DeleteMin, || {
            self.delete_min_inner()
        });
        if R::ENABLED && out.is_none() {
            self.recorder.record_event(CounterEvent::EmptyDeleteMin);
        }
        out
    }

    // Sorting groups equal priorities into runs, so each run pays one
    // threaded-state check (and at most one splice) instead of one per item.
    fn insert_batch(&self, tid: usize, mut batch: Vec<(usize, T)>) -> Result<(), PqBatchError<T>> {
        if batch.is_empty() {
            return Ok(());
        }
        if tid >= self.max_threads {
            let max_threads = self.max_threads;
            return Err(batch_reject(batch, 0, |_, item| PqError::TidOutOfRange {
                tid,
                max_threads,
                item,
            }));
        }
        if let Some(bad) = batch.iter().position(|&(pri, _)| pri >= self.nodes.len()) {
            let num_priorities = self.nodes.len();
            return Err(batch_reject(batch, bad, |pri, item| {
                PqError::PriorityOutOfRange {
                    pri,
                    num_priorities,
                    item,
                }
            }));
        }
        batch.sort_unstable_by_key(|&(pri, _)| pri);
        let n = batch.len() as u64;
        obs::timed(&*self.recorder, OpKind::InsertBatch, || {
            let mut it = batch.into_iter().peekable();
            while let Some((pri, item)) = it.next() {
                // Bin first (paper order), for the whole equal-priority run.
                self.nodes[pri].bin.insert(item);
                while let Some(&(next_pri, _)) = it.peek() {
                    if next_pri != pri {
                        break;
                    }
                    let (_, run_item) = it.next().expect("peeked entry present");
                    self.nodes[pri].bin.insert(run_item);
                }
                if self.nodes[pri].state.load(Ordering::Acquire) != THREADED {
                    self.thread_node(pri);
                }
            }
        });
        obs::record_batch_op(&*self.recorder, n);
        Ok(())
    }

    // Bin-aware drain: once a minimal bin is chosen it is drained until `k`
    // items are taken or it runs dry, so a batch pays the delete-bin
    // routing (and any unlink) once per *bin*, not once per item.
    fn delete_min_batch(&self, tid: usize, k: usize, out: &mut Vec<(usize, T)>) -> usize {
        assert!(tid < self.max_threads, "tid {tid} out of range");
        if k == 0 {
            return 0;
        }
        let taken = obs::timed(&*self.recorder, OpKind::DeleteMinBatch, || {
            let mut taken = 0;
            'outer: while taken < k {
                let db = self.del_bin.load(Ordering::Acquire);
                let first = self.head_forward[0].load(Ordering::Acquire);
                let db_ok = db != NONE && !self.nodes[db].bin.is_empty();
                if db_ok && (first == NONE || db <= first) {
                    while taken < k {
                        match self.nodes[db].bin.delete() {
                            Some(item) => {
                                out.push((db, item));
                                taken += 1;
                            }
                            None => continue 'outer, // bin ran dry; re-route
                        }
                    }
                    continue;
                }
                if first == NONE {
                    // List empty: drain delete-bin stragglers, then report
                    // however much we got.
                    let before = taken;
                    if db != NONE {
                        while taken < k {
                            match self.nodes[db].bin.delete() {
                                Some(item) => {
                                    out.push((db, item));
                                    taken += 1;
                                }
                                None => break,
                            }
                        }
                    }
                    if taken == before {
                        break;
                    }
                    continue;
                }
                // Advance the delete bin to the list's first node.
                if let Some(_g) = self.del_lock.try_lock() {
                    let first2 = self.head_forward[0].load(Ordering::Acquire);
                    if first2 == NONE {
                        continue;
                    }
                    let old_db = self.del_bin.load(Ordering::Acquire);
                    self.unlink(first2);
                    drop(_g);
                    if old_db != NONE
                        && old_db != first2
                        && !self.nodes[old_db].bin.is_empty()
                        && self.nodes[old_db].state.load(Ordering::Acquire) == UNTHREADED
                    {
                        self.thread_node(old_db);
                    }
                } else {
                    std::thread::yield_now();
                }
            }
            taken
        });
        obs::record_batch_op(&*self.recorder, taken as u64);
        if R::ENABLED && taken == 0 {
            self.recorder.record_event(CounterEvent::EmptyDeleteMin);
        }
        taken
    }

    fn is_empty(&self) -> bool {
        self.nodes.iter().all(|n| n.bin.is_empty())
    }
}

impl<T: Send, R: Recorder> SkipListPq<T, R> {
    fn delete_min_inner(&self) -> Option<(usize, T)> {
        loop {
            let db = self.del_bin.load(Ordering::Acquire);
            let first = self.head_forward[0].load(Ordering::Acquire);
            let db_ok = db != NONE && !self.nodes[db].bin.is_empty();
            if db_ok && (first == NONE || db <= first) {
                if let Some(item) = self.nodes[db].bin.delete() {
                    return Some((db, item));
                }
                continue; // raced away; re-evaluate
            }
            if first == NONE {
                // List empty: one last look at the delete bin for
                // stragglers, then report empty.
                if db != NONE {
                    if let Some(item) = self.nodes[db].bin.delete() {
                        return Some((db, item));
                    }
                }
                return None;
            }
            // Advance the delete bin to the list's first node.
            if let Some(_g) = self.del_lock.try_lock() {
                let first2 = self.head_forward[0].load(Ordering::Acquire);
                if first2 == NONE {
                    continue;
                }
                let old_db = self.del_bin.load(Ordering::Acquire);
                self.unlink(first2);
                drop(_g);
                // Re-thread a previous delete bin that still holds items
                // (late inserts), so nothing becomes unreachable.
                if old_db != NONE
                    && old_db != first2
                    && !self.nodes[old_db].bin.is_empty()
                    && self.nodes[old_db].state.load(Ordering::Acquire) == UNTHREADED
                {
                    self.thread_node(old_db);
                }
            } else {
                std::thread::yield_now();
            }
        }
    }
}

impl<T, R: Recorder> std::fmt::Debug for SkipListPq<T, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SkipListPq")
            .field("num_priorities", &self.nodes.len())
            .field("max_level", &self.max_level)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_order() {
        let q = SkipListPq::new(16, 1);
        for p in [9usize, 2, 11, 2, 15, 0] {
            q.insert(0, p, p);
        }
        let got: Vec<usize> = (0..6).map(|_| q.delete_min(0).unwrap().0).collect();
        assert_eq!(got, vec![0, 2, 2, 9, 11, 15]);
        assert_eq!(q.delete_min(0), None);
        assert!(q.is_empty());
    }

    #[test]
    fn smaller_insert_after_delete_bin_is_preferred() {
        // The anomaly case the delete-bin refinement fixes.
        let q = SkipListPq::new(16, 1);
        q.insert(0, 5, 51);
        q.insert(0, 5, 52);
        assert_eq!(q.delete_min(0).unwrap().0, 5); // bin 5 becomes del_bin, 1 item left
        q.insert(0, 3, 30);
        assert_eq!(q.delete_min(0).unwrap().0, 3, "3 beats the delete bin's 5");
        assert_eq!(q.delete_min(0).unwrap().0, 5, "straggler recovered");
        assert_eq!(q.delete_min(0), None);
    }

    #[test]
    fn rethreading_unlinked_priority_works() {
        let q = SkipListPq::new(8, 1);
        for round in 0..5 {
            q.insert(0, 4, round);
            assert_eq!(q.delete_min(0).map(|e| e.0), Some(4));
            assert_eq!(q.delete_min(0), None);
        }
    }

    #[test]
    fn batch_ops_preserve_order() {
        let q = SkipListPq::new(16, 1);
        q.insert_batch(
            0,
            vec![(9, 90), (2, 20), (11, 110), (2, 21), (15, 150), (0, 1)],
        )
        .unwrap();
        let mut out = Vec::new();
        assert_eq!(q.delete_min_batch(0, 4, &mut out), 4);
        assert_eq!(
            out.iter().map(|e| e.0).collect::<Vec<_>>(),
            vec![0, 2, 2, 9]
        );
        out.clear();
        assert_eq!(q.delete_min_batch(0, 10, &mut out), 2, "stops when dry");
        assert_eq!(out.iter().map(|e| e.0).collect::<Vec<_>>(), vec![11, 15]);
        assert!(q.is_empty());
        out.clear();
        assert_eq!(q.delete_min_batch(0, 3, &mut out), 0);
        assert!(out.is_empty());
    }

    #[test]
    fn batch_drain_recovers_delete_bin_stragglers() {
        // Same anomaly shape as the singles test, through the batch path.
        let q = SkipListPq::new(16, 1);
        q.insert_batch(0, vec![(5, 51), (5, 52)]).unwrap();
        assert_eq!(q.delete_min(0).unwrap().0, 5); // bin 5 becomes del_bin
        q.insert(0, 3, 30);
        let mut out = Vec::new();
        assert_eq!(q.delete_min_batch(0, 8, &mut out), 2);
        assert_eq!(out.iter().map(|e| e.0).collect::<Vec<_>>(), vec![3, 5]);
    }

    #[test]
    fn full_range_drain() {
        let q = SkipListPq::new(64, 1);
        for p in (0..64).rev() {
            q.insert(0, p, p);
        }
        for p in 0..64 {
            assert_eq!(q.delete_min(0), Some((p, p)));
        }
        assert_eq!(q.delete_min(0), None);
    }
}
