//! The binary tree-of-counters layout (paper Figure 3) shared by
//! `SimpleTree` and `FunnelTree`.
//!
//! The tree has one leaf per priority (padded to a power of two) and a
//! shared counter at every internal node counting the items stored in the
//! leaves of its *left* (smaller-priority) subtree. `delete-min` descends
//! from the root using bounded fetch-and-decrement: a successful decrement
//! *claims* one item in the left subtree; a zero counter routes the search
//! right. Inserts add to the leaf bin first and then ascend, incrementing
//! the counter at every node they reach from the left — the bottom-up order
//! is what makes a claimed item always reachable.

use std::marker::PhantomData;

use funnelpq_sync::SharedCounter;

/// The bin interface the tree needs at its leaves (crate-internal).
pub(crate) trait TreeBin<T>: Send + Sync {
    fn bin_insert(&self, tid: usize, item: T);
    fn bin_delete(&self, tid: usize) -> Option<T>;
    fn bin_is_empty(&self) -> bool;
}

impl<T: Send> TreeBin<T> for funnelpq_sync::LockBin<T> {
    fn bin_insert(&self, _tid: usize, item: T) {
        self.insert(item);
    }
    fn bin_delete(&self, _tid: usize) -> Option<T> {
        self.delete()
    }
    fn bin_is_empty(&self) -> bool {
        self.is_empty()
    }
}

impl<T: Send> TreeBin<T> for funnelpq_sync::FunnelStack<T> {
    fn bin_insert(&self, tid: usize, item: T) {
        self.push(tid, item);
    }
    fn bin_delete(&self, tid: usize) -> Option<T> {
        self.pop(tid)
    }
    fn bin_is_empty(&self) -> bool {
        self.is_empty()
    }
}

/// Tree of counters with bins at the leaves, generic over the counter and
/// bin implementations (that choice is the entire difference between
/// `SimpleTree` and `FunnelTree`).
pub(crate) struct CounterTree<T, B> {
    /// Number of leaves (power of two ≥ num_priorities).
    n_leaves: usize,
    num_priorities: usize,
    max_threads: usize,
    /// Heap-numbered internal nodes 1..n_leaves; index 0 unused.
    counters: Vec<Box<dyn SharedCounter>>,
    bins: Vec<B>,
    _marker: PhantomData<fn() -> T>,
}

impl<T: Send, B: TreeBin<T>> CounterTree<T, B> {
    /// Builds the tree. `make_counter(depth)` constructs the counter for an
    /// internal node at the given depth (root = 0); `make_bin()` constructs
    /// a leaf bin.
    pub(crate) fn new(
        num_priorities: usize,
        max_threads: usize,
        mut make_counter: impl FnMut(usize) -> Box<dyn SharedCounter>,
        mut make_bin: impl FnMut() -> B,
    ) -> Self {
        assert!(num_priorities > 0, "need at least one priority");
        assert!(max_threads > 0, "need at least one thread");
        let n_leaves = num_priorities.next_power_of_two();
        // counters[k] for k in 1..n_leaves; depth(k) = floor(log2 k).
        let mut counters: Vec<Box<dyn SharedCounter>> = Vec::with_capacity(n_leaves);
        counters.push(make_counter(0)); // index 0: unused placeholder
        for k in 1..n_leaves {
            let depth = usize::BITS as usize - 1 - k.leading_zeros() as usize;
            counters.push(make_counter(depth));
        }
        let bins = (0..num_priorities).map(|_| make_bin()).collect();
        CounterTree {
            n_leaves,
            num_priorities,
            max_threads,
            counters,
            bins,
            _marker: PhantomData,
        }
    }

    pub(crate) fn num_priorities(&self) -> usize {
        self.num_priorities
    }

    pub(crate) fn max_threads(&self) -> usize {
        self.max_threads
    }

    pub(crate) fn insert(&self, tid: usize, pri: usize, item: T) {
        assert!(tid < self.max_threads, "tid {tid} out of range");
        assert!(pri < self.num_priorities, "priority {pri} out of range");
        // Bin first, counters after — a counted item is always present.
        self.bins[pri].bin_insert(tid, item);
        let mut k = self.n_leaves + pri;
        while k > 1 {
            let parent = k / 2;
            if k.is_multiple_of(2) {
                // Ascending from a left child: one more item in the left
                // subtree of `parent`.
                self.counters[parent].fetch_inc(tid);
            }
            k = parent;
        }
    }

    pub(crate) fn delete_min(&self, tid: usize) -> Option<(usize, T)> {
        assert!(tid < self.max_threads, "tid {tid} out of range");
        let mut k = 1;
        while k < self.n_leaves {
            // Bounded fetch-and-decrement with bound 0: a positive return
            // claims an item in the left subtree.
            if self.counters[k].fetch_dec(tid) > 0 {
                k *= 2;
            } else {
                k = 2 * k + 1;
            }
        }
        let pri = k - self.n_leaves;
        if pri >= self.num_priorities {
            // Padding leaf: the search fell off the occupied range, so the
            // queue held nothing reachable.
            return None;
        }
        self.bins[pri].bin_delete(tid).map(|item| (pri, item))
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.bins.iter().all(|b| b.bin_is_empty())
    }
}

impl<T, B> std::fmt::Debug for CounterTree<T, B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CounterTree")
            .field("num_priorities", &self.num_priorities)
            .field("n_leaves", &self.n_leaves)
            .finish()
    }
}
