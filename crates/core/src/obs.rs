//! First-class observability for every queue: recorders, counters, and
//! latency histograms.
//!
//! The paper's argument is about *where contention goes* — root counters vs.
//! funnel layers vs. elimination — and Calciu et al.'s adaptive queues show
//! that elimination hit rates, CAS-retry counts and per-op latency are
//! exactly the signals an adaptive queue switches on. This module makes them
//! observable on the native implementations:
//!
//! * [`Recorder`] — the queue-facing trait: counter events
//!   ([`CounterEvent`]) plus log-bucketed latency histograms for `insert` /
//!   `delete_min` ([`OpKind`]).
//! * [`NoopRecorder`] — the default; compiles to nothing. Queues are generic
//!   over their recorder with `NoopRecorder` as the default parameter, so
//!   the unobserved path is monomorphized without a single branch or timer
//!   read.
//! * [`AtomicRecorder`] — thread-sharded atomic aggregation, drained into a
//!   [`MetricsSnapshot`] that serializes to JSON with no external
//!   dependencies.
//!
//! The substrate events come from `funnelpq-sync`'s probe layer
//! ([`EventSink`]); a queue wires its recorder's sink into its locks,
//! counters and funnels at construction time.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use funnelpq_util::json::{JsonWriter, SCHEMA_VERSION};
use funnelpq_util::{mono_ns, CachePadded};

pub use funnelpq_sync::probe::{CounterEvent, EventSink, SinkRef};

/// Which queue operation a latency sample belongs to.
///
/// The batched/fused kinds keep their identity for span tracing
/// ([`crate::trace`]) while aggregating into the base `insert` /
/// `delete_min` histograms of a [`MetricsSnapshot`]: a batch insert is
/// still time spent inserting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// A successful `insert` / `try_insert`.
    Insert,
    /// A `delete_min` call (counted whether or not it returned an item;
    /// empty returns additionally fire [`CounterEvent::EmptyDeleteMin`]).
    DeleteMin,
    /// An `insert_batch` call (one sample for the whole batch).
    InsertBatch,
    /// A `delete_min_batch` call (one sample for the whole drain).
    DeleteMinBatch,
    /// A fused `replace_min` (delete_min + insert in one episode).
    ReplaceMin,
}

impl OpKind {
    /// Every kind, in a fixed order matching [`OpKind::index`].
    pub const ALL: [OpKind; 5] = [
        OpKind::Insert,
        OpKind::DeleteMin,
        OpKind::InsertBatch,
        OpKind::DeleteMinBatch,
        OpKind::ReplaceMin,
    ];

    /// Dense index in `0..ALL.len()` (trace-record encoding).
    pub fn index(self) -> usize {
        match self {
            OpKind::Insert => 0,
            OpKind::DeleteMin => 1,
            OpKind::InsertBatch => 2,
            OpKind::DeleteMinBatch => 3,
            OpKind::ReplaceMin => 4,
        }
    }

    /// Stable snake_case name (trace row labels).
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Insert => "insert",
            OpKind::DeleteMin => "delete_min",
            OpKind::InsertBatch => "insert_batch",
            OpKind::DeleteMinBatch => "delete_min_batch",
            OpKind::ReplaceMin => "replace_min",
        }
    }

    /// Which base histogram this kind aggregates into.
    fn base(self) -> OpKind {
        match self {
            OpKind::Insert | OpKind::InsertBatch => OpKind::Insert,
            OpKind::DeleteMin | OpKind::DeleteMinBatch | OpKind::ReplaceMin => OpKind::DeleteMin,
        }
    }
}

/// Number of log₂ latency buckets ([`OpStats::buckets`]); bucket `i` counts
/// samples with `floor(log2(nanos)) + 1 == i` (bucket 0 holds 0 ns), so the
/// top bucket starts at 2³⁰ ns ≈ 1 s.
pub const LATENCY_BUCKETS: usize = 32;

/// Number of log₂ batch-size buckets ([`BatchStats::size_buckets`]); bucket
/// `i` counts batches of `floor(log2(size)) + 1 == i` items (bucket 0 holds
/// empty batches), so the top bucket starts at 2¹⁴ = 16384 items.
pub const BATCH_BUCKETS: usize = 16;

/// Receiver for queue-level metrics. Implementations must be `Send + Sync`;
/// queues hold them in an `Arc` and call them from every operating thread.
///
/// The `ENABLED` constant lets the compiler erase the instrumented paths —
/// including the `Instant::now()` reads bracketing each operation — when the
/// recorder is a no-op: queues guard their instrumentation with
/// `if R::ENABLED { ... }`, which monomorphizes to nothing for
/// [`NoopRecorder`].
pub trait Recorder: Send + Sync + 'static {
    /// Whether this recorder wants data at all. `false` compiles the
    /// instrumentation out of the queue's hot paths.
    const ENABLED: bool;

    /// Record `n` occurrences of a counter event.
    fn record_event_n(&self, event: CounterEvent, n: u64);

    /// Record one occurrence of a counter event.
    fn record_event(&self, event: CounterEvent) {
        self.record_event_n(event, 1);
    }

    /// Record one operation of `kind` that took `nanos` nanoseconds.
    fn record_op(&self, kind: OpKind, nanos: u64);

    /// Record one operation of `kind` spanning
    /// `[start_ns, end_ns)` on the [`funnelpq_util::mono_ns`] timeline.
    /// The default forwards the duration to [`Recorder::record_op`];
    /// tracing recorders override it to keep the endpoints.
    fn record_op_span(&self, kind: OpKind, start_ns: u64, end_ns: u64) {
        self.record_op(kind, end_ns.saturating_sub(start_ns));
    }

    /// Record one batched operation ([`crate::BoundedPq::insert_batch`],
    /// [`crate::BoundedPq::delete_min_batch`] or the fused
    /// [`crate::BoundedPq::replace_min`]) that moved `size` items. The
    /// paired [`CounterEvent::BatchOp`] count is reported separately, via
    /// [`record_batch_op`]. The default discards the sample.
    fn record_batch(&self, size: u64) {
        let _ = size;
    }

    /// The substrate-facing sink to wire into locks, counters and funnels at
    /// queue construction, or `None` to leave the substrate uninstrumented.
    fn sink(self: &Arc<Self>) -> Option<SinkRef>;
}

/// The do-nothing recorder every queue defaults to. All methods are empty
/// and [`Recorder::ENABLED`] is `false`, so an un-observed queue carries no
/// instrumentation cost (verified by the `native_ops` bench's overhead row).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record_event_n(&self, _event: CounterEvent, _n: u64) {}

    #[inline(always)]
    fn record_op(&self, _kind: OpKind, _nanos: u64) {}

    fn sink(self: &Arc<Self>) -> Option<SinkRef> {
        None
    }
}

/// Reports one batched operation that moved `size` items to `rec`: a
/// [`CounterEvent::BatchOp`] plus a batch-size sample — free when
/// `R::ENABLED` is false (monomorphizes to nothing, as the `native_ops`
/// noop/atomic A/B verifies).
#[inline]
pub fn record_batch_op<R: Recorder>(rec: &R, size: u64) {
    if R::ENABLED {
        rec.record_event(CounterEvent::BatchOp);
        rec.record_batch(size);
    }
}

/// Times `f` and reports it to `rec` as one `kind` operation span — free
/// when `R::ENABLED` is false (no timer read, no call). Timestamps come
/// from the process-wide [`funnelpq_util::mono_ns`] clock so recorders
/// that keep span endpoints (the tracer) see one cross-thread timeline.
#[inline]
pub fn timed<R: Recorder, O>(rec: &R, kind: OpKind, f: impl FnOnce() -> O) -> O {
    if R::ENABLED {
        let start = mono_ns();
        let out = f();
        rec.record_op_span(kind, start, mono_ns());
        out
    } else {
        f()
    }
}

/// One operation kind's latency aggregate within a shard.
#[derive(Debug, Default)]
struct OpShard {
    count: AtomicU64,
    total_nanos: AtomicU64,
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl OpShard {
    fn record(&self, nanos: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.buckets[bucket_of(nanos)].fetch_add(1, Ordering::Relaxed);
    }
}

/// Log₂ bucket index of a nanosecond sample.
fn bucket_of(nanos: u64) -> usize {
    ((64 - nanos.leading_zeros()) as usize).min(LATENCY_BUCKETS - 1)
}

/// Log₂ bucket index of a batch-size sample.
fn batch_bucket_of(size: u64) -> usize {
    ((64 - size.leading_zeros()) as usize).min(BATCH_BUCKETS - 1)
}

/// Batch-size aggregate within a shard.
#[derive(Debug, Default)]
struct BatchShard {
    count: AtomicU64,
    total_items: AtomicU64,
    size_buckets: [AtomicU64; BATCH_BUCKETS],
}

impl BatchShard {
    fn record(&self, size: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_items.fetch_add(size, Ordering::Relaxed);
        self.size_buckets[batch_bucket_of(size)].fetch_add(1, Ordering::Relaxed);
    }
}

#[derive(Debug, Default)]
struct Shard {
    events: [AtomicU64; CounterEvent::COUNT],
    insert: OpShard,
    delete_min: OpShard,
    batch: BatchShard,
}

/// Dense per-thread shard index: assigned once per OS thread, round-robin.
/// Locks inside the substrate do not know dense queue thread ids, so the
/// recorder derives its own shard key; counts stay exact because shards are
/// atomic and threads merely *prefer* distinct shards.
pub(crate) fn shard_index(n_shards: usize) -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static IDX: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
    }
    IDX.with(|c| {
        let mut v = c.get();
        if v == usize::MAX {
            v = NEXT.fetch_add(1, Ordering::Relaxed);
            c.set(v);
        }
        v % n_shards
    })
}

/// A [`Recorder`] (and substrate [`EventSink`]) that aggregates counts and
/// latency histograms in per-thread-sharded atomics, drained on demand into
/// a [`MetricsSnapshot`].
///
/// Counts are exact: every event lands in exactly one shard's atomic, and
/// [`AtomicRecorder::snapshot`] sums over all shards.
///
/// # Examples
///
/// ```
/// use funnelpq::obs::{AtomicRecorder, OpKind, Recorder};
/// use std::sync::Arc;
///
/// let rec = Arc::new(AtomicRecorder::new());
/// rec.record_op(OpKind::Insert, 150);
/// let snap = rec.snapshot();
/// assert_eq!(snap.insert.count, 1);
/// assert_eq!(snap.insert.total_nanos, 150);
/// ```
#[derive(Debug)]
pub struct AtomicRecorder {
    shards: Box<[CachePadded<Shard>]>,
}

impl Default for AtomicRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicRecorder {
    /// Creates a recorder with a default shard count sized to the machine.
    pub fn new() -> Self {
        let n = std::thread::available_parallelism()
            .map(|p| p.get() * 2)
            .unwrap_or(16)
            .clamp(8, 128);
        Self::with_shards(n)
    }

    /// Creates a recorder with an explicit shard count.
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` is zero.
    pub fn with_shards(n_shards: usize) -> Self {
        assert!(n_shards > 0, "need at least one shard");
        AtomicRecorder {
            shards: (0..n_shards)
                .map(|_| CachePadded::new(Shard::default()))
                .collect(),
        }
    }

    fn shard(&self) -> &Shard {
        &self.shards[shard_index(self.shards.len())]
    }

    /// Sums every shard into an owned, plain-data snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for shard in self.shards.iter() {
            for (i, c) in shard.events.iter().enumerate() {
                snap.events[i] += c.load(Ordering::Relaxed);
            }
            for (agg, src) in [
                (&mut snap.insert, &shard.insert),
                (&mut snap.delete_min, &shard.delete_min),
            ] {
                agg.count += src.count.load(Ordering::Relaxed);
                agg.total_nanos += src.total_nanos.load(Ordering::Relaxed);
                for (b, s) in agg.buckets.iter_mut().zip(src.buckets.iter()) {
                    *b += s.load(Ordering::Relaxed);
                }
            }
            snap.batch.count += shard.batch.count.load(Ordering::Relaxed);
            snap.batch.total_items += shard.batch.total_items.load(Ordering::Relaxed);
            for (b, s) in snap
                .batch
                .size_buckets
                .iter_mut()
                .zip(shard.batch.size_buckets.iter())
            {
                *b += s.load(Ordering::Relaxed);
            }
        }
        snap
    }
}

impl Recorder for AtomicRecorder {
    const ENABLED: bool = true;

    fn record_event_n(&self, event: CounterEvent, n: u64) {
        self.shard().events[event.index()].fetch_add(n, Ordering::Relaxed);
    }

    fn record_op(&self, kind: OpKind, nanos: u64) {
        let shard = self.shard();
        match kind.base() {
            OpKind::Insert => shard.insert.record(nanos),
            _ => shard.delete_min.record(nanos),
        }
    }

    fn record_batch(&self, size: u64) {
        self.shard().batch.record(size);
    }

    fn sink(self: &Arc<Self>) -> Option<SinkRef> {
        Some(Arc::clone(self) as SinkRef)
    }
}

impl EventSink for AtomicRecorder {
    fn event_n(&self, event: CounterEvent, n: u64) {
        self.record_event_n(event, n);
    }
}

/// Latency aggregate for one operation kind (plain data).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpStats {
    /// Number of recorded operations.
    pub count: u64,
    /// Sum of all recorded durations, in nanoseconds.
    pub total_nanos: u64,
    /// Log₂ histogram: `buckets[i]` counts samples whose duration `d`
    /// satisfies `floor(log2(d)) + 1 == i` (`buckets[0]` holds `d == 0`).
    pub buckets: [u64; LATENCY_BUCKETS],
}

impl Default for OpStats {
    fn default() -> Self {
        OpStats {
            count: 0,
            total_nanos: 0,
            buckets: [0; LATENCY_BUCKETS],
        }
    }
}

impl OpStats {
    /// Mean duration in nanoseconds (0.0 when no samples).
    pub fn mean_nanos(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_nanos as f64 / self.count as f64
        }
    }

    /// Upper edge (in nanoseconds) of the bucket containing quantile `q`
    /// (`0.0..=1.0`), or 0 when no samples. Bucket-resolution only — good
    /// for "p99 is under 4 µs" statements, not exact ranks.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        1u64 << (LATENCY_BUCKETS - 1)
    }
}

/// Batch-size aggregate across all batched operations (plain data).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Number of recorded batched operations.
    pub count: u64,
    /// Total items moved by all recorded batches.
    pub total_items: u64,
    /// Log₂ histogram: `size_buckets[i]` counts batches whose size `s`
    /// satisfies `floor(log2(s)) + 1 == i` (`size_buckets[0]` holds
    /// `s == 0`, i.e. batches that drained nothing).
    pub size_buckets: [u64; BATCH_BUCKETS],
}

impl BatchStats {
    /// Mean items per batch (0.0 when no batches were recorded).
    pub fn mean_items(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_items as f64 / self.count as f64
        }
    }
}

/// Plain-data result of draining an [`AtomicRecorder`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Event totals, indexed by [`CounterEvent::index`].
    pub events: [u64; CounterEvent::COUNT],
    /// Latency aggregate for inserts.
    pub insert: OpStats,
    /// Latency aggregate for delete-mins.
    pub delete_min: OpStats,
    /// Batch-size aggregate for batched/fused operations.
    pub batch: BatchStats,
}

impl MetricsSnapshot {
    /// Total for one event kind.
    pub fn event(&self, event: CounterEvent) -> u64 {
        self.events[event.index()]
    }

    /// Total recorded operations (inserts + delete-mins).
    pub fn total_ops(&self) -> u64 {
        self.insert.count + self.delete_min.count
    }

    /// Serializes to a self-contained JSON object via the workspace's
    /// shared [`JsonWriter`] (no serde: the container builds fully
    /// offline). Layout:
    ///
    /// ```json
    /// {"schema_version": 1,
    ///  "algorithm": "...",
    ///  "events": {"cas_retry": 0, ...},
    ///  "insert": {"count": 0, "total_nanos": 0, "mean_nanos": 0,
    ///             "p50_nanos_le": 0, "p99_nanos_le": 0, "buckets": [...]},
    ///  "delete_min": {...},
    ///  "batch": {"count": 0, "total_items": 0, "mean_items": 0,
    ///            "size_buckets": [...]}}
    /// ```
    ///
    /// `schema_version` is [`funnelpq_util::json::SCHEMA_VERSION`]; bucket
    /// arrays are truncated after their last nonzero entry.
    pub fn to_json(&self, algorithm: &str) -> String {
        fn buckets(w: &mut JsonWriter, k: &str, all: &[u64]) {
            let last_nonzero = all.iter().rposition(|&b| b != 0).map_or(0, |i| i + 1);
            w.key(k);
            w.begin_arr(false);
            for &b in &all[..last_nonzero] {
                w.u64(b);
            }
            w.end();
        }
        fn op_json(w: &mut JsonWriter, key: &str, s: &OpStats) {
            w.key(key);
            w.begin_obj(false);
            w.field_u64("count", s.count);
            w.field_u64("total_nanos", s.total_nanos);
            w.field_f64_fixed("mean_nanos", s.mean_nanos(), 1);
            w.field_u64("p50_nanos_le", s.quantile_upper_bound(0.5));
            w.field_u64("p99_nanos_le", s.quantile_upper_bound(0.99));
            buckets(w, "buckets", &s.buckets);
            w.end();
        }

        let mut w = JsonWriter::spaced();
        w.begin_obj(true);
        w.field_u64("schema_version", u64::from(SCHEMA_VERSION));
        w.field_str("algorithm", algorithm);
        w.key("events");
        w.begin_obj(false);
        for e in CounterEvent::ALL.iter() {
            w.field_u64(e.name(), self.event(*e));
        }
        w.end();
        op_json(&mut w, "insert", &self.insert);
        op_json(&mut w, "delete_min", &self.delete_min);
        w.key("batch");
        w.begin_obj(false);
        w.field_u64("count", self.batch.count);
        w.field_u64("total_items", self.batch.total_items);
        w.field_f64_fixed("mean_items", self.batch.mean_items(), 1);
        buckets(&mut w, "size_buckets", &self.batch.size_buckets);
        w.end();
        w.end();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn recorder_aggregates_across_threads() {
        let rec = Arc::new(AtomicRecorder::with_shards(4));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let rec = Arc::clone(&rec);
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        rec.record_event(CounterEvent::CasRetry);
                        rec.record_op(OpKind::Insert, i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = rec.snapshot();
        assert_eq!(snap.event(CounterEvent::CasRetry), 800);
        assert_eq!(snap.insert.count, 800);
        assert_eq!(snap.insert.total_nanos, 8 * (0..100).sum::<u64>());
        assert_eq!(snap.insert.buckets.iter().sum::<u64>(), 800);
    }

    #[test]
    fn quantile_upper_bounds_are_monotone() {
        let rec = Arc::new(AtomicRecorder::with_shards(1));
        for n in [1u64, 10, 100, 1_000, 10_000, 100_000] {
            rec.record_op(OpKind::DeleteMin, n);
        }
        let s = rec.snapshot().delete_min;
        let p50 = s.quantile_upper_bound(0.5);
        let p99 = s.quantile_upper_bound(0.99);
        assert!(p50 <= p99);
        assert!(p99 >= 100_000);
    }

    #[test]
    fn json_is_balanced_and_names_every_event() {
        let rec = Arc::new(AtomicRecorder::new());
        rec.record_event_n(CounterEvent::ElimHit, 7);
        rec.record_op(OpKind::Insert, 42);
        let json = rec.snapshot().to_json("FunnelTree");
        assert!(json.starts_with("{\n  \"schema_version\": 3,"));
        assert!(json.contains("\"algorithm\": \"FunnelTree\""));
        assert!(json.contains("\"elim_hit\": 7"));
        for e in CounterEvent::ALL {
            assert!(json.contains(&format!("\"{}\"", e.name())), "{e} missing");
        }
        let bal = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(bal('{', '}') && bal('[', ']'));
    }

    #[test]
    fn batch_histogram_counts_and_serializes() {
        let rec = Arc::new(AtomicRecorder::with_shards(2));
        record_batch_op(&*rec, 0); // a drain that found nothing
        record_batch_op(&*rec, 1);
        record_batch_op(&*rec, 8);
        record_batch_op(&*rec, 64);
        record_batch_op(&*rec, u64::MAX); // clamps to the top bucket
        let snap = rec.snapshot();
        assert_eq!(snap.event(CounterEvent::BatchOp), 5);
        assert_eq!(snap.batch.count, 5);
        // Shard totals use wrapping atomic adds; mirror that here.
        assert_eq!(
            snap.batch.total_items,
            (1u64 + 8 + 64).wrapping_add(u64::MAX)
        );
        assert_eq!(snap.batch.size_buckets[0], 1);
        assert_eq!(snap.batch.size_buckets[batch_bucket_of(8)], 1);
        assert_eq!(snap.batch.size_buckets[BATCH_BUCKETS - 1], 1);
        assert_eq!(snap.batch.size_buckets.iter().sum::<u64>(), 5);
        let json = snap.to_json("SingleLock");
        assert!(json.contains("\"batch\": {\"count\": 5"));
        assert!(json.contains("\"batch_op\": 5"));
    }

    #[test]
    fn batch_bucket_edges() {
        assert_eq!(batch_bucket_of(0), 0);
        assert_eq!(batch_bucket_of(1), 1);
        assert_eq!(batch_bucket_of(64), 7);
        assert_eq!(batch_bucket_of(u64::MAX), BATCH_BUCKETS - 1);
    }

    #[test]
    fn noop_recorder_reports_no_sink() {
        let rec = Arc::new(NoopRecorder);
        assert!(rec.sink().is_none());
        const { assert!(!NoopRecorder::ENABLED) }
    }
}
