//! `SimpleLinear` (paper Figure 2): an array of lock-based bins scanned in
//! priority order.

use std::sync::Arc;

use funnelpq_sync::{BinOrder, LockBin};

use crate::algorithm::Algorithm;
use crate::obs::{self, CounterEvent, NoopRecorder, OpKind, Recorder};
use crate::traits::{BoundedPq, PqError};

/// One MCS-locked bin per priority; `delete_min` scans bins smallest-first,
/// attempting removal from each non-empty bin it meets.
///
/// Inserts touch only their own bin, so they are embarrassingly parallel;
/// the scan is cheap because emptiness is one read per bin. Linearizable
/// when built from lock-based bins (as here). The paper's best performer up
/// to ~32 processors.
///
/// # Examples
///
/// ```
/// use funnelpq::{BoundedPq, SimpleLinearPq};
/// let q = SimpleLinearPq::new(8, 2);
/// q.insert(0, 6, 'z');
/// q.insert(1, 2, 'a');
/// assert_eq!(q.delete_min(0), Some((2, 'a')));
/// assert_eq!(q.delete_min(1), Some((6, 'z')));
/// assert_eq!(q.delete_min(0), None);
/// ```
#[derive(Debug)]
pub struct SimpleLinearPq<T, R: Recorder = NoopRecorder> {
    bins: Vec<LockBin<T>>,
    max_threads: usize,
    recorder: Arc<R>,
}

impl<T: Send> SimpleLinearPq<T> {
    /// Creates a queue for priorities `0..num_priorities`.
    ///
    /// # Panics
    ///
    /// Panics if `num_priorities` or `max_threads` is zero.
    pub fn new(num_priorities: usize, max_threads: usize) -> Self {
        Self::with_order(num_priorities, max_threads, BinOrder::Lifo)
    }

    /// Creates a queue whose equal-priority items come out in the given
    /// order ([`BinOrder::Fifo`] for fairness, as §3.2 of the paper
    /// suggests for applications where LIFO starvation matters).
    ///
    /// # Panics
    ///
    /// Panics if `num_priorities` or `max_threads` is zero.
    pub fn with_order(num_priorities: usize, max_threads: usize, order: BinOrder) -> Self {
        Self::with_recorder(num_priorities, max_threads, order, Arc::new(NoopRecorder))
    }
}

impl<T: Send, R: Recorder> SimpleLinearPq<T, R> {
    /// Like [`SimpleLinearPq::with_order`], reporting metrics to `recorder`
    /// (every bin lock's acquisitions flow into the recorder's substrate
    /// sink).
    ///
    /// # Panics
    ///
    /// Panics if `num_priorities` or `max_threads` is zero.
    pub fn with_recorder(
        num_priorities: usize,
        max_threads: usize,
        order: BinOrder,
        recorder: Arc<R>,
    ) -> Self {
        assert!(num_priorities > 0, "need at least one priority");
        assert!(max_threads > 0, "need at least one thread");
        let sink = recorder.sink();
        SimpleLinearPq {
            bins: (0..num_priorities)
                .map(|_| LockBin::with_order_and_sink(order, sink.clone()))
                .collect(),
            max_threads,
            recorder,
        }
    }
}

impl<T: Send, R: Recorder> BoundedPq<T> for SimpleLinearPq<T, R> {
    fn algorithm(&self) -> Algorithm {
        Algorithm::SimpleLinear
    }

    fn num_priorities(&self) -> usize {
        self.bins.len()
    }

    fn max_threads(&self) -> usize {
        self.max_threads
    }

    // `#[inline]` lets the panicking `insert` wrapper's monomorphization
    // absorb this body, keeping the old direct-insert code shape (no extra
    // call or by-stack `Result` on the hot path).
    #[inline]
    fn try_insert(&self, tid: usize, pri: usize, item: T) -> Result<(), PqError<T>> {
        if tid >= self.max_threads {
            return Err(PqError::TidOutOfRange {
                tid,
                max_threads: self.max_threads,
                item,
            });
        }
        if pri >= self.bins.len() {
            return Err(PqError::PriorityOutOfRange {
                pri,
                num_priorities: self.bins.len(),
                item,
            });
        }
        obs::timed(&*self.recorder, OpKind::Insert, || {
            self.bins[pri].insert(item)
        });
        Ok(())
    }

    fn delete_min(&self, tid: usize) -> Option<(usize, T)> {
        assert!(tid < self.max_threads, "tid {tid} out of range");
        let out = obs::timed(&*self.recorder, OpKind::DeleteMin, || {
            for (pri, bin) in self.bins.iter().enumerate() {
                if !bin.is_empty() {
                    if let Some(item) = bin.delete() {
                        return Some((pri, item));
                    }
                }
            }
            None
        });
        if R::ENABLED && out.is_none() {
            self.recorder.record_event(CounterEvent::EmptyDeleteMin);
        }
        out
    }

    fn is_empty(&self) -> bool {
        self.bins.iter().all(|b| b.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_finds_smallest() {
        let q = SimpleLinearPq::new(10, 1);
        q.insert(0, 9, "i");
        q.insert(0, 4, "e");
        q.insert(0, 4, "e2");
        assert_eq!(q.delete_min(0).unwrap().0, 4);
        assert_eq!(q.delete_min(0).unwrap().0, 4);
        assert_eq!(q.delete_min(0), Some((9, "i")));
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_order_is_fair_within_a_priority() {
        let q = SimpleLinearPq::with_order(4, 1, BinOrder::Fifo);
        for i in 0..5 {
            q.insert(0, 2, i);
        }
        for i in 0..5 {
            assert_eq!(q.delete_min(0), Some((2, i)));
        }
    }

    #[test]
    fn equal_priority_items_all_retrievable() {
        let q = SimpleLinearPq::new(2, 1);
        for i in 0..5 {
            q.insert(0, 1, i);
        }
        let mut got: Vec<i32> = (0..5).map(|_| q.delete_min(0).unwrap().1).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }
}
