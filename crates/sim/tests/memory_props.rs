//! Property-based tests of the simulated memory system: arbitrary
//! single-processor transaction sequences must behave exactly like local
//! arithmetic, and multi-processor interleavings must respect per-word
//! atomicity.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;

use funnelpq_sim::{Machine, MachineConfig};

#[derive(Debug, Clone, Copy)]
enum MemAct {
    Write(u64),
    Swap(u64),
    Cas { exp: u64, new: u64 },
    Faa(i8),
}

fn acts() -> impl Strategy<Value = Vec<MemAct>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..8).prop_map(MemAct::Write),
            (0u64..8).prop_map(MemAct::Swap),
            ((0u64..8), (0u64..8)).prop_map(|(exp, new)| MemAct::Cas { exp, new }),
            (-3i8..4).prop_map(MemAct::Faa),
        ],
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn single_proc_transactions_match_model(ops in acts(), seed in 0u64..100) {
        let mut m = Machine::new(MachineConfig::alewife_like(), seed);
        let a = m.alloc(1);
        let results = Rc::new(RefCell::new(Vec::new()));
        let r2 = Rc::clone(&results);
        let ctx = m.ctx();
        let ops2 = ops.clone();
        m.spawn(async move {
            for op in ops2 {
                let got = match op {
                    MemAct::Write(v) => ctx.write(a, v).await,
                    MemAct::Swap(v) => ctx.swap(a, v).await,
                    MemAct::Cas { exp, new } => ctx.cas(a, exp, new).await,
                    MemAct::Faa(d) => ctx.faa(a, d as i64).await,
                };
                r2.borrow_mut().push(got);
            }
        });
        prop_assert!(m.run().is_quiescent());
        // Replay against a plain variable.
        let mut v = 0u64;
        for (op, got) in ops.iter().zip(results.borrow().iter()) {
            prop_assert_eq!(*got, v, "previous value mismatch for {:?}", op);
            match op {
                MemAct::Write(x) | MemAct::Swap(x) => v = *x,
                MemAct::Cas { exp, new } => {
                    if v == *exp {
                        v = *new;
                    }
                }
                MemAct::Faa(d) => v = v.wrapping_add_signed(*d as i64),
            }
        }
        prop_assert_eq!(m.peek(a), v);
    }

    #[test]
    fn concurrent_faa_conserves(counts in prop::collection::vec(1usize..20, 2..10)) {
        let mut m = Machine::new(MachineConfig::test_tiny(), 7);
        let a = m.alloc(1);
        let total: usize = counts.iter().sum();
        for &n in &counts {
            let ctx = m.ctx();
            m.spawn(async move {
                for _ in 0..n {
                    ctx.faa(a, 1).await;
                }
            });
        }
        prop_assert!(m.run().is_quiescent());
        prop_assert_eq!(m.peek(a), total as u64);
    }

    #[test]
    fn latency_is_monotone_in_contention(p in 2usize..24) {
        // P processors reading one line take at least as long as P-1.
        fn finish_time(p: usize) -> u64 {
            let mut m = Machine::new(MachineConfig::alewife_like(), 1);
            let a = m.alloc(1);
            for _ in 0..p {
                let ctx = m.ctx();
                m.spawn(async move {
                    ctx.read(a).await;
                });
            }
            assert!(m.run().is_quiescent());
            m.now()
        }
        prop_assert!(finish_time(p) >= finish_time(p - 1));
    }
}
