//! Property-style tests of the simulated memory system, driven by the
//! in-repo deterministic PRNG instead of an external property-testing
//! framework: arbitrary single-processor transaction sequences must behave
//! exactly like local arithmetic, multi-processor interleavings must respect
//! per-word atomicity, and — the load-bearing property for the event-wheel
//! scheduler — the optimized machine must be *bit-identical* to the naive
//! linear-scan reference machine on every observable output.

use std::cell::RefCell;
use std::rc::Rc;

use funnelpq_sim::{Machine, MachineConfig};
use funnelpq_util::XorShift64Star;

#[derive(Debug, Clone, Copy)]
enum MemAct {
    Write(u64),
    Swap(u64),
    Cas { exp: u64, new: u64 },
    Faa(i64),
}

fn random_acts(rng: &mut XorShift64Star, max_len: u64) -> Vec<MemAct> {
    let len = 1 + rng.below(max_len) as usize;
    (0..len)
        .map(|_| match rng.below(4) {
            0 => MemAct::Write(rng.below(8)),
            1 => MemAct::Swap(rng.below(8)),
            2 => MemAct::Cas {
                exp: rng.below(8),
                new: rng.below(8),
            },
            _ => MemAct::Faa(rng.below(7) as i64 - 3),
        })
        .collect()
}

#[test]
fn single_proc_transactions_match_model() {
    for seed in 0..64u64 {
        let mut rng = XorShift64Star::new(seed.wrapping_mul(0x9E37_79B9));
        let ops = random_acts(&mut rng, 60);
        let mut m = Machine::new(MachineConfig::alewife_like(), seed);
        let a = m.alloc(1);
        let results = Rc::new(RefCell::new(Vec::new()));
        let r2 = Rc::clone(&results);
        let ctx = m.ctx();
        let ops2 = ops.clone();
        m.spawn(async move {
            for op in ops2 {
                let got = match op {
                    MemAct::Write(v) => ctx.write(a, v).await,
                    MemAct::Swap(v) => ctx.swap(a, v).await,
                    MemAct::Cas { exp, new } => ctx.cas(a, exp, new).await,
                    MemAct::Faa(d) => ctx.faa(a, d).await,
                };
                r2.borrow_mut().push(got);
            }
        });
        assert!(m.run().is_quiescent());
        // Replay against a plain variable.
        let mut v = 0u64;
        for (op, got) in ops.iter().zip(results.borrow().iter()) {
            assert_eq!(*got, v, "previous value mismatch for {op:?}");
            match op {
                MemAct::Write(x) | MemAct::Swap(x) => v = *x,
                MemAct::Cas { exp, new } => {
                    if v == *exp {
                        v = *new;
                    }
                }
                MemAct::Faa(d) => v = v.wrapping_add_signed(*d),
            }
        }
        assert_eq!(m.peek(a), v, "seed {seed}");
    }
}

#[test]
fn concurrent_faa_conserves() {
    for seed in 0..24u64 {
        let mut rng = XorShift64Star::new(seed ^ 0xFAA);
        let counts: Vec<usize> = (0..2 + rng.below(8))
            .map(|_| 1 + rng.below(19) as usize)
            .collect();
        let mut m = Machine::new(MachineConfig::test_tiny(), 7);
        let a = m.alloc(1);
        let total: usize = counts.iter().sum();
        for &n in &counts {
            let ctx = m.ctx();
            m.spawn(async move {
                for _ in 0..n {
                    ctx.faa(a, 1).await;
                }
            });
        }
        assert!(m.run().is_quiescent());
        assert_eq!(m.peek(a), total as u64, "seed {seed}");
    }
}

#[test]
fn latency_is_monotone_in_contention() {
    // P processors reading one line take at least as long as P-1.
    fn finish_time(p: usize) -> u64 {
        let mut m = Machine::new(MachineConfig::alewife_like(), 1);
        let a = m.alloc(1);
        for _ in 0..p {
            let ctx = m.ctx();
            m.spawn(async move {
                ctx.read(a).await;
            });
        }
        assert!(m.run().is_quiescent());
        m.now()
    }
    let times: Vec<u64> = (1..24).map(finish_time).collect();
    for w in times.windows(2) {
        assert!(w[1] >= w[0], "latency not monotone: {times:?}");
    }
}

/// Drives one randomized multi-processor workload on a machine. The workload
/// deliberately exercises every scheduler path that distinguishes the event
/// wheel from a naive queue: same-cycle ties (many procs woken together),
/// `work` delays far beyond the wheel horizon (overflow + migration),
/// `wait_change` blocking (waiter wake-ups re-entering the queue), and
/// `random_*` calls (so the per-proc PRNG streams must also line up).
fn run_workload(
    mut m: Machine,
    seed: u64,
    procs: usize,
) -> (u64, Vec<u64>, Vec<(usize, u64, u64)>) {
    let shared = m.alloc(4);
    let flags = m.alloc(procs);
    for p in 0..procs {
        let ctx = m.ctx();
        let mut rng = XorShift64Star::new(seed ^ (p as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93));
        m.spawn(async move {
            for round in 0..12u64 {
                match rng.below(6) {
                    0 => {
                        ctx.faa(shared + (rng.below(4) as usize), 1).await;
                    }
                    1 => {
                        let a = shared + (rng.below(4) as usize);
                        let old = ctx.read(a).await;
                        ctx.cas(a, old, old.wrapping_add(round)).await;
                    }
                    2 => {
                        // Far beyond the 1024-cycle wheel horizon: lands in
                        // the overflow heap and must migrate back in order.
                        ctx.work(1500 + rng.below(6000)).await;
                    }
                    3 => {
                        ctx.work(rng.below(40)).await;
                    }
                    4 => {
                        // Ping the ring successor's flag, then wait on our
                        // own. Proc 0 never waits, so the ring cannot
                        // deadlock: proc 0 always finishes and lands the
                        // guaranteed final +100 on proc 1's flag, proc 1
                        // then finishes, and so on around the ring. Waiting
                        // only while `seen < 100` ensures the predecessor's
                        // final increment is still ahead of us.
                        let me = flags + (ctx.pid() % procs);
                        let next = flags + ((ctx.pid() + 1) % procs);
                        ctx.faa(next, 1).await;
                        let seen = ctx.read(me).await;
                        if !ctx.pid().is_multiple_of(procs) && seen < 100 {
                            let _ = ctx.wait_change(me, seen).await;
                        }
                    }
                    _ => {
                        let v = ctx.swap(shared, ctx.random_below(64)).await;
                        if ctx.random_bool(0.3) {
                            ctx.write(shared + 1, v).await;
                        }
                    }
                }
            }
            // Final wake so no neighbour is left blocked on its flag.
            let next = flags + ((ctx.pid() + 1) % procs);
            ctx.faa(next, 100).await;
        });
    }
    // Split the run across run_for windows (the limit is an absolute clock
    // value) to cover stop/resume re-entry of the scheduler.
    let mut limit = 10_000;
    while !m.run_for(limit).is_quiescent() {
        limit += 10_000;
    }
    let stats = m.stats();
    (m.now(), m.memory_snapshot(), stats.per_line().collect())
}

/// The tentpole equivalence property: the wheel-scheduled machine and the
/// linear-scan reference machine must produce identical clocks, memories,
/// and per-line contention counts for identical workloads.
#[test]
fn wheel_machine_matches_reference_machine() {
    for seed in 0..12u64 {
        for &procs in &[1usize, 3, 8, 17] {
            let cfg = MachineConfig::alewife_like();
            let fast = run_workload(Machine::new(cfg, seed), seed, procs);
            let slow = run_workload(Machine::new_reference(cfg, seed), seed, procs);
            assert_eq!(fast.0, slow.0, "clock diverged: seed {seed} procs {procs}");
            assert_eq!(fast.1, slow.1, "memory diverged: seed {seed} procs {procs}");
            assert_eq!(
                fast.2, slow.2,
                "per-line stats diverged: seed {seed} procs {procs}"
            );
        }
    }
}

/// Aggregate stats must agree too (accesses, queueing delay, series).
#[test]
fn wheel_machine_stats_match_reference() {
    let seed = 99;
    let run = |mut m: Machine| {
        let a = m.alloc(1);
        for _ in 0..16 {
            let ctx = m.ctx();
            m.spawn(async move {
                for i in 0..25u64 {
                    ctx.faa(a, 1).await;
                    ctx.work(if i % 5 == 0 { 2048 } else { 3 }).await;
                }
            });
        }
        assert!(m.run().is_quiescent());
        let s = m.stats();
        (m.now(), m.peek(a), s.mem_accesses, s.queue_delay_cycles)
    };
    let fast = run(Machine::new(MachineConfig::alewife_like(), seed));
    let slow = run(Machine::new_reference(MachineConfig::alewife_like(), seed));
    assert_eq!(fast, slow);
    assert_eq!(fast.1, 16 * 25);
}
