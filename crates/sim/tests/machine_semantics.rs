//! Semantic tests for the simulated machine: timing model, atomicity,
//! coherent spinning, determinism, and failure detection.

use std::cell::RefCell;
use std::rc::Rc;

use funnelpq_sim::{Machine, MachineConfig, RunOutcome};

fn tiny() -> MachineConfig {
    MachineConfig::test_tiny()
}

#[test]
fn single_access_latency_is_round_trip_plus_service() {
    let cfg = MachineConfig {
        net_latency: 10,
        service: 4,
        line_words: 2,
        nodes: 1,
        remote_ratio: 1,
    };
    let mut m = Machine::new(cfg, 0);
    let a = m.alloc(1);
    let t = Rc::new(RefCell::new(0u64));
    let t2 = Rc::clone(&t);
    let ctx = m.ctx();
    m.spawn(async move {
        ctx.read(a).await;
        *t2.borrow_mut() = ctx.now();
    });
    assert!(m.run().is_quiescent());
    assert_eq!(*t.borrow(), cfg.uncontended_access());
}

#[test]
fn contended_accesses_queue_in_fifo_order() {
    // P processors all read the same line at t=0: the k-th response arrives
    // at net + k*service + net.
    let cfg = MachineConfig {
        net_latency: 5,
        service: 3,
        line_words: 1,
        nodes: 1,
        remote_ratio: 1,
    };
    const P: usize = 8;
    let mut m = Machine::new(cfg, 0);
    let a = m.alloc(1);
    let times = Rc::new(RefCell::new(Vec::new()));
    for _ in 0..P {
        let ctx = m.ctx();
        let times = Rc::clone(&times);
        m.spawn(async move {
            ctx.read(a).await;
            times.borrow_mut().push(ctx.now());
        });
    }
    assert!(m.run().is_quiescent());
    let times = times.borrow();
    for (k, &t) in times.iter().enumerate() {
        assert_eq!(t, 5 + (k as u64 + 1) * 3 + 5, "k={k}");
    }
    // All but the first access queued.
    assert!(m.stats().queue_delay_cycles > 0);
    assert_eq!(m.stats().mem_accesses, P as u64);
}

#[test]
fn different_lines_do_not_contend() {
    let cfg = MachineConfig {
        net_latency: 5,
        service: 3,
        line_words: 1,
        nodes: 1,
        remote_ratio: 1,
    };
    let mut m = Machine::new(cfg, 0);
    let a = m.alloc(1);
    let b = m.alloc(1);
    let done = Rc::new(RefCell::new(Vec::new()));
    for addr in [a, b] {
        let ctx = m.ctx();
        let done = Rc::clone(&done);
        m.spawn(async move {
            ctx.read(addr).await;
            done.borrow_mut().push(ctx.now());
        });
    }
    assert!(m.run().is_quiescent());
    assert_eq!(*done.borrow(), vec![13, 13]);
    assert_eq!(m.stats().queue_delay_cycles, 0);
}

#[test]
fn same_line_words_share_a_service_queue() {
    let cfg = MachineConfig {
        net_latency: 5,
        service: 3,
        line_words: 4,
        nodes: 1,
        remote_ratio: 1,
    };
    let mut m = Machine::new(cfg, 0);
    let base = m.alloc(4);
    let done = Rc::new(RefCell::new(Vec::new()));
    for i in 0..2usize {
        let ctx = m.ctx();
        let done = Rc::clone(&done);
        m.spawn(async move {
            ctx.read(base + i).await; // distinct words, same line
            done.borrow_mut().push(ctx.now());
        });
    }
    assert!(m.run().is_quiescent());
    let d = done.borrow();
    assert_eq!(d[0], 13);
    assert_eq!(d[1], 16); // queued behind the first access
}

#[test]
fn cas_swap_faa_semantics() {
    let mut m = Machine::new(tiny(), 0);
    let a = m.alloc(1);
    m.poke(a, 41);
    let ctx = m.ctx();
    m.spawn(async move {
        // Failed CAS leaves the value alone and returns the current value.
        let old = ctx.cas(a, 7, 99).await;
        assert_eq!(old, 41);
        // Successful CAS stores and returns the expected value.
        let old = ctx.cas(a, 41, 42).await;
        assert_eq!(old, 41);
        assert_eq!(ctx.read(a).await, 42);
        // Swap returns the previous value.
        assert_eq!(ctx.swap(a, 5).await, 42);
        // Fetch-and-add returns the previous value, supports negatives.
        assert_eq!(ctx.faa(a, 10).await, 5);
        assert_eq!(ctx.faa(a, -3).await, 15);
        assert_eq!(ctx.read(a).await, 12);
    });
    assert!(m.run().is_quiescent());
}

#[test]
fn cas_is_atomic_under_contention() {
    // A CAS-based fetch-and-increment executed by many processors must not
    // lose updates.
    const P: usize = 32;
    const OPS: usize = 25;
    let mut m = Machine::new(tiny(), 1);
    let a = m.alloc(1);
    for _ in 0..P {
        let ctx = m.ctx();
        m.spawn(async move {
            for _ in 0..OPS {
                loop {
                    let old = ctx.read(a).await;
                    if ctx.cas(a, old, old + 1).await == old {
                        break;
                    }
                }
            }
        });
    }
    assert!(m.run().is_quiescent());
    assert_eq!(m.peek(a), (P * OPS) as u64);
}

#[test]
fn wait_until_wakes_on_write() {
    let mut m = Machine::new(tiny(), 0);
    let flag = m.alloc(1);
    let order = Rc::new(RefCell::new(Vec::new()));

    let ctx = m.ctx();
    let ord = Rc::clone(&order);
    m.spawn(async move {
        let v = ctx.wait_until(flag, |v| v == 3).await;
        assert_eq!(v, 3);
        ord.borrow_mut().push(("woke", ctx.now()));
    });

    let ctx = m.ctx();
    let ord = Rc::clone(&order);
    m.spawn(async move {
        ctx.work(50).await;
        ctx.write(flag, 2).await; // wrong value: waiter re-checks, sleeps on
        ctx.work(50).await;
        ctx.write(flag, 3).await;
        ord.borrow_mut().push(("wrote", ctx.now()));
    });

    assert!(m.run().is_quiescent());
    let order = order.borrow();
    assert_eq!(order.len(), 2);
    let woke = order.iter().find(|(k, _)| *k == "woke").unwrap().1;
    let wrote = order.iter().find(|(k, _)| *k == "wrote").unwrap().1;
    assert!(woke >= 100, "waiter must not wake before the second write");
    // Waking costs an invalidation plus a re-read, so it lands after the
    // writer's completion.
    assert!(woke >= wrote);
}

#[test]
fn deadlock_is_detected() {
    let mut m = Machine::new(tiny(), 0);
    let flag = m.alloc(1);
    let ctx = m.ctx();
    m.spawn(async move {
        ctx.wait_until(flag, |v| v == 1).await;
    });
    match m.run() {
        RunOutcome::Deadlock { blocked } => assert_eq!(blocked, vec![0]),
        other => panic!("expected deadlock, got {other}"),
    }
}

#[test]
fn run_for_stops_and_resumes() {
    let mut m = Machine::new(tiny(), 0);
    let a = m.alloc(1);
    let ctx = m.ctx();
    m.spawn(async move {
        ctx.work(1000).await;
        ctx.write(a, 9).await;
    });
    assert_eq!(m.run_for(10), RunOutcome::CycleLimit);
    assert_eq!(m.peek(a), 0);
    assert!(m.run().is_quiescent());
    assert_eq!(m.peek(a), 9);
}

#[test]
fn deterministic_across_runs() {
    fn run_once(seed: u64) -> (u64, Vec<u64>) {
        let mut m = Machine::new(MachineConfig::alewife_like(), seed);
        let a = m.alloc(1);
        let results = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..16 {
            let ctx = m.ctx();
            let results = Rc::clone(&results);
            m.spawn(async move {
                for _ in 0..20 {
                    ctx.work(ctx.random_below(30)).await;
                    loop {
                        let old = ctx.read(a).await;
                        if ctx.cas(a, old, old + 1).await == old {
                            break;
                        }
                    }
                }
                results.borrow_mut().push(ctx.now());
            });
        }
        assert!(m.run().is_quiescent());
        let r = Rc::try_unwrap(results).unwrap().into_inner();
        (m.now(), r)
    }
    assert_eq!(run_once(77), run_once(77));
    assert_ne!(run_once(77), run_once(78));
}

#[test]
fn rng_streams_differ_per_processor() {
    let mut m = Machine::new(tiny(), 5);
    let out = Rc::new(RefCell::new(Vec::new()));
    for _ in 0..8 {
        let ctx = m.ctx();
        let out = Rc::clone(&out);
        m.spawn(async move {
            out.borrow_mut().push(ctx.random_below(1_000_000_007));
        });
    }
    assert!(m.run().is_quiescent());
    let mut v = out.borrow().clone();
    v.sort_unstable();
    v.dedup();
    assert_eq!(v.len(), 8, "independent per-processor streams expected");
}

#[test]
fn alloc_is_line_aligned_and_zeroed() {
    let cfg = MachineConfig {
        net_latency: 1,
        service: 1,
        line_words: 8,
        nodes: 1,
        remote_ratio: 1,
    };
    let mut m = Machine::new(cfg, 0);
    let a = m.alloc(3);
    let b = m.alloc(1);
    assert_eq!(a % 8, 0);
    assert_eq!(b % 8, 0);
    assert_ne!(a / 8, b / 8, "separate allocations on separate lines");
    assert_eq!(m.peek(a), 0);
    assert_eq!(m.peek(b), 0);

    let p = m.alloc_padded(4);
    for i in 0..4 {
        assert_eq!((p + i * 8) % 8, 0);
    }
}

#[test]
fn stats_record_via_ctx() {
    let mut m = Machine::new(tiny(), 0);
    let ctx = m.ctx();
    m.spawn(async move {
        let t0 = ctx.now();
        ctx.work(17).await;
        ctx.record("op", ctx.now() - t0);
    });
    assert!(m.run().is_quiescent());
    assert_eq!(m.stats().acc("op").count(), 1);
    assert_eq!(m.stats().acc("op").sum(), 17);
}

#[test]
fn work_zero_still_yields() {
    let mut m = Machine::new(tiny(), 0);
    let ctx = m.ctx();
    m.spawn(async move {
        ctx.work(0).await;
        ctx.work(0).await;
    });
    assert!(m.run().is_quiescent());
    assert_eq!(m.now(), 0);
}

#[test]
fn labels_and_hotspots() {
    let cfg = MachineConfig {
        net_latency: 5,
        service: 3,
        line_words: 1,
        nodes: 1,
        remote_ratio: 1,
    };
    let mut m = Machine::new(cfg, 0);
    let hot = m.alloc(1);
    let cold = m.alloc(1);
    m.label(hot, 1, "hot word");
    m.label(cold, 1, "cold word");
    for p in 0..8 {
        let ctx = m.ctx();
        m.spawn(async move {
            for _ in 0..20 {
                ctx.faa(hot, 1).await;
            }
            if p == 0 {
                ctx.read(cold).await;
            }
        });
    }
    assert!(m.run().is_quiescent());
    let hs = m.hotspots(10);
    assert_eq!(hs[0].label, "hot word");
    assert!(hs[0].queue_delay_cycles > 0);
    assert_eq!(hs[0].accesses, 8 * 20);
    // Totals across labels match the machine-wide stats.
    let sum: u64 = hs.iter().map(|h| h.accesses).sum();
    assert_eq!(sum, m.stats().mem_accesses);
}

#[test]
fn overlapping_labels_later_wins() {
    let mut m = Machine::new(MachineConfig::test_tiny(), 0);
    let a = m.alloc(4);
    m.label(a, 4, "outer");
    m.label(a + 1, 1, "inner");
    let ctx = m.ctx();
    m.spawn(async move {
        ctx.write(a, 1).await;
        ctx.write(a + 1, 1).await;
    });
    assert!(m.run().is_quiescent());
    let hs = m.hotspots(10);
    let labels: Vec<&str> = hs.iter().map(|h| h.label.as_str()).collect();
    assert!(labels.contains(&"outer"));
    assert!(labels.contains(&"inner"));
}
