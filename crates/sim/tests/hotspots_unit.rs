//! Unit tests for [`Machine::hotspots`] itself — the aggregation and
//! ordering rules, independent of any queue algorithm (those live in
//! `crates/simqueues/tests/hotspots.rs`).

use funnelpq_sim::{Addr, Machine, MachineConfig};

fn tiny() -> MachineConfig {
    MachineConfig::test_tiny()
}

/// One uncontended read of each address, sequentially on one processor —
/// every region ends with the same (zero) queueing delay.
fn touch_each_once(m: &mut Machine, addrs: Vec<Addr>) {
    let ctx = m.ctx();
    m.spawn(async move {
        for a in addrs {
            ctx.read(a).await;
        }
    });
    assert!(m.run().is_quiescent());
}

#[test]
fn equal_delay_ties_break_by_label_insertion_order() {
    let mut m = Machine::new(tiny(), 0);
    let a = m.alloc(1);
    let b = m.alloc(1);
    let c = m.alloc(1);
    // Labelled in this order; all three see one uncontended access each,
    // so every delay is 0 and the sort must be stable.
    m.label(a, 1, "first");
    m.label(b, 1, "second");
    m.label(c, 1, "third");
    touch_each_once(&mut m, vec![c, b, a]); // access order deliberately reversed
    let names: Vec<String> = m.hotspots(10).into_iter().map(|h| h.label).collect();
    assert_eq!(names, vec!["first", "second", "third"]);
}

#[test]
fn unlabelled_lines_pool_into_one_region() {
    let mut m = Machine::new(tiny(), 0);
    let labelled = m.alloc(1);
    let stray1 = m.alloc(1);
    let stray2 = m.alloc(1);
    m.label(labelled, 1, "the label");
    touch_each_once(&mut m, vec![labelled, stray1, stray2, stray2]);
    let hs = m.hotspots(10);
    let pooled: Vec<_> = hs.iter().filter(|h| h.label == "<unlabelled>").collect();
    assert_eq!(pooled.len(), 1, "all stray lines share one entry: {hs:?}");
    assert_eq!(pooled[0].accesses, 3);
    assert_eq!(
        hs.iter().find(|h| h.label == "the label").unwrap().accesses,
        1
    );
}

#[test]
fn top_k_beyond_label_count_returns_everything_once() {
    let mut m = Machine::new(tiny(), 0);
    let a = m.alloc(1);
    let b = m.alloc(1);
    m.label(a, 1, "only-a");
    m.label(b, 1, "only-b");
    touch_each_once(&mut m, vec![a, b]);
    let all = m.hotspots(usize::MAX);
    let capped = m.hotspots(1000);
    assert_eq!(all, capped);
    assert_eq!(all.len(), 2, "two touched regions, no padding: {all:?}");
    // And top_k still truncates when smaller.
    assert_eq!(m.hotspots(1).len(), 1);
    assert_eq!(m.hotspots(0).len(), 0);
}

#[test]
fn delay_ranking_puts_the_contended_region_first() {
    let mut m = Machine::new(tiny(), 0);
    let hot = m.alloc(1);
    let cold = m.alloc(1);
    m.label(cold, 1, "cold"); // labelled first: only delay can rank it below
    m.label(hot, 1, "hot");
    // Eight writers pile onto `hot`; `cold` sees one lonely read.
    for _ in 0..8 {
        let ctx = m.ctx();
        m.spawn(async move {
            ctx.write(hot, 1).await;
        });
    }
    let ctx = m.ctx();
    m.spawn(async move {
        ctx.read(cold).await;
    });
    assert!(m.run().is_quiescent());
    let hs = m.hotspots(2);
    assert_eq!(hs[0].label, "hot");
    assert!(hs[0].queue_delay_cycles > 0);
    assert_eq!(hs[1].label, "cold");
    assert_eq!(hs[1].queue_delay_cycles, 0);
}

#[test]
fn same_name_regions_merge_in_the_report() {
    let mut m = Machine::new(tiny(), 0);
    let a = m.alloc(1);
    let b = m.alloc(1);
    m.label(a, 1, "bin");
    m.label(b, 1, "bin"); // disjoint range, same display name
    touch_each_once(&mut m, vec![a, b]);
    let hs = m.hotspots(10);
    assert_eq!(hs.len(), 1);
    assert_eq!(hs[0].label, "bin");
    assert_eq!(hs[0].accesses, 2);
}
