//! Semantic tests for the tracing hook: event timing must match the
//! machine's contention model exactly, spans must bracket correctly, and
//! attaching a tracer must never perturb the simulation.

use funnelpq_sim::trace::{TraceEvent, TraceLog, TxnKind};
use funnelpq_sim::{Addr, Machine, MachineConfig};

fn tiny() -> MachineConfig {
    // net_latency = 1, service = 1, one word per line.
    MachineConfig::test_tiny()
}

/// Filters a log down to transaction events only.
fn txns(events: &[TraceEvent]) -> Vec<TraceEvent> {
    events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Txn { .. }))
        .copied()
        .collect()
}

#[test]
fn txn_event_carries_the_latency_decomposition() {
    let mut m = Machine::new(tiny(), 0);
    let a = m.alloc(1);
    let log = TraceLog::new();
    m.attach_tracer(log.handle());
    let ctx = m.ctx();
    m.spawn(async move {
        ctx.read(a).await;
    });
    assert!(m.run().is_quiescent());
    // Issue at 0, reach memory at 1, line free so start at 1, occupy one
    // service cycle until 2, reply lands at 3.
    assert_eq!(
        txns(&log.events()),
        vec![TraceEvent::Txn {
            proc: 0,
            addr: a,
            line: a, // one word per line
            kind: TxnKind::Read,
            issue: 0,
            arrival: 1,
            start: 1,
            release: 2,
            complete: 3,
            mutated: false,
        }]
    );
}

#[test]
fn contended_txns_expose_queueing_in_start_times() {
    let mut m = Machine::new(tiny(), 0);
    let a = m.alloc(1);
    let log = TraceLog::new();
    m.attach_tracer(log.handle());
    for v in 1..=3u64 {
        let ctx = m.ctx();
        m.spawn(async move {
            ctx.write(a, v).await;
        });
    }
    assert!(m.run().is_quiescent());
    let txns = txns(&log.events());
    assert_eq!(txns.len(), 3);
    for (k, ev) in txns.iter().enumerate() {
        let TraceEvent::Txn {
            arrival,
            start,
            release,
            complete,
            mutated,
            ..
        } = *ev
        else {
            unreachable!()
        };
        // All arrive at cycle 1; the k-th in line starts k service cycles
        // later and its queueing delay is exactly `start - arrival`.
        assert_eq!(arrival, 1);
        assert_eq!(start, 1 + k as u64);
        assert_eq!(release, start + 1);
        assert_eq!(complete, release + 1);
        assert!(mutated);
    }
}

#[test]
fn spans_bracket_and_nest() {
    let mut m = Machine::new(tiny(), 0);
    let a = m.alloc(1);
    let log = TraceLog::new();
    m.attach_tracer(log.handle());
    let ctx = m.ctx();
    m.spawn(async move {
        let outer = ctx.span("outer");
        {
            let _inner = ctx.span("inner");
            ctx.read(a).await;
        }
        outer.end();
    });
    assert!(m.run().is_quiescent());
    let spans: Vec<(bool, &str, u64)> = log
        .events()
        .iter()
        .filter_map(|e| match *e {
            TraceEvent::SpanBegin { name, time, .. } => Some((true, name, time)),
            TraceEvent::SpanEnd { name, time, .. } => Some((false, name, time)),
            _ => None,
        })
        .collect();
    assert_eq!(
        spans,
        vec![
            (true, "outer", 0),
            (true, "inner", 0),
            (false, "inner", 3), // closes when the awaited read completes
            (false, "outer", 3),
        ]
    );
}

#[test]
fn spawn_block_resume_complete_events_appear_in_order() {
    let mut m = Machine::new(tiny(), 0);
    let a = m.alloc(1);
    let log = TraceLog::new();
    m.attach_tracer(log.handle());
    // Proc 0 spins on `a` until it changes; proc 1 eventually writes it.
    let ctx = m.ctx();
    m.spawn(async move {
        ctx.wait_change(a, 0).await;
    });
    let ctx = m.ctx();
    m.spawn(async move {
        ctx.work(10).await;
        ctx.write(a, 7).await;
    });
    assert!(m.run().is_quiescent());
    let kinds: Vec<&str> = log
        .events()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::TaskSpawn { proc: 0, .. } => Some("spawn"),
            TraceEvent::TaskBlock { proc: 0, .. } => Some("block"),
            TraceEvent::TaskResume { proc: 0, .. } => Some("resume"),
            TraceEvent::TaskComplete { proc: 0, .. } => Some("complete"),
            _ => None,
        })
        .collect();
    assert_eq!(kinds, vec!["spawn", "block", "resume", "complete"]);
    // The block names the watched word; the resume names the mutated one.
    let block_addr = log.events().iter().find_map(|e| match *e {
        TraceEvent::TaskBlock { addr, .. } => Some(addr),
        _ => None,
    });
    let resume_addr = log.events().iter().find_map(|e| match *e {
        TraceEvent::TaskResume { addr, .. } => Some(addr),
        _ => None,
    });
    assert_eq!(block_addr, Some(a));
    assert_eq!(resume_addr, Some(a));
}

/// A little workload with contention, spins, and randomness — the thing
/// the differential below runs traced and untraced.
fn stir(m: &mut Machine, procs: usize) -> Addr {
    let a = m.alloc(1);
    for _ in 0..procs {
        let ctx = m.ctx();
        m.spawn(async move {
            for _ in 0..8 {
                ctx.work(ctx.random_below(16)).await;
                let v = ctx.faa(a, 1).await;
                if v % 3 == 0 {
                    ctx.cas(a, v + 1, v).await;
                }
                ctx.record("ops", 1);
            }
        });
    }
    a
}

#[test]
fn tracing_leaves_the_simulation_bit_identical() {
    let run = |traced: bool| {
        let mut m = Machine::new(MachineConfig::alewife_like(), 0xBEEF);
        if traced {
            m.attach_tracer(TraceLog::new().handle());
        }
        stir(&mut m, 12);
        assert!(m.run().is_quiescent());
        (
            m.now(),
            m.stats().mem_accesses,
            m.stats().queue_delay_cycles,
            m.stats().per_line().collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn detach_tracer_stops_emission_and_returns_the_tracer() {
    let mut m = Machine::new(tiny(), 0);
    let a = m.alloc(1);
    let log = TraceLog::new();
    m.attach_tracer(log.handle());
    let ctx = m.ctx();
    m.spawn(async move {
        ctx.read(a).await;
    });
    assert!(m.run().is_quiescent());
    let traced_len = log.len();
    assert!(traced_len > 0);

    assert!(m.detach_tracer().is_some());
    assert!(m.detach_tracer().is_none(), "second detach finds nothing");
    let ctx = m.ctx();
    m.spawn(async move {
        ctx.read(a).await;
    });
    assert!(m.run().is_quiescent());
    assert_eq!(log.len(), traced_len, "no events after detach");
}

#[test]
fn region_map_resolves_lines_and_merges_shared_names() {
    let mut m = Machine::new(tiny(), 0);
    let a = m.alloc(2); // two one-word lines
    let b = m.alloc(2);
    let c = m.alloc(1); // stays unlabelled
    m.label(a, 2, "bins");
    m.label(b, 2, "bins"); // distinct range, same display name: merges
    let regions = m.region_map();
    assert_eq!(
        regions.names().last().map(String::as_str),
        Some("<unlabelled>")
    );
    assert_eq!(regions.region_of_line(a), regions.region_of_line(b + 1));
    assert_eq!(regions.name_of_line(a), "bins");
    assert_eq!(regions.region_of_line(c), regions.unlabelled());
    // Lines past the mapped range (allocated after the map was built)
    // resolve to "<unlabelled>" instead of panicking.
    assert_eq!(regions.region_of_line(1 << 20), regions.unlabelled());
    assert_eq!(regions.find("bins"), Some(regions.region_of_line(a)));
    assert_eq!(regions.find("nope"), None);
}
