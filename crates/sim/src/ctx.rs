//! Per-processor context: the API simulated algorithms program against.

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};

use funnelpq_util::XorShift64Star;

use crate::fault::SpanPoint;
use crate::machine::{Addr, MemOpKind, ProcId, SimState, Word};
use crate::trace::TraceEvent;

/// Handle through which one simulated processor issues memory transactions,
/// burns local compute cycles, and records measurements.
///
/// Every method that touches shared memory returns a future; awaiting it
/// advances the simulated clock by the transaction's modelled latency
/// (including any queueing behind other processors at the same cache line).
/// Plain Rust code between awaits costs no simulated time — charge it
/// explicitly with [`ProcCtx::work`].
pub struct ProcCtx {
    st: Rc<RefCell<SimState>>,
    pid: ProcId,
    rng: RefCell<XorShift64Star>,
}

impl ProcCtx {
    pub(crate) fn new(st: Rc<RefCell<SimState>>, pid: ProcId, seed: u64) -> Self {
        // Derive a distinct, well-mixed stream per processor.
        let mix = seed ^ (pid as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ProcCtx {
            st,
            pid,
            rng: RefCell::new(XorShift64Star::new(mix)),
        }
    }

    /// This processor's id.
    pub fn pid(&self) -> ProcId {
        self.pid
    }

    /// Current simulated time in cycles.
    pub fn now(&self) -> u64 {
        self.st.borrow().now
    }

    /// Reads the word at `addr`.
    pub fn read(&self, addr: Addr) -> MemOp<'_> {
        self.op(addr, MemOpKind::Read)
    }

    /// Writes `v` to `addr`.
    pub fn write(&self, addr: Addr, v: Word) -> MemOp<'_> {
        self.op(addr, MemOpKind::Write(v))
    }

    /// Atomically swaps `v` into `addr`, returning the previous value
    /// (register-to-memory-swap, one of the paper's two primitives).
    pub fn swap(&self, addr: Addr, v: Word) -> MemOp<'_> {
        self.op(addr, MemOpKind::Swap(v))
    }

    /// Atomic compare-and-swap: if `*addr == expected`, stores `new`.
    /// Resolves to the *previous* value; the CAS succeeded iff that equals
    /// `expected`.
    pub fn cas(&self, addr: Addr, expected: Word, new: Word) -> MemOp<'_> {
        self.op(addr, MemOpKind::Cas { expected, new })
    }

    /// Atomic fetch-and-add. Not one of the paper's base primitives (it is
    /// what combining funnels *implement*); provided for ablations and for
    /// modelling machines with hardware fetch-and-add.
    pub fn faa(&self, addr: Addr, delta: i64) -> MemOp<'_> {
        self.op(addr, MemOpKind::Faa(delta))
    }

    fn op(&self, addr: Addr, kind: MemOpKind) -> MemOp<'_> {
        MemOp {
            ctx: self,
            addr,
            kind: Some(kind),
            result: 0,
        }
    }

    /// Burns `cycles` of local computation.
    pub fn work(&self, cycles: u64) -> WorkFuture<'_> {
        WorkFuture {
            ctx: self,
            cycles: Some(cycles),
        }
    }

    /// Suspends until the word at `addr` no longer holds `observed` (or
    /// resumes immediately if it already changed since the caller's last
    /// read — a write may land during that read's latency window). Models
    /// spinning on a locally cached copy: free while the line is quiet,
    /// one re-fetch per invalidation.
    ///
    /// Prefer [`ProcCtx::wait_until`], which handles the re-check loop.
    pub fn wait_change(&self, addr: Addr, observed: Word) -> WaitChange<'_> {
        WaitChange {
            ctx: self,
            addr,
            observed,
            registered: false,
        }
    }

    /// Spins (coherently) until `pred` holds for the value at `addr`;
    /// returns the value that satisfied it.
    pub async fn wait_until<F>(&self, addr: Addr, pred: F) -> Word
    where
        F: Fn(Word) -> bool,
    {
        loop {
            let v = self.read(addr).await;
            if pred(v) {
                return v;
            }
            self.wait_change(addr, v).await;
        }
    }

    /// Records a latency sample under `key` in the machine's statistics.
    /// Each sample also counts as machine-wide progress for the livelock
    /// watchdog ([`crate::Machine::set_watchdog`]).
    pub fn record(&self, key: &'static str, v: u64) {
        self.st.borrow_mut().record_progress(key, v);
    }

    /// Opens a named tracing span on this processor's timeline; the span
    /// closes when the returned guard drops (or is closed explicitly with
    /// [`Span::end`]). Spans cost no simulated time and never reschedule
    /// the task — with no tracer attached the call is a single
    /// pointer-presence test. Use them to bracket interesting phases
    /// (lock hold, funnel traversal, heap bubble) so traces show *why* a
    /// processor was busy, not just *that* it was.
    pub fn span(&self, name: &'static str) -> Span<'_> {
        {
            let mut st = self.st.borrow_mut();
            if st.tracing() {
                let now = st.now;
                st.emit(TraceEvent::SpanBegin {
                    proc: self.pid,
                    name,
                    time: now,
                });
            }
            if st.faulting() {
                st.fault_span(self.pid, name, SpanPoint::Begin);
            }
        }
        Span {
            ctx: self,
            name,
            ended: false,
        }
    }

    /// Uniform random integer in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn random_below(&self, n: u64) -> u64 {
        self.rng.borrow_mut().below(n)
    }

    /// Coin flip: true with probability `p`.
    pub fn random_bool(&self, p: f64) -> bool {
        self.rng.borrow_mut().bool_with(p)
    }
}

impl std::fmt::Debug for ProcCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcCtx").field("pid", &self.pid).finish()
    }
}

/// RAII guard for a tracing span opened with [`ProcCtx::span`]. Emits the
/// matching end event at the simulated time the guard drops (drops run
/// synchronously inside the owning task's poll, so the clock is the
/// task's current time).
#[must_use = "a span closes when this guard drops; bind it with `let _span = ...`"]
pub struct Span<'a> {
    ctx: &'a ProcCtx,
    name: &'static str,
    ended: bool,
}

impl Span<'_> {
    /// Closes the span now instead of at end of scope.
    pub fn end(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if self.ended {
            return;
        }
        self.ended = true;
        let mut st = self.ctx.st.borrow_mut();
        if st.tracing() {
            let now = st.now;
            st.emit(TraceEvent::SpanEnd {
                proc: self.ctx.pid,
                name: self.name,
                time: now,
            });
        }
        if st.faulting() {
            st.fault_span(self.ctx.pid, self.name, SpanPoint::End);
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.finish();
    }
}

impl std::fmt::Debug for Span<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Span")
            .field("name", &self.name)
            .field("pid", &self.ctx.pid)
            .finish()
    }
}

/// Future of one shared-memory transaction. Created by the access methods on
/// [`ProcCtx`]; resolves to the word the location held *before* the
/// operation (for reads, the value read).
pub struct MemOp<'a> {
    ctx: &'a ProcCtx,
    addr: Addr,
    kind: Option<MemOpKind>,
    result: Word,
}

impl Future for MemOp<'_> {
    type Output = Word;

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
        match self.kind.take() {
            Some(kind) => {
                let mut st = self.ctx.st.borrow_mut();
                let (old, _completion) = st.transact(self.ctx.pid, self.addr, kind);
                drop(st);
                self.result = old;
                // The executor re-polls us at the transaction's completion
                // time; the next poll returns the captured result.
                Poll::Pending
            }
            None => Poll::Ready(self.result),
        }
    }
}

/// Future returned by [`ProcCtx::work`].
pub struct WorkFuture<'a> {
    ctx: &'a ProcCtx,
    cycles: Option<u64>,
}

impl Future for WorkFuture<'_> {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
        match self.cycles.take() {
            Some(c) => {
                let mut st = self.ctx.st.borrow_mut();
                let wake = st.now + c;
                st.schedule_wake(wake, self.ctx.pid);
                Poll::Pending
            }
            None => Poll::Ready(()),
        }
    }
}

/// Future returned by [`ProcCtx::wait_change`].
pub struct WaitChange<'a> {
    ctx: &'a ProcCtx,
    addr: Addr,
    observed: Word,
    registered: bool,
}

impl Future for WaitChange<'_> {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
        if self.registered {
            Poll::Ready(())
        } else {
            self.registered = true;
            let mut st = self.ctx.st.borrow_mut();
            if st.mem[self.addr] != self.observed {
                // The word already changed between the caller's read and
                // this registration; wake immediately so the caller
                // re-checks rather than sleeping through the update.
                let now = st.now;
                st.schedule_wake(now, self.ctx.pid);
            } else {
                st.register_waiter(self.addr, self.ctx.pid);
            }
            Poll::Pending
        }
    }
}
