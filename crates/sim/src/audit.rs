//! Post-run invariant auditing of a priority-queue operation history.
//!
//! A workload driver records every operation into a [`History`] — opening
//! a record when the operation starts and completing it when the queue
//! call returns — and [`audit_history`] then checks the whole run:
//!
//! * **conservation** — every successful delete matches exactly one
//!   recorded insert of the same unique item with the same priority, no
//!   item is deleted twice, and nothing is lost except operations that
//!   were in flight on crash-stopped processors;
//! * **ordering** — no delete returns a priority while a strictly smaller
//!   item was demonstrably present for the delete's whole duration, and
//!   the sequential post-run drain comes out in non-decreasing priority
//!   order;
//! * **causality** — a delete never returns an item whose insert had not
//!   yet started when the delete finished;
//! * **quality** — every drain delete gets a *rank error*: the number of
//!   later drain deletes returning strictly smaller priorities, i.e. how
//!   many items still in the queue beat the one returned. A strict queue's
//!   drain is sorted, so its rank errors are exactly zero; a relaxed queue
//!   ([`AuditScope::relaxed`]) skips the sortedness check and is judged by
//!   the rank-error distribution instead ([`AuditReport::rank_error`]),
//!   optionally against a hard bound ([`AuditScope::rank_error_bound`]).
//!
//! The checks are interval-based, so they are sound under concurrency:
//! they only flag behaviour impossible for *any* linearizable bounded
//! priority queue, and under crash-stop they account for items a dead
//! processor may have half-inserted or silently removed.
//!
//! Structural validation of queue internals at quiescence (tree counters,
//! bin totals, heap shape) lives with the queue implementations —
//! `funnelpq_simqueues::queues::SimPq::validate` — since it needs their
//! memory layouts; this module is layout-agnostic.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use crate::machine::ProcId;
use crate::stats::Acc;

/// Which queue operation a record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// `insert(pri, item)`.
    Insert,
    /// `delete_min()`.
    DeleteMin,
}

/// Which phase of the run issued the operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// The concurrent measured workload.
    Main,
    /// The sequential post-quiescence drain.
    Drain,
}

/// One recorded queue operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpRecord {
    /// Processor that issued the operation.
    pub proc: ProcId,
    /// Operation kind.
    pub kind: OpKind,
    /// Phase of the run.
    pub phase: Phase,
    /// Priority: the argument of an insert, or the priority a delete
    /// returned (unspecified for incomplete or empty deletes).
    pub pri: u64,
    /// Item: the argument of an insert, or the item a delete returned
    /// (unspecified for incomplete or empty deletes).
    pub item: u64,
    /// Simulated time the operation started.
    pub start: u64,
    /// Simulated time it returned (unspecified while `completed` is
    /// false).
    pub end: u64,
    /// False for operations still in flight when the run ended — only
    /// legitimate on crash-stopped processors.
    pub completed: bool,
    /// True for a completed delete that found the queue empty.
    pub empty: bool,
    /// True when the operation was issued as part of a batched call
    /// (`insert_batch` / `delete_min_batch`); the audit attributes rank
    /// error separately for batched drain deletes
    /// ([`AuditReport::rank_error_batched`]).
    pub batched: bool,
}

/// Handle to an operation opened with [`History::begin_insert`] /
/// [`History::begin_delete`]; pass it back to the matching `complete_*`
/// call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpToken(usize);

/// Shared operation recorder. Clones share one buffer (the same
/// `Rc<RefCell>` handle pattern as `trace::TraceLog`), so the driver keeps
/// one handle per simulated processor plus one to audit at the end.
#[derive(Debug, Clone, Default)]
pub struct History {
    ops: Rc<RefCell<Vec<OpRecord>>>,
}

impl History {
    /// An empty history.
    pub fn new() -> Self {
        History::default()
    }

    /// Opens an insert record; complete it with [`History::complete`].
    pub fn begin_insert(&self, proc: ProcId, pri: u64, item: u64, now: u64) -> OpToken {
        self.begin(OpRecord {
            proc,
            kind: OpKind::Insert,
            phase: Phase::Main,
            pri,
            item,
            start: now,
            end: now,
            completed: false,
            empty: false,
            batched: false,
        })
    }

    /// Opens a delete record; complete it with
    /// [`History::complete_delete`].
    pub fn begin_delete(&self, proc: ProcId, now: u64) -> OpToken {
        self.begin(OpRecord {
            proc,
            kind: OpKind::DeleteMin,
            phase: Phase::Main,
            pri: 0,
            item: 0,
            start: now,
            end: now,
            completed: false,
            empty: false,
            batched: false,
        })
    }

    fn begin(&self, rec: OpRecord) -> OpToken {
        let mut ops = self.ops.borrow_mut();
        ops.push(rec);
        OpToken(ops.len() - 1)
    }

    /// Marks the operation complete at time `now` (inserts).
    pub fn complete(&self, token: OpToken, now: u64) {
        let mut ops = self.ops.borrow_mut();
        let rec = &mut ops[token.0];
        rec.end = now;
        rec.completed = true;
    }

    /// Marks a delete complete: `found` is the `(priority, item)` it
    /// returned, or `None` if the queue was empty.
    pub fn complete_delete(&self, token: OpToken, found: Option<(u64, u64)>, now: u64) {
        let mut ops = self.ops.borrow_mut();
        let rec = &mut ops[token.0];
        rec.end = now;
        rec.completed = true;
        match found {
            Some((pri, item)) => {
                rec.pri = pri;
                rec.item = item;
            }
            None => rec.empty = true,
        }
    }

    /// Reclassifies the operation into the post-run drain phase.
    pub fn mark_drain(&self, token: OpToken) {
        self.ops.borrow_mut()[token.0].phase = Phase::Drain;
    }

    /// Marks the operation as issued by a batched call (`insert_batch` /
    /// `delete_min_batch`). Drivers record one `OpRecord` per *item* of a
    /// batch — all the per-item invariants apply unchanged — and this flag
    /// lets the audit attribute drain rank error to the batched deletes
    /// ([`AuditReport::rank_error_batched`]).
    pub fn mark_batched(&self, token: OpToken) {
        self.ops.borrow_mut()[token.0].batched = true;
    }

    /// Number of records so far.
    pub fn len(&self) -> usize {
        self.ops.borrow().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.borrow().is_empty()
    }

    /// Copies the records out for auditing or dumping.
    pub fn snapshot(&self) -> Vec<OpRecord> {
        self.ops.borrow().clone()
    }
}

/// What the run looked like, for interpreting the history.
#[derive(Debug, Clone, Default)]
pub struct AuditScope {
    /// The queue's priority range `0..num_priorities`.
    pub num_priorities: u64,
    /// Processors crash-stopped by the fault plan. In-flight operations
    /// are tolerated on exactly these processors, and each one widens the
    /// conservation allowance by one item.
    pub crashed: Vec<ProcId>,
    /// Items counted still physically present in the structure after the
    /// drain (e.g. stranded behind counter damage from a crashed
    /// operation). Stranded items are unreachable, not lost, so each one
    /// widens the conservation allowance.
    pub stranded: u64,
    /// True when the run ended without quiescing (a fault wedged the
    /// machine). Live processors then legitimately hold in-flight
    /// operations and the queue still holds items, so the
    /// in-flight-on-live-processor and conservation checks are skipped;
    /// the per-delete matching checks still apply.
    pub wedged: bool,
    /// True when the queue under test claims linearizability. Only then
    /// does the interval-ordering check apply: quiescently consistent
    /// queues (the funnel- and tree-based algorithms, the skip list, and
    /// the Hunt et al. heap, whose sift-down can transiently park a large
    /// value at the root above a smaller settled item) legitimately emit
    /// histories where a delete overlapped-by-nothing returns a
    /// non-minimal priority. The drain-sortedness check below applies to
    /// every queue regardless — it is exactly the paper's
    /// quiescent-consistency guarantee.
    pub linearizable: bool,
    /// True when the queue under test only promises *relaxed* ordering
    /// (e.g. a MultiQueue, whose `delete_min` returns a near-minimal
    /// item). The drain-sortedness check is skipped; quality is judged by
    /// the per-delete rank error instead ([`AuditReport::rank_error`]).
    pub relaxed: bool,
    /// Largest tolerated per-delete drain rank error. `None` records the
    /// distribution without enforcing anything; strict queues need no
    /// bound because sortedness already pins their rank errors to zero.
    pub rank_error_bound: Option<u64>,
}

/// Aggregate counts from a successful audit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Completed inserts.
    pub inserts: u64,
    /// Completed deletes that returned an item.
    pub deletes: u64,
    /// Completed deletes that found the queue empty.
    pub empty_deletes: u64,
    /// Operations still in flight on crashed processors.
    pub in_flight: u64,
    /// Completed inserts never matched by a delete (all attributable to
    /// crash-lost operations, or the audit would have failed).
    pub leaked: u64,
    /// Per-delete rank error over the sequential drain: for each drain
    /// delete, the number of later drain deletes with strictly smaller
    /// priority. Exactly zero for every sample iff the drain was sorted,
    /// so strict queues contribute an all-zero distribution.
    pub rank_error: Acc,
    /// The subset of [`rank_error`](Self::rank_error) samples whose delete
    /// was issued by a batched call ([`History::mark_batched`]): a batched
    /// drain serves the tail of each grab without re-probing, so comparing
    /// this distribution against the full one shows what batching costs in
    /// ordering quality. Empty when the drain used single deletes only.
    pub rank_error_batched: Acc,
}

/// An invariant violation found by [`audit_history`]. Every variant names
/// the processor and simulated time involved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditError {
    /// An operation never completed on a processor that did not crash.
    InFlightOnLiveProc {
        /// The processor.
        proc: ProcId,
        /// When the operation started.
        start: u64,
    },
    /// A priority outside `0..num_priorities` appeared.
    PriorityOutOfRange {
        /// The processor.
        proc: ProcId,
        /// Operation end time.
        time: u64,
        /// The offending priority.
        pri: u64,
        /// The queue's priority range.
        num_priorities: u64,
    },
    /// The driver inserted the same item twice (a harness bug, not a
    /// queue bug — items must be unique for the audit to match them).
    DuplicateInsert {
        /// The processor of the second insert.
        proc: ProcId,
        /// Its start time.
        time: u64,
        /// The duplicated item.
        item: u64,
    },
    /// A delete returned an item no insert ever put in.
    GhostItem {
        /// The deleting processor.
        proc: ProcId,
        /// Delete end time.
        time: u64,
        /// The returned item.
        item: u64,
        /// The returned priority.
        pri: u64,
    },
    /// A delete returned an item under a different priority than it was
    /// inserted with.
    PriorityMismatch {
        /// The deleting processor.
        proc: ProcId,
        /// Delete end time.
        time: u64,
        /// The item.
        item: u64,
        /// Priority the insert used.
        inserted: u64,
        /// Priority the delete returned.
        returned: u64,
    },
    /// Two deletes returned the same item.
    DoubleDelete {
        /// The second deleting processor.
        proc: ProcId,
        /// Second delete's end time.
        time: u64,
        /// The item.
        item: u64,
    },
    /// A delete finished before the matching insert started.
    Causality {
        /// The deleting processor.
        proc: ProcId,
        /// Delete end time.
        time: u64,
        /// The item.
        item: u64,
        /// When the insert started.
        insert_start: u64,
    },
    /// A delete returned priority `returned` although item `witness` with
    /// strictly smaller priority `present` was in the queue for the
    /// delete's entire duration.
    OrderingViolation {
        /// The deleting processor.
        proc: ProcId,
        /// Delete end time.
        time: u64,
        /// Priority the delete returned.
        returned: u64,
        /// The smaller priority that was available.
        present: u64,
        /// The witness item holding that priority.
        witness: u64,
    },
    /// The sequential drain returned priorities out of order.
    DrainOrdering {
        /// The draining processor.
        proc: ProcId,
        /// Delete end time.
        time: u64,
        /// Priority returned before `pri`.
        prev: u64,
        /// The smaller priority returned later.
        pri: u64,
    },
    /// A drain delete's rank error exceeded the bound the scope asked for
    /// ([`AuditScope::rank_error_bound`]).
    RankErrorExceeded {
        /// The draining processor.
        proc: ProcId,
        /// Delete end time.
        time: u64,
        /// Priority the delete returned.
        pri: u64,
        /// Items with strictly smaller priority still in the queue.
        rank: u64,
        /// The tolerated maximum.
        bound: u64,
    },
    /// More completed inserts were never deleted than crash-lost
    /// operations can explain.
    ConservationViolation {
        /// Items leaked.
        leaked: u64,
        /// Leaks explainable by crash-lost operations plus items counted
        /// still present in the structure ([`AuditScope::stranded`]).
        allowance: u64,
        /// A sample of leaked items `(pri, item)`.
        sample: Vec<(u64, u64)>,
    },
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::InFlightOnLiveProc { proc, start } => write!(
                f,
                "audit: proc {proc}: operation started at {start} never completed, \
                 but the processor did not crash"
            ),
            AuditError::PriorityOutOfRange {
                proc,
                time,
                pri,
                num_priorities,
            } => write!(
                f,
                "audit: proc {proc} at {time}: priority {pri} outside 0..{num_priorities}"
            ),
            AuditError::DuplicateInsert { proc, time, item } => write!(
                f,
                "audit: proc {proc} at {time}: item {item} inserted more than once \
                 (harness bug: items must be unique)"
            ),
            AuditError::GhostItem {
                proc,
                time,
                item,
                pri,
            } => write!(
                f,
                "audit: proc {proc} at {time}: delete returned item {item} (pri {pri}) \
                 that no insert produced"
            ),
            AuditError::PriorityMismatch {
                proc,
                time,
                item,
                inserted,
                returned,
            } => write!(
                f,
                "audit: proc {proc} at {time}: item {item} inserted at pri {inserted} \
                 but deleted at pri {returned}"
            ),
            AuditError::DoubleDelete { proc, time, item } => {
                write!(f, "audit: proc {proc} at {time}: item {item} deleted twice")
            }
            AuditError::Causality {
                proc,
                time,
                item,
                insert_start,
            } => write!(
                f,
                "audit: proc {proc} at {time}: delete of item {item} finished before \
                 its insert started (at {insert_start})"
            ),
            AuditError::OrderingViolation {
                proc,
                time,
                returned,
                present,
                witness,
            } => write!(
                f,
                "audit: proc {proc} at {time}: delete returned pri {returned} while \
                 item {witness} at smaller pri {present} was present throughout"
            ),
            AuditError::DrainOrdering {
                proc,
                time,
                prev,
                pri,
            } => write!(
                f,
                "audit: proc {proc} at {time}: drain returned pri {pri} after pri {prev}"
            ),
            AuditError::RankErrorExceeded {
                proc,
                time,
                pri,
                rank,
                bound,
            } => write!(
                f,
                "audit: proc {proc} at {time}: drain returned pri {pri} while {rank} \
                 smaller items remained (bound {bound})"
            ),
            AuditError::ConservationViolation {
                leaked,
                allowance,
                sample,
            } => write!(
                f,
                "audit: {leaked} inserted items never deleted, but crash-lost \
                 operations explain at most {allowance}; e.g. {sample:?}"
            ),
        }
    }
}

impl std::error::Error for AuditError {}

/// Checks a recorded history against the bounded-priority-queue
/// invariants (see the module docs for the exact checks). Returns the
/// aggregate counts, or the first violation found.
pub fn audit_history(ops: &[OpRecord], scope: &AuditScope) -> Result<AuditReport, AuditError> {
    let mut report = AuditReport::default();

    // In-flight operations are legitimate only on crashed processors —
    // unless the run wedged, in which case every live processor may have
    // been cut off mid-operation.
    for op in ops {
        if !op.completed && !scope.wedged && !scope.crashed.contains(&op.proc) {
            return Err(AuditError::InFlightOnLiveProc {
                proc: op.proc,
                start: op.start,
            });
        }
        if !op.completed {
            report.in_flight += 1;
        }
    }

    // Index inserts by item (items are unique by construction). In-flight
    // inserts participate: a dead processor's half-inserted item can
    // legitimately be observed by a later delete.
    let mut inserts: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    for (i, op) in ops.iter().enumerate() {
        if op.kind != OpKind::Insert {
            continue;
        }
        if op.pri >= scope.num_priorities {
            return Err(AuditError::PriorityOutOfRange {
                proc: op.proc,
                time: op.end,
                pri: op.pri,
                num_priorities: scope.num_priorities,
            });
        }
        if inserts.insert(op.item, i).is_some() {
            return Err(AuditError::DuplicateInsert {
                proc: op.proc,
                time: op.start,
                item: op.item,
            });
        }
        if op.completed {
            report.inserts += 1;
        }
    }

    // Match every successful delete to its insert.
    let mut deleted_by: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    for (i, op) in ops.iter().enumerate() {
        if op.kind != OpKind::DeleteMin || !op.completed {
            continue;
        }
        if op.empty {
            report.empty_deletes += 1;
            continue;
        }
        report.deletes += 1;
        if op.pri >= scope.num_priorities {
            return Err(AuditError::PriorityOutOfRange {
                proc: op.proc,
                time: op.end,
                pri: op.pri,
                num_priorities: scope.num_priorities,
            });
        }
        let Some(&ins) = inserts.get(&op.item) else {
            return Err(AuditError::GhostItem {
                proc: op.proc,
                time: op.end,
                item: op.item,
                pri: op.pri,
            });
        };
        let insert = &ops[ins];
        if insert.pri != op.pri {
            return Err(AuditError::PriorityMismatch {
                proc: op.proc,
                time: op.end,
                item: op.item,
                inserted: insert.pri,
                returned: op.pri,
            });
        }
        if op.end < insert.start {
            return Err(AuditError::Causality {
                proc: op.proc,
                time: op.end,
                item: op.item,
                insert_start: insert.start,
            });
        }
        if deleted_by.insert(op.item, i).is_some() {
            return Err(AuditError::DoubleDelete {
                proc: op.proc,
                time: op.end,
                item: op.item,
            });
        }
    }

    // Ordering: delete D returning pri p is wrong if some item x with
    // smaller pri was *demonstrably* in the queue for D's whole duration:
    // x's insert completed strictly before D started, and x's removal is
    // provably after D ended — removed by a recorded delete that started
    // after D ended, or never removed at all. Only linearizable queues
    // promise this (see [`AuditScope::linearizable`]), and the witness
    // argument is only conclusive on crash-free histories: any crash-lost
    // operation can silently strand a completed item (a half-inserted
    // element absorbs the counter reservation meant for it), making it
    // unavailable without a record. Everything else keeps the
    // drain-sortedness check below.
    if scope.linearizable && report.in_flight == 0 {
        for op in ops {
            if op.kind != OpKind::DeleteMin || !op.completed || op.empty {
                continue;
            }
            for (&item, &ins) in &inserts {
                let insert = &ops[ins];
                if insert.pri >= op.pri || !insert.completed || insert.end >= op.start {
                    continue;
                }
                let provably_present = match deleted_by.get(&item) {
                    Some(&d) => ops[d].start > op.end,
                    None => true,
                };
                if provably_present {
                    return Err(AuditError::OrderingViolation {
                        proc: op.proc,
                        time: op.end,
                        returned: op.pri,
                        present: insert.pri,
                        witness: item,
                    });
                }
            }
        }
    }

    // The post-run drain is sequential, so a strict queue must return it
    // in non-decreasing priority order. Relaxed queues are exempt — for
    // them (and as a zero-check for everyone else) the drain gets a
    // rank-error distribution below instead.
    let drain: Vec<&OpRecord> = ops
        .iter()
        .filter(|op| {
            op.phase == Phase::Drain && op.kind == OpKind::DeleteMin && op.completed && !op.empty
        })
        .collect();
    if !scope.relaxed {
        for w in drain.windows(2) {
            if w[1].pri < w[0].pri {
                return Err(AuditError::DrainOrdering {
                    proc: w[1].proc,
                    time: w[1].end,
                    prev: w[0].pri,
                    pri: w[1].pri,
                });
            }
        }
    }

    // Rank error of drain delete i: later drain deletes with strictly
    // smaller priority — the items that were still queued and should have
    // come out first. Counted back-to-front through a Fenwick tree over
    // the coordinate-compressed priorities, so large priority ranges cost
    // nothing extra.
    let mut pris: Vec<u64> = drain.iter().map(|op| op.pri).collect();
    pris.sort_unstable();
    pris.dedup();
    let mut tree = vec![0u64; pris.len() + 1];
    for op in drain.iter().rev() {
        let idx = pris.binary_search(&op.pri).expect("own priority present");
        let mut rank = 0u64;
        let mut i = idx; // 1-based prefix sum over [0, idx): strictly smaller
        while i > 0 {
            rank += tree[i];
            i -= i & i.wrapping_neg();
        }
        report.rank_error.record(rank);
        if op.batched {
            report.rank_error_batched.record(rank);
        }
        if let Some(bound) = scope.rank_error_bound {
            if rank > bound {
                return Err(AuditError::RankErrorExceeded {
                    proc: op.proc,
                    time: op.end,
                    pri: op.pri,
                    rank,
                    bound,
                });
            }
        }
        let mut i = idx + 1;
        while i < tree.len() {
            tree[i] += 1;
            i += i & i.wrapping_neg();
        }
    }

    // Conservation: completed inserts never deleted must be explained by
    // crash-lost operations. A crash-lost *delete* may have removed an
    // item without recording it; a crash-lost *insert* may have placed an
    // item that absorbed someone else's delete, stranding a completed one.
    // Either way each in-flight operation explains at most one leak.
    let mut leaked_sample = Vec::new();
    for (&item, &ins) in &inserts {
        let insert = &ops[ins];
        if insert.completed && !deleted_by.contains_key(&item) {
            report.leaked += 1;
            if leaked_sample.len() < 4 {
                leaked_sample.push((insert.pri, item));
            }
        }
    }
    // Conservation: every completed insert must eventually be deleted,
    // except items absorbed by crash-lost operations or counted still
    // physically present in the structure. A wedged run never drained, so
    // the check is meaningless there.
    let allowance = report.in_flight + scope.stranded;
    if !scope.wedged && report.leaked > allowance {
        leaked_sample.sort_unstable();
        return Err(AuditError::ConservationViolation {
            leaked: report.leaked,
            allowance,
            sample: leaked_sample,
        });
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(h: &History, proc: ProcId, pri: u64, item: u64, t0: u64, t1: u64) {
        let tok = h.begin_insert(proc, pri, item, t0);
        h.complete(tok, t1);
    }

    fn del(h: &History, proc: ProcId, found: Option<(u64, u64)>, t0: u64, t1: u64) -> OpToken {
        let tok = h.begin_delete(proc, t0);
        h.complete_delete(tok, found, t1);
        tok
    }

    fn scope(n: u64) -> AuditScope {
        AuditScope {
            num_priorities: n,
            linearizable: true,
            ..AuditScope::default()
        }
    }

    #[test]
    fn clean_history_passes() {
        let h = History::new();
        rec(&h, 0, 3, 100, 0, 10);
        rec(&h, 1, 1, 101, 0, 12);
        del(&h, 0, Some((1, 101)), 20, 30);
        del(&h, 1, Some((3, 100)), 32, 40);
        del(&h, 0, None, 50, 55);
        let r = audit_history(&h.snapshot(), &scope(8)).unwrap();
        assert_eq!((r.inserts, r.deletes, r.empty_deletes), (2, 2, 1));
        assert_eq!(r.leaked, 0);
    }

    #[test]
    fn detects_double_delete_and_ghost() {
        let h = History::new();
        rec(&h, 0, 2, 7, 0, 10);
        del(&h, 1, Some((2, 7)), 11, 20);
        del(&h, 2, Some((2, 7)), 21, 30);
        assert!(matches!(
            audit_history(&h.snapshot(), &scope(8)).unwrap_err(),
            AuditError::DoubleDelete { item: 7, .. }
        ));

        let h = History::new();
        del(&h, 1, Some((2, 99)), 11, 20);
        assert!(matches!(
            audit_history(&h.snapshot(), &scope(8)).unwrap_err(),
            AuditError::GhostItem { item: 99, .. }
        ));
    }

    #[test]
    fn detects_ordering_violation() {
        let h = History::new();
        rec(&h, 0, 1, 100, 0, 10); // small item, in since t=10
        rec(&h, 1, 5, 101, 0, 10);
        // Delete at [20, 30] returns pri 5 while item 100 (pri 1) sits
        // untouched until a delete starting at 40: violation.
        del(&h, 2, Some((5, 101)), 20, 30);
        del(&h, 2, Some((1, 100)), 40, 50);
        assert!(matches!(
            audit_history(&h.snapshot(), &scope(8)).unwrap_err(),
            AuditError::OrderingViolation {
                returned: 5,
                present: 1,
                ..
            }
        ));

        // Same shape but the small item's delete overlaps: legal.
        let h = History::new();
        rec(&h, 0, 1, 100, 0, 10);
        rec(&h, 1, 5, 101, 0, 10);
        del(&h, 2, Some((5, 101)), 20, 30);
        del(&h, 3, Some((1, 100)), 25, 50);
        assert!(audit_history(&h.snapshot(), &scope(8)).is_ok());
    }

    #[test]
    fn ordering_check_only_applies_to_linearizable_queues() {
        // The violating shape from `detects_ordering_violation`, but the
        // queue under test is only quiescently consistent: legal.
        let h = History::new();
        rec(&h, 0, 1, 100, 0, 10);
        rec(&h, 1, 5, 101, 0, 10);
        del(&h, 2, Some((5, 101)), 20, 30);
        del(&h, 2, Some((1, 100)), 40, 50);
        let sc = AuditScope {
            num_priorities: 8,
            ..AuditScope::default()
        };
        assert!(audit_history(&h.snapshot(), &sc).is_ok());
    }

    #[test]
    fn conservation_tolerates_crash_lost_ops_only() {
        // A completed insert never deleted, with no crashes: violation.
        let h = History::new();
        rec(&h, 0, 2, 7, 0, 10);
        assert!(matches!(
            audit_history(&h.snapshot(), &scope(8)).unwrap_err(),
            AuditError::ConservationViolation { leaked: 1, .. }
        ));

        // Same, but proc 1 crashed mid-delete: that delete may have taken
        // the item silently, so the leak is explained.
        let h = History::new();
        rec(&h, 0, 2, 7, 0, 10);
        h.begin_delete(1, 12); // never completed
        let sc = AuditScope {
            num_priorities: 8,
            crashed: vec![1],
            ..AuditScope::default()
        };
        let r = audit_history(&h.snapshot(), &sc).unwrap();
        assert_eq!((r.leaked, r.in_flight), (1, 1));
    }

    #[test]
    fn in_flight_on_live_proc_is_a_harness_error() {
        let h = History::new();
        h.begin_insert(0, 1, 5, 3);
        assert!(matches!(
            audit_history(&h.snapshot(), &scope(8)).unwrap_err(),
            AuditError::InFlightOnLiveProc { proc: 0, start: 3 }
        ));
    }

    #[test]
    fn crashed_procs_half_insert_can_absorb_a_delete() {
        // Proc 0 crashes mid-insert of item 7; proc 1's delete observes it
        // anyway (LIFO bin). Legal: the delete matches the in-flight
        // insert, and the completed item 8 it displaced counts against the
        // crash allowance.
        let h = History::new();
        h.begin_insert(0, 2, 7, 0); // never completed
        rec(&h, 1, 2, 8, 0, 10);
        del(&h, 1, Some((2, 7)), 12, 20);
        let sc = AuditScope {
            num_priorities: 8,
            crashed: vec![0],
            ..AuditScope::default()
        };
        let r = audit_history(&h.snapshot(), &sc).unwrap();
        assert_eq!((r.leaked, r.in_flight), (1, 1));
    }

    #[test]
    fn wedged_scope_tolerates_cut_off_live_procs() {
        // A stall wedged the machine: proc 0's insert completed but was
        // never drained, proc 1's delete never finished. Strict audit
        // rejects both; the wedged scope accepts them while still
        // matching the deletes that did complete.
        let h = History::new();
        rec(&h, 0, 2, 7, 0, 10);
        h.begin_delete(1, 12); // cut off by the wedge
        assert!(matches!(
            audit_history(&h.snapshot(), &scope(8)).unwrap_err(),
            AuditError::InFlightOnLiveProc { proc: 1, .. }
        ));
        let sc = AuditScope {
            num_priorities: 8,
            wedged: true,
            ..AuditScope::default()
        };
        let r = audit_history(&h.snapshot(), &sc).unwrap();
        assert_eq!((r.leaked, r.in_flight), (1, 1));
    }

    #[test]
    fn stranded_items_widen_the_conservation_allowance() {
        // Two completed inserts never drained, no crashes — but the
        // harness counted both still physically present in the structure,
        // so nothing was actually lost.
        let h = History::new();
        rec(&h, 0, 2, 7, 0, 10);
        rec(&h, 0, 3, 8, 10, 20);
        assert!(matches!(
            audit_history(&h.snapshot(), &scope(8)).unwrap_err(),
            AuditError::ConservationViolation { leaked: 2, .. }
        ));
        let sc = AuditScope {
            num_priorities: 8,
            stranded: 2,
            ..AuditScope::default()
        };
        let r = audit_history(&h.snapshot(), &sc).unwrap();
        assert_eq!(r.leaked, 2);
    }

    #[test]
    fn strict_sorted_drain_has_zero_rank_error() {
        let h = History::new();
        rec(&h, 0, 1, 100, 0, 10);
        rec(&h, 0, 4, 101, 0, 12);
        rec(&h, 0, 4, 102, 0, 14);
        for (i, (p, x)) in [(1u64, 100u64), (4, 101), (4, 102)].iter().enumerate() {
            let t = del(
                &h,
                0,
                Some((*p, *x)),
                20 + 10 * i as u64,
                25 + 10 * i as u64,
            );
            h.mark_drain(t);
        }
        let r = audit_history(&h.snapshot(), &scope(8)).unwrap();
        assert_eq!(r.rank_error.count(), 3);
        assert_eq!(r.rank_error.max(), 0);
        assert_eq!(r.rank_error.sum(), 0);
    }

    #[test]
    fn relaxed_drain_gets_exact_rank_errors_instead_of_sortedness() {
        // Drain priorities 5, 2, 2, 7: the 5 came out while two smaller
        // items (the 2s) were still queued — rank 2; equal priorities do
        // not count against each other, so everything else is rank 0.
        let drain_pris = [(5u64, 100u64), (2, 101), (2, 102), (7, 103)];
        let build = || {
            let h = History::new();
            for (p, x) in drain_pris {
                rec(&h, 0, p, x, 0, 10);
            }
            for (i, (p, x)) in drain_pris.iter().enumerate() {
                let t = del(
                    &h,
                    0,
                    Some((*p, *x)),
                    20 + 10 * i as u64,
                    25 + 10 * i as u64,
                );
                h.mark_drain(t);
            }
            h.snapshot()
        };

        // Strict scope (quiescently consistent, so the interval-ordering
        // check stays out of the way): rejected as an unsorted drain.
        let strict = AuditScope {
            num_priorities: 8,
            ..AuditScope::default()
        };
        assert!(matches!(
            audit_history(&build(), &strict).unwrap_err(),
            AuditError::DrainOrdering {
                prev: 5,
                pri: 2,
                ..
            }
        ));

        // Relaxed scope: accepted, with the exact distribution.
        let sc = AuditScope {
            num_priorities: 8,
            relaxed: true,
            ..AuditScope::default()
        };
        let r = audit_history(&build(), &sc).unwrap();
        assert_eq!(r.rank_error.count(), 4);
        assert_eq!(r.rank_error.max(), 2);
        assert_eq!(r.rank_error.sum(), 2);

        // A bound below the max trips, naming the offending delete.
        let sc = AuditScope {
            num_priorities: 8,
            relaxed: true,
            rank_error_bound: Some(1),
            ..AuditScope::default()
        };
        assert!(matches!(
            audit_history(&build(), &sc).unwrap_err(),
            AuditError::RankErrorExceeded {
                pri: 5,
                rank: 2,
                bound: 1,
                ..
            }
        ));

        // A bound at the max passes.
        let sc = AuditScope {
            num_priorities: 8,
            relaxed: true,
            rank_error_bound: Some(2),
            ..AuditScope::default()
        };
        assert!(audit_history(&build(), &sc).is_ok());
    }

    #[test]
    fn batched_deletes_get_their_own_rank_error_slice() {
        // Drain 5, 2, 2, 7 where only the pri-5 delete was batched: the
        // full distribution sees {2, 0, 0, 0}; the batched slice sees just
        // the 2.
        let h = History::new();
        let drain_pris = [(5u64, 100u64), (2, 101), (2, 102), (7, 103)];
        for (p, x) in drain_pris {
            rec(&h, 0, p, x, 0, 10);
        }
        for (i, (p, x)) in drain_pris.iter().enumerate() {
            let t = del(
                &h,
                0,
                Some((*p, *x)),
                20 + 10 * i as u64,
                25 + 10 * i as u64,
            );
            h.mark_drain(t);
            if i == 0 {
                h.mark_batched(t);
            }
        }
        let sc = AuditScope {
            num_priorities: 8,
            relaxed: true,
            ..AuditScope::default()
        };
        let r = audit_history(&h.snapshot(), &sc).unwrap();
        assert_eq!(r.rank_error.count(), 4);
        assert_eq!(r.rank_error.sum(), 2);
        assert_eq!(r.rank_error_batched.count(), 1);
        assert_eq!(r.rank_error_batched.max(), 2);
        assert_eq!(r.rank_error_batched.sum(), 2);
    }

    #[test]
    fn drain_must_be_sorted() {
        let h = History::new();
        rec(&h, 0, 5, 100, 0, 10);
        // Overlaps the first drain delete, so only the drain-order check
        // (not the interval ordering check) can flag this history.
        rec(&h, 0, 2, 101, 0, 22);
        let t = del(&h, 0, Some((5, 100)), 20, 25);
        h.mark_drain(t);
        let t = del(&h, 0, Some((2, 101)), 26, 30);
        h.mark_drain(t);
        assert!(matches!(
            audit_history(&h.snapshot(), &scope(8)).unwrap_err(),
            AuditError::DrainOrdering {
                prev: 5,
                pri: 2,
                ..
            }
        ));
    }
}
