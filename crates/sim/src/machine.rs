//! The simulated machine: memory, event queue, and task executor.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Waker};

use crate::config::MachineConfig;
use crate::ctx::ProcCtx;
use crate::stats::Stats;

/// A word of simulated shared memory.
pub type Word = u64;
/// An address (word index) in simulated shared memory.
pub type Addr = usize;
/// Identifier of a simulated processor (also its task id).
pub type ProcId = usize;

pub(crate) struct SimState {
    pub(crate) cfg: MachineConfig,
    pub(crate) now: u64,
    seq: u64,
    /// Min-heap of (wake time, tie-break seq, task).
    ready: BinaryHeap<Reverse<(u64, u64, ProcId)>>,
    /// Flat shared memory.
    pub(crate) mem: Vec<Word>,
    /// Per-line time at which the line becomes free.
    line_free: Vec<u64>,
    /// Tasks suspended until the given address is mutated.
    waiters: BTreeMap<Addr, Vec<ProcId>>,
    pub(crate) stats: Stats,
    /// Spawned tasks that have not yet run to completion.
    pub(crate) live_tasks: usize,
}

impl SimState {
    fn schedule(&mut self, time: u64, task: ProcId) {
        self.seq += 1;
        self.ready.push(Reverse((time, self.seq, task)));
    }

    /// Performs one shared-memory transaction, applying its mutation in
    /// line-service order (which equals arrival order under a constant
    /// network latency). Returns `(previous value, completion time)`.
    pub(crate) fn transact(&mut self, task: ProcId, addr: Addr, op: MemOpKind) -> (Word, u64) {
        let shift = self.cfg.line_shift();
        let line = addr >> shift;
        let arrival = self.now + self.cfg.net_latency;
        let free = self.line_free[line].max(arrival);
        let effect = free + self.cfg.service;
        self.line_free[line] = effect;
        let completion = effect + self.cfg.net_latency;

        self.stats.mem_accesses += 1;
        self.stats.queue_delay_cycles += free - arrival;
        let line_entry = self.stats.per_line.entry(line).or_insert((0, 0));
        line_entry.0 += 1;
        line_entry.1 += free - arrival;

        let old = self.mem[addr];
        let mutated = match op {
            MemOpKind::Read => false,
            MemOpKind::Write(v) => {
                self.mem[addr] = v;
                v != old
            }
            MemOpKind::Swap(v) => {
                self.mem[addr] = v;
                v != old
            }
            MemOpKind::Cas { expected, new } => {
                if old == expected {
                    self.mem[addr] = new;
                    new != old
                } else {
                    false
                }
            }
            MemOpKind::Faa(delta) => {
                self.mem[addr] = old.wrapping_add_signed(delta);
                delta != 0
            }
        };
        if mutated {
            if let Some(ws) = self.waiters.remove(&addr) {
                // Invalidation: every spinner re-fetches after the write
                // lands, paying its own transaction when it resumes.
                let wake = effect + self.cfg.net_latency;
                for w in ws {
                    self.schedule(wake, w);
                }
            }
        }
        self.schedule(completion, task);
        (old, completion)
    }

    pub(crate) fn register_waiter(&mut self, addr: Addr, task: ProcId) {
        self.waiters.entry(addr).or_default().push(task);
    }

    pub(crate) fn schedule_wake(&mut self, time: u64, task: ProcId) {
        self.schedule(time, task);
    }
}

/// The memory operations a simulated processor can issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MemOpKind {
    Read,
    Write(Word),
    Swap(Word),
    Cas { expected: Word, new: Word },
    Faa(i64),
}

type TaskFuture = Pin<Box<dyn Future<Output = ()>>>;

/// Why [`Machine::run`] stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every spawned task ran to completion.
    Quiescent,
    /// The event queue drained while tasks were still alive: they are all
    /// blocked waiting for memory writes that will never come.
    Deadlock {
        /// Ids of the blocked tasks.
        blocked: Vec<ProcId>,
    },
    /// The cycle limit passed to [`Machine::run_for`] was reached.
    CycleLimit,
}

impl RunOutcome {
    /// True when the run completed all tasks.
    pub fn is_quiescent(&self) -> bool {
        matches!(self, RunOutcome::Quiescent)
    }
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunOutcome::Quiescent => write!(f, "quiescent"),
            RunOutcome::Deadlock { blocked } => {
                write!(f, "deadlock ({} tasks blocked)", blocked.len())
            }
            RunOutcome::CycleLimit => write!(f, "cycle limit reached"),
        }
    }
}

/// A simulated ccNUMA multiprocessor.
///
/// Allocate shared memory with [`Machine::alloc`], spawn one task per
/// simulated processor with [`Machine::spawn`], then [`Machine::run`] the
/// event loop to quiescence. The run is fully deterministic for a given
/// configuration, seed and spawn order.
///
/// # Examples
///
/// ```
/// use funnelpq_sim::{Machine, MachineConfig};
///
/// let mut m = Machine::new(MachineConfig::test_tiny(), 42);
/// let counter = m.alloc(1);
/// for _ in 0..4 {
///     let ctx = m.ctx();
///     m.spawn(async move {
///         for _ in 0..10 {
///             ctx.faa(counter, 1).await;
///         }
///     });
/// }
/// let outcome = m.run();
/// assert!(outcome.is_quiescent());
/// assert_eq!(m.peek(counter), 40);
/// ```
pub struct Machine {
    st: Rc<RefCell<SimState>>,
    tasks: Vec<Option<TaskFuture>>,
    next_pid: ProcId,
    pending_ctxs: usize,
    seed: u64,
    /// Labelled address ranges `(start, end, name)` for hot-spot reports.
    labels: Vec<(Addr, Addr, String)>,
}

impl Machine {
    /// Creates a machine with the given configuration and RNG seed.
    pub fn new(cfg: MachineConfig, seed: u64) -> Self {
        assert!(
            cfg.line_words.is_power_of_two(),
            "line_words must be a power of two"
        );
        assert!(cfg.net_latency > 0, "net_latency must be positive");
        assert!(cfg.service > 0, "service must be positive");
        let st = SimState {
            cfg,
            now: 0,
            seq: 0,
            ready: BinaryHeap::new(),
            mem: Vec::new(),
            line_free: Vec::new(),
            waiters: BTreeMap::new(),
            stats: Stats::new(),
            live_tasks: 0,
        };
        Machine {
            st: Rc::new(RefCell::new(st)),
            tasks: Vec::new(),
            next_pid: 0,
            pending_ctxs: 0,
            seed,
            labels: Vec::new(),
        }
    }

    /// Allocates `words` words of zeroed shared memory, rounded up so the
    /// allocation starts on a fresh cache line (avoids accidental false
    /// sharing between independently allocated objects).
    pub fn alloc(&mut self, words: usize) -> Addr {
        let mut st = self.st.borrow_mut();
        let line_words = st.cfg.line_words;
        let start = st.mem.len().next_multiple_of(line_words);
        let end = start + words.max(1);
        st.mem.resize(end, 0);
        let lines = end.div_ceil(line_words);
        st.line_free.resize(lines, 0);
        start
    }

    /// Allocates `words` words, each on its own cache line; returns the
    /// address of word `i` as `base + i * line_words`.
    pub fn alloc_padded(&mut self, words: usize) -> Addr {
        let line_words = self.st.borrow().cfg.line_words;
        self.alloc(words.max(1) * line_words)
    }

    /// Number of words per cache line in this machine's configuration.
    pub fn line_words(&self) -> usize {
        self.st.borrow().cfg.line_words
    }

    /// Creates the context for the *next* processor to be spawned.
    ///
    /// Call `ctx()` then `spawn()` in pairs; the context's processor id is
    /// fixed at creation.
    pub fn ctx(&mut self) -> ProcCtx {
        let pid = self.next_pid + self.pending_ctxs;
        self.pending_ctxs += 1;
        ProcCtx::new(Rc::clone(&self.st), pid, self.seed)
    }

    /// Spawns a task for the processor whose context was most recently
    /// created with [`Machine::ctx`].
    ///
    /// # Panics
    ///
    /// Panics if called without a prior matching `ctx()` call.
    pub fn spawn<F>(&mut self, fut: F) -> ProcId
    where
        F: Future<Output = ()> + 'static,
    {
        assert!(
            self.pending_ctxs > 0,
            "spawn() must be preceded by a ctx() call for the new processor"
        );
        self.pending_ctxs -= 1;
        let pid = self.next_pid;
        self.next_pid += 1;
        debug_assert_eq!(pid, self.tasks.len());
        self.tasks.push(Some(Box::pin(fut)));
        let mut st = self.st.borrow_mut();
        st.live_tasks += 1;
        st.schedule_wake(0, pid);
        pid
    }

    /// Runs the event loop until every task completes or no progress is
    /// possible.
    pub fn run(&mut self) -> RunOutcome {
        self.run_for(u64::MAX)
    }

    /// Runs the event loop, stopping once the clock passes `max_cycles`.
    pub fn run_for(&mut self, max_cycles: u64) -> RunOutcome {
        let waker = Waker::noop();
        loop {
            let next = {
                let mut st = self.st.borrow_mut();
                match st.ready.pop() {
                    Some(Reverse((t, _, tid))) => {
                        if t > max_cycles {
                            // Put it back so a later run_for can resume.
                            st.schedule_wake(t, tid);
                            return RunOutcome::CycleLimit;
                        }
                        st.now = st.now.max(t);
                        Some(tid)
                    }
                    None => None,
                }
            };
            let Some(tid) = next else {
                let st = self.st.borrow();
                if st.live_tasks == 0 {
                    return RunOutcome::Quiescent;
                }
                let blocked: Vec<ProcId> = st
                    .waiters
                    .values()
                    .flat_map(|v| v.iter().copied())
                    .collect();
                return RunOutcome::Deadlock { blocked };
            };
            let Some(task) = self.tasks[tid].as_mut() else {
                continue;
            };
            let mut cx = Context::from_waker(waker);
            if task.as_mut().poll(&mut cx).is_ready() {
                self.tasks[tid] = None;
                self.st.borrow_mut().live_tasks -= 1;
            }
        }
    }

    /// Current simulated time in cycles.
    pub fn now(&self) -> u64 {
        self.st.borrow().now
    }

    /// Reads a word of simulated memory directly, without charging any
    /// simulated time. For assertions and result extraction only.
    pub fn peek(&self, addr: Addr) -> Word {
        self.st.borrow().mem[addr]
    }

    /// Writes a word of simulated memory directly, without charging any
    /// simulated time. For test setup only; does not wake waiters.
    pub fn poke(&mut self, addr: Addr, v: Word) {
        self.st.borrow_mut().mem[addr] = v;
    }

    /// Snapshot of the statistics gathered so far.
    pub fn stats(&self) -> Stats {
        self.st.borrow().stats.clone()
    }

    /// Number of spawned tasks that have not yet completed.
    pub fn live_tasks(&self) -> usize {
        self.st.borrow().live_tasks
    }

    /// Attaches a human-readable label to the address range
    /// `addr..addr + words` for hot-spot reporting. Later labels win where
    /// ranges overlap.
    pub fn label(&mut self, addr: Addr, words: usize, name: impl Into<String>) {
        self.labels.push((addr, addr + words.max(1), name.into()));
    }

    /// Aggregates per-cache-line contention by label and returns the
    /// regions with the most queueing delay, descending. Lines outside any
    /// labelled range are pooled under `"<unlabelled>"`.
    ///
    /// This is the paper's hot-spot story made observable: run a workload
    /// and see which structure's cache lines serialized the machine.
    pub fn hotspots(&self, top_k: usize) -> Vec<crate::stats::HotSpot> {
        let st = self.st.borrow();
        let shift = st.cfg.line_shift();
        let mut by_label: std::collections::HashMap<&str, (u64, u64)> =
            std::collections::HashMap::new();
        for (&line, &(accesses, delay)) in &st.stats.per_line {
            let addr = line << shift;
            let label = self
                .labels
                .iter()
                .rev()
                .find(|(start, end, _)| addr >= *start && addr < *end)
                .map(|(_, _, name)| name.as_str())
                .unwrap_or("<unlabelled>");
            let e = by_label.entry(label).or_insert((0, 0));
            e.0 += accesses;
            e.1 += delay;
        }
        let mut out: Vec<crate::stats::HotSpot> = by_label
            .into_iter()
            .map(
                |(label, (accesses, queue_delay_cycles))| crate::stats::HotSpot {
                    label: label.to_string(),
                    accesses,
                    queue_delay_cycles,
                },
            )
            .collect();
        out.sort_by_key(|h| std::cmp::Reverse(h.queue_delay_cycles));
        out.truncate(top_k);
        out
    }
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.st.borrow();
        f.debug_struct("Machine")
            .field("now", &st.now)
            .field("mem_words", &st.mem.len())
            .field("live_tasks", &st.live_tasks)
            .finish()
    }
}
