//! The simulated machine: memory, event queue, and task executor.
//!
//! # Fast-path design
//!
//! Every simulated memory transaction runs through [`SimState::transact`],
//! so that path is built exclusively from flat, index-addressed structures:
//!
//! * the scheduler is an indexed timer wheel ([`crate::wheel`]) — O(1)
//!   push/pop for the short wake deltas that dominate a run;
//! * per-cache-line state (`line_free`, per-line stats) lives in `Vec`s
//!   indexed by line number, grown once at allocation time;
//! * tasks blocked on a word live in per-address intrusive FIFO lists
//!   ([`WaiterTable`]) backed by one node slab — the per-transaction check
//!   "does this address have waiters?" is a single array load;
//! * task futures live in a slab ([`TaskSlab`]) that boxes each future once
//!   at spawn and never moves it again.
//!
//! The schedule is a pure function of event `(time, seq)` order, so the
//! optimized machine is checked bit-for-bit against a naive reference
//! ([`Machine::new_reference`]) by the differential tests in
//! `tests/memory_props.rs`.

use std::cell::RefCell;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Waker};

use crate::config::MachineConfig;
use crate::ctx::ProcCtx;
use crate::fault::{FaultGate, FaultPlan, FaultPlanError, FaultState, FaultSummary, SpanPoint};
use crate::stats::Stats;
use crate::trace::{RegionMap, TraceEvent, Tracer, TxnKind};
use crate::wheel::{EventQueue, EventWheel, LinearEventList};

/// A word of simulated shared memory.
pub type Word = u64;
/// An address (word index) in simulated shared memory.
pub type Addr = usize;
/// Identifier of a simulated processor (also its task id).
pub type ProcId = usize;

const NO_NODE: u32 = u32::MAX;

/// Per-address FIFO lists of blocked tasks, stored as intrusive linked
/// lists in a single node slab. `head`/`tail` are indexed by address and
/// grown alongside simulated memory, so registering, checking, and waking
/// waiters never touches a search structure.
struct WaiterTable {
    /// First/last slab node per address, or [`NO_NODE`].
    head: Vec<u32>,
    tail: Vec<u32>,
    /// `(task, next)` nodes; freed nodes are chained through `next`.
    nodes: Vec<(u32, u32)>,
    free: u32,
    waiting: usize,
}

impl WaiterTable {
    fn new() -> Self {
        WaiterTable {
            head: Vec::new(),
            tail: Vec::new(),
            nodes: Vec::new(),
            free: NO_NODE,
            waiting: 0,
        }
    }

    fn grow(&mut self, words: usize) {
        self.head.resize(words, NO_NODE);
        self.tail.resize(words, NO_NODE);
    }

    fn register(&mut self, addr: Addr, task: ProcId) {
        let task = u32::try_from(task).expect("more than u32::MAX tasks");
        let node = if self.free != NO_NODE {
            let n = self.free;
            self.free = self.nodes[n as usize].1;
            self.nodes[n as usize] = (task, NO_NODE);
            n
        } else {
            self.nodes.push((task, NO_NODE));
            (self.nodes.len() - 1) as u32
        };
        if self.head[addr] == NO_NODE {
            self.head[addr] = node;
        } else {
            self.nodes[self.tail[addr] as usize].1 = node;
        }
        self.tail[addr] = node;
        self.waiting += 1;
    }

    /// Detaches and returns the list head for `addr` (walk it with
    /// [`WaiterTable::free_node`]).
    fn take_list(&mut self, addr: Addr) -> u32 {
        let n = self.head[addr];
        if n != NO_NODE {
            self.head[addr] = NO_NODE;
            self.tail[addr] = NO_NODE;
        }
        n
    }

    /// Frees one detached node, returning its `(task, next)` payload.
    fn free_node(&mut self, n: u32) -> (ProcId, u32) {
        let (task, next) = self.nodes[n as usize];
        self.nodes[n as usize].1 = self.free;
        self.free = n;
        self.waiting -= 1;
        (task as ProcId, next)
    }

    /// All blocked tasks, in address order then registration order —
    /// the deadlock report.
    fn blocked(&self) -> Vec<ProcId> {
        self.blocked_with_addrs()
            .into_iter()
            .map(|(t, _)| t)
            .collect()
    }

    /// All blocked tasks with the address each is waiting on — the
    /// livelock diagnostic.
    fn blocked_with_addrs(&self) -> Vec<(ProcId, Addr)> {
        let mut out = Vec::with_capacity(self.waiting);
        for (addr, &h) in self.head.iter().enumerate() {
            let mut n = h;
            while n != NO_NODE {
                let (task, next) = self.nodes[n as usize];
                out.push((task as ProcId, addr));
                n = next;
            }
        }
        out
    }
}

pub(crate) struct SimState {
    pub(crate) cfg: MachineConfig,
    pub(crate) now: u64,
    seq: u64,
    events: EventQueue,
    /// Flat shared memory.
    pub(crate) mem: Vec<Word>,
    /// Per-line time at which the line becomes free.
    line_free: Vec<u64>,
    /// Per-line home node, grown alongside `line_free`. On a 1-node
    /// machine every entry is 0 and the remote branch in `transact` is
    /// never taken.
    line_home: Vec<u32>,
    /// Home node to assign to lines allocated next (see
    /// [`Machine::alloc_on_node`]); `None` stripes lines across nodes.
    alloc_node: Option<u32>,
    /// Tasks suspended until the given address is mutated.
    waiters: WaiterTable,
    pub(crate) stats: Stats,
    /// Spawned tasks that have not yet run to completion.
    pub(crate) live_tasks: usize,
    /// Attached trace sink, if any. Tracing is purely observational: it
    /// never schedules events or advances time, so attaching a tracer
    /// leaves the simulated schedule bit-identical.
    tracer: Option<Box<dyn Tracer>>,
    /// Attached fault injector, if any. Follows the tracer's cold split:
    /// the fast paths pay one presence test, and a present-but-empty plan
    /// injects nothing, so the schedule stays bit-identical.
    faults: Option<Box<FaultState>>,
    /// Livelock watchdog window in cycles; 0 = disabled.
    watchdog_window: u64,
    /// Time by which the next progress report must arrive; `u64::MAX`
    /// while the watchdog is disabled.
    watchdog_deadline: u64,
}

impl SimState {
    fn schedule(&mut self, time: u64, task: ProcId) {
        self.seq += 1;
        self.events.push((time, self.seq, task));
    }

    /// True while a tracer is attached. This single pointer-presence test
    /// is all the transaction fast path pays when tracing is off — the
    /// event construction lives in the `#[cold]` emit helpers below (the
    /// trait-object analogue of `funnelpq::obs`'s `Recorder::ENABLED`
    /// cold split).
    #[inline]
    pub(crate) fn tracing(&self) -> bool {
        self.tracer.is_some()
    }

    /// Delivers one event to the attached tracer. Kept out of line so the
    /// untraced fast path stays small.
    #[cold]
    #[inline(never)]
    pub(crate) fn emit(&mut self, ev: TraceEvent) {
        if let Some(t) = self.tracer.as_mut() {
            t.event(&ev);
        }
    }

    /// True while a fault plan is attached — the span fast path's single
    /// presence test, mirroring [`SimState::tracing`].
    #[inline]
    pub(crate) fn faulting(&self) -> bool {
        self.faults.is_some()
    }

    /// Feeds one span open/close to the span-triggered stall rules. Cold:
    /// only reached while a plan is attached.
    #[cold]
    #[inline(never)]
    pub(crate) fn fault_span(&mut self, proc: ProcId, name: &'static str, point: SpanPoint) {
        let now = self.now;
        if let Some(f) = self.faults.as_mut() {
            f.on_span(proc, name, point, now);
        }
    }

    /// Extra `(net_per_leg, service)` latency the attached plan adds to a
    /// transaction on `addr` issued now. Cold: only reached while a plan
    /// is attached.
    #[cold]
    #[inline(never)]
    fn fault_latency(&mut self, addr: Addr) -> (u64, u64) {
        let now = self.now;
        match self.faults.as_mut() {
            Some(f) => f.latency_extras(addr, now),
            None => (0, 0),
        }
    }

    /// Decides the fate of a popped event while a fault plan is attached.
    /// Cold: the healthy fast path never reaches it.
    #[cold]
    #[inline(never)]
    fn fault_step(&mut self, t: u64, tid: ProcId) -> Step {
        let gate = match self.faults.as_mut() {
            Some(f) => f.gate(t, tid),
            None => FaultGate::Deliver,
        };
        match gate {
            FaultGate::Deliver => {
                self.now = self.now.max(t);
                Step::Poll(tid)
            }
            FaultGate::Delay(until) => {
                self.schedule(until, tid);
                Step::Skip
            }
            FaultGate::Kill => Step::Kill(tid),
            FaultGate::Swallow => Step::Skip,
        }
    }

    /// Records a latency sample and feeds the livelock watchdog: each
    /// recorded sample counts as machine-wide progress, pushing the
    /// deadline out by one window.
    pub(crate) fn record_progress(&mut self, key: &'static str, v: u64) {
        self.stats.record(key, v);
        if self.watchdog_window != 0 {
            self.watchdog_deadline = self.now.saturating_add(self.watchdog_window);
        }
    }

    /// Performs one shared-memory transaction, applying its mutation in
    /// line-service order (which equals arrival order under a constant
    /// network latency). Returns `(previous value, completion time)`.
    pub(crate) fn transact(&mut self, task: ProcId, addr: Addr, op: MemOpKind) -> (Word, u64) {
        let (extra_net, extra_service) = if self.faults.is_some() {
            self.fault_latency(addr)
        } else {
            (0, 0)
        };
        let shift = self.cfg.line_shift();
        let line = addr >> shift;
        // A transaction crossing node boundaries pays the remote ratio on
        // each interconnect leg. With `nodes == 1` every line is homed on
        // node 0 and every processor lives there, so the flat machine's
        // schedule is untouched.
        let remote = self.cfg.nodes > 1 && self.line_home[line] as usize != task % self.cfg.nodes;
        let net = if remote {
            self.cfg.net_latency * self.cfg.remote_ratio
        } else {
            self.cfg.net_latency
        };
        let arrival = self.now + net + extra_net;
        let free = self.line_free[line].max(arrival);
        let effect = free + self.cfg.service + extra_service;
        self.line_free[line] = effect;
        let completion = effect + net + extra_net;

        self.stats.mem_accesses += 1;
        self.stats.remote_accesses += u64::from(remote);
        self.stats.queue_delay_cycles += free - arrival;
        let line_entry = &mut self.stats.per_line[line];
        line_entry.0 += 1;
        line_entry.1 += free - arrival;

        let old = self.mem[addr];
        let mutated = match op {
            MemOpKind::Read => false,
            MemOpKind::Write(v) => {
                self.mem[addr] = v;
                v != old
            }
            MemOpKind::Swap(v) => {
                self.mem[addr] = v;
                v != old
            }
            MemOpKind::Cas { expected, new } => {
                if old == expected {
                    self.mem[addr] = new;
                    new != old
                } else {
                    false
                }
            }
            MemOpKind::Faa(delta) => {
                self.mem[addr] = old.wrapping_add_signed(delta);
                delta != 0
            }
        };
        if self.tracing() {
            self.emit(TraceEvent::Txn {
                proc: task,
                addr,
                line,
                kind: TxnKind::from(op),
                issue: self.now,
                arrival,
                start: free,
                release: effect,
                complete: completion,
                mutated,
            });
        }
        if mutated {
            // Invalidation: every spinner re-fetches after the write lands,
            // paying its own transaction when it resumes.
            let wake = effect + self.cfg.net_latency;
            let mut n = self.waiters.take_list(addr);
            while n != NO_NODE {
                let (task, next) = self.waiters.free_node(n);
                self.schedule(wake, task);
                if self.tracing() {
                    self.emit(TraceEvent::TaskResume {
                        proc: task,
                        addr,
                        time: wake,
                    });
                }
                n = next;
            }
        }
        self.schedule(completion, task);
        (old, completion)
    }

    pub(crate) fn register_waiter(&mut self, addr: Addr, task: ProcId) {
        self.waiters.register(addr, task);
        if self.tracing() {
            let now = self.now;
            self.emit(TraceEvent::TaskBlock {
                proc: task,
                addr,
                time: now,
            });
        }
    }

    pub(crate) fn schedule_wake(&mut self, time: u64, task: ProcId) {
        self.schedule(time, task);
    }
}

/// The memory operations a simulated processor can issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MemOpKind {
    Read,
    Write(Word),
    Swap(Word),
    Cas { expected: Word, new: Word },
    Faa(i64),
}

impl From<MemOpKind> for TxnKind {
    fn from(op: MemOpKind) -> TxnKind {
        match op {
            MemOpKind::Read => TxnKind::Read,
            MemOpKind::Write(_) => TxnKind::Write,
            MemOpKind::Swap(_) => TxnKind::Swap,
            MemOpKind::Cas { .. } => TxnKind::Cas,
            MemOpKind::Faa(_) => TxnKind::Faa,
        }
    }
}

type TaskFuture = Pin<Box<dyn Future<Output = ()>>>;

/// Spawned task futures, boxed once at spawn. Completed slots are emptied
/// in place (task ids are dense and never reused, so this is a
/// monotonically filled slab rather than a free-list one).
#[derive(Default)]
struct TaskSlab {
    entries: Vec<Option<TaskFuture>>,
}

impl TaskSlab {
    fn insert(&mut self, fut: TaskFuture) -> ProcId {
        self.entries.push(Some(fut));
        self.entries.len() - 1
    }

    fn get_mut(&mut self, id: ProcId) -> Option<&mut TaskFuture> {
        self.entries.get_mut(id).and_then(|e| e.as_mut())
    }

    fn remove(&mut self, id: ProcId) {
        self.entries[id] = None;
    }

    fn contains(&self, id: ProcId) -> bool {
        self.entries.get(id).is_some_and(|e| e.is_some())
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// What one popped event turned into (computed inside the state borrow,
/// acted on outside it).
enum Step {
    /// Deliver: poll the task.
    Poll(ProcId),
    /// Event swallowed or deferred by the fault layer.
    Skip,
    /// Crash-stop the task.
    Kill(ProcId),
    /// `run_for`'s cycle limit passed.
    Limit,
    /// The livelock watchdog's deadline passed.
    Livelock,
    /// The event queue is empty.
    Drained,
}

/// Why [`Machine::run`] stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every spawned task ran to completion.
    Quiescent,
    /// The event queue drained while tasks were still alive: they are all
    /// blocked waiting for memory writes that will never come.
    Deadlock {
        /// Ids of the blocked tasks.
        blocked: Vec<ProcId>,
    },
    /// The cycle limit passed to [`Machine::run_for`] was reached.
    CycleLimit,
    /// The watchdog armed with [`Machine::set_watchdog`] saw no
    /// machine-wide progress for a full window.
    Livelock {
        /// Who was doing what when progress stopped.
        diag: LivelockDiag,
    },
}

impl RunOutcome {
    /// True when the run completed all tasks.
    pub fn is_quiescent(&self) -> bool {
        matches!(self, RunOutcome::Quiescent)
    }
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunOutcome::Quiescent => write!(f, "quiescent"),
            RunOutcome::Deadlock { blocked } => {
                write!(f, "deadlock ({} tasks blocked)", blocked.len())
            }
            RunOutcome::CycleLimit => write!(f, "cycle limit reached"),
            RunOutcome::Livelock { diag } => write!(f, "{diag}"),
        }
    }
}

/// What each simulated processor was doing when the livelock watchdog
/// fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    /// Scheduled normally (has a pending event, not stalled or blocked).
    Running,
    /// Suspended until the given word changes.
    BlockedOn(Addr),
    /// Held inside a fault-injected stall window.
    Stalled {
        /// When the stall window ends.
        until: u64,
    },
    /// Crash-stopped by the fault plan.
    Crashed,
    /// Ran to completion before progress stopped.
    Done,
}

/// One processor's row in a [`LivelockDiag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcDiag {
    /// The processor.
    pub proc: ProcId,
    /// What it was doing.
    pub state: ProcState,
}

/// Diagnostic dump produced when the livelock watchdog fires: per-proc
/// state, the hottest memory regions, and how deep the blocked set is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LivelockDiag {
    /// Simulated time when the watchdog fired.
    pub now: u64,
    /// The configured progress window, in cycles.
    pub window: u64,
    /// Time of the last recorded progress sample.
    pub last_progress: u64,
    /// Per-processor state, indexed by processor id.
    pub procs: Vec<ProcDiag>,
    /// Hottest labelled regions as `(label, queue-delay cycles)`.
    pub hot: Vec<(String, u64)>,
    /// Number of tasks suspended on memory words.
    pub blocked_depth: usize,
}

impl fmt::Display for LivelockDiag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "livelock: no progress for {} cycles (last progress at {}, now {})",
            self.window, self.last_progress, self.now
        )?;
        writeln!(f, "  {} tasks blocked on memory words", self.blocked_depth)?;
        for p in &self.procs {
            match p.state {
                ProcState::Running => writeln!(f, "  proc {} runnable", p.proc)?,
                ProcState::BlockedOn(addr) => {
                    writeln!(f, "  proc {} blocked on word {}", p.proc, addr)?
                }
                ProcState::Stalled { until } => {
                    writeln!(f, "  proc {} stalled until {}", p.proc, until)?
                }
                ProcState::Crashed => writeln!(f, "  proc {} crashed", p.proc)?,
                ProcState::Done => {}
            }
        }
        write!(f, "  hottest regions:")?;
        for (label, delay) in &self.hot {
            write!(f, " {label} ({delay} delay cycles)")?;
        }
        Ok(())
    }
}

/// A simulated ccNUMA multiprocessor.
///
/// Allocate shared memory with [`Machine::alloc`], spawn one task per
/// simulated processor with [`Machine::spawn`], then [`Machine::run`] the
/// event loop to quiescence. The run is fully deterministic for a given
/// configuration, seed and spawn order.
///
/// # Examples
///
/// ```
/// use funnelpq_sim::{Machine, MachineConfig};
///
/// let mut m = Machine::new(MachineConfig::test_tiny(), 42);
/// let counter = m.alloc(1);
/// for _ in 0..4 {
///     let ctx = m.ctx();
///     m.spawn(async move {
///         for _ in 0..10 {
///             ctx.faa(counter, 1).await;
///         }
///     });
/// }
/// let outcome = m.run();
/// assert!(outcome.is_quiescent());
/// assert_eq!(m.peek(counter), 40);
/// ```
pub struct Machine {
    st: Rc<RefCell<SimState>>,
    tasks: TaskSlab,
    next_pid: ProcId,
    pending_ctxs: usize,
    seed: u64,
    /// Labelled address ranges `(start, end, name)` for hot-spot reports.
    labels: Vec<(Addr, Addr, String)>,
    /// Sorted, non-overlapping `(start, end, index into labels or NONE)`
    /// intervals derived from `labels`; rebuilt lazily after `label()`.
    label_index: RefCell<Option<Vec<(Addr, Addr, usize)>>>,
}

impl Machine {
    fn with_events(cfg: MachineConfig, seed: u64, events: EventQueue) -> Self {
        assert!(
            cfg.line_words.is_power_of_two(),
            "line_words must be a power of two"
        );
        assert!(cfg.net_latency > 0, "net_latency must be positive");
        assert!(cfg.service > 0, "service must be positive");
        assert!(cfg.nodes >= 1, "nodes must be at least 1");
        assert!(cfg.remote_ratio >= 1, "remote_ratio must be at least 1");
        let st = SimState {
            cfg,
            now: 0,
            seq: 0,
            events,
            mem: Vec::new(),
            line_free: Vec::new(),
            line_home: Vec::new(),
            alloc_node: None,
            waiters: WaiterTable::new(),
            stats: Stats::new(),
            live_tasks: 0,
            tracer: None,
            faults: None,
            watchdog_window: 0,
            watchdog_deadline: u64::MAX,
        };
        Machine {
            st: Rc::new(RefCell::new(st)),
            tasks: TaskSlab::default(),
            next_pid: 0,
            pending_ctxs: 0,
            seed,
            labels: Vec::new(),
            label_index: RefCell::new(None),
        }
    }

    /// Creates a machine with the given configuration and RNG seed.
    pub fn new(cfg: MachineConfig, seed: u64) -> Self {
        Machine::with_events(cfg, seed, EventQueue::Wheel(EventWheel::new()))
    }

    /// Creates a machine whose scheduler uses the naive linear-scan event
    /// list instead of the timer wheel. The schedule — and therefore every
    /// simulated result — is identical to [`Machine::new`]; this exists as
    /// the slow, obviously correct oracle for differential tests and
    /// benchmark baselines.
    pub fn new_reference(cfg: MachineConfig, seed: u64) -> Self {
        Machine::with_events(cfg, seed, EventQueue::Linear(LinearEventList::new()))
    }

    /// Allocates `words` words of zeroed shared memory, rounded up so the
    /// allocation starts on a fresh cache line (avoids accidental false
    /// sharing between independently allocated objects).
    ///
    /// On a multi-node machine the new lines are striped across nodes
    /// (`line % nodes`), so structures built without node awareness spread
    /// their traffic evenly; use [`Machine::alloc_on_node`] to home an
    /// allocation on one node.
    pub fn alloc(&mut self, words: usize) -> Addr {
        let mut st = self.st.borrow_mut();
        let line_words = st.cfg.line_words;
        let start = st.mem.len().next_multiple_of(line_words);
        let end = start + words.max(1);
        st.mem.resize(end, 0);
        let lines = end.div_ceil(line_words);
        st.line_free.resize(lines, 0);
        st.stats.per_line.resize(lines, (0, 0));
        let nodes = st.cfg.nodes as u32;
        let forced = st.alloc_node;
        while st.line_home.len() < lines {
            let home = forced.unwrap_or(st.line_home.len() as u32 % nodes);
            st.line_home.push(home);
        }
        st.waiters.grow(end);
        start
    }

    /// Allocates `words` words of zeroed shared memory whose cache lines
    /// are all homed on `node` — accesses from processors of other nodes
    /// pay the configured `remote_ratio`. This is how node-local structures
    /// (per-node heap partitions, delegation mailboxes) are placed.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for the configured topology.
    pub fn alloc_on_node(&mut self, words: usize, node: usize) -> Addr {
        {
            let mut st = self.st.borrow_mut();
            assert!(
                node < st.cfg.nodes,
                "node {node} out of range for a {}-node machine",
                st.cfg.nodes
            );
            st.alloc_node = Some(node as u32);
        }
        let addr = self.alloc(words);
        self.st.borrow_mut().alloc_node = None;
        addr
    }

    /// Number of NUMA nodes in this machine's configuration.
    pub fn nodes(&self) -> usize {
        self.st.borrow().cfg.nodes
    }

    /// The node a processor belongs to (`pid % nodes`).
    pub fn node_of_proc(&self, pid: ProcId) -> usize {
        pid % self.st.borrow().cfg.nodes
    }

    /// Home node of the cache line containing `addr`.
    pub fn node_of_addr(&self, addr: Addr) -> usize {
        let st = self.st.borrow();
        st.line_home[addr >> st.cfg.line_shift()] as usize
    }

    /// Maximal contiguous word ranges `(start, words)` whose cache lines
    /// are homed on `node`, in address order. This is the glue between the
    /// topology and the fault layer: feed a range to
    /// [`crate::fault::FaultPlan::region_delay`] to spike the latency of
    /// exactly one node's memory.
    pub fn node_regions(&self, node: usize) -> Vec<(Addr, usize)> {
        let st = self.st.borrow();
        let line_words = st.cfg.line_words;
        let mem_words = st.mem.len();
        let mut out: Vec<(Addr, usize)> = Vec::new();
        for (line, &home) in st.line_home.iter().enumerate() {
            if home as usize != node {
                continue;
            }
            let start = line * line_words;
            let end = ((line + 1) * line_words).min(mem_words);
            if end <= start {
                continue;
            }
            match out.last_mut() {
                Some(last) if last.0 + last.1 == start => last.1 += end - start,
                _ => out.push((start, end - start)),
            }
        }
        out
    }

    /// Allocates `words` words, each on its own cache line; returns the
    /// address of word `i` as `base + i * line_words`.
    pub fn alloc_padded(&mut self, words: usize) -> Addr {
        let line_words = self.st.borrow().cfg.line_words;
        self.alloc(words.max(1) * line_words)
    }

    /// Number of words per cache line in this machine's configuration.
    pub fn line_words(&self) -> usize {
        self.st.borrow().cfg.line_words
    }

    /// This machine's configuration.
    pub fn config(&self) -> MachineConfig {
        self.st.borrow().cfg
    }

    /// Creates the context for the *next* processor to be spawned.
    ///
    /// Call `ctx()` then `spawn()` in pairs; the context's processor id is
    /// fixed at creation.
    pub fn ctx(&mut self) -> ProcCtx {
        let pid = self.next_pid + self.pending_ctxs;
        self.pending_ctxs += 1;
        ProcCtx::new(Rc::clone(&self.st), pid, self.seed)
    }

    /// Spawns a task for the processor whose context was most recently
    /// created with [`Machine::ctx`].
    ///
    /// # Panics
    ///
    /// Panics if called without a prior matching `ctx()` call.
    pub fn spawn<F>(&mut self, fut: F) -> ProcId
    where
        F: Future<Output = ()> + 'static,
    {
        assert!(
            self.pending_ctxs > 0,
            "spawn() must be preceded by a ctx() call for the new processor"
        );
        self.pending_ctxs -= 1;
        let pid = self.next_pid;
        self.next_pid += 1;
        debug_assert_eq!(pid, self.tasks.len());
        let slab_pid = self.tasks.insert(Box::pin(fut));
        debug_assert_eq!(slab_pid, pid);
        let mut st = self.st.borrow_mut();
        st.live_tasks += 1;
        st.schedule_wake(0, pid);
        if st.tracing() {
            let now = st.now;
            st.emit(TraceEvent::TaskSpawn {
                proc: pid,
                time: now,
            });
        }
        pid
    }

    /// Runs the event loop until every task completes or no progress is
    /// possible.
    pub fn run(&mut self) -> RunOutcome {
        self.run_for(u64::MAX)
    }

    /// Runs the event loop, stopping once the clock passes `max_cycles`.
    pub fn run_for(&mut self, max_cycles: u64) -> RunOutcome {
        let waker = Waker::noop();
        loop {
            let step = {
                let mut st = self.st.borrow_mut();
                match st.events.pop() {
                    Some((t, _, tid)) => {
                        if t > max_cycles {
                            // Put it back so a later run_for can resume.
                            st.schedule_wake(t, tid);
                            Step::Limit
                        } else if t > st.watchdog_deadline {
                            st.schedule_wake(t, tid);
                            Step::Livelock
                        } else if st.faults.is_some() {
                            st.fault_step(t, tid)
                        } else {
                            st.now = st.now.max(t);
                            Step::Poll(tid)
                        }
                    }
                    None => Step::Drained,
                }
            };
            let tid = match step {
                Step::Poll(tid) => tid,
                Step::Skip => continue,
                Step::Kill(tid) => {
                    if self.tasks.get_mut(tid).is_some() {
                        self.tasks.remove(tid);
                        self.st.borrow_mut().live_tasks -= 1;
                    }
                    continue;
                }
                Step::Limit => return RunOutcome::CycleLimit,
                Step::Livelock => {
                    return RunOutcome::Livelock {
                        diag: self.livelock_diag(),
                    }
                }
                Step::Drained => {
                    let st = self.st.borrow();
                    if st.live_tasks == 0 {
                        return RunOutcome::Quiescent;
                    }
                    return RunOutcome::Deadlock {
                        blocked: st.waiters.blocked(),
                    };
                }
            };
            let Some(task) = self.tasks.get_mut(tid) else {
                continue;
            };
            let mut cx = Context::from_waker(waker);
            if task.as_mut().poll(&mut cx).is_ready() {
                self.tasks.remove(tid);
                let mut st = self.st.borrow_mut();
                st.live_tasks -= 1;
                if st.tracing() {
                    let now = st.now;
                    st.emit(TraceEvent::TaskComplete {
                        proc: tid,
                        time: now,
                    });
                }
            }
        }
    }

    /// Current simulated time in cycles.
    pub fn now(&self) -> u64 {
        self.st.borrow().now
    }

    /// Reads a word of simulated memory directly, without charging any
    /// simulated time. For assertions and result extraction only.
    pub fn peek(&self, addr: Addr) -> Word {
        self.st.borrow().mem[addr]
    }

    /// Writes a word of simulated memory directly, without charging any
    /// simulated time. For test setup only; does not wake waiters.
    pub fn poke(&mut self, addr: Addr, v: Word) {
        self.st.borrow_mut().mem[addr] = v;
    }

    /// Snapshot of the statistics gathered so far.
    pub fn stats(&self) -> Stats {
        self.st.borrow().stats.clone()
    }

    /// Snapshot of simulated memory (for differential testing).
    pub fn memory_snapshot(&self) -> Vec<Word> {
        self.st.borrow().mem.clone()
    }

    /// Number of spawned tasks that have not yet completed.
    pub fn live_tasks(&self) -> usize {
        self.st.borrow().live_tasks
    }

    /// Attaches a trace sink: every subsequent memory transaction,
    /// scheduler action and user span is delivered to it as a
    /// [`TraceEvent`]. The usual sink is a [`crate::trace::TraceLog`]
    /// handle. Tracing never perturbs the simulation — a traced run's
    /// schedule and [`Stats`] are bit-identical to an untraced one.
    pub fn attach_tracer(&mut self, tracer: Box<dyn Tracer>) {
        self.st.borrow_mut().tracer = Some(tracer);
    }

    /// Detaches and returns the current tracer, if any. Subsequent events
    /// are no longer recorded.
    pub fn detach_tracer(&mut self) -> Option<Box<dyn Tracer>> {
        self.st.borrow_mut().tracer.take()
    }

    /// Attaches a fault plan: subsequent runs inject its stalls, latency
    /// spikes and crashes. Attach *after* allocating the memory a
    /// [`crate::fault::Fault::RegionDelay`] targets, so ranges can be
    /// checked. An empty plan is observationally free — the run stays
    /// bit-identical to one with no plan attached (verified differentially
    /// by `tests/chaos_conformance.rs`).
    ///
    /// Shape and memory-range problems are reported here; processor ids
    /// are not known to the machine until spawn time, so validate them
    /// against the run with [`FaultPlan::check`].
    pub fn attach_faults(&mut self, plan: &FaultPlan) -> Result<(), FaultPlanError> {
        plan.check_shape()?;
        plan.check_mem(self.st.borrow().mem.len())?;
        self.st.borrow_mut().faults = Some(Box::new(FaultState::from_plan(plan)));
        Ok(())
    }

    /// Arms the global-progress livelock watchdog: if no progress sample
    /// is recorded (via [`ProcCtx::record`]) for `window` consecutive
    /// cycles, [`Machine::run`] stops with [`RunOutcome::Livelock`] and a
    /// diagnostic dump. `window` 0 disarms. Size the window well above the
    /// workload's worst healthy inter-op gap.
    pub fn set_watchdog(&mut self, window: u64) {
        let mut st = self.st.borrow_mut();
        st.watchdog_window = window;
        st.watchdog_deadline = if window == 0 {
            u64::MAX
        } else {
            st.now.saturating_add(window)
        };
    }

    /// Processors crash-stopped by the attached fault plan so far, in kill
    /// order.
    pub fn crashed(&self) -> Vec<ProcId> {
        self.st
            .borrow()
            .faults
            .as_ref()
            .map(|f| f.crashed().to_vec())
            .unwrap_or_default()
    }

    /// What the attached fault plan actually injected so far, or `None`
    /// when no plan is attached.
    pub fn fault_summary(&self) -> Option<FaultSummary> {
        self.st.borrow().faults.as_ref().map(|f| f.summary())
    }

    /// Builds the livelock diagnostic dump (who was doing what, hottest
    /// regions, blocked depth) at the moment the watchdog fired.
    fn livelock_diag(&self) -> LivelockDiag {
        let hot = self
            .hotspots(4)
            .into_iter()
            .map(|h| (h.label, h.queue_delay_cycles))
            .collect();
        let st = self.st.borrow();
        let now = st.now;
        let window = st.watchdog_window;
        let last_progress = st.watchdog_deadline.saturating_sub(window);
        let blocked = st.waiters.blocked_with_addrs();
        let mut procs = Vec::with_capacity(self.next_pid);
        for pid in 0..self.next_pid {
            let state = if st
                .faults
                .as_ref()
                .is_some_and(|f| f.crashed().contains(&pid))
            {
                ProcState::Crashed
            } else if let Some(until) = st.faults.as_ref().and_then(|f| f.stalled_until(pid, now)) {
                ProcState::Stalled { until }
            } else if let Some(&(_, addr)) = blocked.iter().find(|&&(t, _)| t == pid) {
                ProcState::BlockedOn(addr)
            } else if self.tasks.contains(pid) {
                ProcState::Running
            } else {
                ProcState::Done
            };
            procs.push(ProcDiag { proc: pid, state });
        }
        LivelockDiag {
            now,
            window,
            last_progress,
            procs,
            hot,
            blocked_depth: blocked.len(),
        }
    }

    /// Resolves every allocated cache line to a labelled region (merging
    /// distinct ranges that share a display name, exactly like
    /// [`Machine::hotspots`]), for use by the trace exporters. Build it
    /// *after* the structures under test are allocated and labelled; lines
    /// allocated later fall in `"<unlabelled>"`.
    pub fn region_map(&self) -> RegionMap {
        let mut cache = self.label_index.borrow_mut();
        let index = cache.get_or_insert_with(|| self.build_label_index());
        let st = self.st.borrow();
        let shift = st.cfg.line_shift();
        let n_lines = st.line_free.len();
        let mut names: Vec<String> = Vec::new();
        // Region index per label, resolved on first sighting so identical
        // display names merge into one region.
        let mut region_of_label: Vec<Option<u32>> = vec![None; self.labels.len()];
        let mut line_region: Vec<u32> = Vec::with_capacity(n_lines);
        for line in 0..n_lines {
            let addr = line << shift;
            let region = match self.label_of(index, addr) {
                Some(li) => match region_of_label[li] {
                    Some(r) => r,
                    None => {
                        let name = self.labels[li].2.as_str();
                        let r = match names.iter().position(|n| n == name) {
                            Some(pos) => pos as u32,
                            None => {
                                names.push(name.to_string());
                                (names.len() - 1) as u32
                            }
                        };
                        region_of_label[li] = Some(r);
                        r
                    }
                },
                None => u32::MAX,
            };
            line_region.push(region);
        }
        let unlabelled = names.len() as u32;
        names.push("<unlabelled>".to_string());
        for r in &mut line_region {
            if *r == u32::MAX {
                *r = unlabelled;
            }
        }
        RegionMap::new(names, line_region, st.line_home.clone(), shift)
    }

    /// Attaches a human-readable label to the address range
    /// `addr..addr + words` for hot-spot reporting. Later labels win where
    /// ranges overlap.
    pub fn label(&mut self, addr: Addr, words: usize, name: impl Into<String>) {
        self.labels.push((addr, addr + words.max(1), name.into()));
        *self.label_index.borrow_mut() = None;
    }

    /// Builds the sorted interval list: non-overlapping `[start, end)`
    /// segments, each mapped to the *last* label covering it (or
    /// `usize::MAX` for none).
    fn build_label_index(&self) -> Vec<(Addr, Addr, usize)> {
        let mut bounds: Vec<Addr> = self.labels.iter().flat_map(|&(s, e, _)| [s, e]).collect();
        bounds.sort_unstable();
        bounds.dedup();
        let mut out: Vec<(Addr, Addr, usize)> = Vec::new();
        for w in bounds.windows(2) {
            let (s, e) = (w[0], w[1]);
            let owner = self
                .labels
                .iter()
                .rposition(|&(ls, le, _)| s >= ls && s < le)
                .unwrap_or(usize::MAX);
            match out.last_mut() {
                // Merge adjacent segments with the same owner.
                Some(last) if last.2 == owner && last.1 == s => last.1 = e,
                _ => out.push((s, e, owner)),
            }
        }
        out
    }

    /// Label covering `addr`, resolved by binary search over the
    /// precomputed interval list.
    fn label_of(&self, index: &[(Addr, Addr, usize)], addr: Addr) -> Option<usize> {
        let i = index.partition_point(|&(_, end, _)| end <= addr);
        match index.get(i) {
            Some(&(s, _, owner)) if addr >= s && owner != usize::MAX => Some(owner),
            _ => None,
        }
    }

    /// Aggregates per-cache-line contention by label and returns the
    /// regions with the most queueing delay, descending. Lines outside any
    /// labelled range are pooled under `"<unlabelled>"`.
    ///
    /// This is the paper's hot-spot story made observable: run a workload
    /// and see which structure's cache lines serialized the machine.
    pub fn hotspots(&self, top_k: usize) -> Vec<crate::stats::HotSpot> {
        let mut cache = self.label_index.borrow_mut();
        let index = cache.get_or_insert_with(|| self.build_label_index());
        let st = self.st.borrow();
        let shift = st.cfg.line_shift();
        // Accumulator per label, plus one slot for "<unlabelled>".
        let mut by_label: Vec<(u64, u64)> = vec![(0, 0); self.labels.len() + 1];
        for (line, &(accesses, delay)) in st.stats.per_line.iter().enumerate() {
            if accesses == 0 {
                continue;
            }
            let addr = line << shift;
            let slot = self.label_of(index, addr).unwrap_or(self.labels.len());
            by_label[slot].0 += accesses;
            by_label[slot].1 += delay;
        }
        // Distinct labelled regions may share a display name (one label per
        // bin, per lock, per tree level); merge those for the report.
        let mut out: Vec<crate::stats::HotSpot> = Vec::new();
        for (i, (accesses, queue_delay_cycles)) in by_label.into_iter().enumerate() {
            if accesses == 0 {
                continue;
            }
            let name = self
                .labels
                .get(i)
                .map(|(_, _, name)| name.as_str())
                .unwrap_or("<unlabelled>");
            match out.iter_mut().find(|h| h.label == name) {
                Some(h) => {
                    h.accesses += accesses;
                    h.queue_delay_cycles += queue_delay_cycles;
                }
                None => out.push(crate::stats::HotSpot {
                    label: name.to_string(),
                    accesses,
                    queue_delay_cycles,
                }),
            }
        }
        out.sort_by_key(|h| std::cmp::Reverse(h.queue_delay_cycles));
        out.truncate(top_k);
        out
    }
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.st.borrow();
        f.debug_struct("Machine")
            .field("now", &st.now)
            .field("mem_words", &st.mem.len())
            .field("live_tasks", &st.live_tasks)
            .finish()
    }
}
