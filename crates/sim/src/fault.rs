//! Deterministic fault injection for the simulated machine.
//!
//! A [`FaultPlan`] is a declarative, seeded description of adversity:
//! processor stalls (scheduled, or triggered by a named span so a stall can
//! target a lock holder or funnel combiner mid-operation), per-region
//! latency spikes and jitter (NUMA-asymmetry emulation), and crash-stop of
//! a processor. Attach one with [`crate::Machine::attach_faults`] before
//! running.
//!
//! # Cost model
//!
//! The fault layer follows the tracer's cold-split pattern: with no plan
//! attached (the default) the event-pop and transaction fast paths each pay
//! one pointer-presence test, and the fault machinery lives in `#[cold]`,
//! never-inlined functions. A machine with no plan attached is bit-identical
//! to one built before this module existed, and the differential tests in
//! `tests/chaos_conformance.rs` hold an *empty* attached plan to the same
//! standard.
//!
//! # Determinism
//!
//! Fault randomness (jitter draws) comes from the plan's own
//! [`XorShift64Star`] stream, seeded by [`FaultPlan::new`], so a plan
//! perturbs the schedule identically on every run and independently of the
//! workload's per-processor RNG streams.

use std::fmt;

use funnelpq_util::XorShift64Star;

use crate::machine::{Addr, ProcId};

/// Whether a span-triggered fault fires when the span opens or closes.
///
/// `Begin` of a span that brackets a critical region targets the processor
/// *entering* it (a funnel combiner at its capture point); `End` of an
/// acquire span targets the processor that now *holds* a lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanPoint {
    /// Fire when the named span opens.
    Begin,
    /// Fire when the named span closes.
    End,
}

impl fmt::Display for SpanPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpanPoint::Begin => write!(f, "begin"),
            SpanPoint::End => write!(f, "end"),
        }
    }
}

/// One declarative fault in a [`FaultPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Pause processor `proc` for `cycles` starting at cycle `at`: its
    /// events inside `[at, at + cycles)` are delivered at the window's end,
    /// in their original relative order.
    StallAt {
        /// The processor to pause.
        proc: ProcId,
        /// Window start, in cycles.
        at: u64,
        /// Window length, in cycles.
        cycles: u64,
    },
    /// Pause whichever processor emits the `occurrence`-th machine-wide
    /// `point` event of the span named `name`, for `cycles` cycles starting
    /// at the moment of the span event. This is how a plan targets a
    /// processor *because of what it is doing* — e.g. the holder of an MCS
    /// lock (`"mcs-acquire"` / [`SpanPoint::End`]) or a funnel combiner at
    /// its capture point (`"funnel-combine"` / [`SpanPoint::Begin`]).
    StallOnSpan {
        /// Span label to match (see [`crate::ProcCtx::span`]).
        name: &'static str,
        /// Open or close event.
        point: SpanPoint,
        /// 1-based machine-wide occurrence that triggers the stall.
        occurrence: u32,
        /// Stall length, in cycles.
        cycles: u64,
    },
    /// Add latency to every transaction targeting `addr..addr + words`
    /// issued while `from <= now < until`: `extra_net` cycles per network
    /// leg (paid twice, request and reply) and `extra_service` cycles of
    /// line occupancy. Emulates a far NUMA node or a congested region.
    RegionDelay {
        /// First word of the affected range.
        addr: Addr,
        /// Number of affected words.
        words: usize,
        /// Window start, in cycles.
        from: u64,
        /// Window end (exclusive), in cycles.
        until: u64,
        /// Extra network latency per leg.
        extra_net: u64,
        /// Extra line-service time.
        extra_service: u64,
    },
    /// Add `0..=max_extra` uniformly random cycles of network latency (per
    /// leg) to every transaction issued while `from <= now < until`, drawn
    /// from the plan's own RNG stream.
    Jitter {
        /// Window start, in cycles.
        from: u64,
        /// Window end (exclusive), in cycles.
        until: u64,
        /// Largest extra per-leg latency.
        max_extra: u64,
    },
    /// Crash-stop processor `proc` at cycle `at`: its first event at or
    /// after `at` is discarded, its task is removed, and it never runs
    /// again. Memory effects it completed before `at` remain (crash-stop,
    /// not rollback); whatever operation it was inside is simply lost.
    Crash {
        /// The processor to kill.
        proc: ProcId,
        /// Crash time, in cycles.
        at: u64,
    },
}

/// Why a [`FaultPlan`] was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultPlanError {
    /// A fault names a processor the run does not have.
    ProcOutOfRange {
        /// Description of the offending fault.
        fault: String,
        /// The offending processor id.
        proc: ProcId,
        /// Number of processors in the run.
        procs: usize,
    },
    /// A fault's time window is empty or inverted.
    EmptyWindow {
        /// Description of the offending fault.
        fault: String,
        /// Window start.
        from: u64,
        /// Window end.
        until: u64,
    },
    /// A stall has zero length, so it could never be observed.
    ZeroCycles {
        /// Description of the offending fault.
        fault: String,
    },
    /// A span-triggered stall matches no possible event.
    BadSpanRule {
        /// Description of the offending fault.
        fault: String,
        /// What is wrong with it.
        detail: &'static str,
    },
    /// A region delay points outside allocated simulated memory.
    AddrOutOfRange {
        /// Description of the offending fault.
        fault: String,
        /// First affected word.
        addr: Addr,
        /// Number of affected words.
        words: usize,
        /// Allocated simulated memory size, in words.
        mem_words: usize,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::ProcOutOfRange { fault, proc, procs } => {
                write!(
                    f,
                    "fault plan: {fault}: processor {proc} out of range (run has {procs})"
                )
            }
            FaultPlanError::EmptyWindow { fault, from, until } => {
                write!(f, "fault plan: {fault}: empty window [{from}, {until})")
            }
            FaultPlanError::ZeroCycles { fault } => {
                write!(f, "fault plan: {fault}: stall length must be positive")
            }
            FaultPlanError::BadSpanRule { fault, detail } => {
                write!(f, "fault plan: {fault}: {detail}")
            }
            FaultPlanError::AddrOutOfRange {
                fault,
                addr,
                words,
                mem_words,
            } => {
                write!(
                    f,
                    "fault plan: {fault}: words {addr}..{} outside allocated memory ({mem_words} words)",
                    addr + words
                )
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

fn describe(fault: &Fault) -> String {
    match fault {
        Fault::StallAt { proc, at, cycles } => {
            format!("stall proc {proc} at {at} for {cycles}")
        }
        Fault::StallOnSpan {
            name,
            point,
            occurrence,
            cycles,
        } => format!("stall on span {name:?} {point} #{occurrence} for {cycles}"),
        Fault::RegionDelay {
            addr, from, until, ..
        } => format!("region delay at word {addr} during [{from}, {until})"),
        Fault::Jitter {
            from,
            until,
            max_extra,
        } => format!("jitter up to {max_extra} during [{from}, {until})"),
        Fault::Crash { proc, at } => format!("crash proc {proc} at {at}"),
    }
}

/// A seeded, declarative set of faults to inject into one run.
///
/// Build one with the chainable constructors, then attach it with
/// [`crate::Machine::attach_faults`]:
///
/// ```
/// use funnelpq_sim::fault::{FaultPlan, SpanPoint};
/// use funnelpq_sim::{Machine, MachineConfig};
///
/// let plan = FaultPlan::new(7)
///     .stall_at(0, 100, 5_000)
///     .stall_on_span("mcs-acquire", SpanPoint::End, 1, 2_000)
///     .jitter(0, 1_000_000, 3)
///     .crash(2, 40_000);
/// let mut m = Machine::new(MachineConfig::test_tiny(), 1);
/// m.attach_faults(&plan).unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of the plan's private RNG stream (jitter draws).
    pub seed: u64,
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan whose RNG stream is seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Adds a [`Fault::StallAt`].
    pub fn stall_at(mut self, proc: ProcId, at: u64, cycles: u64) -> Self {
        self.faults.push(Fault::StallAt { proc, at, cycles });
        self
    }

    /// Adds a [`Fault::StallOnSpan`].
    pub fn stall_on_span(
        mut self,
        name: &'static str,
        point: SpanPoint,
        occurrence: u32,
        cycles: u64,
    ) -> Self {
        self.faults.push(Fault::StallOnSpan {
            name,
            point,
            occurrence,
            cycles,
        });
        self
    }

    /// Adds a [`Fault::RegionDelay`].
    pub fn region_delay(
        mut self,
        addr: Addr,
        words: usize,
        from: u64,
        until: u64,
        extra_net: u64,
        extra_service: u64,
    ) -> Self {
        self.faults.push(Fault::RegionDelay {
            addr,
            words,
            from,
            until,
            extra_net,
            extra_service,
        });
        self
    }

    /// Adds a [`Fault::Jitter`].
    pub fn jitter(mut self, from: u64, until: u64, max_extra: u64) -> Self {
        self.faults.push(Fault::Jitter {
            from,
            until,
            max_extra,
        });
        self
    }

    /// Adds a [`Fault::Crash`].
    pub fn crash(mut self, proc: ProcId, at: u64) -> Self {
        self.faults.push(Fault::Crash { proc, at });
        self
    }

    /// Adds an arbitrary [`Fault`].
    pub fn push(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// The plan's faults, in insertion order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// True when the plan injects nothing (attaching it must then be
    /// observationally free: the run stays bit-identical).
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// True when the plan crash-stops any processor — audits must then
    /// tolerate lost in-flight operations and non-quiescent outcomes (a
    /// crashed lock holder wedges everyone behind it).
    pub fn has_crashes(&self) -> bool {
        self.faults.iter().any(|f| matches!(f, Fault::Crash { .. }))
    }

    /// Validates the plan against a run of `procs` processors. Shape-only
    /// checks (windows, cycles) are repeated by
    /// [`crate::Machine::attach_faults`], which also checks memory ranges;
    /// call this where the processor count is known.
    pub fn check(&self, procs: usize) -> Result<(), FaultPlanError> {
        self.check_shape()?;
        for f in &self.faults {
            let proc = match *f {
                Fault::StallAt { proc, .. } | Fault::Crash { proc, .. } => proc,
                _ => continue,
            };
            if proc >= procs {
                return Err(FaultPlanError::ProcOutOfRange {
                    fault: describe(f),
                    proc,
                    procs,
                });
            }
        }
        Ok(())
    }

    /// Machine-independent validity: windows, lengths, span rules.
    pub(crate) fn check_shape(&self) -> Result<(), FaultPlanError> {
        for f in &self.faults {
            match *f {
                Fault::StallAt { cycles, .. } => {
                    if cycles == 0 {
                        return Err(FaultPlanError::ZeroCycles { fault: describe(f) });
                    }
                }
                Fault::StallOnSpan {
                    name,
                    occurrence,
                    cycles,
                    ..
                } => {
                    if cycles == 0 {
                        return Err(FaultPlanError::ZeroCycles { fault: describe(f) });
                    }
                    if name.is_empty() {
                        return Err(FaultPlanError::BadSpanRule {
                            fault: describe(f),
                            detail: "span name must not be empty",
                        });
                    }
                    if occurrence == 0 {
                        return Err(FaultPlanError::BadSpanRule {
                            fault: describe(f),
                            detail: "occurrence is 1-based and must be positive",
                        });
                    }
                }
                Fault::RegionDelay {
                    from,
                    until,
                    extra_net,
                    extra_service,
                    ..
                } => {
                    if from >= until {
                        return Err(FaultPlanError::EmptyWindow {
                            fault: describe(f),
                            from,
                            until,
                        });
                    }
                    if extra_net == 0 && extra_service == 0 {
                        return Err(FaultPlanError::ZeroCycles { fault: describe(f) });
                    }
                }
                Fault::Jitter {
                    from,
                    until,
                    max_extra,
                } => {
                    if from >= until {
                        return Err(FaultPlanError::EmptyWindow {
                            fault: describe(f),
                            from,
                            until,
                        });
                    }
                    if max_extra == 0 {
                        return Err(FaultPlanError::ZeroCycles { fault: describe(f) });
                    }
                }
                Fault::Crash { .. } => {}
            }
        }
        Ok(())
    }

    /// Validates memory ranges against an allocation of `mem_words` words.
    pub(crate) fn check_mem(&self, mem_words: usize) -> Result<(), FaultPlanError> {
        for f in &self.faults {
            if let Fault::RegionDelay { addr, words, .. } = *f {
                if words == 0 || addr + words > mem_words {
                    return Err(FaultPlanError::AddrOutOfRange {
                        fault: describe(f),
                        addr,
                        words,
                        mem_words,
                    });
                }
            }
        }
        Ok(())
    }
}

/// What the fault layer actually injected, for reports and tests
/// ([`crate::Machine::fault_summary`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// Stall windows opened (scheduled and span-triggered).
    pub stalls: u64,
    /// Events deferred out of stall windows.
    pub events_delayed: u64,
    /// Processors crash-stopped.
    pub crashes: u64,
    /// Extra latency cycles added to transactions (region delays + jitter,
    /// counting both network legs).
    pub extra_latency_cycles: u64,
}

struct SpanRule {
    name: &'static str,
    point: SpanPoint,
    /// Countdown to the triggering occurrence; 0 = already fired.
    remaining: u32,
    cycles: u64,
}

/// What to do with one popped event (returned by
/// [`FaultState::gate`]).
pub(crate) enum FaultGate {
    /// Deliver normally.
    Deliver,
    /// Re-push at the given time (the processor is stalled).
    Delay(u64),
    /// First event at or past the processor's crash time: kill the task.
    Kill,
    /// Event for an already-crashed processor: drop it.
    Swallow,
}

/// Live fault-injection state, compiled from a [`FaultPlan`] by
/// [`crate::Machine::attach_faults`].
pub(crate) struct FaultState {
    rng: XorShift64Star,
    /// Dynamic (span-triggered) stall horizon per processor; grown on use.
    stall_until: Vec<u64>,
    /// Static stall windows `(proc, from, until)`.
    windows: Vec<(ProcId, u64, u64)>,
    /// Crash time per processor (`u64::MAX` = never); grown on use.
    crash_at: Vec<u64>,
    /// Processors killed so far, in kill order.
    crashed: Vec<ProcId>,
    span_rules: Vec<SpanRule>,
    /// `(lo, hi, from, until, extra_net, extra_service)` word ranges.
    region_delays: Vec<(Addr, Addr, u64, u64, u64, u64)>,
    jitters: Vec<(u64, u64, u64)>,
    summary: FaultSummary,
}

impl FaultState {
    pub(crate) fn from_plan(plan: &FaultPlan) -> Self {
        let mut st = FaultState {
            rng: XorShift64Star::new(plan.seed ^ 0xFA_17_FA_17_FA_17_FA_17),
            stall_until: Vec::new(),
            windows: Vec::new(),
            crash_at: Vec::new(),
            crashed: Vec::new(),
            span_rules: Vec::new(),
            region_delays: Vec::new(),
            jitters: Vec::new(),
            summary: FaultSummary::default(),
        };
        for f in plan.faults() {
            match *f {
                Fault::StallAt { proc, at, cycles } => {
                    st.windows.push((proc, at, at.saturating_add(cycles)));
                    st.summary.stalls += 1;
                }
                Fault::StallOnSpan {
                    name,
                    point,
                    occurrence,
                    cycles,
                } => st.span_rules.push(SpanRule {
                    name,
                    point,
                    remaining: occurrence,
                    cycles,
                }),
                Fault::RegionDelay {
                    addr,
                    words,
                    from,
                    until,
                    extra_net,
                    extra_service,
                } => st.region_delays.push((
                    addr,
                    addr + words,
                    from,
                    until,
                    extra_net,
                    extra_service,
                )),
                Fault::Jitter {
                    from,
                    until,
                    max_extra,
                } => st.jitters.push((from, until, max_extra)),
                Fault::Crash { proc, at } => {
                    if st.crash_at.len() <= proc {
                        st.crash_at.resize(proc + 1, u64::MAX);
                    }
                    st.crash_at[proc] = st.crash_at[proc].min(at);
                }
            }
        }
        st
    }

    /// Decides the fate of the event `(t, proc)` at the head of the queue.
    pub(crate) fn gate(&mut self, t: u64, proc: ProcId) -> FaultGate {
        if self.crashed.contains(&proc) {
            return FaultGate::Swallow;
        }
        if self.crash_at.get(proc).is_some_and(|&at| t >= at) {
            self.crashed.push(proc);
            self.summary.crashes += 1;
            return FaultGate::Kill;
        }
        let mut until = self.stall_until.get(proc).copied().unwrap_or(0);
        for &(p, from, to) in &self.windows {
            if p == proc && t >= from && t < to {
                until = until.max(to);
            }
        }
        if until > t {
            self.summary.events_delayed += 1;
            FaultGate::Delay(until)
        } else {
            FaultGate::Deliver
        }
    }

    /// Feeds one span event (from [`crate::ProcCtx::span`] /
    /// [`crate::Span::end`]) to the span-triggered stall rules.
    pub(crate) fn on_span(&mut self, proc: ProcId, name: &str, point: SpanPoint, now: u64) {
        for rule in &mut self.span_rules {
            if rule.remaining == 0 || rule.point != point || rule.name != name {
                continue;
            }
            rule.remaining -= 1;
            if rule.remaining == 0 {
                if self.stall_until.len() <= proc {
                    self.stall_until.resize(proc + 1, 0);
                }
                let until = now.saturating_add(rule.cycles);
                self.stall_until[proc] = self.stall_until[proc].max(until);
                self.summary.stalls += 1;
            }
        }
    }

    /// Extra `(net_per_leg, service)` latency for a transaction on `addr`
    /// issued at `now`.
    pub(crate) fn latency_extras(&mut self, addr: Addr, now: u64) -> (u64, u64) {
        let mut net = 0u64;
        let mut service = 0u64;
        for &(lo, hi, from, until, en, es) in &self.region_delays {
            if addr >= lo && addr < hi && now >= from && now < until {
                net += en;
                service += es;
            }
        }
        for &(from, until, max_extra) in &self.jitters {
            if now >= from && now < until {
                net += self.rng.below(max_extra + 1);
            }
        }
        self.summary.extra_latency_cycles += 2 * net + service;
        (net, service)
    }

    /// True while `proc` sits inside a stall window at time `now` (for the
    /// livelock diagnostic).
    pub(crate) fn stalled_until(&self, proc: ProcId, now: u64) -> Option<u64> {
        let mut until = self.stall_until.get(proc).copied().unwrap_or(0);
        for &(p, from, to) in &self.windows {
            if p == proc && now >= from && now < to {
                until = until.max(to);
            }
        }
        (until > now).then_some(until)
    }

    pub(crate) fn crashed(&self) -> &[ProcId] {
        &self.crashed
    }

    pub(crate) fn summary(&self) -> FaultSummary {
        self.summary.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_shape_validation() {
        assert!(FaultPlan::new(1).check(4).is_ok());
        let e = FaultPlan::new(1).stall_at(9, 0, 10).check(4).unwrap_err();
        assert!(matches!(e, FaultPlanError::ProcOutOfRange { proc: 9, .. }));
        let e = FaultPlan::new(1).stall_at(0, 5, 0).check(4).unwrap_err();
        assert!(matches!(e, FaultPlanError::ZeroCycles { .. }));
        let e = FaultPlan::new(1).jitter(10, 10, 3).check(4).unwrap_err();
        assert!(matches!(e, FaultPlanError::EmptyWindow { .. }));
        let e = FaultPlan::new(1)
            .stall_on_span("x", SpanPoint::Begin, 0, 5)
            .check(4)
            .unwrap_err();
        assert!(matches!(e, FaultPlanError::BadSpanRule { .. }));
        assert!(FaultPlanError::ZeroCycles {
            fault: "stall proc 0 at 5 for 0".into()
        }
        .to_string()
        .contains("must be positive"));
    }

    #[test]
    fn plan_mem_validation() {
        let p = FaultPlan::new(1).region_delay(10, 4, 0, 100, 5, 0);
        assert!(p.check_mem(14).is_ok());
        assert!(matches!(
            p.check_mem(13).unwrap_err(),
            FaultPlanError::AddrOutOfRange { .. }
        ));
    }

    #[test]
    fn gate_stall_and_crash() {
        let plan = FaultPlan::new(3).stall_at(1, 100, 50).crash(2, 500);
        let mut st = FaultState::from_plan(&plan);
        assert!(matches!(st.gate(99, 1), FaultGate::Deliver));
        assert!(matches!(st.gate(120, 1), FaultGate::Delay(150)));
        assert!(matches!(st.gate(150, 1), FaultGate::Deliver));
        assert!(matches!(st.gate(120, 0), FaultGate::Deliver));
        assert!(matches!(st.gate(499, 2), FaultGate::Deliver));
        assert!(matches!(st.gate(500, 2), FaultGate::Kill));
        assert!(matches!(st.gate(600, 2), FaultGate::Swallow));
        assert_eq!(st.crashed(), &[2]);
        assert_eq!(st.summary().crashes, 1);
    }

    #[test]
    fn span_rule_counts_occurrences() {
        let plan = FaultPlan::new(3).stall_on_span("lock-hold", SpanPoint::Begin, 2, 40);
        let mut st = FaultState::from_plan(&plan);
        st.on_span(0, "lock-hold", SpanPoint::Begin, 10);
        assert!(matches!(st.gate(20, 0), FaultGate::Deliver));
        st.on_span(3, "lock-hold", SpanPoint::End, 15); // wrong point: ignored
        st.on_span(3, "lock-hold", SpanPoint::Begin, 20);
        assert!(matches!(st.gate(30, 3), FaultGate::Delay(60)));
        assert!(st.stalled_until(3, 30).is_some());
        assert!(st.stalled_until(0, 30).is_none());
    }

    #[test]
    fn latency_extras_window_and_region() {
        let plan = FaultPlan::new(3).region_delay(8, 2, 100, 200, 7, 3);
        let mut st = FaultState::from_plan(&plan);
        assert_eq!(st.latency_extras(8, 150), (7, 3));
        assert_eq!(st.latency_extras(9, 199), (7, 3));
        assert_eq!(st.latency_extras(10, 150), (0, 0)); // outside range
        assert_eq!(st.latency_extras(8, 99), (0, 0)); // outside window
        assert_eq!(st.summary().extra_latency_cycles, 2 * (2 * 7 + 3));
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let draws = |seed| {
            let mut st = FaultState::from_plan(&FaultPlan::new(seed).jitter(0, 1000, 9));
            (0..8)
                .map(|i| st.latency_extras(0, i).0)
                .collect::<Vec<_>>()
        };
        assert_eq!(draws(5), draws(5));
        assert_ne!(draws(5), draws(6));
    }
}
