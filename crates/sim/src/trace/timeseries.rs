//! Windowed time-series over a trace: throughput, queueing delay and
//! per-region queue depth as functions of simulated time.

use funnelpq_util::json::JsonWriter;

use super::{RegionMap, TraceEvent};

/// One fixed-width window of the run.
#[derive(Debug, Clone, PartialEq)]
pub struct Window {
    /// First cycle of the window.
    pub start: u64,
    /// Transactions that *completed* in this window (windowed throughput).
    pub txns: u64,
    /// Total queueing delay of those completed transactions.
    pub queue_delay_cycles: u64,
    /// Per-region cycles spent queued (waiting for a busy line) during this
    /// window, indexed like [`RegionMap::names`]. Dividing by the window
    /// width gives the mean queue depth (Little's law).
    pub region_queued_cycles: Vec<u64>,
    /// Per-region transactions whose line service *started* in this window.
    pub region_accesses: Vec<u64>,
    /// Per-region processor-cycles spent *blocked* (suspended between
    /// [`TraceEvent::TaskBlock`] and [`TraceEvent::TaskResume`]) on a word
    /// of the region during this window. Dividing by the window width gives
    /// the mean number of processors parked on the region — under an MCS
    /// lock this, not line queueing, is where serialization shows, because
    /// waiters spin on their own queue nodes.
    pub region_blocked_cycles: Vec<u64>,
}

impl Window {
    /// Mean queueing delay of the transactions completed in this window.
    pub fn mean_queue_delay(&self) -> f64 {
        if self.txns == 0 {
            0.0
        } else {
            self.queue_delay_cycles as f64 / self.txns as f64
        }
    }
}

/// A trace reduced to fixed-width windows over simulated time.
///
/// Built post-run from the events of a [`super::TraceLog`] plus the
/// machine's [`RegionMap`]; serialized with [`TimeSeries::to_json`] (no
/// external dependencies, like `funnelpq::obs::MetricsSnapshot`).
///
/// The headline signals are **mean queue depth** and **mean blocked depth**
/// per region: for each transaction the queueing interval `[arrival,
/// start)` — and for each suspended task the blocked interval from
/// `TaskBlock` to `TaskResume` — is apportioned to the windows it overlaps,
/// and each window's cycles divided by the window width give the average
/// number of transactions (resp. parked processors) waiting on that
/// region — the time-resolved version of `Machine::hotspots`. A
/// serializing structure (one lock, one root counter) shows a sustained
/// depth near `P`; a funnel spreads the same traffic thin across its
/// layers.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    window: u64,
    region_names: Vec<String>,
    windows: Vec<Window>,
}

impl TimeSeries {
    /// Builds the series with `window`-cycle buckets.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn build(events: &[TraceEvent], regions: &RegionMap, window: u64) -> Self {
        assert!(window > 0, "window must be positive");
        let horizon = events
            .iter()
            .map(|ev| match *ev {
                TraceEvent::Txn { complete, .. } => complete,
                _ => ev.time(),
            })
            .max()
            .unwrap_or(0);
        let n_windows = if events.is_empty() {
            0
        } else {
            (horizon / window + 1) as usize
        };
        let n_regions = regions.len();
        let mut windows: Vec<Window> = (0..n_windows)
            .map(|i| Window {
                start: i as u64 * window,
                txns: 0,
                queue_delay_cycles: 0,
                region_queued_cycles: vec![0; n_regions],
                region_accesses: vec![0; n_regions],
                region_blocked_cycles: vec![0; n_regions],
            })
            .collect();
        // Apportions `[from, to)` worth of `region` cycles into `field`.
        let spread = |windows: &mut Vec<Window>,
                      field: fn(&mut Window) -> &mut Vec<u64>,
                      region: usize,
                      from: u64,
                      to: u64| {
            let mut t = from;
            while t < to {
                let w = (t / window) as usize;
                let w_end = (w as u64 + 1) * window;
                let seg_end = w_end.min(to);
                field(&mut windows[w])[region] += seg_end - t;
                t = seg_end;
            }
        };
        // Open blocked interval per processor: (region, block time).
        let mut blocked: Vec<Option<(usize, u64)>> = Vec::new();
        for ev in events {
            match *ev {
                TraceEvent::Txn {
                    line,
                    arrival,
                    start,
                    complete,
                    ..
                } => {
                    let region = regions.region_of_line(line);
                    let wc = (complete / window) as usize;
                    windows[wc].txns += 1;
                    windows[wc].queue_delay_cycles += start - arrival;
                    let ws = (start / window) as usize;
                    windows[ws].region_accesses[region] += 1;
                    // Apportion the queueing interval [arrival, start)
                    // across the windows it overlaps.
                    spread(
                        &mut windows,
                        |w| &mut w.region_queued_cycles,
                        region,
                        arrival,
                        start,
                    );
                }
                TraceEvent::TaskBlock { proc, addr, time } => {
                    if blocked.len() <= proc {
                        blocked.resize(proc + 1, None);
                    }
                    blocked[proc] = Some((regions.region_of_addr(addr), time));
                }
                TraceEvent::TaskResume { proc, time, .. } => {
                    if let Some(Some((region, from))) = blocked.get_mut(proc).map(Option::take) {
                        spread(
                            &mut windows,
                            |w| &mut w.region_blocked_cycles,
                            region,
                            from,
                            time,
                        );
                    }
                }
                _ => {}
            }
        }
        TimeSeries {
            window,
            region_names: regions.names().to_vec(),
            windows,
        }
    }

    /// Window width in cycles.
    pub fn window_cycles(&self) -> u64 {
        self.window
    }

    /// Region display names, aligned with the per-window vectors.
    pub fn region_names(&self) -> &[String] {
        &self.region_names
    }

    /// The windows, in time order.
    pub fn windows(&self) -> &[Window] {
        &self.windows
    }

    /// Mean queue depth of `region` in window `w` (queued cycles divided by
    /// window width).
    pub fn mean_depth(&self, w: usize, region: usize) -> f64 {
        self.windows[w].region_queued_cycles[region] as f64 / self.window as f64
    }

    /// Maximum windowed mean queue depth of `region` over the run.
    pub fn peak_depth(&self, region: usize) -> f64 {
        self.windows
            .iter()
            .map(|w| w.region_queued_cycles[region] as f64 / self.window as f64)
            .fold(0.0, f64::max)
    }

    /// Fraction of windows in which `region`'s mean queue depth is at least
    /// `threshold` — "how sustained is the contention".
    pub fn sustained_fraction(&self, region: usize, threshold: f64) -> f64 {
        if self.windows.is_empty() {
            return 0.0;
        }
        let hits = self
            .windows
            .iter()
            .filter(|w| w.region_queued_cycles[region] as f64 / self.window as f64 >= threshold)
            .count();
        hits as f64 / self.windows.len() as f64
    }

    /// Mean number of processors blocked on `region` in window `w`.
    pub fn blocked_depth(&self, w: usize, region: usize) -> f64 {
        self.windows[w].region_blocked_cycles[region] as f64 / self.window as f64
    }

    /// Maximum windowed mean blocked depth of `region` over the run.
    pub fn peak_blocked_depth(&self, region: usize) -> f64 {
        self.windows
            .iter()
            .map(|w| w.region_blocked_cycles[region] as f64 / self.window as f64)
            .fold(0.0, f64::max)
    }

    /// Fraction of windows in which at least `threshold` processors were
    /// blocked on `region` on average.
    pub fn sustained_blocked_fraction(&self, region: usize, threshold: f64) -> f64 {
        if self.windows.is_empty() {
            return 0.0;
        }
        let hits = self
            .windows
            .iter()
            .filter(|w| w.region_blocked_cycles[region] as f64 / self.window as f64 >= threshold)
            .count();
        hits as f64 / self.windows.len() as f64
    }

    /// Serializes the series as JSON via the workspace's shared
    /// [`JsonWriter`] (no external deps; dense numeric sample arrays are
    /// comma-packed).
    pub fn to_json(&self) -> String {
        let mut jw = JsonWriter::spaced();
        jw.begin_obj(true);
        jw.field_u64("window_cycles", self.window);
        jw.field_u64("num_windows", self.windows.len() as u64);
        jw.key("regions");
        jw.begin_arr(false);
        for name in &self.region_names {
            jw.str(name);
        }
        jw.end();
        jw.key("windows");
        jw.begin_arr(true);
        for w in &self.windows {
            jw.begin_obj(false);
            jw.field_u64("start", w.start);
            jw.field_u64("txns", w.txns);
            jw.field_u64("queue_delay_cycles", w.queue_delay_cycles);
            jw.field_f64_fixed("mean_queue_delay", w.mean_queue_delay(), 3);
            jw.key("region_accesses");
            jw.begin_arr_compact();
            for &a in &w.region_accesses {
                jw.u64(a);
            }
            jw.end();
            jw.key("region_mean_depth");
            jw.begin_arr_compact();
            for &q in &w.region_queued_cycles {
                jw.f64_fixed(q as f64 / self.window as f64, 3);
            }
            jw.end();
            jw.key("region_blocked_depth");
            jw.begin_arr_compact();
            for &q in &w.region_blocked_cycles {
                jw.f64_fixed(q as f64 / self.window as f64, 3);
            }
            jw.end();
            jw.end();
        }
        jw.end();
        jw.end();
        let mut out = jw.finish();
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::TxnKind;
    use super::*;

    fn map2() -> RegionMap {
        // Lines 0..2 -> region 0 ("hot"), everything else unlabelled.
        RegionMap::new(
            vec!["hot".into(), "<unlabelled>".into()],
            vec![0, 0],
            vec![0, 0],
            0,
        )
    }

    fn txn(line: usize, arrival: u64, start: u64, complete: u64) -> TraceEvent {
        TraceEvent::Txn {
            proc: 0,
            addr: line,
            line,
            kind: TxnKind::Read,
            issue: arrival.saturating_sub(1),
            arrival,
            start,
            release: complete.saturating_sub(1),
            complete,
            mutated: false,
        }
    }

    #[test]
    fn empty_events_give_empty_series() {
        let ts = TimeSeries::build(&[], &map2(), 10);
        assert!(ts.windows().is_empty());
        assert!(ts.to_json().contains("\"num_windows\": 0"));
    }

    #[test]
    fn queueing_interval_splits_across_windows() {
        // Queued from cycle 5 to cycle 25 on a region-0 line: windows of 10
        // get 5, 10 and 5 queued cycles.
        let evs = [txn(0, 5, 25, 30)];
        let ts = TimeSeries::build(&evs, &map2(), 10);
        assert_eq!(ts.windows().len(), 4);
        assert_eq!(ts.windows()[0].region_queued_cycles[0], 5);
        assert_eq!(ts.windows()[1].region_queued_cycles[0], 10);
        assert_eq!(ts.windows()[2].region_queued_cycles[0], 5);
        assert_eq!(ts.windows()[3].region_queued_cycles[0], 0);
        // Completion lands in window 3; service started in window 2.
        assert_eq!(ts.windows()[3].txns, 1);
        assert_eq!(ts.windows()[3].queue_delay_cycles, 20);
        assert_eq!(ts.windows()[2].region_accesses[0], 1);
        assert!((ts.mean_depth(1, 0) - 1.0).abs() < 1e-9);
        assert!((ts.peak_depth(0) - 1.0).abs() < 1e-9);
        assert!((ts.sustained_fraction(0, 1.0) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn unmapped_lines_pool_under_unlabelled() {
        let evs = [txn(9, 0, 4, 6)];
        let ts = TimeSeries::build(&evs, &map2(), 10);
        let unl = 1;
        assert_eq!(ts.windows()[0].region_queued_cycles[unl], 4);
        assert_eq!(ts.windows()[0].region_accesses[unl], 1);
    }

    #[test]
    fn json_shape() {
        let evs = [txn(0, 5, 25, 30)];
        let ts = TimeSeries::build(&evs, &map2(), 10);
        let j = ts.to_json();
        assert!(j.starts_with('{') && j.trim_end().ends_with('}'));
        assert!(j.contains("\"regions\": [\"hot\", \"<unlabelled>\"]"));
        assert!(j.contains("\"region_mean_depth\""));
        assert!(j.contains("\"region_blocked_depth\""));
    }

    #[test]
    fn blocked_intervals_split_across_windows() {
        // Proc 2 parks on a region-0 word from cycle 5 to cycle 25.
        let evs = [
            TraceEvent::TaskBlock {
                proc: 2,
                addr: 0,
                time: 5,
            },
            TraceEvent::TaskResume {
                proc: 2,
                addr: 0,
                time: 25,
            },
            // An unmatched resume (task never blocked) must be ignored.
            TraceEvent::TaskResume {
                proc: 7,
                addr: 0,
                time: 8,
            },
        ];
        let ts = TimeSeries::build(&evs, &map2(), 10);
        assert_eq!(ts.windows()[0].region_blocked_cycles[0], 5);
        assert_eq!(ts.windows()[1].region_blocked_cycles[0], 10);
        assert_eq!(ts.windows()[2].region_blocked_cycles[0], 5);
        assert!((ts.blocked_depth(1, 0) - 1.0).abs() < 1e-9);
        assert!((ts.peak_blocked_depth(0) - 1.0).abs() < 1e-9);
        assert!((ts.sustained_blocked_fraction(0, 1.0) - 1.0 / 3.0).abs() < 1e-9);
    }
}
