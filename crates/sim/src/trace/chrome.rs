//! Chrome Trace Format export: render a trace as per-processor timelines,
//! per-hot-line occupancy rows, and per-region queue-depth counters that
//! load directly in `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! Row shapes and document framing come from the workspace-shared
//! [`ChromeTrace`] builder, so simulator traces and the native
//! `funnelpq::trace` drain render identically in the same UI.

use std::collections::BTreeMap;

use funnelpq_util::chrome::{Arg, ChromeTrace};

use super::{RegionMap, TimeSeries, TraceEvent};

const PID_PROCESSORS: u32 = 0;
const PID_LINES: u32 = 1;
const PID_COUNTERS: u32 = 2;

/// Serializes `events` as a Chrome Trace Format JSON document.
///
/// Rows rendered:
///
/// * **Process 0 "processors"** — one thread per simulated processor.
///   User spans ([`crate::ProcCtx::span`]) become `B`/`E` duration events;
///   each memory transaction becomes an `X` slice from issue to completion
///   with its line, region and queueing delay in `args`.
/// * **Process 1 "memory lines"** — one thread per hot cache line (the
///   `hot_lines` lines with the most queueing delay), showing back-to-back
///   `X` slices for the line's service occupancy. A serialized line renders
///   as a solid bar; funnel layers render as sparse stripes.
/// * **Process 2 "queue depth"** — when a [`TimeSeries`] is supplied, one
///   `C` counter track per labelled region sampling windowed mean queue
///   depth, plus one per region with blocked processors sampling mean
///   blocked depth (waiters parked on the region, e.g. an MCS queue).
///
/// Timestamps are simulated cycles written as microseconds (Perfetto wants
/// µs; the unit label is cosmetic — read "1 µs" as "1 cycle").
pub fn chrome_trace_json(
    events: &[TraceEvent],
    regions: &RegionMap,
    hot_lines: usize,
    counters: Option<&TimeSeries>,
) -> String {
    let mut t = ChromeTrace::new();
    t.process_name(PID_PROCESSORS, "processors");

    // Per-processor rows.
    let mut procs_seen: Vec<bool> = Vec::new();
    for ev in events {
        let p = ev.proc();
        if p >= procs_seen.len() {
            procs_seen.resize(p + 1, false);
        }
        procs_seen[p] = true;
    }
    for (p, seen) in procs_seen.iter().enumerate() {
        if *seen {
            t.thread_name(PID_PROCESSORS, p as u64, &format!("proc {p}"));
        }
    }

    // Rank lines by queueing delay for the occupancy rows.
    let mut line_delay: BTreeMap<usize, u64> = BTreeMap::new();
    for ev in events {
        if let TraceEvent::Txn {
            line,
            arrival,
            start,
            ..
        } = *ev
        {
            *line_delay.entry(line).or_insert(0) += start - arrival;
        }
    }
    let mut ranked: Vec<(usize, u64)> = line_delay.into_iter().collect();
    ranked.sort_by_key(|&(line, delay)| (std::cmp::Reverse(delay), line));
    ranked.truncate(hot_lines);
    let hot: BTreeMap<usize, ()> = ranked.iter().map(|&(line, _)| (line, ())).collect();
    if !hot.is_empty() {
        t.process_name(PID_LINES, "memory lines");
        for &(line, _) in &ranked {
            t.thread_name(
                PID_LINES,
                line as u64,
                &format!("line {} \u{2014} {}", line, regions.name_of_line(line)),
            );
        }
    }

    // Event rows.
    for ev in events {
        match *ev {
            TraceEvent::Txn {
                proc,
                addr,
                line,
                kind,
                issue,
                arrival,
                start,
                release,
                complete,
                ..
            } => {
                t.complete(
                    kind.name(),
                    "txn",
                    PID_PROCESSORS,
                    proc as u64,
                    issue,
                    complete - issue,
                    &[
                        ("addr", Arg::U64(addr as u64)),
                        ("line", Arg::U64(line as u64)),
                        ("queued", Arg::U64(start - arrival)),
                    ],
                );
                if hot.contains_key(&line) {
                    t.complete(
                        kind.name(),
                        "line",
                        PID_LINES,
                        line as u64,
                        start,
                        release - start,
                        &[
                            ("proc", Arg::U64(proc as u64)),
                            ("queued", Arg::U64(start - arrival)),
                        ],
                    );
                }
            }
            TraceEvent::SpanBegin { proc, name, time } => {
                t.begin(name, "span", PID_PROCESSORS, proc as u64, time);
            }
            TraceEvent::SpanEnd { proc, name, time } => {
                t.end(name, "span", PID_PROCESSORS, proc as u64, time);
            }
            TraceEvent::TaskSpawn { proc, time } => {
                t.instant("spawn", "sched", PID_PROCESSORS, proc as u64, time, &[]);
            }
            TraceEvent::TaskBlock { proc, time, addr } => {
                t.instant(
                    "block",
                    "sched",
                    PID_PROCESSORS,
                    proc as u64,
                    time,
                    &[("addr", Arg::U64(addr as u64))],
                );
            }
            TraceEvent::TaskResume { proc, time, addr } => {
                t.instant(
                    "resume",
                    "sched",
                    PID_PROCESSORS,
                    proc as u64,
                    time,
                    &[("addr", Arg::U64(addr as u64))],
                );
            }
            TraceEvent::TaskComplete { proc, time } => {
                t.instant("complete", "sched", PID_PROCESSORS, proc as u64, time, &[]);
            }
        }
    }

    // Windowed queue-depth and blocked-depth counters.
    if let Some(ts) = counters {
        let queued: Vec<usize> = (0..ts.region_names().len())
            .filter(|&r| ts.windows().iter().any(|w| w.region_queued_cycles[r] > 0))
            .collect();
        let parked: Vec<usize> = (0..ts.region_names().len())
            .filter(|&r| ts.windows().iter().any(|w| w.region_blocked_cycles[r] > 0))
            .collect();
        if !queued.is_empty() || !parked.is_empty() {
            t.process_name(PID_COUNTERS, "queue depth");
        }
        for &r in &queued {
            let name = format!("depth: {}", ts.region_names()[r]);
            for w in ts.windows() {
                let depth = w.region_queued_cycles[r] as f64 / ts.window_cycles() as f64;
                t.counter(
                    &name,
                    PID_COUNTERS,
                    0,
                    w.start,
                    &[("depth", Arg::F3(depth))],
                );
            }
        }
        for &r in &parked {
            let name = format!("blocked: {}", ts.region_names()[r]);
            for w in ts.windows() {
                let procs = w.region_blocked_cycles[r] as f64 / ts.window_cycles() as f64;
                t.counter(
                    &name,
                    PID_COUNTERS,
                    0,
                    w.start,
                    &[("procs", Arg::F3(procs))],
                );
            }
        }
    }

    t.finish()
}

#[cfg(test)]
mod tests {
    use super::super::{TraceEvent, TxnKind};
    use super::*;

    #[test]
    fn renders_processor_and_line_rows() {
        let regions = RegionMap::new(
            vec!["lock".into(), "<unlabelled>".into()],
            vec![0],
            vec![0],
            0,
        );
        let events = [
            TraceEvent::SpanBegin {
                proc: 0,
                name: "lock-hold",
                time: 0,
            },
            TraceEvent::Txn {
                proc: 0,
                addr: 0,
                line: 0,
                kind: TxnKind::Cas,
                issue: 0,
                arrival: 10,
                start: 12,
                release: 16,
                complete: 26,
                mutated: true,
            },
            TraceEvent::SpanEnd {
                proc: 0,
                name: "lock-hold",
                time: 26,
            },
        ];
        let j = chrome_trace_json(&events, &regions, 8, None);
        assert!(j.starts_with("{\"displayTimeUnit\""));
        assert!(j.contains("\"traceEvents\":["));
        assert!(j.contains("\"thread_name\"") && j.contains("proc 0"));
        assert!(j.contains("line 0 \u{2014} lock"));
        assert!(j.contains("\"ph\":\"B\"") && j.contains("\"ph\":\"E\""));
        assert!(j.contains("\"ph\":\"X\""));
        assert!(j.contains("\"queued\":2"));
        // No trailing comma before the closing bracket.
        assert!(!j.contains(",\n]"));
    }

    #[test]
    fn hot_line_cap_respected() {
        let regions = RegionMap::new(vec!["<unlabelled>".into()], vec![], vec![], 0);
        let mk = |line: usize, queued: u64| TraceEvent::Txn {
            proc: 0,
            addr: line,
            line,
            kind: TxnKind::Read,
            issue: 0,
            arrival: 1,
            start: 1 + queued,
            release: 2 + queued,
            complete: 3 + queued,
            mutated: false,
        };
        let events = [mk(0, 5), mk(1, 50), mk(2, 1)];
        let j = chrome_trace_json(&events, &regions, 1, None);
        assert!(j.contains("line 1 \u{2014}"));
        assert!(!j.contains("line 0 \u{2014}"));
        assert!(!j.contains("line 2 \u{2014}"));
    }
}
