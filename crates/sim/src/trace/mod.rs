//! Simulator tracing: typed events, a pluggable [`Tracer`] hook, and the
//! in-memory [`TraceLog`] the exporters consume.
//!
//! The machine's end-of-run [`crate::Stats`] say *where* contention went;
//! this module says *when*. Every shared-memory transaction, scheduler
//! action and user span can be emitted as a [`TraceEvent`] to a tracer
//! attached with [`crate::Machine::attach_tracer`], then rendered as a
//! windowed time-series ([`TimeSeries`]) or a Chrome-trace timeline
//! ([`chrome_trace_json`]) that loads in `chrome://tracing` / Perfetto.
//!
//! # Cost model
//!
//! Tracing mirrors the cold-split pattern of `funnelpq::obs`'s `Recorder`:
//! with no tracer attached (the default) the transaction fast path pays a
//! single pointer-presence test — the event construction and the virtual
//! call live in `#[cold]`, never-inlined functions. Tracing is purely
//! observational either way: attaching a tracer changes no simulated
//! schedule, so traced and untraced runs produce bit-identical [`crate::Stats`]
//! (enforced by differential tests).
//!
//! # Example
//!
//! ```
//! use funnelpq_sim::trace::{TimeSeries, TraceLog};
//! use funnelpq_sim::{Machine, MachineConfig};
//!
//! let mut m = Machine::new(MachineConfig::test_tiny(), 1);
//! let word = m.alloc(1);
//! m.label(word, 1, "shared word");
//! let log = TraceLog::new();
//! m.attach_tracer(log.handle());
//! for _ in 0..2 {
//!     let ctx = m.ctx();
//!     m.spawn(async move {
//!         let _span = ctx.span("increment");
//!         let v = ctx.read(word).await;
//!         ctx.write(word, v + 1).await;
//!     });
//! }
//! assert!(m.run().is_quiescent());
//! let regions = m.region_map();
//! let ts = TimeSeries::build(&log.events(), &regions, 8);
//! assert!(ts.windows().iter().map(|w| w.txns).sum::<u64>() > 0);
//! ```

mod chrome;
mod timeseries;

pub use chrome::chrome_trace_json;
pub use timeseries::{TimeSeries, Window};

use std::cell::RefCell;
use std::rc::Rc;

use crate::machine::{Addr, ProcId};

/// The kind of one shared-memory transaction, as seen by tracers (the
/// public mirror of the machine's internal operation enum; payload values
/// are not part of the trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnKind {
    /// A read.
    Read,
    /// A write.
    Write,
    /// A register-to-memory swap.
    Swap,
    /// A compare-and-swap.
    Cas,
    /// A fetch-and-add.
    Faa,
}

impl TxnKind {
    /// Lower-case display name (`"read"`, `"cas"`, ...).
    pub fn name(&self) -> &'static str {
        match self {
            TxnKind::Read => "read",
            TxnKind::Write => "write",
            TxnKind::Swap => "swap",
            TxnKind::Cas => "cas",
            TxnKind::Faa => "faa",
        }
    }
}

/// One traced simulator event. Times are simulated cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// One shared-memory transaction, with its full latency decomposition:
    /// issued at `issue`, it reaches the memory module at `arrival`
    /// (`issue + net_latency`), waits behind earlier transactions until
    /// `start` (`start - arrival` is its queueing delay — zero when the
    /// line was free), occupies the line until `release`
    /// (`start + service`), and the reply lands at `complete`
    /// (`release + net_latency`).
    Txn {
        /// Issuing processor.
        proc: ProcId,
        /// Target word address.
        addr: Addr,
        /// Target cache line (`addr >> line_shift`).
        line: usize,
        /// Operation kind.
        kind: TxnKind,
        /// Cycle the processor issued the transaction.
        issue: u64,
        /// Cycle the transaction reached the memory module.
        arrival: u64,
        /// Cycle the line started serving it (queueing ends).
        start: u64,
        /// Cycle the line became free again.
        release: u64,
        /// Cycle the reply reached the processor.
        complete: u64,
        /// Whether the operation changed the word (wakes spinners).
        mutated: bool,
    },
    /// A task was spawned for processor `proc`.
    TaskSpawn {
        /// The new processor/task id.
        proc: ProcId,
        /// Spawn time (0 for tasks spawned before the run).
        time: u64,
    },
    /// Processor `proc` suspended, spinning on a cached copy of `addr`.
    TaskBlock {
        /// The blocking processor.
        proc: ProcId,
        /// The word it is waiting to see change.
        addr: Addr,
        /// Cycle it registered as a waiter.
        time: u64,
    },
    /// Processor `proc` was woken by an invalidation of `addr`.
    TaskResume {
        /// The woken processor.
        proc: ProcId,
        /// The word whose mutation woke it.
        addr: Addr,
        /// Cycle the wake-up lands (the resumed task's next event time).
        time: u64,
    },
    /// Processor `proc`'s task ran to completion.
    TaskComplete {
        /// The finished processor.
        proc: ProcId,
        /// Completion time.
        time: u64,
    },
    /// A user span (see [`crate::ProcCtx::span`]) opened.
    SpanBegin {
        /// The processor the span belongs to.
        proc: ProcId,
        /// Static span label, e.g. `"lock-hold"`.
        name: &'static str,
        /// Cycle the span opened.
        time: u64,
    },
    /// A user span closed.
    SpanEnd {
        /// The processor the span belongs to.
        proc: ProcId,
        /// Static span label, matching the corresponding begin.
        name: &'static str,
        /// Cycle the span closed.
        time: u64,
    },
}

impl TraceEvent {
    /// A representative timestamp for ordering: the issue time for
    /// transactions, the event time otherwise.
    pub fn time(&self) -> u64 {
        match *self {
            TraceEvent::Txn { issue, .. } => issue,
            TraceEvent::TaskSpawn { time, .. }
            | TraceEvent::TaskBlock { time, .. }
            | TraceEvent::TaskResume { time, .. }
            | TraceEvent::TaskComplete { time, .. }
            | TraceEvent::SpanBegin { time, .. }
            | TraceEvent::SpanEnd { time, .. } => time,
        }
    }

    /// The processor the event belongs to.
    pub fn proc(&self) -> ProcId {
        match *self {
            TraceEvent::Txn { proc, .. }
            | TraceEvent::TaskSpawn { proc, .. }
            | TraceEvent::TaskBlock { proc, .. }
            | TraceEvent::TaskResume { proc, .. }
            | TraceEvent::TaskComplete { proc, .. }
            | TraceEvent::SpanBegin { proc, .. }
            | TraceEvent::SpanEnd { proc, .. } => proc,
        }
    }
}

/// Receiver for simulator events, attached with
/// [`crate::Machine::attach_tracer`].
///
/// The machine is single-threaded, so tracers need not be `Send`; they are
/// called synchronously from the transaction path and scheduler. With no
/// tracer attached the hot path pays only a pointer-presence test (the
/// trait-object analogue of `funnelpq::obs::Recorder::ENABLED`).
pub trait Tracer: 'static {
    /// Receives one event. Only called while the tracer is attached.
    fn event(&mut self, ev: &TraceEvent);
}

/// The standard tracer: an in-memory, shareable event log.
///
/// `TraceLog` is a cheap handle over a shared buffer: clone it, attach one
/// clone to the machine with [`TraceLog::handle`], and read the events from
/// the clone you kept after the run.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    events: Rc<RefCell<Vec<TraceEvent>>>,
}

impl TraceLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        TraceLog::default()
    }

    /// A boxed clone of this log, ready for
    /// [`crate::Machine::attach_tracer`]. Events recorded through the
    /// machine are visible from this handle.
    pub fn handle(&self) -> Box<dyn Tracer> {
        Box::new(self.clone())
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of all recorded events, in emission order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.borrow().clone()
    }

    /// Takes the recorded events out of the log, leaving it empty.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.borrow_mut())
    }
}

impl Tracer for TraceLog {
    fn event(&mut self, ev: &TraceEvent) {
        self.events.borrow_mut().push(*ev);
    }
}

/// A resolved mapping from cache lines to labelled memory regions, built by
/// [`crate::Machine::region_map`] after the structures under test are
/// allocated and labelled.
///
/// Distinct labelled ranges sharing a display name (one label per bin, per
/// lock, per tree level) merge into one region, exactly as in
/// [`crate::Machine::hotspots`] reports. Lines outside any labelled range
/// map to the final `"<unlabelled>"` region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionMap {
    /// Region display names; the last entry is always `"<unlabelled>"`.
    names: Vec<String>,
    /// Region index per cache line.
    line_region: Vec<u32>,
    /// NUMA home node per cache line (all zeros on a 1-node machine).
    line_home: Vec<u32>,
    /// `addr >> line_shift` is the cache line of a word address.
    line_shift: u32,
}

impl RegionMap {
    pub(crate) fn new(
        names: Vec<String>,
        line_region: Vec<u32>,
        line_home: Vec<u32>,
        line_shift: u32,
    ) -> Self {
        debug_assert_eq!(names.last().map(String::as_str), Some("<unlabelled>"));
        RegionMap {
            names,
            line_region,
            line_home,
            line_shift,
        }
    }

    /// Region display names, `"<unlabelled>"` last.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of regions (including `"<unlabelled>"`).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Never true: the `"<unlabelled>"` region always exists.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Index of the `"<unlabelled>"` region.
    pub fn unlabelled(&self) -> usize {
        self.names.len() - 1
    }

    /// Region index of a cache line (unlabelled for lines past the mapped
    /// range, e.g. memory allocated after the map was built).
    pub fn region_of_line(&self, line: usize) -> usize {
        self.line_region
            .get(line)
            .map(|&r| r as usize)
            .unwrap_or_else(|| self.unlabelled())
    }

    /// Display name of a cache line's region.
    pub fn name_of_line(&self, line: usize) -> &str {
        &self.names[self.region_of_line(line)]
    }

    /// Region index of a word address (e.g. the `addr` of a
    /// [`TraceEvent::TaskBlock`]).
    pub fn region_of_addr(&self, addr: Addr) -> usize {
        self.region_of_line(addr >> self.line_shift)
    }

    /// NUMA home node of a cache line (0 for lines past the mapped range
    /// and on 1-node machines).
    pub fn node_of_line(&self, line: usize) -> usize {
        self.line_home.get(line).map(|&n| n as usize).unwrap_or(0)
    }

    /// NUMA home node of a word address.
    pub fn node_of_addr(&self, addr: Addr) -> usize {
        self.node_of_line(addr >> self.line_shift)
    }

    /// First region whose name contains `pat` (for tests and reports).
    pub fn find(&self, pat: &str) -> Option<usize> {
        self.names.iter().position(|n| n.contains(pat))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_log_records_and_takes() {
        let log = TraceLog::new();
        let mut h = log.clone();
        assert!(log.is_empty());
        h.event(&TraceEvent::TaskSpawn { proc: 3, time: 0 });
        assert_eq!(log.len(), 1);
        let evs = log.take();
        assert_eq!(evs, vec![TraceEvent::TaskSpawn { proc: 3, time: 0 }]);
        assert!(log.is_empty());
    }

    #[test]
    fn event_accessors() {
        let ev = TraceEvent::Txn {
            proc: 7,
            addr: 42,
            line: 21,
            kind: TxnKind::Cas,
            issue: 100,
            arrival: 110,
            start: 130,
            release: 134,
            complete: 144,
            mutated: true,
        };
        assert_eq!(ev.time(), 100);
        assert_eq!(ev.proc(), 7);
        assert_eq!(TxnKind::Faa.name(), "faa");
    }
}
