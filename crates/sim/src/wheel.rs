//! Event queues for the simulator's scheduler: an indexed timer wheel for
//! production runs and a linear-scan reference list for differential tests.
//!
//! Both implementations expose the same contract: events are `(time, seq,
//! task)` triples, and [`EventQueue::pop`] always returns the event with the
//! smallest `(time, seq)` — times break ties by insertion sequence number.
//! The simulated schedule, and therefore every simulated result, is a pure
//! function of that ordering, so the two queues are interchangeable
//! bit-for-bit. `crates/sim/tests/memory_props.rs` enforces this by running
//! identical workloads against both.
//!
//! # Why a wheel
//!
//! The hot loop of a run pops one event and pushes one or two per simulated
//! memory transaction. A binary heap pays `O(log n)` comparisons and a
//! pointer-chasing sift per operation; at P=1024 the heap holds ~1k events
//! and every transaction churns it. Almost all scheduling deltas, however,
//! are tiny — a network round trip plus line service is a few tens of
//! cycles — so a calendar/timer wheel indexes events by their wake cycle
//! directly: push is "append to `slots[time & MASK]`", pop is "find the
//! next occupied slot" via a hierarchical occupancy bitmap. Both are O(1)
//! for any delta under the wheel horizon ([`WHEEL_SLOTS`] cycles); rarer
//! far-future events overflow into a small std `BinaryHeap` and migrate
//! into the wheel as the horizon advances.
//!
//! # Ordering invariants
//!
//! * All wheel-resident events have times in `[floor, floor + WHEEL_SLOTS)`,
//!   where `floor` never exceeds the next event's time. Within that window
//!   each slot maps to exactly one time, so one slot never mixes times.
//! * A slot's `Vec` is drained front to back. Appends happen with strictly
//!   increasing `seq`, so a slot is automatically sorted by `seq`.
//! * Overflow events migrate into the wheel *before* any same-time event
//!   can be pushed directly (a direct push at time `t` requires
//!   `t < floor + WHEEL_SLOTS`, and migration runs whenever `floor`
//!   advances), so migrated events land ahead of later same-time pushes —
//!   exactly their `seq` order.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::machine::ProcId;

/// One scheduled wake-up: `(wake time, tie-break seq, task)`.
pub(crate) type Event = (u64, u64, ProcId);

/// Number of slots in the wheel: events within this many cycles of the
/// current floor are indexed directly. Must be a power of two.
const WHEEL_SLOTS: usize = 1024;
const WHEEL_MASK: u64 = (WHEEL_SLOTS as u64) - 1;
/// Occupancy bitmap words (64 slots per word).
const BITMAP_WORDS: usize = WHEEL_SLOTS / 64;

/// One wheel slot: a FIFO of same-time events, drained via `head` so the
/// backing `Vec`'s capacity is retained across rotations.
#[derive(Default)]
struct Slot {
    head: usize,
    events: Vec<Event>,
}

/// The indexed timer wheel.
pub(crate) struct EventWheel {
    slots: Vec<Slot>,
    occupied: [u64; BITMAP_WORDS],
    /// Lower bound on every queued event's time; all wheel-resident events
    /// lie in `[floor, floor + WHEEL_SLOTS)`.
    floor: u64,
    wheel_len: usize,
    /// Events beyond the wheel horizon, ordered by `(time, seq)`.
    overflow: BinaryHeap<Reverse<Event>>,
    /// Events *behind* the floor — e.g. a task spawned mid-run is scheduled
    /// at time 0. Every past event's time is strictly below `floor` (floor
    /// only grows), hence strictly below every wheel/overflow event, so pop
    /// serves this heap first and `(time, seq)` order is preserved exactly.
    past: BinaryHeap<Reverse<Event>>,
}

impl EventWheel {
    pub(crate) fn new() -> Self {
        EventWheel {
            slots: (0..WHEEL_SLOTS).map(|_| Slot::default()).collect(),
            occupied: [0; BITMAP_WORDS],
            floor: 0,
            wheel_len: 0,
            overflow: BinaryHeap::new(),
            past: BinaryHeap::new(),
        }
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.wheel_len + self.overflow.len() + self.past.len()
    }

    fn slot_push(&mut self, ev: Event) {
        let idx = (ev.0 & WHEEL_MASK) as usize;
        debug_assert!(ev.0 >= self.floor && ev.0 < self.floor + WHEEL_SLOTS as u64);
        debug_assert!(self.slots[idx]
            .events
            .last()
            .is_none_or(|&(t, s, _)| t == ev.0 && s < ev.1));
        self.slots[idx].events.push(ev);
        self.occupied[idx / 64] |= 1 << (idx % 64);
        self.wheel_len += 1;
    }

    pub(crate) fn push(&mut self, ev: Event) {
        // `floor` is only advanced by `pop` (to the popped — i.e. minimum —
        // time), never here: a push may be followed by another push at an
        // earlier time in the same simulation turn, so any rebase based on
        // one event's time could overshoot. An empty wheel with a far-future
        // push just parks it in overflow until the next pop rebases.
        if ev.0 < self.floor {
            // A wake behind the floor (e.g. a task spawned mid-run at time
            // 0): must pop before everything currently queued.
            self.past.push(Reverse(ev));
        } else if ev.0 < self.floor + WHEEL_SLOTS as u64 {
            self.slot_push(ev);
        } else {
            self.overflow.push(Reverse(ev));
        }
    }

    /// Moves every overflow event now inside the horizon into the wheel, in
    /// `(time, seq)` order.
    fn migrate(&mut self) {
        while let Some(&Reverse(ev)) = self.overflow.peek() {
            if ev.0 >= self.floor + WHEEL_SLOTS as u64 {
                break;
            }
            self.overflow.pop();
            self.slot_push(ev);
        }
    }

    /// Finds the first occupied slot at or after `start`, wrapping. Slots
    /// map to times `[floor, floor + WHEEL_SLOTS)` in circular order from
    /// `floor & MASK`, so the first occupied slot holds the earliest time.
    fn find_occupied(&self, start: usize) -> usize {
        let (w0, b0) = (start / 64, start % 64);
        let first = self.occupied[w0] & (!0u64 << b0);
        if first != 0 {
            return w0 * 64 + first.trailing_zeros() as usize;
        }
        for i in 1..=BITMAP_WORDS {
            let w = (w0 + i) % BITMAP_WORDS;
            let word = if w == w0 {
                // Wrapped fully: only bits below the start offset remain.
                self.occupied[w] & !(!0u64 << b0)
            } else {
                self.occupied[w]
            };
            if word != 0 {
                return w * 64 + word.trailing_zeros() as usize;
            }
        }
        unreachable!("find_occupied on an empty wheel");
    }

    pub(crate) fn pop(&mut self) -> Option<Event> {
        if let Some(Reverse(ev)) = self.past.pop() {
            return Some(ev);
        }
        if self.wheel_len == 0 {
            let &Reverse((t, _, _)) = self.overflow.peek()?;
            self.floor = t;
            self.migrate();
        }
        let idx = self.find_occupied((self.floor & WHEEL_MASK) as usize);
        let slot = &mut self.slots[idx];
        let ev = slot.events[slot.head];
        slot.head += 1;
        if slot.head == slot.events.len() {
            slot.events.clear();
            slot.head = 0;
            self.occupied[idx / 64] &= !(1 << (idx % 64));
        }
        self.wheel_len -= 1;
        // Advance the horizon to the popped time and let any overflow events
        // it now covers in, so no later direct push at an equal time can
        // jump ahead of an overflowed event with a smaller seq.
        self.floor = ev.0;
        self.migrate();
        Some(ev)
    }
}

/// The naive reference queue: an unordered `Vec`, popped by a full linear
/// scan for the minimum `(time, seq)`. Obviously correct and obviously
/// slow; exists solely as the differential-testing oracle for
/// [`EventWheel`].
pub(crate) struct LinearEventList {
    events: Vec<Event>,
}

impl LinearEventList {
    pub(crate) fn new() -> Self {
        LinearEventList { events: Vec::new() }
    }

    pub(crate) fn push(&mut self, ev: Event) {
        self.events.push(ev);
    }

    pub(crate) fn pop(&mut self) -> Option<Event> {
        let best = self
            .events
            .iter()
            .enumerate()
            .min_by_key(|&(_, &(t, s, _))| (t, s))?
            .0;
        Some(self.events.swap_remove(best))
    }
}

/// The scheduler's event queue; which implementation backs it is chosen at
/// machine construction ([`crate::Machine::new`] vs
/// [`crate::Machine::new_reference`]).
pub(crate) enum EventQueue {
    Wheel(EventWheel),
    Linear(LinearEventList),
}

impl EventQueue {
    pub(crate) fn push(&mut self, ev: Event) {
        match self {
            EventQueue::Wheel(w) => w.push(ev),
            EventQueue::Linear(l) => l.push(ev),
        }
    }

    pub(crate) fn pop(&mut self) -> Option<Event> {
        match self {
            EventQueue::Wheel(w) => w.pop(),
            EventQueue::Linear(l) => l.pop(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use funnelpq_util::XorShift64Star;

    /// Drives a wheel and the linear oracle with an identical randomized
    /// push/pop schedule and asserts identical pop sequences, covering
    /// same-cycle ties, horizon-crossing deltas, and empty-queue re-basing.
    #[test]
    fn wheel_matches_linear_oracle() {
        for seed in 0..8u64 {
            let mut rng = XorShift64Star::new(seed);
            let mut wheel = EventWheel::new();
            let mut lin = LinearEventList::new();
            let mut now = 0u64;
            let mut seq = 0u64;
            for step in 0..4000 {
                if wheel.len() == 0 || rng.bool_with(0.55) {
                    // Mostly short deltas, occasionally far beyond the
                    // horizon, sometimes exactly zero (wake at `now`), and
                    // sometimes *behind* now — the mid-run spawn case.
                    let time = match rng.below(11) {
                        0 => now,
                        1..=6 => now + rng.below(64),
                        7 | 8 => now + rng.below(WHEEL_SLOTS as u64 * 2),
                        9 => now + rng.below(WHEEL_SLOTS as u64 * 7),
                        _ => now.saturating_sub(rng.below(5000)),
                    };
                    seq += 1;
                    let ev = (time, seq, step as usize);
                    wheel.push(ev);
                    lin.push(ev);
                } else {
                    let a = wheel.pop();
                    let b = lin.pop();
                    assert_eq!(a, b, "seed {seed} step {step}");
                    now = a.unwrap().0;
                }
            }
            while wheel.len() > 0 {
                assert_eq!(wheel.pop(), lin.pop());
            }
            assert_eq!(lin.pop(), None);
            assert_eq!(wheel.pop(), None);
        }
    }

    #[test]
    fn equal_times_pop_in_seq_order() {
        let mut w = EventWheel::new();
        for seq in 0..100u64 {
            w.push((5, seq, seq as usize));
        }
        for seq in 0..100u64 {
            assert_eq!(w.pop(), Some((5, seq, seq as usize)));
        }
    }

    #[test]
    fn overflow_then_direct_push_preserves_seq_order() {
        let mut w = EventWheel::new();
        let far = WHEEL_SLOTS as u64 + 500;
        w.push((far, 1, 10)); // beyond horizon: overflows
        w.push((10, 2, 11)); // near event; popping it advances the floor
        assert_eq!(w.pop(), Some((10, 2, 11)));
        // Horizon now covers `far`; a direct push at the same time must pop
        // after the migrated overflow event despite arriving later.
        w.push((far, 3, 12));
        assert_eq!(w.pop(), Some((far, 1, 10)));
        assert_eq!(w.pop(), Some((far, 3, 12)));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn push_behind_floor_pops_first() {
        // A task spawned mid-run is scheduled at time 0 even though the
        // floor has advanced; it must pop before everything queued, and
        // below-floor events order among themselves by (time, seq).
        let mut w = EventWheel::new();
        w.push((500, 1, 0));
        assert_eq!(w.pop(), Some((500, 1, 0)));
        w.push((600, 2, 1));
        w.push((0, 3, 2));
        w.push((7, 4, 3));
        w.push((0, 5, 4));
        assert_eq!(w.pop(), Some((0, 3, 2)));
        assert_eq!(w.pop(), Some((0, 5, 4)));
        assert_eq!(w.pop(), Some((7, 4, 3)));
        assert_eq!(w.pop(), Some((600, 2, 1)));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn empty_rebase_far_ahead() {
        let mut w = EventWheel::new();
        w.push((3, 1, 0));
        assert_eq!(w.pop(), Some((3, 1, 0)));
        // Queue empty: a push far past the old floor parks in overflow and
        // the next pop re-bases the wheel onto it.
        let t = u64::from(u32::MAX) + 17;
        w.push((t, 2, 1));
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop(), Some((t, 2, 1)));
    }
}
