//! # funnelpq-sim
//!
//! A deterministic discrete-event simulator of a ccNUMA shared-memory
//! multiprocessor, standing in for the Proteus-simulated MIT-Alewife machine
//! used in Shavit & Zemach, *Scalable Concurrent Priority Queue Algorithms*
//! (PODC 1999).
//!
//! Each simulated processor is an `async` task; every shared-memory access
//! (`read`, `write`, `swap`, `cas`) is a simulated transaction that pays a
//! network round trip plus FIFO queueing at the target cache line. Hot-spot
//! contention — the effect the paper's entire evaluation hinges on — falls
//! out of the queueing model.
//!
//! ## Example: four processors hammering one counter
//!
//! ```
//! use funnelpq_sim::{Machine, MachineConfig};
//!
//! let mut m = Machine::new(MachineConfig::alewife_like(), 7);
//! let ctr = m.alloc(1);
//! for _ in 0..4 {
//!     let ctx = m.ctx();
//!     m.spawn(async move {
//!         // A software fetch-and-increment built from compare-and-swap.
//!         loop {
//!             let old = ctx.read(ctr).await;
//!             if ctx.cas(ctr, old, old + 1).await == old {
//!                 break;
//!             }
//!         }
//!     });
//! }
//! assert!(m.run().is_quiescent());
//! assert_eq!(m.peek(ctr), 4);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod audit;
mod config;
mod ctx;
pub mod fault;
mod machine;
mod stats;
pub mod trace;
mod wheel;

pub use config::MachineConfig;
pub use ctx::{MemOp, ProcCtx, Span, WaitChange, WorkFuture};
pub use fault::{FaultPlan, FaultPlanError, SpanPoint};
pub use machine::{Addr, LivelockDiag, Machine, ProcDiag, ProcId, ProcState, RunOutcome, Word};
pub use stats::{Acc, HotSpot, Stats, ACC_BUCKETS};
