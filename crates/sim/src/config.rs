//! Machine configuration: latency and contention parameters.

/// Parameters of the simulated ccNUMA shared-memory machine.
///
/// The model charges every shared-memory transaction a round trip over the
/// interconnect (`2 * net_latency`) plus `service` cycles during which the
/// target cache line is exclusively occupied. Transactions to a busy line
/// queue in FIFO order, which is what turns a heavily shared location into a
/// *hot spot* — the phenomenon the paper's evaluation revolves around.
///
/// # Examples
///
/// ```
/// use funnelpq_sim::MachineConfig;
/// let cfg = MachineConfig::alewife_like();
/// assert!(cfg.uncontended_access() > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// One-way interconnect latency, in cycles, between a processor and a
    /// memory module.
    pub net_latency: u64,
    /// Cycles a cache line stays occupied by one transaction. Back-to-back
    /// transactions to the same line are separated by at least this much.
    pub service: u64,
    /// Contention granularity: number of 64-bit words per cache line.
    /// Must be a power of two.
    pub line_words: usize,
}

impl MachineConfig {
    /// A configuration loosely resembling the MIT Alewife machine simulated
    /// by Proteus in the paper: remote accesses cost a few tens of cycles.
    pub fn alewife_like() -> Self {
        MachineConfig {
            net_latency: 10,
            service: 4,
            line_words: 2,
        }
    }

    /// A fast configuration for unit tests: tiny latencies so tests run in
    /// few simulated cycles while still exercising queueing behaviour.
    pub fn test_tiny() -> Self {
        MachineConfig {
            net_latency: 1,
            service: 1,
            line_words: 1,
        }
    }

    /// Latency, in cycles, of a memory access that meets no contention.
    pub fn uncontended_access(&self) -> u64 {
        2 * self.net_latency + self.service
    }

    pub(crate) fn line_shift(&self) -> u32 {
        debug_assert!(self.line_words.is_power_of_two());
        self.line_words.trailing_zeros()
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::alewife_like()
    }
}
