//! Machine configuration: latency and contention parameters.

/// Parameters of the simulated ccNUMA shared-memory machine.
///
/// The model charges every shared-memory transaction a round trip over the
/// interconnect (`2 * net_latency`) plus `service` cycles during which the
/// target cache line is exclusively occupied. Transactions to a busy line
/// queue in FIFO order, which is what turns a heavily shared location into a
/// *hot spot* — the phenomenon the paper's evaluation revolves around.
///
/// # Topology
///
/// `nodes` and `remote_ratio` extend the flat machine into an explicit
/// NUMA topology: every cache line has a *home node* (assigned at
/// allocation, see [`crate::Machine::alloc_on_node`]) and every processor
/// belongs to the node `pid % nodes`. A transaction whose issuing processor
/// and target line live on different nodes pays `remote_ratio ×` the
/// interconnect latency on each leg. The defaults (`nodes = 1`,
/// `remote_ratio = 1`) collapse back to the flat machine — the schedule is
/// bit-identical to one built before the topology existed, which is what
/// the differential tests pin down.
///
/// # Examples
///
/// ```
/// use funnelpq_sim::MachineConfig;
/// let cfg = MachineConfig::alewife_like();
/// assert!(cfg.uncontended_access() > 0);
/// let numa = cfg.with_topology(4, 3);
/// assert_eq!(numa.remote_access(), 2 * 3 * numa.net_latency + numa.service);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// One-way interconnect latency, in cycles, between a processor and a
    /// memory module on the *same* node.
    pub net_latency: u64,
    /// Cycles a cache line stays occupied by one transaction. Back-to-back
    /// transactions to the same line are separated by at least this much.
    pub service: u64,
    /// Contention granularity: number of 64-bit words per cache line.
    /// Must be a power of two.
    pub line_words: usize,
    /// Number of NUMA nodes. 1 (the default) models a flat machine with no
    /// locality distinction.
    pub nodes: usize,
    /// Local-to-remote latency ratio: a transaction on a line homed on
    /// another node pays `remote_ratio * net_latency` per interconnect leg.
    /// 1 (the default) makes remote accesses no dearer than local ones.
    pub remote_ratio: u64,
}

impl MachineConfig {
    /// A configuration loosely resembling the MIT Alewife machine simulated
    /// by Proteus in the paper: remote accesses cost a few tens of cycles.
    pub fn alewife_like() -> Self {
        MachineConfig {
            net_latency: 10,
            service: 4,
            line_words: 2,
            nodes: 1,
            remote_ratio: 1,
        }
    }

    /// A fast configuration for unit tests: tiny latencies so tests run in
    /// few simulated cycles while still exercising queueing behaviour.
    pub fn test_tiny() -> Self {
        MachineConfig {
            net_latency: 1,
            service: 1,
            line_words: 1,
            nodes: 1,
            remote_ratio: 1,
        }
    }

    /// Returns this configuration with the given NUMA topology knobs.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` or `remote_ratio` is zero.
    pub fn with_topology(mut self, nodes: usize, remote_ratio: u64) -> Self {
        assert!(nodes >= 1, "nodes must be at least 1");
        assert!(remote_ratio >= 1, "remote_ratio must be at least 1");
        self.nodes = nodes;
        self.remote_ratio = remote_ratio;
        self
    }

    /// Latency, in cycles, of a node-local memory access that meets no
    /// contention.
    pub fn uncontended_access(&self) -> u64 {
        2 * self.net_latency + self.service
    }

    /// Latency, in cycles, of an uncontended access to a line homed on a
    /// *different* node.
    pub fn remote_access(&self) -> u64 {
        2 * self.net_latency * self.remote_ratio + self.service
    }

    pub(crate) fn line_shift(&self) -> u32 {
        debug_assert!(self.line_words.is_power_of_two());
        self.line_words.trailing_zeros()
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::alewife_like()
    }
}
