//! Latency accumulators for experiment measurements.
//!
//! The [`Acc`] accumulator itself lives in `funnelpq-util` (the serving
//! layer accounts its end-to-end latencies into the same histograms); this
//! module re-exports it and adds the simulator-specific aggregation: named
//! series plus per-cache-line contention tracking.

use std::collections::BTreeMap;

pub use funnelpq_util::{Acc, ACC_BUCKETS};

/// All statistics gathered during a simulation run.
///
/// Algorithms and workload drivers record latency samples under string keys
/// (e.g. `"insert"`, `"delete-min"`, `"all"`); the machine itself tracks
/// aggregate memory-system behaviour and per-cache-line contention.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    series: BTreeMap<&'static str, Acc>,
    /// Total shared-memory transactions performed.
    pub mem_accesses: u64,
    /// Transactions whose issuing processor and target cache line lived on
    /// different NUMA nodes (always 0 on a 1-node machine).
    pub remote_accesses: u64,
    /// Total cycles transactions spent queued behind busy lines.
    pub queue_delay_cycles: u64,
    /// Per-line `(accesses, queue-delay cycles)`, indexed by line number
    /// and grown alongside the machine's line table — the transaction fast
    /// path updates one flat slot instead of a map entry.
    pub(crate) per_line: Vec<(u64, u64)>,
}

/// Aggregate contention attributed to one labelled memory region (see
/// [`crate::Machine::label`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotSpot {
    /// The label given at build time (or `"<unlabelled>"`).
    pub label: String,
    /// Transactions that touched the region.
    pub accesses: u64,
    /// Cycles those transactions spent queued behind busy lines.
    pub queue_delay_cycles: u64,
}

impl Stats {
    /// Creates an empty statistics table.
    pub fn new() -> Self {
        Stats::default()
    }

    /// Records a sample under `key`.
    pub fn record(&mut self, key: &'static str, v: u64) {
        self.series.entry(key).or_default().record(v);
    }

    /// Returns the accumulator for `key`, if any sample was recorded.
    pub fn get(&self, key: &str) -> Option<&Acc> {
        self.series.get(key)
    }

    /// Returns the accumulator for `key`, or an empty one.
    pub fn acc(&self, key: &str) -> Acc {
        self.series.get(key).cloned().unwrap_or_default()
    }

    /// Iterates over all recorded series in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &Acc)> {
        self.series.iter().map(|(k, v)| (*k, v))
    }

    /// Per-cache-line `(line, accesses, queue-delay cycles)` for every line
    /// that was touched, in line order. For contention reports and the
    /// differential tests that compare machines line by line.
    pub fn per_line(&self) -> impl Iterator<Item = (usize, u64, u64)> + '_ {
        self.per_line
            .iter()
            .enumerate()
            .filter(|(_, &(accesses, _))| accesses > 0)
            .map(|(line, &(accesses, delay))| (line, accesses, delay))
    }

    /// Mean queueing delay per memory access, a contention indicator.
    pub fn mean_queue_delay(&self) -> f64 {
        if self.mem_accesses == 0 {
            0.0
        } else {
            self.queue_delay_cycles as f64 / self.mem_accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_series() {
        let mut s = Stats::new();
        s.record("ins", 5);
        s.record("ins", 7);
        s.record("del", 1);
        assert_eq!(s.acc("ins").count(), 2);
        assert_eq!(s.acc("del").count(), 1);
        assert_eq!(s.acc("missing").count(), 0);
        assert_eq!(s.iter().count(), 2);
    }

    #[test]
    fn acc_reexport_is_the_util_type() {
        // The simulator's Acc and the util crate's Acc must stay the same
        // type, so histograms merge across layers.
        let mut a: funnelpq_util::Acc = Acc::new();
        a.record(7);
        assert_eq!(a.p50(), 8);
        assert_eq!(ACC_BUCKETS, funnelpq_util::ACC_BUCKETS);
    }
}
