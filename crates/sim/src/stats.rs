//! Latency accumulators for experiment measurements.

use std::collections::BTreeMap;
use std::fmt;

/// Number of log₂ histogram buckets in an [`Acc`] (the same shape as
/// `funnelpq::obs`'s latency histograms): bucket 0 holds the value 0,
/// bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`, and the last bucket
/// absorbs everything larger.
pub const ACC_BUCKETS: usize = 32;

/// Log₂ bucket index for one sample.
fn bucket_of(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(ACC_BUCKETS - 1)
}

/// Running statistics for one named series of latency samples: moments,
/// extrema, and a 32-bucket log₂ histogram for approximate quantiles.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Acc {
    count: u64,
    sum: u64,
    sum_sq: u128,
    min: u64,
    max: u64,
    buckets: [u64; ACC_BUCKETS],
}

impl Acc {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Acc::default()
    }

    /// Adds one sample.
    pub fn record(&mut self, v: u64) {
        if self.count == 0 || v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.count += 1;
        self.sum += v;
        self.sum_sq += (v as u128) * (v as u128);
        self.buckets[bucket_of(v)] += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Population standard deviation, or 0.0 if empty.
    pub fn std_dev(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self.sum_sq as f64 / self.count as f64 - mean * mean;
        var.max(0.0).sqrt()
    }

    /// The log₂ histogram bucket counts (see [`ACC_BUCKETS`]).
    pub fn bucket_counts(&self) -> &[u64; ACC_BUCKETS] {
        &self.buckets
    }

    /// Approximate `q`-quantile (`0.0 < q <= 1.0`) as the upper edge of the
    /// log₂ bucket containing the rank-`⌈q·n⌉` sample: exact to within a
    /// factor of two, 0 for an empty accumulator. Same estimator as
    /// `funnelpq::obs::OpStats::quantile_upper_bound`.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        self.max
    }

    /// Approximate median (upper bound of its log₂ bucket).
    pub fn p50(&self) -> u64 {
        self.quantile_upper_bound(0.50)
    }

    /// Approximate 99th percentile (upper bound of its log₂ bucket).
    pub fn p99(&self) -> u64 {
        self.quantile_upper_bound(0.99)
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &Acc) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }
}

impl fmt::Display for Acc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} min={} max={} sd={:.1}",
            self.count,
            self.mean(),
            self.min,
            self.max,
            self.std_dev()
        )
    }
}

/// All statistics gathered during a simulation run.
///
/// Algorithms and workload drivers record latency samples under string keys
/// (e.g. `"insert"`, `"delete-min"`, `"all"`); the machine itself tracks
/// aggregate memory-system behaviour and per-cache-line contention.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    series: BTreeMap<&'static str, Acc>,
    /// Total shared-memory transactions performed.
    pub mem_accesses: u64,
    /// Total cycles transactions spent queued behind busy lines.
    pub queue_delay_cycles: u64,
    /// Per-line `(accesses, queue-delay cycles)`, indexed by line number
    /// and grown alongside the machine's line table — the transaction fast
    /// path updates one flat slot instead of a map entry.
    pub(crate) per_line: Vec<(u64, u64)>,
}

/// Aggregate contention attributed to one labelled memory region (see
/// [`crate::Machine::label`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotSpot {
    /// The label given at build time (or `"<unlabelled>"`).
    pub label: String,
    /// Transactions that touched the region.
    pub accesses: u64,
    /// Cycles those transactions spent queued behind busy lines.
    pub queue_delay_cycles: u64,
}

impl Stats {
    /// Creates an empty statistics table.
    pub fn new() -> Self {
        Stats::default()
    }

    /// Records a sample under `key`.
    pub fn record(&mut self, key: &'static str, v: u64) {
        self.series.entry(key).or_default().record(v);
    }

    /// Returns the accumulator for `key`, if any sample was recorded.
    pub fn get(&self, key: &str) -> Option<&Acc> {
        self.series.get(key)
    }

    /// Returns the accumulator for `key`, or an empty one.
    pub fn acc(&self, key: &str) -> Acc {
        self.series.get(key).cloned().unwrap_or_default()
    }

    /// Iterates over all recorded series in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &Acc)> {
        self.series.iter().map(|(k, v)| (*k, v))
    }

    /// Per-cache-line `(line, accesses, queue-delay cycles)` for every line
    /// that was touched, in line order. For contention reports and the
    /// differential tests that compare machines line by line.
    pub fn per_line(&self) -> impl Iterator<Item = (usize, u64, u64)> + '_ {
        self.per_line
            .iter()
            .enumerate()
            .filter(|(_, &(accesses, _))| accesses > 0)
            .map(|(line, &(accesses, delay))| (line, accesses, delay))
    }

    /// Mean queueing delay per memory access, a contention indicator.
    pub fn mean_queue_delay(&self) -> f64 {
        if self.mem_accesses == 0 {
            0.0
        } else {
            self.queue_delay_cycles as f64 / self.mem_accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acc_basic() {
        let mut a = Acc::new();
        a.record(10);
        a.record(20);
        a.record(30);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 60);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 30);
        assert!((a.mean() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn acc_std_dev() {
        let mut a = Acc::new();
        for v in [2u64, 4, 4, 4, 5, 5, 7, 9] {
            a.record(v);
        }
        assert!((a.std_dev() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn acc_empty() {
        let a = Acc::new();
        assert_eq!(a.count(), 0);
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.std_dev(), 0.0);
    }

    #[test]
    fn acc_merge() {
        let mut a = Acc::new();
        a.record(1);
        a.record(3);
        let mut b = Acc::new();
        b.record(5);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 100);
        assert_eq!(a.sum(), 109);

        let mut empty = Acc::new();
        empty.merge(&a);
        assert_eq!(empty, a);
        let before = a.clone();
        a.merge(&Acc::new());
        assert_eq!(a, before);
    }

    #[test]
    fn stats_series() {
        let mut s = Stats::new();
        s.record("ins", 5);
        s.record("ins", 7);
        s.record("del", 1);
        assert_eq!(s.acc("ins").count(), 2);
        assert_eq!(s.acc("del").count(), 1);
        assert_eq!(s.acc("missing").count(), 0);
        assert_eq!(s.iter().count(), 2);
    }

    #[test]
    fn acc_histogram_buckets() {
        let mut a = Acc::new();
        a.record(0);
        a.record(1);
        a.record(2);
        a.record(3);
        a.record(1024);
        let b = a.bucket_counts();
        assert_eq!(b[0], 1); // value 0
        assert_eq!(b[1], 1); // [1, 2)
        assert_eq!(b[2], 2); // [2, 4)
        assert_eq!(b[11], 1); // [1024, 2048)
        assert_eq!(b.iter().sum::<u64>(), a.count());
    }

    #[test]
    fn acc_quantiles() {
        let a = Acc::new();
        assert_eq!(a.p50(), 0);
        assert_eq!(a.p99(), 0);

        let mut a = Acc::new();
        for _ in 0..99 {
            a.record(5); // bucket 3: [4, 8)
        }
        a.record(1_000_000); // bucket 20
        assert_eq!(a.p50(), 8);
        assert_eq!(a.p99(), 8);
        assert_eq!(a.quantile_upper_bound(1.0), 1 << 20);
        // The quantile never reads below a sample's bucket lower edge.
        assert!(a.p50() > 5 / 2);
    }

    #[test]
    fn acc_merge_merges_buckets() {
        let mut a = Acc::new();
        a.record(3);
        let mut b = Acc::new();
        b.record(100);
        a.merge(&b);
        assert_eq!(a.bucket_counts().iter().sum::<u64>(), 2);
        assert_eq!(a.quantile_upper_bound(1.0), 128);
    }

    #[test]
    fn acc_display_nonempty() {
        let mut a = Acc::new();
        a.record(42);
        let text = a.to_string();
        assert!(text.contains("n=1"));
        assert!(text.contains("42"));
    }
}
