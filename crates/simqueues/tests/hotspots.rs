//! Hot-spot profiling tests: the contention accounting must attribute
//! queueing delay to the structures the paper predicts.

use funnelpq_sim::{Machine, MachineConfig};
use funnelpq_simqueues::queues::{Algorithm, BuildParams, SimPq};
use std::rc::Rc;

fn run_workload_machine(algo: Algorithm, procs: usize, pris: usize, ops: usize) -> Machine {
    let mut m = Machine::new(MachineConfig::alewife_like(), 99);
    let mut params = BuildParams::new(procs, pris);
    params.capacity = procs * ops + 8;
    let q = Rc::new(SimPq::build(&mut m, algo, &params));
    for _ in 0..procs {
        let ctx = m.ctx();
        let q = Rc::clone(&q);
        m.spawn(async move {
            for i in 0..ops {
                ctx.work(50).await;
                if ctx.random_bool(0.5) {
                    let pri = ctx.random_below(16);
                    q.insert(&ctx, pri, i as u64).await;
                } else {
                    q.delete_min(&ctx).await;
                }
            }
        });
    }
    assert!(m.run().is_quiescent());
    m
}

#[test]
fn simple_tree_hotspot_is_the_root_counter() {
    let m = run_workload_machine(Algorithm::SimpleTree, 64, 16, 32);
    let hs = m.hotspots(3);
    assert!(!hs.is_empty());
    assert!(
        hs[0].label.starts_with("tree counter depth 0"),
        "expected the root counter to dominate, got {:?}",
        hs.iter().map(|h| h.label.clone()).collect::<Vec<_>>()
    );
    // The root should account for a large share of all queueing delay.
    let total = m.stats().queue_delay_cycles.max(1);
    assert!(
        hs[0].queue_delay_cycles * 2 > total / 2,
        "root share too small: {}/{}",
        hs[0].queue_delay_cycles,
        total
    );
}

#[test]
fn funnel_tree_spreads_contention() {
    let m = run_workload_machine(Algorithm::FunnelTree, 64, 16, 32);
    let hs = m.hotspots(1);
    let total = m.stats().queue_delay_cycles.max(1);
    // No single labelled region should dominate the way SimpleTree's root
    // does: the whole point of funnels is spreading the hot spot.
    assert!(
        hs[0].queue_delay_cycles < total * 3 / 4,
        "one region holds {}/{} of the delay",
        hs[0].queue_delay_cycles,
        total
    );
}

#[test]
fn labels_cover_most_traffic() {
    let m = run_workload_machine(Algorithm::SimpleLinear, 16, 16, 24);
    let hs = m.hotspots(32);
    let unlabelled: u64 = hs
        .iter()
        .filter(|h| h.label == "<unlabelled>")
        .map(|h| h.accesses)
        .sum();
    let total: u64 = m.stats().mem_accesses.max(1);
    assert!(
        unlabelled * 10 < total,
        "too much unlabelled traffic: {unlabelled}/{total}"
    );
}

#[test]
fn hotspot_accounting_is_consistent() {
    let m = run_workload_machine(Algorithm::HuntEtAl, 24, 16, 20);
    let hs = m.hotspots(usize::MAX);
    let sum_acc: u64 = hs.iter().map(|h| h.accesses).sum();
    let sum_delay: u64 = hs.iter().map(|h| h.queue_delay_cycles).sum();
    assert_eq!(sum_acc, m.stats().mem_accesses, "accesses must add up");
    assert_eq!(sum_delay, m.stats().queue_delay_cycles, "delay must add up");
}
