//! Bounded-progress regression tests: every substrate must finish its
//! standard contention scenario within a generous but *finite* cycle
//! budget. A livelock (tasks spinning forever) does not trip the
//! deadlock detector, so these tests exist to catch it.

use std::cell::RefCell;
use std::rc::Rc;

use funnelpq_sim::{Machine, MachineConfig, RunOutcome};
use funnelpq_simqueues::funnel::{CounterMode, SimFunnelConfig};
use funnelpq_simqueues::{SimBin, SimFunnelCounter, SimFunnelStack, SimMcsLock};

const BUDGET: u64 = 50_000_000;

fn assert_finishes(m: &mut Machine, what: &str) {
    match m.run_for(BUDGET) {
        RunOutcome::Quiescent => {}
        RunOutcome::Deadlock { blocked } => {
            panic!(
                "{what}: deadlock with {} tasks blocked at cycle {}",
                blocked.len(),
                m.now()
            )
        }
        RunOutcome::CycleLimit => {
            panic!("{what}: no quiescence within {BUDGET} cycles (livelock?)")
        }
        RunOutcome::Livelock { diag } => {
            panic!("{what}: watchdog fired at cycle {}: {diag}", m.now())
        }
    }
}

#[test]
fn mcs_lock_bounded() {
    const P: usize = 32;
    let mut m = Machine::new(MachineConfig::alewife_like(), 3);
    let lock = SimMcsLock::build(&mut m, P);
    let word = m.alloc(1);
    for _ in 0..P {
        let ctx = m.ctx();
        m.spawn(async move {
            for _ in 0..20 {
                lock.acquire(&ctx).await;
                let v = ctx.read(word).await;
                ctx.write(word, v + 1).await;
                lock.release(&ctx).await;
            }
        });
    }
    assert_finishes(&mut m, "SimMcsLock");
    assert_eq!(m.peek(word), (P * 20) as u64);
}

#[test]
fn bin_bounded() {
    const P: usize = 16;
    let mut m = Machine::new(MachineConfig::alewife_like(), 4);
    let bin = SimBin::build(&mut m, P, 4096);
    for p in 0..P {
        let ctx = m.ctx();
        m.spawn(async move {
            for i in 0..25 {
                bin.insert(&ctx, (p * 100 + i) as u64).await;
                if i % 2 == 0 {
                    bin.delete(&ctx).await;
                }
            }
        });
    }
    assert_finishes(&mut m, "SimBin");
}

#[test]
fn funnel_counter_bounded_all_modes() {
    for mode in [CounterMode::FetchAdd, CounterMode::BOUNDED_AT_ZERO] {
        const P: usize = 64;
        let mut m = Machine::new(MachineConfig::alewife_like(), 9);
        let c = SimFunnelCounter::build(&mut m, P, mode, SimFunnelConfig::for_procs(P));
        for p in 0..P {
            let ctx = m.ctx();
            let c = c.clone();
            m.spawn(async move {
                for i in 0..20 {
                    if (p + i) % 2 == 0 {
                        c.fetch_inc(&ctx).await;
                    } else {
                        c.fetch_dec(&ctx).await;
                    }
                }
            });
        }
        assert_finishes(&mut m, "SimFunnelCounter");
    }
}

#[test]
fn funnel_stack_bounded() {
    const P: usize = 64;
    let mut m = Machine::new(MachineConfig::alewife_like(), 13);
    let s = SimFunnelStack::build(&mut m, P, P * 20 + 4, SimFunnelConfig::for_procs(P));
    let popped = Rc::new(RefCell::new(0usize));
    for _ in 0..P {
        let ctx = m.ctx();
        let s = s.clone();
        let popped = Rc::clone(&popped);
        m.spawn(async move {
            for i in 0..20 {
                s.push(&ctx, i as u64).await;
                if i % 2 == 1 && s.pop(&ctx).await.is_some() {
                    *popped.borrow_mut() += 1;
                }
            }
        });
    }
    assert_finishes(&mut m, "SimFunnelStack");
    assert!(*popped.borrow() > 0);
}
