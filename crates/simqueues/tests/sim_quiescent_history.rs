//! Appendix-B specification check for the *simulated* queues, with exact
//! virtual-time operation intervals (the simulator gives us precise begin
//! and end cycles, so quiescent points are found exactly, not sampled).
//!
//! See `tests/quiescent_history.rs` for the native-thread version and the
//! derivation of the bound: within a window between quiescent points that
//! starts with queue content `E` and performs `k` successful delete-mins,
//! every returned priority is ≤ the `k`-th smallest priority of `E`.

use std::cell::RefCell;
use std::rc::Rc;

use funnelpq_sim::{Machine, MachineConfig};
use funnelpq_simqueues::queues::{Algorithm, BuildParams, SimPq};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Insert(u64),
    DeleteHit(u64),
    DeleteMiss,
}

#[derive(Debug, Clone, Copy)]
struct Event {
    begin: u64,
    end: u64,
    kind: OpKind,
}

fn record_history(algo: Algorithm, procs: usize, pris: u64, ops: usize, seed: u64) -> Vec<Event> {
    let mut m = Machine::new(MachineConfig::alewife_like(), seed);
    let mut params = BuildParams::new(procs + 1, pris as usize);
    params.capacity = procs * ops + 512;
    let q = Rc::new(SimPq::build(&mut m, algo, &params));
    let history = Rc::new(RefCell::new(Vec::new()));
    // Seed phase: fill the queue, then reach a quiescent point, so the
    // checkable windows (k ≤ |E|) are plentiful.
    {
        let ctx = m.ctx();
        let q = Rc::clone(&q);
        let history = Rc::clone(&history);
        m.spawn(async move {
            for i in 0..400u64 {
                let begin = ctx.now();
                let pri = ctx.random_below(pris);
                q.insert(&ctx, pri, 1_000_000 + i).await;
                history.borrow_mut().push(Event {
                    begin,
                    end: ctx.now(),
                    kind: OpKind::Insert(pri),
                });
            }
        });
        assert!(m.run().is_quiescent());
    }
    for p in 0..procs {
        let ctx = m.ctx();
        let q = Rc::clone(&q);
        let history = Rc::clone(&history);
        m.spawn(async move {
            for i in 0..ops {
                // Irregular local work opens quiescent gaps.
                ctx.work(20 + ctx.random_below(300)).await;
                let begin = ctx.now();
                let kind = if ctx.random_bool(0.5) {
                    let pri = ctx.random_below(pris);
                    q.insert(&ctx, pri, (p * ops + i) as u64).await;
                    OpKind::Insert(pri)
                } else {
                    match q.delete_min(&ctx).await {
                        Some((pri, _)) => OpKind::DeleteHit(pri),
                        None => OpKind::DeleteMiss,
                    }
                };
                history.borrow_mut().push(Event {
                    begin,
                    end: ctx.now(),
                    kind,
                });
            }
        });
    }
    assert!(m.run().is_quiescent(), "{algo} did not quiesce");
    let mut h = Rc::try_unwrap(history).unwrap().into_inner();
    h.sort_by_key(|e| (e.begin, e.end));
    h
}

fn check_history(name: &str, history: &[Event]) -> usize {
    let mut deltas: Vec<(u64, i64)> = Vec::with_capacity(history.len() * 2);
    for e in history {
        // Treat intervals as half-open [begin, end+1) so zero-length ops
        // still overlap their own instant.
        deltas.push((e.begin, 1));
        deltas.push((e.end + 1, -1));
    }
    deltas.sort_unstable();
    let mut open = 0i64;
    let mut qpoints = vec![0u64];
    for (stamp, d) in deltas {
        open += d;
        if open == 0 {
            qpoints.push(stamp);
        }
    }

    let mut held: Vec<u64> = Vec::new();
    let mut checked = 0;
    for w in qpoints.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        let evs: Vec<&Event> = history
            .iter()
            .filter(|e| e.begin >= lo && e.begin < hi)
            .collect();
        if evs.is_empty() {
            continue;
        }
        let hits: Vec<u64> = evs
            .iter()
            .filter_map(|e| match e.kind {
                OpKind::DeleteHit(p) => Some(p),
                _ => None,
            })
            .collect();
        let k = hits.len();
        // The bound below is only sound for k ≤ |E|: in any legal
        // sequential order of the window, the i-th delete still finds at
        // least |E| − (i−1) elements of E present, so its return is ≤ the
        // i-th smallest of E ≤ kth(E). (For k > |E| chained overlaps allow
        // a delete to legally return a large early insert before smaller
        // ones arrive, so no E-based bound exists.)
        if k > 0 && k <= held.len() {
            let mut e_sorted = held.clone();
            e_sorted.sort_unstable();
            let bound = e_sorted[k - 1];
            for &p in &hits {
                assert!(
                    p <= bound,
                    "{name}: window [{lo},{hi}) returned {p} > bound {bound} (k={k})"
                );
            }
            checked += 1;
        }
        // Within a window, operation order is unconstrained by quiescent
        // consistency: credit all inserts first, then remove the hits.
        for e in &evs {
            if let OpKind::Insert(p) = e.kind {
                held.push(p);
            }
        }
        for e in &evs {
            if let OpKind::DeleteHit(p) = e.kind {
                let pos = held
                    .iter()
                    .position(|&x| x == p)
                    .unwrap_or_else(|| panic!("{name}: phantom delete of {p}"));
                held.swap_remove(pos);
            }
        }
    }
    checked
}

#[test]
fn all_simulated_queues_satisfy_appendix_b() {
    for algo in Algorithm::ALL.into_iter().chain([Algorithm::HardwareTree]) {
        let mut total_checked = 0;
        for seed in [11u64, 222, 3333] {
            let history = record_history(algo, 12, 24, 30, seed);
            total_checked += check_history(algo.name(), &history);
        }
        assert!(
            total_checked > 0,
            "{algo}: the bursty workload should produce checkable windows"
        );
    }
}
