//! Behavioural tests of the funnels' local adaption (§3.1): processors
//! that meet no contention stop traversing combining layers; processors
//! under heavy contention keep combining.

use funnelpq_sim::{Machine, MachineConfig};
use funnelpq_simqueues::funnel::{CounterMode, SimFunnelConfig, SimFunnelCounter};
use funnelpq_simqueues::SimFunnelStack;

#[test]
fn solo_counter_user_adapts_depth_to_zero() {
    let mut m = Machine::new(MachineConfig::alewife_like(), 1);
    let cfg = SimFunnelConfig::for_procs(32); // 2 layers
    let c = SimFunnelCounter::build(&mut m, 32, CounterMode::BOUNDED_AT_ZERO, cfg);
    let ctx = m.ctx();
    let c2 = c.clone();
    m.spawn(async move {
        for _ in 0..20 {
            c2.fetch_inc(&ctx).await;
        }
    });
    assert!(m.run().is_quiescent());
    assert_eq!(
        c.depth_preference(0),
        0,
        "an uncontended processor should go straight to the central CAS"
    );
}

#[test]
fn contended_counter_users_stay_deep() {
    const P: usize = 64;
    let mut m = Machine::new(MachineConfig::alewife_like(), 2);
    let cfg = SimFunnelConfig::for_procs(P);
    let c = SimFunnelCounter::build(&mut m, P, CounterMode::BOUNDED_AT_ZERO, cfg);
    for p in 0..P {
        let ctx = m.ctx();
        let c = c.clone();
        m.spawn(async move {
            for i in 0..40 {
                if (p + i) % 2 == 0 {
                    c.fetch_inc(&ctx).await;
                } else {
                    c.fetch_dec(&ctx).await;
                }
            }
        });
    }
    assert!(m.run().is_quiescent());
    let deep = (0..P).filter(|&p| c.depth_preference(p) > 0).count();
    assert!(
        deep > P / 2,
        "under 64-way contention most processors should keep combining (deep: {deep}/{P})"
    );
}

#[test]
fn solo_stack_user_adapts_depth_to_zero() {
    let mut m = Machine::new(MachineConfig::alewife_like(), 3);
    let cfg = SimFunnelConfig::for_procs(32);
    let s = SimFunnelStack::build(&mut m, 32, 64, cfg);
    let ctx = m.ctx();
    let s2 = s.clone();
    m.spawn(async move {
        for i in 0..20 {
            s2.push(&ctx, i).await;
            s2.pop(&ctx).await;
        }
    });
    assert!(m.run().is_quiescent());
    assert_eq!(s.depth_preference(0), 0);
}

#[test]
fn adaption_reduces_solo_latency() {
    // The same op sequence must get cheaper once depth adapts down.
    fn run(adaption: bool) -> u64 {
        let mut m = Machine::new(MachineConfig::alewife_like(), 4);
        let mut cfg = SimFunnelConfig::for_procs(256); // deep, wide funnel
        cfg.adaption = adaption;
        let c = SimFunnelCounter::build(&mut m, 256, CounterMode::BOUNDED_AT_ZERO, cfg);
        let ctx = m.ctx();
        m.spawn(async move {
            for _ in 0..50 {
                c.fetch_inc(&ctx).await;
            }
        });
        assert!(m.run().is_quiescent());
        m.now()
    }
    let with = run(true);
    let without = run(false);
    assert!(
        with < without,
        "adaption should cut uncontended latency (with={with}, without={without})"
    );
}
