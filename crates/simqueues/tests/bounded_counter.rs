//! Semantics of the generalized bounded funnel counter (§3.3 of the paper:
//! bounded fetch-and-decrement plus "an analogous
//! bounded-fetch-and-increment").

use std::cell::RefCell;
use std::rc::Rc;

use funnelpq_sim::{Machine, MachineConfig};
use funnelpq_simqueues::funnel::{CounterMode, SimFunnelConfig, SimFunnelCounter};

fn cfg(p: usize) -> SimFunnelConfig {
    SimFunnelConfig::for_procs(p)
}

#[test]
fn upper_bound_saturates_sequentially() {
    let mut m = Machine::new(MachineConfig::test_tiny(), 0);
    let mode = CounterMode::Bounded {
        lo: Some(0),
        hi: Some(3),
    };
    let c = SimFunnelCounter::build(&mut m, 1, mode, cfg(1));
    let ctx = m.ctx();
    let c2 = c.clone();
    m.spawn(async move {
        assert_eq!(c2.fetch_inc(&ctx).await, 0);
        assert_eq!(c2.fetch_inc(&ctx).await, 1);
        assert_eq!(c2.fetch_inc(&ctx).await, 2);
        // At the upper bound: increments saturate and report the bound.
        assert_eq!(c2.fetch_inc(&ctx).await, 3);
        assert_eq!(c2.fetch_inc(&ctx).await, 3);
        assert_eq!(c2.fetch_dec(&ctx).await, 3);
        assert_eq!(c2.fetch_dec(&ctx).await, 2);
    });
    assert!(m.run().is_quiescent());
    assert_eq!(c.peek_value(&m), 1);
}

#[test]
fn window_bounded_counter_stays_in_window_under_contention() {
    const P: usize = 32;
    const LO: i64 = 0;
    const HI: i64 = 5;
    let mut m = Machine::new(MachineConfig::alewife_like(), 77);
    let mode = CounterMode::Bounded {
        lo: Some(LO),
        hi: Some(HI),
    };
    let c = SimFunnelCounter::build(&mut m, P, mode, cfg(P));
    let returns = Rc::new(RefCell::new(Vec::new()));
    for p in 0..P {
        let ctx = m.ctx();
        let c = c.clone();
        let returns = Rc::clone(&returns);
        m.spawn(async move {
            for i in 0..30 {
                let v = if (p + i) % 2 == 0 {
                    c.fetch_inc(&ctx).await
                } else {
                    c.fetch_dec(&ctx).await
                };
                returns.borrow_mut().push(v);
            }
        });
    }
    assert!(m.run().is_quiescent());
    let final_v = c.peek_value(&m);
    assert!((LO..=HI).contains(&final_v), "final value {final_v}");
    assert!(
        returns.borrow().iter().all(|&v| (LO..=HI).contains(&v)),
        "every returned value must lie inside the bounds"
    );
}

#[test]
fn lower_bound_other_than_zero() {
    let mut m = Machine::new(MachineConfig::test_tiny(), 0);
    let mode = CounterMode::Bounded {
        lo: Some(10),
        hi: None,
    };
    let c = SimFunnelCounter::build(&mut m, 1, mode, cfg(1));
    c.poke_set(&mut m, 11);
    let ctx = m.ctx();
    let c2 = c.clone();
    m.spawn(async move {
        assert_eq!(c2.fetch_dec(&ctx).await, 11);
        assert_eq!(c2.fetch_dec(&ctx).await, 10); // saturated at 10
        assert_eq!(c2.fetch_dec(&ctx).await, 10);
        assert_eq!(c2.fetch_inc(&ctx).await, 10);
    });
    assert!(m.run().is_quiescent());
    assert_eq!(c.peek_value(&m), 11);
}

#[test]
fn bounded_at_zero_constant_matches_explicit_form() {
    assert_eq!(
        CounterMode::BOUNDED_AT_ZERO,
        CounterMode::Bounded {
            lo: Some(0),
            hi: None
        }
    );
}
