//! Edge cases of the benchmark workload driver.

use funnelpq_sim::MachineConfig;
use funnelpq_simqueues::queues::{Algorithm, BuildParams};
use funnelpq_simqueues::workload::{run_queue_workload, run_queue_workload_with, Workload};

#[test]
fn single_processor_single_priority() {
    let wl = Workload {
        procs: 1,
        num_priorities: 1,
        ops_per_proc: 30,
        local_work: 10,
        seed: 9,
        machine: MachineConfig::test_tiny(),
        naive_events: false,
    };
    for algo in Algorithm::ALL {
        let r = run_queue_workload(algo, &wl);
        assert_eq!(r.all.count(), 30, "{algo}");
        assert!(r.total_cycles > 0);
    }
}

#[test]
fn zero_local_work_is_fine() {
    let wl = Workload {
        procs: 4,
        num_priorities: 4,
        ops_per_proc: 10,
        local_work: 0,
        seed: 2,
        machine: MachineConfig::test_tiny(),
        naive_events: false,
    };
    let r = run_queue_workload(Algorithm::FunnelTree, &wl);
    assert_eq!(r.all.count(), 40);
}

#[test]
#[should_panic]
fn zero_processors_rejected() {
    let wl = Workload {
        procs: 0,
        num_priorities: 4,
        ops_per_proc: 10,
        local_work: 0,
        seed: 2,
        machine: MachineConfig::test_tiny(),
        naive_events: false,
    };
    run_queue_workload(Algorithm::SimpleLinear, &wl);
}

#[test]
fn insert_plus_delete_counts_equal_total() {
    let wl = Workload::standard(6, 8);
    for algo in [Algorithm::SimpleLinear, Algorithm::FunnelTree] {
        let r = run_queue_workload(algo, &wl);
        assert_eq!(r.insert.count() + r.delete.count(), r.all.count());
        assert_eq!(r.all.count() as usize, 6 * wl.ops_per_proc);
        // Means are consistent with the split.
        let weighted = (r.insert.sum() + r.delete.sum()) as f64;
        assert!((weighted - r.all.sum() as f64).abs() < 1e-9);
    }
}

#[test]
fn funnel_levels_zero_matches_locked_counters_variant() {
    // FunnelTree with funnel_levels = 0 still works and conserves counts.
    let wl = Workload::standard(8, 16);
    let mut params = BuildParams::new(wl.procs, wl.num_priorities);
    params.capacity = (wl.procs * wl.ops_per_proc).max(64) + 8;
    params.funnel_levels = 0;
    let r = run_queue_workload_with(Algorithm::FunnelTree, &wl, &params);
    assert_eq!(r.all.count() as usize, 8 * wl.ops_per_proc);
}

#[test]
fn machine_stats_accumulate() {
    let wl = Workload::standard(4, 4);
    let r = run_queue_workload(Algorithm::SimpleTree, &wl);
    assert!(r.stats.mem_accesses > 0, "memory traffic must be recorded");
    assert!(r.stats.mean_queue_delay() >= 0.0);
}
