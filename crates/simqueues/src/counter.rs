//! Simulated shared counters: the MCS-locked baseline and the dispatch
//! type that lets tree queues mix counter implementations per level.

use funnelpq_sim::{Addr, Machine, ProcCtx};

use crate::funnel::SimFunnelCounter;
use crate::mcs::SimMcsLock;

/// Counter protected by an MCS lock, with unbounded fetch-and-increment and
/// zero-bounded fetch-and-decrement — `SimpleTree`'s per-node counter.
#[derive(Debug, Clone, Copy)]
pub struct SimLockedCounter {
    lock: SimMcsLock,
    val: Addr,
}

impl SimLockedCounter {
    /// Allocates a counter initialized to zero.
    pub fn build(m: &mut Machine, procs: usize) -> Self {
        let lock = SimMcsLock::build(m, procs);
        let val = m.alloc(1);
        m.label(val, 1, "locked counter value");
        SimLockedCounter { lock, val }
    }

    /// Re-labels this counter's value word and lock for hot-spot reports.
    pub fn label(&self, m: &mut Machine, name: &str) {
        m.label(self.val, 1, name);
        self.lock.label(m, name);
    }

    /// Adds one; returns the previous value.
    pub async fn fetch_inc(&self, ctx: &ProcCtx) -> i64 {
        self.lock.acquire(ctx).await;
        let v = ctx.read(self.val).await as i64;
        ctx.write(self.val, (v + 1) as u64).await;
        self.lock.release(ctx).await;
        v
    }

    /// Subtracts one unless the value is zero; returns the previous value.
    pub async fn fetch_dec(&self, ctx: &ProcCtx) -> i64 {
        self.lock.acquire(ctx).await;
        let v = ctx.read(self.val).await as i64;
        if v > 0 {
            ctx.write(self.val, (v - 1) as u64).await;
        }
        self.lock.release(ctx).await;
        v
    }

    /// Host-side read of the counter value (no simulated cost).
    pub fn peek(&self, m: &Machine) -> i64 {
        m.peek(self.val) as i64
    }

    /// Host-side check that the counter's lock is free.
    pub fn peek_lock_free(&self, m: &Machine) -> bool {
        self.lock.peek_free(m)
    }
}

/// Counter backed directly by one hardware atomic word: unbounded
/// increments use fetch-and-add, bounded decrements a compare-and-swap
/// retry loop (the Gottlieb et al. construction the paper contrasts with
/// in §3.3). The paper's target machines offer only swap/CAS, so this is
/// an *ablation*: what a machine with hardware fetch-and-add would buy.
#[derive(Debug, Clone, Copy)]
pub struct SimHwCounter {
    val: Addr,
}

impl SimHwCounter {
    /// Allocates a counter initialized to zero.
    pub fn build(m: &mut Machine) -> Self {
        let val = m.alloc(1);
        m.label(val, 1, "hardware counter value");
        SimHwCounter { val }
    }

    /// Re-labels this counter's value word for hot-spot reports.
    pub fn label(&self, m: &mut Machine, name: &str) {
        m.label(self.val, 1, name);
    }

    /// Adds one with a single hardware fetch-and-add; returns the previous
    /// value.
    pub async fn fetch_inc(&self, ctx: &ProcCtx) -> i64 {
        ctx.faa(self.val, 1).await as i64
    }

    /// Subtracts one unless the value is zero (CAS retry loop); returns
    /// the previous value.
    pub async fn fetch_dec(&self, ctx: &ProcCtx) -> i64 {
        loop {
            let v = ctx.read(self.val).await;
            if v == 0 {
                return 0;
            }
            if ctx.cas(self.val, v, v - 1).await == v {
                return v as i64;
            }
        }
    }

    /// Host-side read of the counter value (no simulated cost).
    pub fn peek(&self, m: &Machine) -> i64 {
        m.peek(self.val) as i64
    }
}

/// A tree-node counter: MCS-locked, combining funnel, or hardware atomic.
/// This choice is the only difference between `SimpleTree`, `FunnelTree`
/// and the hardware-tree ablation.
#[derive(Debug, Clone)]
pub enum SimCounter {
    /// MCS-locked counter.
    Locked(SimLockedCounter),
    /// Combining-funnel counter (bounded below by zero).
    Funnel(SimFunnelCounter),
    /// Hardware fetch-and-add / CAS counter.
    Hardware(SimHwCounter),
}

impl SimCounter {
    /// Adds one; returns the previous value.
    pub async fn fetch_inc(&self, ctx: &ProcCtx) -> i64 {
        match self {
            SimCounter::Locked(c) => c.fetch_inc(ctx).await,
            SimCounter::Funnel(c) => c.fetch_inc(ctx).await,
            SimCounter::Hardware(c) => c.fetch_inc(ctx).await,
        }
    }

    /// Subtracts one unless zero; returns the previous value.
    pub async fn fetch_dec(&self, ctx: &ProcCtx) -> i64 {
        match self {
            SimCounter::Locked(c) => c.fetch_dec(ctx).await,
            SimCounter::Funnel(c) => c.fetch_dec(ctx).await,
            SimCounter::Hardware(c) => c.fetch_dec(ctx).await,
        }
    }

    /// Re-labels the counter's hottest word for hot-spot reports.
    pub fn label(&self, m: &mut Machine, name: &str) {
        match self {
            SimCounter::Locked(c) => c.label(m, name),
            SimCounter::Funnel(c) => c.label(m, name),
            SimCounter::Hardware(c) => c.label(m, name),
        }
    }

    /// Host-side read of the counter value (no simulated cost).
    pub fn peek(&self, m: &Machine) -> i64 {
        match self {
            SimCounter::Locked(c) => c.peek(m),
            SimCounter::Funnel(c) => c.peek_value(m),
            SimCounter::Hardware(c) => c.peek(m),
        }
    }

    /// Host-side check that any lock inside the counter is free (always
    /// true for lock-free variants).
    pub fn peek_lock_free(&self, m: &Machine) -> bool {
        match self {
            SimCounter::Locked(c) => c.peek_lock_free(m),
            SimCounter::Funnel(_) | SimCounter::Hardware(_) => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use funnelpq_sim::MachineConfig;

    #[test]
    fn locked_counter_semantics() {
        let mut m = Machine::new(MachineConfig::test_tiny(), 0);
        let c = SimLockedCounter::build(&mut m, 1);
        let ctx = m.ctx();
        m.spawn(async move {
            assert_eq!(c.fetch_inc(&ctx).await, 0);
            assert_eq!(c.fetch_inc(&ctx).await, 1);
            assert_eq!(c.fetch_dec(&ctx).await, 2);
            assert_eq!(c.fetch_dec(&ctx).await, 1);
            assert_eq!(c.fetch_dec(&ctx).await, 0); // bounded at zero
            assert_eq!(c.fetch_inc(&ctx).await, 0);
        });
        assert!(m.run().is_quiescent());
    }

    #[test]
    fn locked_counter_concurrent_exactness() {
        const P: usize = 12;
        const N: usize = 50;
        let mut m = Machine::new(MachineConfig::test_tiny(), 9);
        let c = SimLockedCounter::build(&mut m, P);
        for _ in 0..P {
            let ctx = m.ctx();
            m.spawn(async move {
                for _ in 0..N {
                    c.fetch_inc(&ctx).await;
                }
            });
        }
        assert!(m.run().is_quiescent());
        assert_eq!(m.peek(c.val), (P * N) as u64);
    }
}
