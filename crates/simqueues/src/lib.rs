//! # funnelpq-simqueues
//!
//! The priority-queue algorithms and substrates of Shavit & Zemach,
//! *Scalable Concurrent Priority Queue Algorithms* (PODC 1999), expressed
//! against the simulated ccNUMA machine of [`funnelpq_sim`], plus the
//! benchmark workload driver that regenerates the paper's figures.
//!
//! Substrates: [`SimMcsLock`], [`SimBin`], [`SimLockedCounter`],
//! [`SimFunnelCounter`] (Figure 10, with bounded operations and
//! elimination) and [`SimFunnelStack`].
//!
//! Queues: [`queues::SimPq`] dispatches over the seven algorithms of the
//! paper; [`workload::run_queue_workload`] runs the §4 benchmark.
//!
//! ## Example: measure FunnelTree at 64 simulated processors
//!
//! ```
//! use funnelpq_simqueues::queues::Algorithm;
//! use funnelpq_simqueues::workload::{run_queue_workload, Workload};
//!
//! let mut wl = Workload::standard(64, 16);
//! wl.ops_per_proc = 8; // keep the doctest fast
//! let r = run_queue_workload(Algorithm::FunnelTree, &wl);
//! assert_eq!(r.all.count(), 64 * 8);
//! println!("mean latency: {:.0} cycles", r.all.mean());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bin;
pub mod chaos;
pub mod costs;
pub mod counter;
pub mod error;
pub mod funnel;
pub mod funnel_stack;
pub mod mcs;
pub mod queues;
pub mod workload;

pub use bin::SimBin;
pub use chaos::{run_chaos_workload, ChaosError, ChaosRun};
pub use counter::{SimCounter, SimHwCounter, SimLockedCounter};
pub use error::SimPqError;
pub use funnel::{CounterMode, SimFunnelConfig, SimFunnelCounter};
pub use funnel_stack::SimFunnelStack;
pub use mcs::SimMcsLock;
