//! Structured errors for workload-facing failure paths.
//!
//! The simulated queues historically `panic!`ed on capacity exhaustion with
//! a bare message, which loses the two facts that matter when debugging a
//! chaos run: *which simulated processor* hit the wall and *at what
//! simulated time*. Every fallible queue entry point now has a `try_*`
//! variant returning [`SimPqError`]; the infallible wrappers panic with the
//! structured message so existing call sites keep their signatures.

use std::fmt;

use funnelpq_sim::ProcId;

/// A failure inside a simulated queue operation, tagged with the simulated
/// processor and clock so the failing schedule can be replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimPqError {
    /// A fixed-capacity structure was full.
    CapacityExhausted {
        /// The structure that filled up (e.g. `"SimBin"`, `"SimHunt"`).
        what: &'static str,
        /// Its configured capacity in items.
        capacity: usize,
        /// The simulated processor whose insert failed.
        proc: ProcId,
        /// Simulated time of the failure, in cycles.
        time: u64,
    },
    /// A preallocated node pool ran dry.
    PoolExhausted {
        /// The structure whose pool drained (e.g. `"SimFunnelStack"`).
        what: &'static str,
        /// The simulated processor whose operation failed.
        proc: ProcId,
        /// Simulated time of the failure, in cycles.
        time: u64,
    },
    /// A build-time parameter was inconsistent; rejected before any
    /// simulated memory is allocated.
    BadConfig {
        /// The parameter at fault.
        what: &'static str,
        /// Human-readable explanation.
        detail: String,
    },
}

impl fmt::Display for SimPqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimPqError::CapacityExhausted {
                what,
                capacity,
                proc,
                time,
            } => write!(
                f,
                "{what}: capacity {capacity} exhausted (proc {proc} at cycle {time})"
            ),
            SimPqError::PoolExhausted { what, proc, time } => {
                write!(
                    f,
                    "{what}: node pool exhausted (proc {proc} at cycle {time})"
                )
            }
            SimPqError::BadConfig { what, detail } => {
                write!(f, "bad config for {what}: {detail}")
            }
        }
    }
}

impl std::error::Error for SimPqError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_proc_and_time() {
        let e = SimPqError::CapacityExhausted {
            what: "SimBin",
            capacity: 64,
            proc: 3,
            time: 12345,
        };
        let s = e.to_string();
        assert!(s.contains("proc 3"), "{s}");
        assert!(s.contains("cycle 12345"), "{s}");
        assert!(s.contains("SimBin"), "{s}");
    }
}
