//! Chaos harness: the paper's §4 workload run under an attached
//! [`FaultPlan`], with every queue operation recorded into an audit
//! [`History`] and the post-run invariants checked.
//!
//! The harness runs in two phases. Phase one is the standard workload —
//! the same processor loop, RNG draws, and record calls as
//! [`crate::workload::run_queue_workload`], so with an **empty** fault
//! plan the phase-one [`RunResult`] is bit-identical to the fault-free
//! driver's (the differential tests in `tests/chaos_conformance.rs` hold
//! it to that). Phase two, entered only if phase one quiesced, spawns one
//! extra processor that drains the queue through the public `delete_min`
//! API so element conservation can be checked end to end.
//!
//! Between the phases, on crash-free quiescent runs, the queue's own
//! structural invariants (heap shape, counter consistency, lock freedom)
//! are validated host-side via [`SimPq::validate`].

use std::rc::Rc;

use funnelpq_sim::audit::{audit_history, AuditError, AuditReport, AuditScope, History, OpRecord};
use funnelpq_sim::fault::FaultSummary;
use funnelpq_sim::{FaultPlan, FaultPlanError, ProcId, RunOutcome};

use crate::queues::{Algorithm, BuildParams, SimPq};
use crate::workload::{build_machine, RunResult, Workload, MAX_CYCLES};

/// Default livelock-watchdog window (cycles): far above any healthy
/// inter-operation gap, far below the cycle budget.
pub const DEFAULT_WATCHDOG: u64 = 50_000_000;

/// Build parameters the chaos harness uses for `wl`: the fault-free
/// driver's capacity sizing, plus one extra processor slot for the
/// phase-two drainer. Feed the same params to
/// [`crate::workload::run_queue_workload_with`] to produce the baseline a
/// fault-free chaos run must match bit for bit.
pub fn chaos_build_params(wl: &Workload) -> BuildParams {
    let mut p = BuildParams::new(wl.procs + 1, wl.num_priorities);
    p.capacity = (wl.procs * wl.ops_per_proc).max(64) + 8;
    p
}

/// Everything observed in one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosRun {
    /// Aggregate stats snapshotted at the end of phase one (before the
    /// drain), comparable against the fault-free driver's [`RunResult`].
    pub result: RunResult,
    /// How phase one ended.
    pub outcome: RunOutcome,
    /// How the drain phase ended (`None` if phase one did not quiesce).
    pub drain_outcome: Option<RunOutcome>,
    /// The full operation history, main phase and drain.
    pub history: Vec<OpRecord>,
    /// Audit aggregates (the history passed every invariant check).
    pub report: AuditReport,
    /// Processors actually crash-stopped during the run.
    pub crashed: Vec<ProcId>,
    /// What the fault layer did.
    pub fault_summary: FaultSummary,
    /// Item count from structural validation between the phases
    /// (crash-free quiescent runs only).
    pub structural_items: Option<u64>,
}

impl ChaosRun {
    /// True when the machine wedged: phase one or the drain ended in
    /// deadlock, livelock, or the cycle limit.
    pub fn wedged(&self) -> bool {
        !self.outcome.is_quiescent()
            || self
                .drain_outcome
                .as_ref()
                .is_some_and(|o| !o.is_quiescent())
    }
}

/// A chaos run that failed one of the checks the fault model does not
/// excuse.
#[derive(Debug, Clone)]
pub enum ChaosError {
    /// The fault plan itself was malformed.
    Plan(FaultPlanError),
    /// The machine wedged under an **empty** fault plan — a genuine
    /// algorithm or harness bug, never acceptable.
    Wedged {
        /// The non-quiescent outcome, with diagnostics.
        outcome: RunOutcome,
        /// The operation history up to the wedge.
        history: Vec<OpRecord>,
    },
    /// Structural validation failed on a crash-free quiescent run.
    Structure {
        /// What was inconsistent.
        detail: String,
        /// The operation history.
        history: Vec<OpRecord>,
    },
    /// The operation history violated an audit invariant.
    Audit {
        /// The violation.
        error: AuditError,
        /// The operation history.
        history: Vec<OpRecord>,
    },
}

impl std::fmt::Display for ChaosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosError::Plan(e) => write!(f, "bad fault plan: {e}"),
            ChaosError::Wedged { outcome, .. } => {
                write!(f, "machine wedged under an empty fault plan: {outcome}")
            }
            ChaosError::Structure { detail, .. } => {
                write!(f, "structural validation failed: {detail}")
            }
            ChaosError::Audit { error, .. } => write!(f, "{error}"),
        }
    }
}

impl std::error::Error for ChaosError {}

impl ChaosError {
    /// The operation history at the point of failure (empty for plan
    /// errors). Dump this when diagnosing a failing run.
    pub fn history(&self) -> &[OpRecord] {
        match self {
            ChaosError::Plan(_) => &[],
            ChaosError::Wedged { history, .. }
            | ChaosError::Structure { history, .. }
            | ChaosError::Audit { history, .. } => history,
        }
    }
}

/// Runs the standard workload for `algo` under `plan`, with the livelock
/// watchdog armed at `watchdog_window` cycles (0 disarms it), then drains
/// and audits. See the module docs for the two-phase shape.
///
/// The audit scope follows the algorithm's declared consistency: relaxed
/// algorithms skip drain sortedness and get the rank-error distribution
/// instead, unbounded here — use [`run_chaos_workload_bounded`] to make
/// the audit enforce a quality ceiling.
pub fn run_chaos_workload(
    algo: Algorithm,
    wl: &Workload,
    plan: &FaultPlan,
    watchdog_window: u64,
) -> Result<ChaosRun, ChaosError> {
    run_chaos_workload_bounded(algo, wl, plan, watchdog_window, None)
}

/// [`run_chaos_workload`] with a hard per-delete drain rank-error bound:
/// the audit fails with [`AuditError::RankErrorExceeded`] if any drain
/// delete returns an item while more than `rank_error_bound` strictly
/// smaller items remain. Strict algorithms keep the sortedness check, so
/// a bound is only meaningful for relaxed ones.
pub fn run_chaos_workload_bounded(
    algo: Algorithm,
    wl: &Workload,
    plan: &FaultPlan,
    watchdog_window: u64,
    rank_error_bound: Option<u64>,
) -> Result<ChaosRun, ChaosError> {
    assert!(wl.procs > 0 && wl.num_priorities > 0 && wl.ops_per_proc > 0);
    plan.check(wl.procs).map_err(ChaosError::Plan)?;
    let params = chaos_build_params(wl);
    let mut m = build_machine(wl);
    let q = Rc::new(SimPq::build(&mut m, algo, &params));
    // Attach after building so region-targeted faults can see the queue's
    // memory; attach even when the plan is empty so the differential tests
    // exercise the gated event path, not the fast path.
    m.attach_faults(plan).map_err(ChaosError::Plan)?;
    m.set_watchdog(watchdog_window);

    let hist = History::new();
    for _ in 0..wl.procs {
        let ctx = m.ctx();
        let q = Rc::clone(&q);
        let hist = hist.clone();
        let num_pris = wl.num_priorities as u64;
        let ops = wl.ops_per_proc;
        let local = wl.local_work;
        // This loop must stay call-for-call identical to the fault-free
        // driver's (`workload::run_queue_inner`): every `work`, RNG draw,
        // queue call, and `record` in the same order. History calls are
        // host-side and cost nothing, so an empty plan reproduces the
        // fault-free schedule exactly.
        m.spawn(async move {
            for i in 0..ops {
                ctx.work(local).await;
                let t0 = ctx.now();
                if ctx.random_bool(0.5) {
                    let pri = ctx.random_below(num_pris);
                    let item = (ctx.pid() * ops + i) as u64;
                    let tok = hist.begin_insert(ctx.pid(), pri, item, t0);
                    q.insert(&ctx, pri, item).await;
                    hist.complete(tok, ctx.now());
                    let dt = ctx.now() - t0;
                    ctx.record("all", dt);
                    ctx.record("insert", dt);
                } else {
                    let tok = hist.begin_delete(ctx.pid(), t0);
                    let got = q.delete_min(&ctx).await;
                    hist.complete_delete(tok, got, ctx.now());
                    let dt = ctx.now() - t0;
                    ctx.record("all", dt);
                    ctx.record("delete", dt);
                }
            }
        });
    }
    let outcome = m.run_for(MAX_CYCLES);
    let result = RunResult::from_machine(&m);
    let crashed = m.crashed();
    let fault_summary = m.fault_summary().unwrap_or_default();

    // Structural validation: only a crash-free quiescent machine promises
    // consistent structures (a crashed processor legitimately leaves e.g.
    // a tree counter out of sync with its bins).
    let structural_items = if outcome.is_quiescent() && crashed.is_empty() {
        match q.validate(&m) {
            Ok(n) => Some(n),
            Err(detail) => {
                return Err(ChaosError::Structure {
                    detail,
                    history: hist.snapshot(),
                })
            }
        }
    } else {
        None
    };

    // Drain phase: one fresh processor empties the queue through the
    // public API so conservation can be audited.
    let drain_outcome = if outcome.is_quiescent() {
        let ctx = m.ctx();
        let q = Rc::clone(&q);
        let h = hist.clone();
        m.spawn(async move {
            loop {
                let t0 = ctx.now();
                let tok = h.begin_delete(ctx.pid(), t0);
                let got = q.delete_min(&ctx).await;
                h.complete_delete(tok, got, ctx.now());
                h.mark_drain(tok);
                ctx.record("drain", ctx.now() - t0);
                if got.is_none() {
                    break;
                }
            }
        });
        Some(m.run_for(MAX_CYCLES))
    } else {
        None
    };

    let mut wedged =
        !outcome.is_quiescent() || drain_outcome.as_ref().is_some_and(|o| !o.is_quiescent());
    if wedged && plan.is_empty() {
        let bad = if outcome.is_quiescent() {
            drain_outcome.clone().expect("wedge was in the drain")
        } else {
            outcome.clone()
        };
        return Err(ChaosError::Wedged {
            outcome: bad,
            history: hist.snapshot(),
        });
    }

    // Conservation bookkeeping. A crashed delete can damage routing state
    // (e.g. tree counters) and strand items the drain cannot reach; those
    // items are still physically present, not lost, so count them into the
    // audit allowance. If even the host-side walk fails after a crash,
    // fall back to the lenient wedged audit.
    let mut stranded = 0u64;
    if !wedged {
        match q.peek_len(&m) {
            Ok(n) if crashed.is_empty() => {
                if n != 0 {
                    return Err(ChaosError::Structure {
                        detail: format!("{n} items remain after a crash-free full drain"),
                        history: hist.snapshot(),
                    });
                }
            }
            Ok(n) => stranded = n,
            Err(detail) if crashed.is_empty() => {
                return Err(ChaosError::Structure {
                    detail,
                    history: hist.snapshot(),
                })
            }
            Err(_) => wedged = true,
        }
    }

    let history = hist.snapshot();
    let scope = AuditScope {
        num_priorities: wl.num_priorities as u64,
        crashed: crashed.clone(),
        stranded,
        wedged,
        linearizable: algo.consistency() == funnelpq::Consistency::Linearizable,
        relaxed: algo.is_relaxed(),
        rank_error_bound,
    };
    let report = audit_history(&history, &scope).map_err(|error| ChaosError::Audit {
        error,
        history: history.clone(),
    })?;

    Ok(ChaosRun {
        result,
        outcome,
        drain_outcome,
        history,
        report,
        crashed,
        fault_summary,
        structural_items,
    })
}
