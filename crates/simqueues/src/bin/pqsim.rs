//! `pqsim` — command-line driver for the simulated priority-queue
//! experiments.
//!
//! Examples:
//!
//! ```text
//! pqsim --algo FunnelTree --procs 64 --priorities 16
//! pqsim --algo all --procs 2,16,64,256 --priorities 16 --csv
//! pqsim --algo SimpleLinear,FunnelTree --priorities 2,32,512 --procs 256 \
//!       --ops 64 --local-work 50 --seed 7 --net 10 --service 4
//! ```
//!
//! Prints one row per (algorithm, procs, priorities) combination with mean
//! latency (cycles), the insert/delete split, total simulated cycles, and
//! memory-system statistics. All runs are deterministic for a given seed.

use std::process::ExitCode;

use funnelpq_sim::MachineConfig;
use funnelpq_simqueues::queues::Algorithm;
use funnelpq_simqueues::workload::{run_queue_workload, Workload};

#[derive(Debug)]
struct Args {
    algos: Vec<Algorithm>,
    procs: Vec<usize>,
    priorities: Vec<usize>,
    ops: usize,
    local_work: u64,
    seed: u64,
    machine: MachineConfig,
    csv: bool,
    hotspots: bool,
    naive_events: bool,
}

const USAGE: &str = "\
pqsim — simulated bounded-range priority queue experiments (Shavit & Zemach, PODC 1999)

USAGE:
    pqsim [OPTIONS]

OPTIONS:
    --algo <LIST>        comma-separated algorithms, or 'all' / 'scalable'
                         (SingleLock, HuntEtAl, SkipList, SimpleLinear,
                          SimpleTree, LinearFunnels, FunnelTree, HardwareTree,
                          MultiQueue — the relaxed post-paper design)
                         [default: scalable]
    --procs <LIST>       comma-separated processor counts   [default: 16,64,256]
    --priorities <LIST>  comma-separated priority ranges    [default: 16]
    --ops <N>            queue accesses per processor       [default: 64]
    --local-work <N>     cycles of local work between ops   [default: 50]
    --seed <N>           experiment seed                    [default: 61437]
    --net <N>            one-way network latency, cycles    [default: 10]
    --service <N>        cache-line service time, cycles    [default: 4]
    --line-words <N>     words per cache line (power of 2)  [default: 2]
    --csv                machine-readable CSV output
    --hotspots           print the top contended memory regions per run
    --naive-events       use the linear-scan reference event queue
                         (bit-identical results, slower wall-clock)
    -h, --help           show this help
";

fn parse_algo(name: &str) -> Result<Vec<Algorithm>, String> {
    match name {
        "all" => Ok(Algorithm::ALL.to_vec()),
        "scalable" => Ok(Algorithm::SCALABLE.to_vec()),
        other => Algorithm::ALL
            .into_iter()
            .chain([Algorithm::HardwareTree, Algorithm::MultiQueue])
            .find(|a| a.name().eq_ignore_ascii_case(other))
            .map(|a| vec![a])
            .ok_or_else(|| format!("unknown algorithm '{other}'")),
    }
}

fn parse_list<T: std::str::FromStr>(s: &str, what: &str) -> Result<Vec<T>, String> {
    s.split(',')
        .map(|part| {
            part.trim()
                .parse()
                .map_err(|_| format!("invalid {what}: '{part}'"))
        })
        .collect()
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        algos: Algorithm::SCALABLE.to_vec(),
        procs: vec![16, 64, 256],
        priorities: vec![16],
        ops: 64,
        local_work: 50,
        seed: 61437,
        machine: MachineConfig::alewife_like(),
        csv: false,
        hotspots: false,
        naive_events: false,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .map(|s| s.as_str())
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--algo" => {
                let v = value()?;
                let mut algos = Vec::new();
                for part in v.split(',') {
                    algos.extend(parse_algo(part.trim())?);
                }
                args.algos = algos;
            }
            "--procs" => args.procs = parse_list(value()?, "processor count")?,
            "--priorities" => args.priorities = parse_list(value()?, "priority range")?,
            "--ops" => args.ops = parse_list(value()?, "ops")?[0],
            "--local-work" => args.local_work = parse_list(value()?, "local work")?[0],
            "--seed" => args.seed = parse_list(value()?, "seed")?[0],
            "--net" => args.machine.net_latency = parse_list(value()?, "net latency")?[0],
            "--service" => args.machine.service = parse_list(value()?, "service")?[0],
            "--line-words" => args.machine.line_words = parse_list(value()?, "line words")?[0],
            "--csv" => args.csv = true,
            "--hotspots" => args.hotspots = true,
            "--naive-events" => args.naive_events = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    if !args.machine.line_words.is_power_of_two() {
        return Err("--line-words must be a power of two".into());
    }
    if args.ops == 0 || args.procs.contains(&0) {
        return Err("--ops and --procs must be positive".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    if args.csv {
        println!(
            "algo,procs,priorities,ops_per_proc,seed,mean_cycles,insert_mean,delete_mean,\
             total_cycles,mem_accesses,mean_queue_delay"
        );
    } else {
        println!(
            "{:>14} {:>6} {:>6} {:>12} {:>12} {:>12} {:>14} {:>12}",
            "algo", "procs", "pris", "mean(cyc)", "insert", "delete", "total cycles", "mem ops"
        );
    }
    for &algo in &args.algos {
        for &procs in &args.procs {
            for &pris in &args.priorities {
                let wl = Workload {
                    procs,
                    num_priorities: pris,
                    ops_per_proc: args.ops,
                    local_work: args.local_work,
                    seed: args.seed,
                    machine: args.machine,
                    naive_events: args.naive_events,
                };
                let r = run_queue_workload(algo, &wl);
                if args.csv {
                    println!(
                        "{},{},{},{},{},{:.1},{:.1},{:.1},{},{},{:.2}",
                        algo.name(),
                        procs,
                        pris,
                        args.ops,
                        args.seed,
                        r.all.mean(),
                        r.insert.mean(),
                        r.delete.mean(),
                        r.total_cycles,
                        r.stats.mem_accesses,
                        r.stats.mean_queue_delay()
                    );
                } else {
                    println!(
                        "{:>14} {:>6} {:>6} {:>12.0} {:>12.0} {:>12.0} {:>14} {:>12}",
                        algo.name(),
                        procs,
                        pris,
                        r.all.mean(),
                        r.insert.mean(),
                        r.delete.mean(),
                        r.total_cycles,
                        r.stats.mem_accesses
                    );
                }
                if args.hotspots {
                    let total = r.stats.queue_delay_cycles.max(1);
                    for h in &r.hotspots {
                        if h.queue_delay_cycles == 0 {
                            continue;
                        }
                        println!(
                            "    hot: {:<28} {:>6.1}% of queueing delay ({} accesses)",
                            h.label,
                            100.0 * h.queue_delay_cycles as f64 / total as f64,
                            h.accesses
                        );
                    }
                }
            }
        }
    }
    ExitCode::SUCCESS
}
