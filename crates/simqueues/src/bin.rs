//! The paper's Figure-1 bin over simulated memory: an MCS lock, a size
//! word, and an element array.

use funnelpq_sim::{Addr, Machine, ProcCtx};

use crate::error::SimPqError;
use crate::mcs::SimMcsLock;

/// A simulated lock-based bin. Emptiness is one shared read of the size
/// word; insert/delete take the bin's MCS lock.
#[derive(Debug, Clone, Copy)]
pub struct SimBin {
    lock: SimMcsLock,
    size: Addr,
    elems: Addr,
    capacity: usize,
}

impl SimBin {
    /// Allocates a bin holding at most `capacity` items.
    pub fn build(m: &mut Machine, procs: usize, capacity: usize) -> Self {
        let lock = SimMcsLock::build(m, procs);
        let size = m.alloc(1);
        let elems = m.alloc(capacity);
        m.label(size, 1, "bin size word");
        m.label(elems, capacity, "bin elements");
        SimBin {
            lock,
            size,
            elems,
            capacity,
        }
    }

    /// Adds `item` to the bin.
    ///
    /// # Panics
    ///
    /// Panics if the bin is full (sized generously by the workloads);
    /// use [`try_insert`](Self::try_insert) to handle that case.
    pub async fn insert(&self, ctx: &ProcCtx, item: u64) {
        if let Err(e) = self.try_insert(ctx, item).await {
            panic!("{e}");
        }
    }

    /// Adds `item` to the bin, reporting capacity exhaustion (with the
    /// failing processor and simulated time) instead of panicking. On
    /// `Err` the bin is unchanged and the lock released.
    pub async fn try_insert(&self, ctx: &ProcCtx, item: u64) -> Result<(), SimPqError> {
        self.lock.acquire(ctx).await;
        let n = ctx.read(self.size).await;
        if n as usize >= self.capacity {
            self.lock.release(ctx).await;
            return Err(SimPqError::CapacityExhausted {
                what: "SimBin",
                capacity: self.capacity,
                proc: ctx.pid(),
                time: ctx.now(),
            });
        }
        ctx.write(self.elems + n as usize, item).await;
        ctx.write(self.size, n + 1).await;
        self.lock.release(ctx).await;
        Ok(())
    }

    /// Removes an unspecified item (LIFO), or `None` when empty.
    pub async fn delete(&self, ctx: &ProcCtx) -> Option<u64> {
        self.lock.acquire(ctx).await;
        let n = ctx.read(self.size).await;
        let out = if n == 0 {
            None
        } else {
            let item = ctx.read(self.elems + (n - 1) as usize).await;
            ctx.write(self.size, n - 1).await;
            Some(item)
        };
        self.lock.release(ctx).await;
        out
    }

    /// One-read emptiness test (may be stale, as in the paper).
    pub async fn is_empty(&self, ctx: &ProcCtx) -> bool {
        ctx.read(self.size).await == 0
    }

    /// Host-side item count. Costs no simulated time; meaningful only at
    /// quiescence.
    pub fn peek_len(&self, m: &Machine) -> u64 {
        m.peek(self.size)
    }

    /// Host-side snapshot of the stored items, oldest first.
    pub fn peek_items(&self, m: &Machine) -> Vec<u64> {
        let n = (m.peek(self.size) as usize).min(self.capacity);
        (0..n).map(|i| m.peek(self.elems + i)).collect()
    }

    /// Host-side check that the bin's lock is free.
    pub fn peek_lock_free(&self, m: &Machine) -> bool {
        self.lock.peek_free(m)
    }

    /// Structural validation at quiescence: the lock must be free and the
    /// size word within capacity. Returns the item count.
    pub fn validate(&self, m: &Machine) -> Result<u64, String> {
        if !self.lock.peek_free(m) {
            return Err("SimBin: lock held at quiescence".into());
        }
        let n = m.peek(self.size);
        if n as usize > self.capacity {
            return Err(format!(
                "SimBin: size word {n} exceeds capacity {}",
                self.capacity
            ));
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use funnelpq_sim::MachineConfig;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn concurrent_conservation() {
        const P: usize = 8;
        const N: usize = 40;
        let mut m = Machine::new(MachineConfig::test_tiny(), 1);
        // P workers plus the single-threaded drainer at the end.
        let bin = SimBin::build(&mut m, P + 1, P * N);
        let got = Rc::new(RefCell::new(Vec::new()));
        for p in 0..P {
            let ctx = m.ctx();
            let got = Rc::clone(&got);
            m.spawn(async move {
                for i in 0..N {
                    bin.insert(&ctx, (p * N + i) as u64).await;
                    if i % 2 == 0 {
                        if let Some(x) = bin.delete(&ctx).await {
                            got.borrow_mut().push(x);
                        }
                    }
                }
            });
        }
        assert!(m.run().is_quiescent());
        // Drain the rest single-threaded.
        let ctx = m.ctx();
        let got2 = Rc::clone(&got);
        m.spawn(async move {
            while let Some(x) = bin.delete(&ctx).await {
                got2.borrow_mut().push(x);
            }
        });
        assert!(m.run().is_quiescent());
        let mut all = got.borrow().clone();
        all.sort_unstable();
        assert_eq!(all, (0..(P * N) as u64).collect::<Vec<_>>());
    }

    #[test]
    fn empty_delete_returns_none() {
        let mut m = Machine::new(MachineConfig::test_tiny(), 0);
        let bin = SimBin::build(&mut m, 1, 4);
        let ctx = m.ctx();
        m.spawn(async move {
            assert!(bin.is_empty(&ctx).await);
            assert_eq!(bin.delete(&ctx).await, None);
            bin.insert(&ctx, 9).await;
            assert!(!bin.is_empty(&ctx).await);
            assert_eq!(bin.delete(&ctx).await, Some(9));
        });
        assert!(m.run().is_quiescent());
    }
}
