//! The paper's benchmark workload (§4): processors alternate a constant
//! amount of local work with queue accesses; each access inserts a random
//! value or deletes the minimum, by fair coin flip; the queue starts empty;
//! the metric is mean access latency in cycles.

use std::rc::Rc;

use funnelpq_sim::audit::{audit_history, AuditError, AuditReport, AuditScope, History};
use funnelpq_sim::trace::{RegionMap, TraceEvent, TraceLog};
use funnelpq_sim::{Acc, HotSpot, Machine, MachineConfig, RunOutcome, Stats};

use crate::funnel::{CounterMode, SimFunnelConfig, SimFunnelCounter};
use crate::queues::{Algorithm, BuildParams, SimPq};

/// Parameters of one workload run.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Number of simulated processors.
    pub procs: usize,
    /// Priority range `0..num_priorities`.
    pub num_priorities: usize,
    /// Queue accesses per processor.
    pub ops_per_proc: usize,
    /// Local-work cycles between accesses ("kept at a small constant").
    pub local_work: u64,
    /// Experiment seed (machine + per-processor RNG streams).
    pub seed: u64,
    /// Memory-system parameters.
    pub machine: MachineConfig,
    /// Run on the naive linear-scan event queue instead of the indexed
    /// event wheel. Results are bit-identical; only wall-clock speed
    /// differs. For differential testing and the `sim_throughput` bench.
    pub naive_events: bool,
}

impl Workload {
    /// The paper's standard setup for `procs` processors and
    /// `num_priorities` priorities.
    pub fn standard(procs: usize, num_priorities: usize) -> Self {
        Workload {
            procs,
            num_priorities,
            ops_per_proc: 64,
            local_work: 50,
            seed: 0xF00D,
            machine: MachineConfig::alewife_like(),
            naive_events: false,
        }
    }
}

/// Aggregate result of one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Latency over all queue accesses.
    pub all: Acc,
    /// Latency of inserts only.
    pub insert: Acc,
    /// Latency of delete-mins only.
    pub delete: Acc,
    /// Total simulated cycles until quiescence.
    pub total_cycles: u64,
    /// Raw machine statistics.
    pub stats: Stats,
    /// Labelled memory regions ranked by queueing delay (the hot spots).
    pub hotspots: Vec<HotSpot>,
}

impl RunResult {
    pub(crate) fn from_machine(m: &Machine) -> Self {
        let stats = m.stats();
        RunResult {
            all: stats.acc("all"),
            insert: stats.acc("insert"),
            delete: stats.acc("delete"),
            total_cycles: m.now(),
            hotspots: m.hotspots(12),
            stats,
        }
    }
}

/// A workload run with the machine's tracer attached: the usual aggregate
/// result plus everything the `funnelpq_sim::trace` exporters need.
#[derive(Debug, Clone)]
pub struct TracedRun {
    /// The aggregate result — bit-identical to the untraced run's.
    pub result: RunResult,
    /// Every trace event, in emission order.
    pub events: Vec<TraceEvent>,
    /// Line-to-region map of the structure under test, resolved after
    /// build (for `TimeSeries::build` and `chrome_trace_json`).
    pub regions: RegionMap,
}

/// Cycle budget guard: experiments that exceed this are treated as hung.
pub(crate) const MAX_CYCLES: u64 = 2_000_000_000;

pub(crate) fn build_machine(wl: &Workload) -> Machine {
    if wl.naive_events {
        Machine::new_reference(wl.machine, wl.seed)
    } else {
        Machine::new(wl.machine, wl.seed)
    }
}

/// Runs the paper's standard queue workload for `algo`.
///
/// # Panics
///
/// Panics if the simulation deadlocks or exceeds the cycle budget —
/// either indicates an algorithm bug.
pub fn run_queue_workload(algo: Algorithm, wl: &Workload) -> RunResult {
    let mut params = BuildParams::new(wl.procs, wl.num_priorities);
    params.capacity = (wl.procs * wl.ops_per_proc).max(64) + 8;
    run_queue_workload_with(algo, wl, &params)
}

/// Like [`run_queue_workload`], but with a [`TraceLog`] attached for the
/// whole run; returns the aggregate result (bit-identical to the untraced
/// run's — tracing is observational) plus the event log and region map.
pub fn run_queue_workload_traced(algo: Algorithm, wl: &Workload) -> TracedRun {
    let mut params = BuildParams::new(wl.procs, wl.num_priorities);
    params.capacity = (wl.procs * wl.ops_per_proc).max(64) + 8;
    let log = TraceLog::new();
    let (result, regions) = run_queue_inner(algo, wl, &params, Some(&log));
    TracedRun {
        result,
        events: log.take(),
        regions: regions.expect("traced run always builds a region map"),
    }
}

/// Like [`run_queue_workload`] with explicit build parameters (funnel
/// tuning sweeps, ablations).
pub fn run_queue_workload_with(algo: Algorithm, wl: &Workload, params: &BuildParams) -> RunResult {
    run_queue_inner(algo, wl, params, None).0
}

fn run_queue_inner(
    algo: Algorithm,
    wl: &Workload,
    params: &BuildParams,
    trace: Option<&TraceLog>,
) -> (RunResult, Option<RegionMap>) {
    assert!(wl.procs > 0 && wl.num_priorities > 0 && wl.ops_per_proc > 0);
    let mut m = build_machine(wl);
    let q = Rc::new(SimPq::build(&mut m, algo, params));
    let regions = trace.map(|log| {
        m.attach_tracer(log.handle());
        m.region_map()
    });
    for _ in 0..wl.procs {
        let ctx = m.ctx();
        let q = Rc::clone(&q);
        let num_pris = wl.num_priorities as u64;
        let ops = wl.ops_per_proc;
        let local = wl.local_work;
        m.spawn(async move {
            for i in 0..ops {
                ctx.work(local).await;
                let t0 = ctx.now();
                if ctx.random_bool(0.5) {
                    let pri = ctx.random_below(num_pris);
                    q.insert(&ctx, pri, (ctx.pid() * ops + i) as u64).await;
                    let dt = ctx.now() - t0;
                    ctx.record("all", dt);
                    ctx.record("insert", dt);
                } else {
                    q.delete_min(&ctx).await;
                    let dt = ctx.now() - t0;
                    ctx.record("all", dt);
                    ctx.record("delete", dt);
                }
            }
        });
    }
    match m.run_for(MAX_CYCLES) {
        RunOutcome::Quiescent => {}
        other => panic!("workload for {algo} did not finish: {other}"),
    }
    (RunResult::from_machine(&m), regions)
}

/// Contended batched churn: every processor alternates `insert_batch(k)`
/// and `delete_min_batch(k)` until it has moved `ops_per_proc` items.
/// Each *batch* is one recorded access; `total_cycles` divided by the
/// total item count is the throughput-side cycles-per-item figure (under
/// lock saturation, per-batch *latency* grows with the hold length even
/// as throughput improves, so makespan is the honest amortization
/// metric). Two fairness knobs keep the sweep over `k` apples-to-apples:
/// the unrecorded prefill is `k.max(64)` items per processor, so the
/// resident heap depth does not scale with `k`, and local work is paced
/// *per item* (`local_work × take` before each batch), so every sweep
/// point performs identical non-queue work.
///
/// # Panics
///
/// Panics if the simulation deadlocks or exceeds the cycle budget —
/// either indicates an algorithm bug.
pub fn run_batched_churn(algo: Algorithm, wl: &Workload, k: usize) -> RunResult {
    assert!(wl.procs > 0 && wl.num_priorities > 0 && wl.ops_per_proc > 0 && k > 0);
    let prefill = k.max(64);
    let mut params = BuildParams::new(wl.procs, wl.num_priorities);
    params.capacity = (wl.procs * (wl.ops_per_proc + 2 * prefill)).max(64) + 8;
    let mut m = build_machine(wl);
    let q = Rc::new(SimPq::build(&mut m, algo, &params));
    for _ in 0..wl.procs {
        let ctx = m.ctx();
        let q = Rc::clone(&q);
        let num_pris = wl.num_priorities as u64;
        let ops = wl.ops_per_proc;
        let local = wl.local_work;
        m.spawn(async move {
            // Per-processor item namespace wide enough for the prefill
            // plus every inserted batch.
            let mut next_item = (ctx.pid() * (ops + 2 * prefill)) as u64;
            let mut batch: Vec<(u64, u64)> = Vec::with_capacity(prefill);
            for _ in 0..prefill {
                batch.push((ctx.random_below(num_pris), next_item));
                next_item += 1;
            }
            q.insert_batch(&ctx, &batch).await.expect("capacity fits");
            let mut out: Vec<(u64, u64)> = Vec::with_capacity(k);
            let mut moved = 0;
            let mut insert_turn = true;
            while moved < ops {
                let take = k.min(ops - moved);
                ctx.work(local * take as u64).await;
                let t0 = ctx.now();
                if insert_turn {
                    batch.clear();
                    for _ in 0..take {
                        batch.push((ctx.random_below(num_pris), next_item));
                        next_item += 1;
                    }
                    q.insert_batch(&ctx, &batch).await.expect("capacity fits");
                    let dt = ctx.now() - t0;
                    ctx.record("all", dt);
                    ctx.record("insert", dt);
                } else {
                    out.clear();
                    q.delete_min_batch(&ctx, take, &mut out).await;
                    let dt = ctx.now() - t0;
                    ctx.record("all", dt);
                    ctx.record("delete", dt);
                }
                insert_turn = !insert_turn;
                moved += take;
            }
        });
    }
    match m.run_for(MAX_CYCLES) {
        RunOutcome::Quiescent => {}
        other => panic!("batched churn for {algo} did not finish: {other}"),
    }
    RunResult::from_machine(&m)
}

/// Result of one batched-quality run ([`run_batched_quality`]): latency
/// aggregates (one `"insert"` sample per submitted batch, one `"delete"`
/// sample per drain grab) plus the audited operation history.
#[derive(Debug, Clone)]
pub struct BatchedQualityRun {
    /// Per-batch latency aggregates and machine statistics.
    pub result: RunResult,
    /// Audit counts and rank-error distributions; every drain delete here
    /// is batched, so [`AuditReport::rank_error_batched`] mirrors
    /// [`AuditReport::rank_error`] and quantifies what the `k`-way drain
    /// costs in ordering quality.
    pub report: AuditReport,
}

/// Runs a two-phase batched workload and audits the full history: phase
/// one has every processor insert its items through `insert_batch` in
/// grabs of `k` (concurrently), phase two drains the queue from one fresh
/// processor through `delete_min_batch(k)`. The audit checks conservation
/// and drain quality: strict algorithms must still produce an exactly
/// sorted drain (rank error pinned to zero), relaxed ones get the
/// rank-error distribution, enforced against `rank_error_bound` when
/// given.
///
/// # Panics
///
/// Panics if the simulation wedges or exceeds the cycle budget — either
/// indicates an algorithm bug.
pub fn run_batched_quality(
    algo: Algorithm,
    wl: &Workload,
    k: usize,
    rank_error_bound: Option<u64>,
) -> Result<BatchedQualityRun, AuditError> {
    assert!(wl.procs > 0 && wl.num_priorities > 0 && wl.ops_per_proc > 0 && k > 0);
    // One extra processor slot for the drain phase (same as the chaos
    // driver's build).
    let mut params = BuildParams::new(wl.procs + 1, wl.num_priorities);
    params.capacity = (wl.procs * wl.ops_per_proc).max(64) + 8;
    let mut m = build_machine(wl);
    let q = Rc::new(SimPq::build(&mut m, algo, &params));
    let hist = History::new();
    for _ in 0..wl.procs {
        let ctx = m.ctx();
        let q = Rc::clone(&q);
        let hist = hist.clone();
        let num_pris = wl.num_priorities as u64;
        let ops = wl.ops_per_proc;
        let local = wl.local_work;
        m.spawn(async move {
            let mut i = 0;
            while i < ops {
                ctx.work(local).await;
                let t0 = ctx.now();
                let take = k.min(ops - i);
                let mut batch = Vec::with_capacity(take);
                let mut toks = Vec::with_capacity(take);
                for _ in 0..take {
                    let pri = ctx.random_below(num_pris);
                    let item = (ctx.pid() * ops + i) as u64;
                    toks.push(hist.begin_insert(ctx.pid(), pri, item, t0));
                    batch.push((pri, item));
                    i += 1;
                }
                q.insert_batch(&ctx, &batch)
                    .await
                    .expect("capacity sized to hold every item");
                let end = ctx.now();
                for tok in toks {
                    hist.complete(tok, end);
                    hist.mark_batched(tok);
                }
                let dt = end - t0;
                ctx.record("all", dt);
                ctx.record("insert", dt);
            }
        });
    }
    match m.run_for(MAX_CYCLES) {
        RunOutcome::Quiescent => {}
        other => panic!("batched insert phase for {algo} did not finish: {other}"),
    }

    // Sequential batched drain from a fresh processor. The per-item
    // history records share the grab's interval; they are opened after the
    // queue call returns (history calls are host-side and free), which is
    // equivalent to opening them before it.
    {
        let ctx = m.ctx();
        let q = Rc::clone(&q);
        let hist = hist.clone();
        m.spawn(async move {
            let mut out: Vec<(u64, u64)> = Vec::with_capacity(k);
            loop {
                out.clear();
                let t0 = ctx.now();
                let n = q.delete_min_batch(&ctx, k, &mut out).await;
                let end = ctx.now();
                for &(pri, item) in &out {
                    let tok = hist.begin_delete(ctx.pid(), t0);
                    hist.complete_delete(tok, Some((pri, item)), end);
                    hist.mark_drain(tok);
                    hist.mark_batched(tok);
                }
                ctx.record("all", end - t0);
                ctx.record("delete", end - t0);
                if n == 0 {
                    break;
                }
            }
        });
        match m.run_for(MAX_CYCLES) {
            RunOutcome::Quiescent => {}
            other => panic!("batched drain for {algo} did not finish: {other}"),
        }
    }

    let scope = AuditScope {
        num_priorities: wl.num_priorities as u64,
        linearizable: algo.consistency() == funnelpq::Consistency::Linearizable,
        relaxed: algo.is_relaxed(),
        rank_error_bound,
        ..AuditScope::default()
    };
    let report = audit_history(&hist.snapshot(), &scope)?;
    Ok(BatchedQualityRun {
        result: RunResult::from_machine(&m),
        report,
    })
}

/// Fraction-of-decrements counter workload for Figure 5: `procs`
/// processors apply `ops_per_proc` operations to one shared funnel counter;
/// each operation is a decrement with probability `pct_dec/100`, else an
/// increment. In [`CounterMode::BOUNDED_AT_ZERO`] the decrement is the
/// paper's bounded fetch-and-decrement with elimination; in
/// [`CounterMode::FetchAdd`] both directions are plain combining
/// fetch-and-add.
pub fn run_counter_workload(
    mode: CounterMode,
    pct_dec: u32,
    cfg: SimFunnelConfig,
    wl: &Workload,
) -> RunResult {
    run_counter_inner(mode, pct_dec, cfg, wl, None).0
}

/// Traced variant of [`run_counter_workload`]; see
/// [`run_queue_workload_traced`].
pub fn run_counter_workload_traced(
    mode: CounterMode,
    pct_dec: u32,
    cfg: SimFunnelConfig,
    wl: &Workload,
) -> TracedRun {
    let log = TraceLog::new();
    let (result, regions) = run_counter_inner(mode, pct_dec, cfg, wl, Some(&log));
    TracedRun {
        result,
        events: log.take(),
        regions: regions.expect("traced run always builds a region map"),
    }
}

fn run_counter_inner(
    mode: CounterMode,
    pct_dec: u32,
    cfg: SimFunnelConfig,
    wl: &Workload,
    trace: Option<&TraceLog>,
) -> (RunResult, Option<RegionMap>) {
    assert!(pct_dec <= 100);
    let mut m = build_machine(wl);
    let c = SimFunnelCounter::build(&mut m, wl.procs, mode, cfg);
    // Seed the counter high enough that unbounded modes never wrap.
    c.poke_set(&mut m, (wl.procs * wl.ops_per_proc) as i64);
    let regions = trace.map(|log| {
        m.attach_tracer(log.handle());
        m.region_map()
    });
    for _ in 0..wl.procs {
        let ctx = m.ctx();
        let c = c.clone();
        let ops = wl.ops_per_proc;
        let local = wl.local_work;
        let p = f64::from(pct_dec) / 100.0;
        m.spawn(async move {
            for _ in 0..ops {
                ctx.work(local).await;
                let t0 = ctx.now();
                if ctx.random_bool(p) {
                    c.fetch_dec(&ctx).await;
                } else {
                    c.fetch_inc(&ctx).await;
                }
                ctx.record("all", ctx.now() - t0);
            }
        });
    }
    match m.run_for(MAX_CYCLES) {
        RunOutcome::Quiescent => {}
        other => panic!("counter workload did not finish: {other}"),
    }
    (RunResult::from_machine(&m), regions)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_algorithm_survives_the_standard_workload() {
        for algo in Algorithm::ALL {
            let mut wl = Workload::standard(8, 16);
            wl.ops_per_proc = 12;
            let r = run_queue_workload(algo, &wl);
            assert_eq!(
                r.all.count(),
                8 * 12,
                "{algo}: every access must be recorded"
            );
            assert!(r.all.mean() > 0.0, "{algo}: latency must be positive");
            assert_eq!(r.insert.count() + r.delete.count(), r.all.count());
        }
    }

    #[test]
    fn batched_quality_strict_algorithms_have_zero_rank_error() {
        // insert_batch + delete_min_batch conserve every item, and the
        // strict algorithms' batched drains are exactly sorted (rank error
        // pinned to zero) at every batch size.
        for algo in Algorithm::ALL {
            for k in [1usize, 8] {
                let mut wl = Workload::standard(4, 16);
                wl.ops_per_proc = 16;
                let run = run_batched_quality(algo, &wl, k, None)
                    .unwrap_or_else(|e| panic!("{algo} k={k}: {e}"));
                assert_eq!(run.report.inserts, 4 * 16, "{algo} k={k}");
                assert_eq!(run.report.deletes, 4 * 16, "{algo} k={k}");
                assert_eq!(run.report.leaked, 0, "{algo} k={k}");
                assert_eq!(run.report.rank_error.max(), 0, "{algo} k={k}");
                assert_eq!(
                    run.report.rank_error_batched.count(),
                    run.report.rank_error.count(),
                    "{algo} k={k}: every drain delete was batched"
                );
            }
        }
    }

    #[test]
    fn batched_quality_multiqueue_rank_error_within_bound() {
        // The relaxed MultiQueue conserves items at every k; its rank
        // error grows with k (a drained queue's tail is served without
        // re-probing) but stays within the obvious ceiling: the other
        // queues can hide at most the items they hold.
        for k in [1usize, 8, 64] {
            let mut wl = Workload::standard(4, 32);
            wl.ops_per_proc = 64;
            let total = (wl.procs * wl.ops_per_proc) as u64;
            let run = run_batched_quality(Algorithm::MultiQueue, &wl, k, Some(total))
                .unwrap_or_else(|e| panic!("MultiQueue k={k}: {e}"));
            assert_eq!(run.report.deletes, total, "k={k}");
            assert_eq!(run.report.leaked, 0, "k={k}");
        }
    }

    #[test]
    fn workload_is_deterministic() {
        let wl = {
            let mut w = Workload::standard(6, 8);
            w.ops_per_proc = 10;
            w
        };
        let a = run_queue_workload(Algorithm::FunnelTree, &wl);
        let b = run_queue_workload(Algorithm::FunnelTree, &wl);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.all.sum(), b.all.sum());
    }

    #[test]
    fn naive_events_machine_is_bit_identical() {
        let mut wl = Workload::standard(12, 16);
        wl.ops_per_proc = 14;
        let fast = run_queue_workload(Algorithm::FunnelTree, &wl);
        wl.naive_events = true;
        let slow = run_queue_workload(Algorithm::FunnelTree, &wl);
        assert_eq!(fast.total_cycles, slow.total_cycles);
        assert_eq!(fast.all.sum(), slow.all.sum());
        assert_eq!(fast.stats.mem_accesses, slow.stats.mem_accesses);
        assert_eq!(fast.stats.queue_delay_cycles, slow.stats.queue_delay_cycles);
    }

    #[test]
    fn counter_workload_both_modes() {
        let mut wl = Workload::standard(8, 2);
        wl.ops_per_proc = 16;
        let cfg = SimFunnelConfig::for_procs(8);
        let a = run_counter_workload(CounterMode::FetchAdd, 50, cfg.clone(), &wl);
        let b = run_counter_workload(CounterMode::BOUNDED_AT_ZERO, 50, cfg, &wl);
        assert_eq!(a.all.count(), 8 * 16);
        assert_eq!(b.all.count(), 8 * 16);
    }

    #[test]
    fn more_processors_do_not_reduce_singlelock_throughput_shape() {
        // Sanity for the contention model: SingleLock latency grows with P.
        let lat = |p: usize| {
            let mut wl = Workload::standard(p, 16);
            wl.ops_per_proc = 16;
            run_queue_workload(Algorithm::SingleLock, &wl).all.mean()
        };
        let l2 = lat(2);
        let l16 = lat(16);
        assert!(
            l16 > 2.0 * l2,
            "SingleLock should serialize: lat(16)={l16:.0} vs lat(2)={l2:.0}"
        );
    }
}
