//! The paper's benchmark workload (§4): processors alternate a constant
//! amount of local work with queue accesses; each access inserts a random
//! value or deletes the minimum, by fair coin flip; the queue starts empty;
//! the metric is mean access latency in cycles.

use std::rc::Rc;

use funnelpq_sim::trace::{RegionMap, TraceEvent, TraceLog};
use funnelpq_sim::{Acc, HotSpot, Machine, MachineConfig, RunOutcome, Stats};

use crate::funnel::{CounterMode, SimFunnelConfig, SimFunnelCounter};
use crate::queues::{Algorithm, BuildParams, SimPq};

/// Parameters of one workload run.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Number of simulated processors.
    pub procs: usize,
    /// Priority range `0..num_priorities`.
    pub num_priorities: usize,
    /// Queue accesses per processor.
    pub ops_per_proc: usize,
    /// Local-work cycles between accesses ("kept at a small constant").
    pub local_work: u64,
    /// Experiment seed (machine + per-processor RNG streams).
    pub seed: u64,
    /// Memory-system parameters.
    pub machine: MachineConfig,
    /// Run on the naive linear-scan event queue instead of the indexed
    /// event wheel. Results are bit-identical; only wall-clock speed
    /// differs. For differential testing and the `sim_throughput` bench.
    pub naive_events: bool,
}

impl Workload {
    /// The paper's standard setup for `procs` processors and
    /// `num_priorities` priorities.
    pub fn standard(procs: usize, num_priorities: usize) -> Self {
        Workload {
            procs,
            num_priorities,
            ops_per_proc: 64,
            local_work: 50,
            seed: 0xF00D,
            machine: MachineConfig::alewife_like(),
            naive_events: false,
        }
    }
}

/// Aggregate result of one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Latency over all queue accesses.
    pub all: Acc,
    /// Latency of inserts only.
    pub insert: Acc,
    /// Latency of delete-mins only.
    pub delete: Acc,
    /// Total simulated cycles until quiescence.
    pub total_cycles: u64,
    /// Raw machine statistics.
    pub stats: Stats,
    /// Labelled memory regions ranked by queueing delay (the hot spots).
    pub hotspots: Vec<HotSpot>,
}

impl RunResult {
    pub(crate) fn from_machine(m: &Machine) -> Self {
        let stats = m.stats();
        RunResult {
            all: stats.acc("all"),
            insert: stats.acc("insert"),
            delete: stats.acc("delete"),
            total_cycles: m.now(),
            hotspots: m.hotspots(12),
            stats,
        }
    }
}

/// A workload run with the machine's tracer attached: the usual aggregate
/// result plus everything the `funnelpq_sim::trace` exporters need.
#[derive(Debug, Clone)]
pub struct TracedRun {
    /// The aggregate result — bit-identical to the untraced run's.
    pub result: RunResult,
    /// Every trace event, in emission order.
    pub events: Vec<TraceEvent>,
    /// Line-to-region map of the structure under test, resolved after
    /// build (for `TimeSeries::build` and `chrome_trace_json`).
    pub regions: RegionMap,
}

/// Cycle budget guard: experiments that exceed this are treated as hung.
pub(crate) const MAX_CYCLES: u64 = 2_000_000_000;

pub(crate) fn build_machine(wl: &Workload) -> Machine {
    if wl.naive_events {
        Machine::new_reference(wl.machine, wl.seed)
    } else {
        Machine::new(wl.machine, wl.seed)
    }
}

/// Runs the paper's standard queue workload for `algo`.
///
/// # Panics
///
/// Panics if the simulation deadlocks or exceeds the cycle budget —
/// either indicates an algorithm bug.
pub fn run_queue_workload(algo: Algorithm, wl: &Workload) -> RunResult {
    let mut params = BuildParams::new(wl.procs, wl.num_priorities);
    params.capacity = (wl.procs * wl.ops_per_proc).max(64) + 8;
    run_queue_workload_with(algo, wl, &params)
}

/// Like [`run_queue_workload`], but with a [`TraceLog`] attached for the
/// whole run; returns the aggregate result (bit-identical to the untraced
/// run's — tracing is observational) plus the event log and region map.
pub fn run_queue_workload_traced(algo: Algorithm, wl: &Workload) -> TracedRun {
    let mut params = BuildParams::new(wl.procs, wl.num_priorities);
    params.capacity = (wl.procs * wl.ops_per_proc).max(64) + 8;
    let log = TraceLog::new();
    let (result, regions) = run_queue_inner(algo, wl, &params, Some(&log));
    TracedRun {
        result,
        events: log.take(),
        regions: regions.expect("traced run always builds a region map"),
    }
}

/// Like [`run_queue_workload`] with explicit build parameters (funnel
/// tuning sweeps, ablations).
pub fn run_queue_workload_with(algo: Algorithm, wl: &Workload, params: &BuildParams) -> RunResult {
    run_queue_inner(algo, wl, params, None).0
}

fn run_queue_inner(
    algo: Algorithm,
    wl: &Workload,
    params: &BuildParams,
    trace: Option<&TraceLog>,
) -> (RunResult, Option<RegionMap>) {
    assert!(wl.procs > 0 && wl.num_priorities > 0 && wl.ops_per_proc > 0);
    let mut m = build_machine(wl);
    let q = Rc::new(SimPq::build(&mut m, algo, params));
    let regions = trace.map(|log| {
        m.attach_tracer(log.handle());
        m.region_map()
    });
    for _ in 0..wl.procs {
        let ctx = m.ctx();
        let q = Rc::clone(&q);
        let num_pris = wl.num_priorities as u64;
        let ops = wl.ops_per_proc;
        let local = wl.local_work;
        m.spawn(async move {
            for i in 0..ops {
                ctx.work(local).await;
                let t0 = ctx.now();
                if ctx.random_bool(0.5) {
                    let pri = ctx.random_below(num_pris);
                    q.insert(&ctx, pri, (ctx.pid() * ops + i) as u64).await;
                    let dt = ctx.now() - t0;
                    ctx.record("all", dt);
                    ctx.record("insert", dt);
                } else {
                    q.delete_min(&ctx).await;
                    let dt = ctx.now() - t0;
                    ctx.record("all", dt);
                    ctx.record("delete", dt);
                }
            }
        });
    }
    match m.run_for(MAX_CYCLES) {
        RunOutcome::Quiescent => {}
        other => panic!("workload for {algo} did not finish: {other}"),
    }
    (RunResult::from_machine(&m), regions)
}

/// Fraction-of-decrements counter workload for Figure 5: `procs`
/// processors apply `ops_per_proc` operations to one shared funnel counter;
/// each operation is a decrement with probability `pct_dec/100`, else an
/// increment. In [`CounterMode::BOUNDED_AT_ZERO`] the decrement is the
/// paper's bounded fetch-and-decrement with elimination; in
/// [`CounterMode::FetchAdd`] both directions are plain combining
/// fetch-and-add.
pub fn run_counter_workload(
    mode: CounterMode,
    pct_dec: u32,
    cfg: SimFunnelConfig,
    wl: &Workload,
) -> RunResult {
    run_counter_inner(mode, pct_dec, cfg, wl, None).0
}

/// Traced variant of [`run_counter_workload`]; see
/// [`run_queue_workload_traced`].
pub fn run_counter_workload_traced(
    mode: CounterMode,
    pct_dec: u32,
    cfg: SimFunnelConfig,
    wl: &Workload,
) -> TracedRun {
    let log = TraceLog::new();
    let (result, regions) = run_counter_inner(mode, pct_dec, cfg, wl, Some(&log));
    TracedRun {
        result,
        events: log.take(),
        regions: regions.expect("traced run always builds a region map"),
    }
}

fn run_counter_inner(
    mode: CounterMode,
    pct_dec: u32,
    cfg: SimFunnelConfig,
    wl: &Workload,
    trace: Option<&TraceLog>,
) -> (RunResult, Option<RegionMap>) {
    assert!(pct_dec <= 100);
    let mut m = build_machine(wl);
    let c = SimFunnelCounter::build(&mut m, wl.procs, mode, cfg);
    // Seed the counter high enough that unbounded modes never wrap.
    c.poke_set(&mut m, (wl.procs * wl.ops_per_proc) as i64);
    let regions = trace.map(|log| {
        m.attach_tracer(log.handle());
        m.region_map()
    });
    for _ in 0..wl.procs {
        let ctx = m.ctx();
        let c = c.clone();
        let ops = wl.ops_per_proc;
        let local = wl.local_work;
        let p = f64::from(pct_dec) / 100.0;
        m.spawn(async move {
            for _ in 0..ops {
                ctx.work(local).await;
                let t0 = ctx.now();
                if ctx.random_bool(p) {
                    c.fetch_dec(&ctx).await;
                } else {
                    c.fetch_inc(&ctx).await;
                }
                ctx.record("all", ctx.now() - t0);
            }
        });
    }
    match m.run_for(MAX_CYCLES) {
        RunOutcome::Quiescent => {}
        other => panic!("counter workload did not finish: {other}"),
    }
    (RunResult::from_machine(&m), regions)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_algorithm_survives_the_standard_workload() {
        for algo in Algorithm::ALL {
            let mut wl = Workload::standard(8, 16);
            wl.ops_per_proc = 12;
            let r = run_queue_workload(algo, &wl);
            assert_eq!(
                r.all.count(),
                8 * 12,
                "{algo}: every access must be recorded"
            );
            assert!(r.all.mean() > 0.0, "{algo}: latency must be positive");
            assert_eq!(r.insert.count() + r.delete.count(), r.all.count());
        }
    }

    #[test]
    fn workload_is_deterministic() {
        let wl = {
            let mut w = Workload::standard(6, 8);
            w.ops_per_proc = 10;
            w
        };
        let a = run_queue_workload(Algorithm::FunnelTree, &wl);
        let b = run_queue_workload(Algorithm::FunnelTree, &wl);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.all.sum(), b.all.sum());
    }

    #[test]
    fn naive_events_machine_is_bit_identical() {
        let mut wl = Workload::standard(12, 16);
        wl.ops_per_proc = 14;
        let fast = run_queue_workload(Algorithm::FunnelTree, &wl);
        wl.naive_events = true;
        let slow = run_queue_workload(Algorithm::FunnelTree, &wl);
        assert_eq!(fast.total_cycles, slow.total_cycles);
        assert_eq!(fast.all.sum(), slow.all.sum());
        assert_eq!(fast.stats.mem_accesses, slow.stats.mem_accesses);
        assert_eq!(fast.stats.queue_delay_cycles, slow.stats.queue_delay_cycles);
    }

    #[test]
    fn counter_workload_both_modes() {
        let mut wl = Workload::standard(8, 2);
        wl.ops_per_proc = 16;
        let cfg = SimFunnelConfig::for_procs(8);
        let a = run_counter_workload(CounterMode::FetchAdd, 50, cfg.clone(), &wl);
        let b = run_counter_workload(CounterMode::BOUNDED_AT_ZERO, 50, cfg, &wl);
        assert_eq!(a.all.count(), 8 * 16);
        assert_eq!(b.all.count(), 8 * 16);
    }

    #[test]
    fn more_processors_do_not_reduce_singlelock_throughput_shape() {
        // Sanity for the contention model: SingleLock latency grows with P.
        let lat = |p: usize| {
            let mut wl = Workload::standard(p, 16);
            wl.ops_per_proc = 16;
            run_queue_workload(Algorithm::SingleLock, &wl).all.mean()
        };
        let l2 = lat(2);
        let l16 = lat(16);
        assert!(
            l16 > 2.0 * l2,
            "SingleLock should serialize: lat(16)={l16:.0} vs lat(2)={l2:.0}"
        );
    }
}
