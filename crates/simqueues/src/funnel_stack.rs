//! Combining-funnel stack over simulated memory: the funnel-based bin used
//! by the simulated `LinearFunnels` and `FunnelTree` queues.
//!
//! Push trees carry pre-linked chains of stack nodes; pop trees carry a
//! request count. A push tree reaching the central stack splices its whole
//! chain in one short critical section; a pop tree detaches up to its size
//! in nodes and distributes them back down the tree; reversing trees of
//! equal size eliminate by handing the pushers' chain directly to the
//! poppers. Emptiness is a single read of the head word.

use std::cell::RefCell;
use std::rc::Rc;

use funnelpq_sim::{Addr, Machine, ProcCtx, Word};

use crate::costs;
use crate::error::SimPqError;
use crate::funnel::SimFunnelConfig;
use crate::mcs::SimMcsLock;

const LOC_FROZEN: Word = u64::MAX;
const RES_NONE: Word = 0;
const TAG_DONE: Word = 1;
const TAG_CHAIN: Word = 2;

fn pack(tag: Word, node_enc: Word) -> Word {
    (node_enc << 2) | tag
}

fn unpack(x: Word) -> (Word, Word) {
    (x & 0b11, x >> 2)
}

/// A simulated combining-funnel stack of `u64` items.
///
/// Nodes come from a pre-allocated pool (`max_items`); the pool free list
/// is processor-local bookkeeping and costs no simulated traffic.
#[derive(Debug, Clone)]
pub struct SimFunnelStack {
    cfg: Rc<SimFunnelConfig>,
    /// Encoded head node (addr+1; 0 = empty).
    head: Addr,
    central_lock: SimMcsLock,
    layers: Rc<Vec<(Addr, usize)>>,
    records: Addr,
    rec_stride: usize,
    pool: Rc<RefCell<Vec<Addr>>>,
    /// Pool size: the most items the stack can ever hold, which also
    /// bounds any well-formed head chain walk.
    max_items: usize,
    frac: Rc<RefCell<Vec<u64>>>,
    /// Per-processor depth preference (see the counter's `depth` field):
    /// how many combining layers to traverse before going central.
    depth: Rc<RefCell<Vec<usize>>>,
}

/// Central-lock wait (cycles) above which a stack operation treats the
/// central stack as contended and deepens its funnel traversal.
const CENTRAL_CONTENTION_CYCLES: u64 = 250;

impl SimFunnelStack {
    /// Allocates a stack for `procs` processors holding at most
    /// `max_items` simultaneous items.
    pub fn build(m: &mut Machine, procs: usize, max_items: usize, cfg: SimFunnelConfig) -> Self {
        cfg.validate();
        let head = m.alloc(1);
        let central_lock = SimMcsLock::build(m, procs);
        let layers: Vec<(Addr, usize)> = cfg.widths.iter().map(|&w| (m.alloc(w), w)).collect();
        let lw = m.line_words();
        let rec_stride = 5usize.next_multiple_of(lw).max(lw);
        let records = m.alloc(procs * rec_stride);
        // Node pool: each node is [item, next], one allocation so nodes sit
        // densely (2 words apiece).
        let pool_base = m.alloc(2 * max_items.max(1));
        let pool = (0..max_items.max(1)).map(|i| pool_base + 2 * i).collect();
        let levels = cfg.widths.len();
        m.label(head, 1, "funnel stack head");
        for &(base, w) in &layers {
            m.label(base, w, "funnel layers");
        }
        m.label(records, procs * rec_stride, "funnel records");
        m.label(pool_base, 2 * max_items.max(1), "stack nodes");
        SimFunnelStack {
            cfg: Rc::new(cfg),
            head,
            central_lock,
            layers: Rc::new(layers),
            records,
            rec_stride,
            pool: Rc::new(RefCell::new(pool)),
            max_items: max_items.max(1),
            frac: Rc::new(RefCell::new(vec![256; procs])),
            depth: Rc::new(RefCell::new(vec![levels; procs])),
        }
    }

    fn loc_of(&self, pid: usize) -> Addr {
        assert!(
            pid < self.frac.borrow().len(),
            "processor {pid} used a funnel built for fewer processors"
        );
        self.records + pid * self.rec_stride
    }
    fn sum_of(&self, pid: usize) -> Addr {
        self.records + pid * self.rec_stride + 1
    }
    fn chead_of(&self, pid: usize) -> Addr {
        self.records + pid * self.rec_stride + 2
    }
    fn ctail_of(&self, pid: usize) -> Addr {
        self.records + pid * self.rec_stride + 3
    }
    fn res_of(&self, pid: usize) -> Addr {
        self.records + pid * self.rec_stride + 4
    }

    /// One-read emptiness test.
    pub async fn is_empty(&self, ctx: &ProcCtx) -> bool {
        ctx.read(self.head).await == 0
    }

    /// Current traversal-depth preference of processor `pid` (diagnostic
    /// view of the adaption state; zero simulated cost).
    pub fn depth_preference(&self, pid: usize) -> usize {
        self.depth.borrow()[pid]
    }

    /// Host-side item count: walks the head chain without simulated cost.
    /// Meaningful only at quiescence. Errors if the chain is longer than
    /// the node pool (a cycle or corruption).
    pub fn peek_len(&self, m: &Machine) -> Result<u64, String> {
        self.peek_items(m).map(|v| v.len() as u64)
    }

    /// Host-side snapshot of the stored items, top of stack first. Errors
    /// if the head chain is longer than the node pool (a cycle or
    /// corruption).
    pub fn peek_items(&self, m: &Machine) -> Result<Vec<u64>, String> {
        let mut items = Vec::new();
        let mut enc = m.peek(self.head);
        while enc != 0 {
            if items.len() >= self.max_items {
                return Err(format!(
                    "SimFunnelStack: head chain exceeds pool size {} (cycle or corruption)",
                    self.max_items
                ));
            }
            let node = (enc - 1) as Addr;
            items.push(m.peek(node));
            enc = m.peek(node + 1);
        }
        Ok(items)
    }

    /// Host-side check that the central stack lock is free.
    pub fn peek_lock_free(&self, m: &Machine) -> bool {
        self.central_lock.peek_free(m)
    }

    /// Structural validation at quiescence: central lock free and the head
    /// chain well-formed. Returns the item count.
    ///
    /// Combining-layer slots are deliberately *not* checked: a layer slot
    /// retains the last processor id swapped into it, so stale non-zero
    /// slots are normal at quiescence.
    pub fn validate(&self, m: &Machine) -> Result<u64, String> {
        if !self.peek_lock_free(m) {
            return Err("SimFunnelStack: central lock held at quiescence".into());
        }
        self.peek_len(m)
    }

    /// Pushes `item`.
    ///
    /// # Panics
    ///
    /// Panics if the node pool is exhausted (the stack holds `max_items`);
    /// use [`try_push`](Self::try_push) to handle that case.
    pub async fn push(&self, ctx: &ProcCtx, item: u64) {
        if let Err(e) = self.try_push(ctx, item).await {
            panic!("{e}");
        }
    }

    /// Pushes `item`, reporting pool exhaustion (with the failing
    /// processor and simulated time) instead of panicking. On `Err` the
    /// stack is unchanged.
    pub async fn try_push(&self, ctx: &ProcCtx, item: u64) -> Result<(), SimPqError> {
        let node = match self.pool.borrow_mut().pop() {
            Some(node) => node,
            None => {
                return Err(SimPqError::PoolExhausted {
                    what: "SimFunnelStack",
                    proc: ctx.pid(),
                    time: ctx.now(),
                })
            }
        };
        ctx.write(node, item).await; // node.item
        ctx.write(node + 1, 0).await; // node.next
        let outcome = self
            .operate(ctx, 1, (node + 1) as Word, (node + 1) as Word)
            .await;
        debug_assert_eq!(outcome, None, "push must not yield a chain");
        Ok(())
    }

    /// Pops an item, or `None` when the stack appears empty.
    pub async fn pop(&self, ctx: &ProcCtx) -> Option<u64> {
        let chain = self.operate(ctx, -1, 0, 0).await;
        match chain {
            Some(0) | None => None,
            Some(enc) => {
                let node = (enc - 1) as Addr;
                let item = ctx.read(node).await;
                self.pool.borrow_mut().push(node);
                Some(item)
            }
        }
    }

    /// Funnel traversal. Returns `None` for completed pushes and
    /// `Some(encoded chain head)` for pops (0 = empty).
    async fn operate(&self, ctx: &ProcCtx, delta: i64, chead: Word, ctail: Word) -> Option<Word> {
        let _span = ctx.span("funnel-stack-traverse");
        ctx.work(costs::OP_SETUP).await;
        let pid = ctx.pid();
        let mut sum = delta;
        let mut ctail = ctail;
        let mut children: Vec<(usize, i64)> = Vec::new();
        let mut d: usize = 0;
        let levels = self.layers.len();
        let width_frac: u64 = self.frac.borrow()[pid];
        let max_d: usize = self.depth.borrow()[pid].min(levels);
        let mut attempts_made = 0u32;
        let mut collisions_won = 0u32;
        let mut central_contended = false;
        let mut was_captured = false;

        ctx.write(self.sum_of(pid), sum as u64).await;
        ctx.write(self.chead_of(pid), chead).await;
        ctx.write(self.ctail_of(pid), ctail).await;
        ctx.write(self.res_of(pid), RES_NONE).await;
        ctx.write(self.loc_of(pid), (d + 1) as u64).await;

        // Run-once labelled block: the stack's central section is
        // lock-based and always succeeds, so no path loops back (unlike
        // the counter, whose central CAS can fail).
        let (tag, my_chain) = 'mainloop: {
            let mut n = 0;
            'attempts: while n < self.cfg.attempts && d < max_d {
                n += 1;
                attempts_made += 1;
                let (layer_base, layer_w) = self.layers[d];
                let wid = (((layer_w as u64) * width_frac / 256).max(1) as usize).min(layer_w);
                ctx.work(costs::RNG_DRAW).await;
                let slot = layer_base + ctx.random_below(wid as u64) as usize;
                let q = ctx.swap(slot, (pid + 1) as u64).await;
                if q != 0 && (q - 1) as usize != pid {
                    let q = (q - 1) as usize;
                    let old = ctx.cas(self.loc_of(pid), (d + 1) as u64, LOC_FROZEN).await;
                    if old != (d + 1) as u64 {
                        {
                            was_captured = true;
                            break 'mainloop self.await_result(ctx, pid).await;
                        }
                    }
                    let qold = ctx.cas(self.loc_of(q), (d + 1) as u64, LOC_FROZEN).await;
                    if qold == (d + 1) as u64 {
                        collisions_won += 1;
                        // Marker for tracers and fault plans: this
                        // processor just won a collision and now combines
                        // (or eliminates) on behalf of the captured peer.
                        ctx.span("funnel-combine").end();
                        let qsum = ctx.read(self.sum_of(q)).await as i64;
                        debug_assert_eq!(qsum.abs(), sum.abs());
                        if qsum == -sum {
                            // Elimination: pushers' chain goes to poppers.
                            if sum > 0 {
                                let myh = ctx.read(self.chead_of(pid)).await;
                                ctx.write(self.res_of(q), pack(TAG_CHAIN, myh)).await;
                                break 'mainloop (TAG_DONE, 0);
                            } else {
                                let qh = ctx.read(self.chead_of(q)).await;
                                ctx.write(self.res_of(q), pack(TAG_DONE, 0)).await;
                                break 'mainloop (TAG_CHAIN, qh);
                            }
                        }
                        // Same kind: merge. Pushes splice chains.
                        if sum > 0 {
                            let qh = ctx.read(self.chead_of(q)).await;
                            let qt = ctx.read(self.ctail_of(q)).await;
                            // our tail.next = q's head
                            ctx.write((ctail - 1) as Addr + 1, qh).await;
                            ctail = qt;
                            ctx.write(self.ctail_of(pid), ctail).await;
                        }
                        sum += qsum;
                        ctx.write(self.sum_of(pid), sum as u64).await;
                        children.push((q, qsum));
                        d += 1;
                        ctx.write(self.loc_of(pid), (d + 1) as u64).await;
                        n = 0;
                        continue 'attempts;
                    }
                    ctx.write(self.loc_of(pid), (d + 1) as u64).await;
                }
                // Delay times adapt to load like widths do (see the
                // counter's spin loop).
                let checks = if self.cfg.adaption {
                    ((self.cfg.spin_checks[d] as usize * max_d) / levels).max(1) as u32
                } else {
                    self.cfg.spin_checks[d]
                };
                for _ in 0..checks {
                    ctx.work(costs::FUNNEL_SPIN_STEP).await;
                    let v = ctx.read(self.loc_of(pid)).await;
                    if v != (d + 1) as u64 {
                        {
                            was_captured = true;
                            break 'mainloop self.await_result(ctx, pid).await;
                        }
                    }
                }
            }
            // Apply the tree to the central stack.
            let old = ctx.cas(self.loc_of(pid), (d + 1) as u64, LOC_FROZEN).await;
            if old != (d + 1) as u64 {
                {
                    was_captured = true;
                    break 'mainloop self.await_result(ctx, pid).await;
                }
            }
            if sum > 0 {
                let t0 = ctx.now();
                self.central_lock.acquire(ctx).await;
                central_contended |= ctx.now() - t0 > CENTRAL_CONTENTION_CYCLES;
                let oldh = ctx.read(self.head).await;
                ctx.write((ctail - 1) as Addr + 1, oldh).await;
                ctx.write(self.head, chead).await;
                self.central_lock.release(ctx).await;
                break 'mainloop (TAG_DONE, 0);
            } else {
                let want = (-sum) as u64;
                let t0 = ctx.now();
                self.central_lock.acquire(ctx).await;
                central_contended |= ctx.now() - t0 > CENTRAL_CONTENTION_CYCLES;
                let first = ctx.read(self.head).await;
                if first == 0 {
                    self.central_lock.release(ctx).await;
                    break 'mainloop (TAG_CHAIN, 0);
                }
                let mut last = first;
                let mut got = 1;
                while got < want {
                    let nxt = ctx.read((last - 1) as Addr + 1).await;
                    if nxt == 0 {
                        break;
                    }
                    last = nxt;
                    got += 1;
                }
                let rest = ctx.read((last - 1) as Addr + 1).await;
                ctx.write(self.head, rest).await;
                ctx.write((last - 1) as Addr + 1, 0).await;
                self.central_lock.release(ctx).await;
                break 'mainloop (TAG_CHAIN, first);
            }
        };

        if self.cfg.adaption {
            if attempts_made > 0 {
                let mut frac = self.frac.borrow_mut();
                if collisions_won * 2 >= attempts_made {
                    frac[pid] = (frac[pid] * 2).min(256);
                } else if collisions_won == 0 {
                    frac[pid] = (frac[pid] / 2).max(16);
                }
            }
            let mut depth = self.depth.borrow_mut();
            let engaged = collisions_won > 0 || was_captured || central_contended;
            if engaged {
                depth[pid] = (depth[pid] + 1).min(levels);
            } else {
                depth[pid] = depth[pid].saturating_sub(1);
            }
        }

        match tag {
            TAG_DONE => {
                for &(child, _) in &children {
                    ctx.write(self.res_of(child), pack(TAG_DONE, 0)).await;
                }
                None
            }
            TAG_CHAIN => {
                // Keep the first node; cut one subchain per child.
                let mine = my_chain;
                let mut rest = if mine == 0 {
                    0
                } else {
                    let r = ctx.read((mine - 1) as Addr + 1).await;
                    ctx.write((mine - 1) as Addr + 1, 0).await;
                    r
                };
                for &(child, csum) in &children {
                    let need = csum.unsigned_abs();
                    let chead = rest;
                    if rest != 0 {
                        let mut last = rest;
                        let mut taken = 1;
                        while taken < need {
                            let nxt = ctx.read((last - 1) as Addr + 1).await;
                            if nxt == 0 {
                                break;
                            }
                            last = nxt;
                            taken += 1;
                        }
                        rest = ctx.read((last - 1) as Addr + 1).await;
                        ctx.write((last - 1) as Addr + 1, 0).await;
                    }
                    ctx.write(self.res_of(child), pack(TAG_CHAIN, chead)).await;
                }
                debug_assert_eq!(rest, 0, "chain longer than tree");
                Some(mine)
            }
            _ => unreachable!("funnel stack tag"),
        }
    }

    async fn await_result(&self, ctx: &ProcCtx, pid: usize) -> (Word, Word) {
        let r = ctx.wait_until(self.res_of(pid), |v| v != RES_NONE).await;
        unpack(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use funnelpq_sim::MachineConfig;

    fn cfg(p: usize) -> SimFunnelConfig {
        SimFunnelConfig::for_procs(p)
    }

    #[test]
    fn sequential_lifo() {
        let mut m = Machine::new(MachineConfig::test_tiny(), 0);
        let s = SimFunnelStack::build(&mut m, 1, 16, cfg(1));
        let ctx = m.ctx();
        let s2 = s.clone();
        m.spawn(async move {
            assert!(s2.is_empty(&ctx).await);
            assert_eq!(s2.pop(&ctx).await, None);
            s2.push(&ctx, 1).await;
            s2.push(&ctx, 2).await;
            s2.push(&ctx, 3).await;
            assert!(!s2.is_empty(&ctx).await);
            assert_eq!(s2.pop(&ctx).await, Some(3));
            assert_eq!(s2.pop(&ctx).await, Some(2));
            assert_eq!(s2.pop(&ctx).await, Some(1));
            assert_eq!(s2.pop(&ctx).await, None);
        });
        assert!(m.run().is_quiescent());
    }

    #[test]
    fn concurrent_no_loss_no_dup() {
        use std::cell::RefCell;
        use std::rc::Rc;
        const P: usize = 24;
        const N: usize = 30;
        let mut m = Machine::new(MachineConfig::alewife_like(), 21);
        let s = SimFunnelStack::build(&mut m, P + 1, P * N + 4, cfg(P));
        let got = Rc::new(RefCell::new(Vec::new()));
        for p in 0..P {
            let ctx = m.ctx();
            let s = s.clone();
            let got = Rc::clone(&got);
            m.spawn(async move {
                for i in 0..N {
                    s.push(&ctx, (p * N + i) as u64).await;
                    if i % 2 == 1 {
                        if let Some(x) = s.pop(&ctx).await {
                            got.borrow_mut().push(x);
                        }
                    }
                }
            });
        }
        assert!(m.run().is_quiescent());
        // Drain single-threaded.
        let ctx = m.ctx();
        let s2 = s.clone();
        let got2 = Rc::clone(&got);
        m.spawn(async move {
            while let Some(x) = s2.pop(&ctx).await {
                got2.borrow_mut().push(x);
            }
        });
        assert!(m.run().is_quiescent());
        let mut all = got.borrow().clone();
        all.sort_unstable();
        assert_eq!(all, (0..(P * N) as u64).collect::<Vec<_>>());
    }
}
