//! The seven priority-queue algorithms of the paper, expressed against the
//! simulated machine, behind one dispatch type ([`SimPq`]).

mod counter_tree;
mod hunt;
mod linear_funnels;
mod multiqueue;
mod numa;
mod simple_linear;
mod single_lock;
mod skiplist;

pub use counter_tree::{SimCounterTree, SimTreeBin, TreeFlavor};
pub use hunt::SimHunt;
pub use linear_funnels::SimLinearFunnels;
pub use multiqueue::SimMultiQueue;
pub use numa::SimNumaPq;
pub use simple_linear::SimSimpleLinear;
pub use single_lock::SimSingleLock;
pub use skiplist::SimSkipList;

use funnelpq_sim::{Machine, ProcCtx};

use crate::error::SimPqError;
use crate::funnel::SimFunnelConfig;

// One shared name list for native and simulated queues: the enum lives in
// the core crate (which also documents each algorithm's consistency) and is
// re-exported here so sim-side consumers keep their import paths.
pub use funnelpq::Algorithm;

/// Build-time parameters shared by all algorithms.
#[derive(Debug, Clone)]
pub struct BuildParams {
    /// Number of processors that will use the queue.
    pub procs: usize,
    /// Priority range `0..num_priorities`.
    pub num_priorities: usize,
    /// Capacity bound (items per bin / total heap items).
    pub capacity: usize,
    /// Funnel tuning for the funnel-based algorithms.
    pub funnel: SimFunnelConfig,
    /// Funnel-levels cutoff for `FunnelTree` (paper: 4).
    pub funnel_levels: usize,
    /// Queues per processor for `MultiQueue` (the classic *c*; 2 gives the
    /// power-of-two-choices quality bound).
    pub mq_factor: usize,
    /// Operations a `MultiQueue` processor reuses its queue choice for
    /// before redrawing (1 = a fresh draw every operation).
    pub mq_stickiness: u64,
    /// NUMA nodes `NumaPq` partitions its queues across (clamped to the
    /// machine's configured node count at build time).
    pub numa_nodes: usize,
    /// Operations per adaptive-controller epoch for `NumaPq`.
    pub numa_epoch_ops: u64,
    /// Mode policy for `NumaPq`: adapt live, or pin one discipline.
    pub numa_policy: funnelpq::NumaPolicy,
}

impl BuildParams {
    /// Sensible defaults for a workload of `procs` processors over
    /// `num_priorities` priorities.
    pub fn new(procs: usize, num_priorities: usize) -> Self {
        BuildParams {
            procs,
            num_priorities,
            capacity: (procs * 64).max(1024),
            funnel: SimFunnelConfig::for_procs(procs),
            funnel_levels: 4,
            mq_factor: 2,
            mq_stickiness: 8,
            numa_nodes: 2,
            numa_epoch_ops: 64,
            numa_policy: funnelpq::NumaPolicy::Adaptive,
        }
    }

    /// Checks the parameters for internal consistency without allocating
    /// anything.
    pub fn check(&self) -> Result<(), SimPqError> {
        if self.procs == 0 {
            return Err(SimPqError::BadConfig {
                what: "BuildParams",
                detail: "procs must be at least 1".into(),
            });
        }
        if self.num_priorities == 0 {
            return Err(SimPqError::BadConfig {
                what: "BuildParams",
                detail: "num_priorities must be at least 1".into(),
            });
        }
        if self.capacity == 0 {
            return Err(SimPqError::BadConfig {
                what: "BuildParams",
                detail: "capacity must be at least 1".into(),
            });
        }
        if self.mq_factor == 0 {
            return Err(SimPqError::BadConfig {
                what: "BuildParams",
                detail: "mq_factor must be at least 1".into(),
            });
        }
        if self.mq_stickiness == 0 {
            return Err(SimPqError::BadConfig {
                what: "BuildParams",
                detail: "mq_stickiness must be at least 1".into(),
            });
        }
        if self.numa_nodes == 0 {
            return Err(SimPqError::BadConfig {
                what: "BuildParams",
                detail: "numa_nodes must be at least 1".into(),
            });
        }
        if self.numa_epoch_ops == 0 {
            return Err(SimPqError::BadConfig {
                what: "BuildParams",
                detail: "numa_epoch_ops must be at least 1".into(),
            });
        }
        self.funnel.check()
    }
}

/// A built simulated priority queue of any of the seven kinds.
#[derive(Debug, Clone)]
pub enum SimPq {
    /// See [`SimSingleLock`].
    SingleLock(SimSingleLock),
    /// See [`SimHunt`].
    HuntEtAl(SimHunt),
    /// See [`SimSkipList`].
    SkipList(SimSkipList),
    /// See [`SimSimpleLinear`].
    SimpleLinear(SimSimpleLinear),
    /// See [`SimCounterTree`] with [`TreeFlavor::Simple`].
    SimpleTree(SimCounterTree),
    /// See [`SimLinearFunnels`].
    LinearFunnels(SimLinearFunnels),
    /// See [`SimCounterTree`] with [`TreeFlavor::Funnel`].
    FunnelTree(SimCounterTree),
    /// See [`SimCounterTree`] with [`TreeFlavor::Hardware`].
    HardwareTree(SimCounterTree),
    /// See [`SimMultiQueue`]. Relaxed — not one of the paper's seven.
    MultiQueue(SimMultiQueue),
    /// See [`SimNumaPq`]. Relaxed and NUMA-adaptive — not one of the
    /// paper's seven.
    NumaPq(SimNumaPq),
}

impl SimPq {
    /// Allocates the chosen algorithm's structures in `m` after checking
    /// the parameters, reporting inconsistencies instead of panicking.
    pub fn try_build(
        m: &mut Machine,
        algo: Algorithm,
        p: &BuildParams,
    ) -> Result<Self, SimPqError> {
        p.check()?;
        Ok(Self::build(m, algo, p))
    }

    /// Allocates the chosen algorithm's structures in `m`.
    pub fn build(m: &mut Machine, algo: Algorithm, p: &BuildParams) -> Self {
        match algo {
            Algorithm::SingleLock => {
                SimPq::SingleLock(SimSingleLock::build(m, p.procs, p.capacity))
            }
            Algorithm::HuntEtAl => SimPq::HuntEtAl(SimHunt::build(m, p.procs, p.capacity)),
            Algorithm::SkipList => {
                SimPq::SkipList(SimSkipList::build(m, p.procs, p.num_priorities, p.capacity))
            }
            Algorithm::SimpleLinear => SimPq::SimpleLinear(SimSimpleLinear::build(
                m,
                p.procs,
                p.num_priorities,
                p.capacity,
            )),
            Algorithm::SimpleTree => SimPq::SimpleTree(SimCounterTree::build(
                m,
                p.procs,
                p.num_priorities,
                p.capacity,
                TreeFlavor::Simple,
            )),
            Algorithm::LinearFunnels => SimPq::LinearFunnels(SimLinearFunnels::build(
                m,
                p.procs,
                p.num_priorities,
                p.capacity,
                p.funnel.clone(),
            )),
            Algorithm::FunnelTree => SimPq::FunnelTree(SimCounterTree::build(
                m,
                p.procs,
                p.num_priorities,
                p.capacity,
                TreeFlavor::Funnel {
                    cfg: p.funnel.clone(),
                    funnel_levels: p.funnel_levels,
                },
            )),
            Algorithm::HardwareTree => SimPq::HardwareTree(SimCounterTree::build(
                m,
                p.procs,
                p.num_priorities,
                p.capacity,
                TreeFlavor::Hardware,
            )),
            Algorithm::MultiQueue => SimPq::MultiQueue(SimMultiQueue::build(
                m,
                p.procs,
                p.capacity,
                p.mq_factor,
                p.mq_stickiness,
            )),
            Algorithm::NumaPq => SimPq::NumaPq(SimNumaPq::build(
                m,
                p.procs,
                p.capacity,
                p.mq_factor,
                p.numa_nodes,
                p.numa_epoch_ops,
                p.numa_policy,
            )),
        }
    }

    /// Inserts `(pri, item)`.
    ///
    /// # Panics
    ///
    /// Panics on capacity exhaustion; use
    /// [`try_insert`](Self::try_insert) to handle that case.
    pub async fn insert(&self, ctx: &ProcCtx, pri: u64, item: u64) {
        match self {
            SimPq::SingleLock(q) => q.insert(ctx, pri, item).await,
            SimPq::HuntEtAl(q) => q.insert(ctx, pri, item).await,
            SimPq::SkipList(q) => q.insert(ctx, pri, item).await,
            SimPq::SimpleLinear(q) => q.insert(ctx, pri, item).await,
            SimPq::SimpleTree(q) => q.insert(ctx, pri, item).await,
            SimPq::LinearFunnels(q) => q.insert(ctx, pri, item).await,
            SimPq::FunnelTree(q) => q.insert(ctx, pri, item).await,
            SimPq::HardwareTree(q) => q.insert(ctx, pri, item).await,
            SimPq::MultiQueue(q) => q.insert(ctx, pri, item).await,
            SimPq::NumaPq(q) => q.insert(ctx, pri, item).await,
        }
    }

    /// Inserts `(pri, item)`, reporting capacity exhaustion (with the
    /// failing processor and simulated time) instead of panicking.
    pub async fn try_insert(&self, ctx: &ProcCtx, pri: u64, item: u64) -> Result<(), SimPqError> {
        match self {
            SimPq::SingleLock(q) => q.try_insert(ctx, pri, item).await,
            SimPq::HuntEtAl(q) => q.try_insert(ctx, pri, item).await,
            SimPq::SkipList(q) => q.try_insert(ctx, pri, item).await,
            SimPq::SimpleLinear(q) => q.try_insert(ctx, pri, item).await,
            SimPq::SimpleTree(q) => q.try_insert(ctx, pri, item).await,
            SimPq::LinearFunnels(q) => q.try_insert(ctx, pri, item).await,
            SimPq::FunnelTree(q) => q.try_insert(ctx, pri, item).await,
            SimPq::HardwareTree(q) => q.try_insert(ctx, pri, item).await,
            SimPq::MultiQueue(q) => q.try_insert(ctx, pri, item).await,
            SimPq::NumaPq(q) => q.try_insert(ctx, pri, item).await,
        }
    }

    /// Removes an item of minimal priority, if one is reachable.
    pub async fn delete_min(&self, ctx: &ProcCtx) -> Option<(u64, u64)> {
        match self {
            SimPq::SingleLock(q) => q.delete_min(ctx).await,
            SimPq::HuntEtAl(q) => q.delete_min(ctx).await,
            SimPq::SkipList(q) => q.delete_min(ctx).await,
            SimPq::SimpleLinear(q) => q.delete_min(ctx).await,
            SimPq::SimpleTree(q) => q.delete_min(ctx).await,
            SimPq::LinearFunnels(q) => q.delete_min(ctx).await,
            SimPq::FunnelTree(q) => q.delete_min(ctx).await,
            SimPq::HardwareTree(q) => q.delete_min(ctx).await,
            SimPq::MultiQueue(q) => q.delete_min(ctx).await,
            SimPq::NumaPq(q) => q.delete_min(ctx).await,
        }
    }

    /// Inserts a whole batch, reporting capacity exhaustion instead of
    /// panicking. `SingleLock`, `SkipList`, and `MultiQueue` take their
    /// native batched paths (one lock hold / one threading check per run /
    /// one sticky absorption); the other algorithms loop over
    /// [`try_insert`](Self::try_insert), matching the trait-level default
    /// on the native side. On `Err` an already-filed prefix stays filed.
    pub async fn insert_batch(
        &self,
        ctx: &ProcCtx,
        batch: &[(u64, u64)],
    ) -> Result<(), SimPqError> {
        match self {
            SimPq::SingleLock(q) => q.insert_batch(ctx, batch).await,
            SimPq::SkipList(q) => q.insert_batch(ctx, batch).await,
            SimPq::MultiQueue(q) => q.insert_batch(ctx, batch).await,
            _ => {
                for &(pri, item) in batch {
                    self.try_insert(ctx, pri, item).await?;
                }
                Ok(())
            }
        }
    }

    /// Removes up to `k` minimal items, appending to `out`; returns the
    /// number taken. The three algorithms with native batched drains use
    /// them; the rest loop over [`delete_min`](Self::delete_min), stopping
    /// at the first `None`.
    pub async fn delete_min_batch(
        &self,
        ctx: &ProcCtx,
        k: usize,
        out: &mut Vec<(u64, u64)>,
    ) -> usize {
        match self {
            SimPq::SingleLock(q) => q.delete_min_batch(ctx, k, out).await,
            SimPq::SkipList(q) => q.delete_min_batch(ctx, k, out).await,
            SimPq::MultiQueue(q) => q.delete_min_batch(ctx, k, out).await,
            _ => {
                let mut taken = 0;
                while taken < k {
                    match self.delete_min(ctx).await {
                        Some(e) => {
                            out.push(e);
                            taken += 1;
                        }
                        None => break,
                    }
                }
                taken
            }
        }
    }

    /// Host-side item count: reads simulated memory directly with no
    /// simulated cost. Meaningful only at quiescence; errors if a chain
    /// walk finds corruption.
    pub fn peek_len(&self, m: &Machine) -> Result<u64, String> {
        match self {
            SimPq::SingleLock(q) => Ok(q.peek_len(m)),
            SimPq::HuntEtAl(q) => Ok(q.peek_len(m)),
            SimPq::SkipList(q) => Ok(q.peek_len(m)),
            SimPq::SimpleLinear(q) => Ok(q.peek_len(m)),
            SimPq::SimpleTree(q) => q.peek_len(m),
            SimPq::LinearFunnels(q) => q.peek_len(m),
            SimPq::FunnelTree(q) => q.peek_len(m),
            SimPq::HardwareTree(q) => q.peek_len(m),
            SimPq::MultiQueue(q) => Ok(q.peek_len(m)),
            SimPq::NumaPq(q) => Ok(q.peek_len(m)),
        }
    }

    /// Validates the structure's own invariants at quiescence — locks
    /// free, heap/list/counter shape consistent — and returns the number
    /// of items currently stored. Host-side only; call after
    /// [`Machine::run`] returns quiescent.
    pub fn validate(&self, m: &Machine) -> Result<u64, String> {
        match self {
            SimPq::SingleLock(q) => q.validate(m),
            SimPq::HuntEtAl(q) => q.validate(m),
            SimPq::SkipList(q) => q.validate(m),
            SimPq::SimpleLinear(q) => q.validate(m),
            SimPq::SimpleTree(q) => q.validate(m),
            SimPq::LinearFunnels(q) => q.validate(m),
            SimPq::FunnelTree(q) => q.validate(m),
            SimPq::HardwareTree(q) => q.validate(m),
            SimPq::MultiQueue(q) => q.validate(m),
            SimPq::NumaPq(q) => q.validate(m),
        }
    }
}
