//! Simulated `SkipList`: bounded-range skip list of bins with a delete bin
//! (paper Figure 12), using Pugh-style per-node locks.

use std::rc::Rc;

use funnelpq_sim::{Addr, Machine, ProcCtx};

use crate::bin::SimBin;
use crate::costs;
use crate::error::SimPqError;

const ST_UNTHREADED: u64 = 0;
const ST_THREADING: u64 = 1;
const ST_THREADED: u64 = 2;
const ST_UNLINKING: u64 = 3;

/// Forward pointers and the delete bin encode a node as `pri + 1`; 0 is
/// "none"; `HEAD` is the list head sentinel.
const NIL: u64 = 0;
const HEAD: u64 = u64::MAX;

#[derive(Debug)]
struct NodeMeta {
    state: Addr,
    lock: Addr,
    forward: Addr, // `height` words
    height: usize,
    bin: SimBin,
}

/// Simulated bounded-range concurrent skip-list priority queue with
/// Johnson's delete bin (plus the two quiescence refinements described in
/// DESIGN.md, mirroring the native implementation).
#[derive(Debug, Clone)]
pub struct SimSkipList {
    nodes: Rc<Vec<NodeMeta>>,
    head_forward: Addr,
    head_lock: Addr,
    del_bin: Addr,
    del_lock: Addr,
}

impl SimSkipList {
    /// Allocates a skip list for priorities `0..num_priorities`.
    pub fn build(
        m: &mut Machine,
        procs: usize,
        num_priorities: usize,
        bin_capacity: usize,
    ) -> Self {
        let max_level = (usize::BITS - num_priorities.leading_zeros()) as usize;
        let max_level = max_level.clamp(1, 20);
        // Deterministic tower heights from a simple LCG so builds are
        // reproducible without threading RNG state through the machine.
        let mut x: u64 = 0x9E3779B97F4A7C15;
        let mut nodes = Vec::with_capacity(num_priorities);
        for _ in 0..num_priorities {
            let mut h = 1;
            loop {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if h < max_level && (x >> 33) & 1 == 1 {
                    h += 1;
                } else {
                    break;
                }
            }
            let state = m.alloc(1);
            let lock = m.alloc(1);
            let forward = m.alloc(h);
            let bin = SimBin::build(m, procs, bin_capacity);
            nodes.push(NodeMeta {
                state,
                lock,
                forward,
                height: h,
                bin,
            });
        }
        let head_forward = m.alloc(max_level);
        let head_lock = m.alloc(1);
        let del_bin = m.alloc(1);
        let del_lock = m.alloc(1);
        SimSkipList {
            nodes: Rc::new(nodes),
            head_forward,
            head_lock,
            del_bin,
            del_lock,
        }
    }

    fn meta(&self, node: u64) -> &NodeMeta {
        &self.nodes[(node - 1) as usize]
    }

    fn fwd_addr(&self, node: u64, level: usize) -> Addr {
        if node == HEAD {
            self.head_forward + level
        } else {
            self.meta(node).forward + level
        }
    }

    fn lock_addr(&self, node: u64) -> Addr {
        if node == HEAD {
            self.head_lock
        } else {
            self.meta(node).lock
        }
    }

    /// Test-and-test-and-set with randomized backoff (see `SimHunt` for why
    /// the jitter matters in a deterministic simulator).
    async fn lock(&self, ctx: &ProcCtx, node: u64) {
        let a = self.lock_addr(node);
        loop {
            ctx.wait_until(a, |v| v == 0).await;
            if ctx.cas(a, 0, 1).await == 0 {
                return;
            }
            ctx.work(ctx.random_below(32)).await;
        }
    }

    async fn unlock(&self, ctx: &ProcCtx, node: u64) {
        ctx.write(self.lock_addr(node), 0).await;
    }

    /// Last node at `level` whose encoded priority precedes `enc`.
    async fn find_pred(&self, ctx: &ProcCtx, enc: u64, level: usize) -> u64 {
        let mut x = HEAD;
        loop {
            ctx.work(costs::LOOP_ITER).await;
            let nxt = ctx.read(self.fwd_addr(x, level)).await;
            if nxt != NIL && nxt < enc {
                x = nxt;
            } else {
                return x;
            }
        }
    }

    /// Splices node `enc` into all of its levels (caller holds THREADING).
    async fn splice(&self, ctx: &ProcCtx, enc: u64) {
        let _span = ctx.span("skiplist-splice");
        let node = self.meta(enc);
        for level in 0..node.height {
            loop {
                let pred = self.find_pred(ctx, enc, level).await;
                self.lock(ctx, pred).await;
                let ok = if pred == HEAD {
                    true
                } else {
                    ctx.read(self.meta(pred).state).await == ST_THREADED
                };
                if ok {
                    let succ = ctx.read(self.fwd_addr(pred, level)).await;
                    if succ == NIL || succ > enc {
                        ctx.write(node.forward + level, succ).await;
                        ctx.write(self.fwd_addr(pred, level), enc).await;
                        self.unlock(ctx, pred).await;
                        break;
                    }
                }
                self.unlock(ctx, pred).await;
                ctx.work(ctx.random_below(32)).await;
            }
        }
    }

    /// Ensures the node for `enc` is threaded (idempotent).
    async fn thread_node(&self, ctx: &ProcCtx, enc: u64) {
        let state = self.meta(enc).state;
        loop {
            let old = ctx.cas(state, ST_UNTHREADED, ST_THREADING).await;
            match old {
                ST_UNTHREADED => {
                    self.splice(ctx, enc).await;
                    ctx.write(state, ST_THREADED).await;
                    return;
                }
                ST_THREADED => return,
                _ => {
                    // THREADING or UNLINKING in flight: wait for a stable
                    // state, then re-check.
                    ctx.wait_until(state, |s| s == ST_THREADED || s == ST_UNTHREADED)
                        .await;
                }
            }
        }
    }

    /// Unlinks node `enc` from every level (caller holds the delete lock)
    /// and retargets the delete bin to it.
    async fn unlink(&self, ctx: &ProcCtx, enc: u64) {
        let _span = ctx.span("skiplist-unlink");
        let node = self.meta(enc);
        loop {
            let old = ctx.cas(node.state, ST_THREADED, ST_UNLINKING).await;
            if old == ST_THREADED {
                break;
            }
            ctx.wait_until(node.state, |s| s == ST_THREADED).await;
        }
        // Publish the delete bin *before* detaching from the list: a
        // concurrent delete must never observe both an empty list head and
        // a stale delete bin while this node's items are in flight.
        ctx.write(self.del_bin, enc).await;
        for level in (0..node.height).rev() {
            loop {
                let pred = self.find_pred(ctx, enc, level).await;
                self.lock(ctx, pred).await;
                self.lock(ctx, enc).await;
                if ctx.read(self.fwd_addr(pred, level)).await == enc {
                    let succ = ctx.read(node.forward + level).await;
                    ctx.write(self.fwd_addr(pred, level), succ).await;
                    self.unlock(ctx, enc).await;
                    self.unlock(ctx, pred).await;
                    break;
                }
                self.unlock(ctx, enc).await;
                self.unlock(ctx, pred).await;
                ctx.work(ctx.random_below(32)).await;
            }
        }
        ctx.write(node.state, ST_UNTHREADED).await;
    }

    /// Inserts `(pri, item)`.
    ///
    /// # Panics
    ///
    /// Panics if the priority's bin is full; use
    /// [`try_insert`](Self::try_insert) to handle that case.
    pub async fn insert(&self, ctx: &ProcCtx, pri: u64, item: u64) {
        if let Err(e) = self.try_insert(ctx, pri, item).await {
            panic!("{e}");
        }
    }

    /// Inserts `(pri, item)`, reporting bin capacity exhaustion (with the
    /// failing processor and simulated time) instead of panicking. On
    /// `Err` the queue is unchanged.
    pub async fn try_insert(&self, ctx: &ProcCtx, pri: u64, item: u64) -> Result<(), SimPqError> {
        ctx.work(costs::OP_SETUP).await;
        let enc = pri + 1;
        // Bin first (paper order), then make sure the node is reachable.
        self.meta(enc).bin.try_insert(ctx, item).await?;
        if ctx.read(self.meta(enc).state).await != ST_THREADED {
            self.thread_node(ctx, enc).await;
        }
        Ok(())
    }

    /// Removes an item of minimal priority.
    pub async fn delete_min(&self, ctx: &ProcCtx) -> Option<(u64, u64)> {
        ctx.work(costs::OP_SETUP).await;
        loop {
            ctx.work(costs::LOOP_ITER).await;
            let db = ctx.read(self.del_bin).await;
            let first = ctx.read(self.head_forward).await;
            let db_ok = db != NIL && !self.meta(db).bin.is_empty(ctx).await;
            if db_ok && (first == NIL || db <= first) {
                if let Some(item) = self.meta(db).bin.delete(ctx).await {
                    return Some((db - 1, item));
                }
                continue;
            }
            if first == NIL {
                if db != NIL {
                    if let Some(item) = self.meta(db).bin.delete(ctx).await {
                        return Some((db - 1, item));
                    }
                }
                return None;
            }
            // Advance the delete bin: try-acquire the delete lock.
            if ctx.cas(self.del_lock, 0, 1).await == 0 {
                let first2 = ctx.read(self.head_forward).await;
                if first2 == NIL {
                    ctx.write(self.del_lock, 0).await;
                    continue;
                }
                let old_db = ctx.read(self.del_bin).await;
                self.unlink(ctx, first2).await;
                ctx.write(self.del_lock, 0).await;
                if old_db != NIL && old_db != first2 {
                    let stale = !self.meta(old_db).bin.is_empty(ctx).await
                        && ctx.read(self.meta(old_db).state).await == ST_UNTHREADED;
                    if stale {
                        self.thread_node(ctx, old_db).await;
                    }
                }
            } else {
                // Someone else is advancing; let them finish.
                ctx.work(costs::FUNNEL_SPIN_STEP).await;
            }
        }
    }

    /// Inserts a whole batch, paying the skip-list threading check **once
    /// per distinct priority** instead of once per item: the batch is
    /// sorted host-side, each run of equal priorities lands in one bin, and
    /// only the run's first item looks at (and possibly threads) the node.
    /// Mirrors the native `SkipListPq::insert_batch`. On bin exhaustion the
    /// already-filed prefix stays filed.
    pub async fn insert_batch(
        &self,
        ctx: &ProcCtx,
        batch: &[(u64, u64)],
    ) -> Result<(), SimPqError> {
        if batch.is_empty() {
            return Ok(());
        }
        let mut sorted: Vec<(u64, u64)> = batch.to_vec();
        sorted.sort_unstable_by_key(|&(pri, _)| pri);
        ctx.work(costs::OP_SETUP).await;
        let mut i = 0;
        while i < sorted.len() {
            let pri = sorted[i].0;
            let enc = pri + 1;
            while i < sorted.len() && sorted[i].0 == pri {
                self.meta(enc).bin.try_insert(ctx, sorted[i].1).await?;
                i += 1;
            }
            if ctx.read(self.meta(enc).state).await != ST_THREADED {
                self.thread_node(ctx, enc).await;
            }
        }
        Ok(())
    }

    /// Removes up to `k` minimal items, appending to `out`; returns the
    /// number taken. Mirrors the native batched drain: once a delete bin is
    /// chosen it is drained until `k` items are out or it runs dry, so the
    /// bin-advance machinery (delete lock, unlink, re-thread) runs once per
    /// *bin*, not once per item.
    pub async fn delete_min_batch(
        &self,
        ctx: &ProcCtx,
        k: usize,
        out: &mut Vec<(u64, u64)>,
    ) -> usize {
        ctx.work(costs::OP_SETUP).await;
        let mut taken = 0;
        'outer: while taken < k {
            ctx.work(costs::LOOP_ITER).await;
            let db = ctx.read(self.del_bin).await;
            let first = ctx.read(self.head_forward).await;
            let db_ok = db != NIL && !self.meta(db).bin.is_empty(ctx).await;
            if db_ok && (first == NIL || db <= first) {
                while taken < k {
                    match self.meta(db).bin.delete(ctx).await {
                        Some(item) => {
                            out.push((db - 1, item));
                            taken += 1;
                        }
                        None => continue 'outer,
                    }
                }
                return taken;
            }
            if first == NIL {
                let before = taken;
                if db != NIL {
                    while taken < k {
                        match self.meta(db).bin.delete(ctx).await {
                            Some(item) => {
                                out.push((db - 1, item));
                                taken += 1;
                            }
                            None => break,
                        }
                    }
                }
                if taken == before {
                    return taken;
                }
                continue;
            }
            // Advance the delete bin: try-acquire the delete lock.
            if ctx.cas(self.del_lock, 0, 1).await == 0 {
                let first2 = ctx.read(self.head_forward).await;
                if first2 == NIL {
                    ctx.write(self.del_lock, 0).await;
                    continue;
                }
                let old_db = ctx.read(self.del_bin).await;
                self.unlink(ctx, first2).await;
                ctx.write(self.del_lock, 0).await;
                if old_db != NIL && old_db != first2 {
                    let stale = !self.meta(old_db).bin.is_empty(ctx).await
                        && ctx.read(self.meta(old_db).state).await == ST_UNTHREADED;
                    if stale {
                        self.thread_node(ctx, old_db).await;
                    }
                }
            } else {
                // Someone else is advancing; let them finish.
                ctx.work(costs::FUNNEL_SPIN_STEP).await;
            }
        }
        taken
    }

    /// Host-side item count: sums all bins (no simulated cost; meaningful
    /// at quiescence).
    pub fn peek_len(&self, m: &Machine) -> u64 {
        self.nodes.iter().map(|nm| nm.bin.peek_len(m)).sum()
    }

    /// Structural validation at quiescence: all locks free, every node in
    /// a stable state, the level-0 list ascending and exactly the THREADED
    /// nodes, and every nonempty bin visible to deletes (threaded or the
    /// delete-bin target). Returns the item count.
    pub fn validate(&self, m: &Machine) -> Result<u64, String> {
        if m.peek(self.head_lock) != 0 {
            return Err("SimSkipList: head lock held at quiescence".into());
        }
        if m.peek(self.del_lock) != 0 {
            return Err("SimSkipList: delete lock held at quiescence".into());
        }
        let db = m.peek(self.del_bin);
        // Walk level 0: must be strictly ascending, all THREADED.
        let mut reachable = vec![false; self.nodes.len()];
        let mut x = m.peek(self.head_forward);
        let mut prev = 0u64;
        let mut steps = 0usize;
        while x != NIL {
            if steps > self.nodes.len() {
                return Err("SimSkipList: level-0 list has a cycle".into());
            }
            if x <= prev {
                return Err(format!(
                    "SimSkipList: level-0 list not ascending ({x} after {prev})"
                ));
            }
            let nm = self.meta(x);
            if m.peek(nm.state) != ST_THREADED {
                return Err(format!(
                    "SimSkipList: node {x} reachable at level 0 but not THREADED"
                ));
            }
            reachable[(x - 1) as usize] = true;
            prev = x;
            x = m.peek(nm.forward);
            steps += 1;
        }
        let mut total = 0u64;
        for (i, nm) in self.nodes.iter().enumerate() {
            let enc = i as u64 + 1;
            if m.peek(nm.lock) != 0 {
                return Err(format!("SimSkipList: node {enc} lock held at quiescence"));
            }
            let st = m.peek(nm.state);
            if st != ST_THREADED && st != ST_UNTHREADED {
                return Err(format!(
                    "SimSkipList: node {enc} in transient state {st} at quiescence"
                ));
            }
            if st == ST_THREADED && !reachable[i] {
                return Err(format!(
                    "SimSkipList: node {enc} THREADED but unreachable at level 0"
                ));
            }
            let len = nm.bin.validate(m).map_err(|e| format!("node {enc}: {e}"))?;
            if len > 0 && st != ST_THREADED && db != enc {
                return Err(format!(
                    "SimSkipList: node {enc} holds {len} items but is invisible \
                     (unthreaded and not the delete bin)"
                ));
            }
            total += len;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use funnelpq_sim::MachineConfig;
    use std::cell::RefCell;

    #[test]
    fn sequential_order() {
        let mut m = Machine::new(MachineConfig::test_tiny(), 0);
        let q = SimSkipList::build(&mut m, 1, 16, 64);
        let ctx = m.ctx();
        let q2 = q.clone();
        m.spawn(async move {
            for p in [12u64, 2, 8, 2, 0, 15] {
                q2.insert(&ctx, p, p).await;
            }
            let mut got = Vec::new();
            while let Some((p, _)) = q2.delete_min(&ctx).await {
                got.push(p);
            }
            assert_eq!(got, vec![0, 2, 2, 8, 12, 15]);
        });
        assert!(m.run().is_quiescent());
    }

    #[test]
    fn smaller_insert_after_delete_bin_is_preferred() {
        let mut m = Machine::new(MachineConfig::test_tiny(), 0);
        let q = SimSkipList::build(&mut m, 1, 16, 64);
        let ctx = m.ctx();
        let q2 = q.clone();
        m.spawn(async move {
            q2.insert(&ctx, 5, 51).await;
            q2.insert(&ctx, 5, 52).await;
            assert_eq!(q2.delete_min(&ctx).await.unwrap().0, 5);
            q2.insert(&ctx, 3, 30).await;
            assert_eq!(q2.delete_min(&ctx).await.unwrap().0, 3);
            assert_eq!(q2.delete_min(&ctx).await.unwrap().0, 5);
            assert_eq!(q2.delete_min(&ctx).await, None);
        });
        assert!(m.run().is_quiescent());
    }

    #[test]
    fn batch_ops_preserve_order() {
        let mut m = Machine::new(MachineConfig::test_tiny(), 0);
        let q = SimSkipList::build(&mut m, 1, 16, 64);
        let ctx = m.ctx();
        let q2 = q.clone();
        m.spawn(async move {
            q2.insert_batch(&ctx, &[(12, 120), (2, 20), (8, 80), (2, 21), (0, 1)])
                .await
                .unwrap();
            q2.insert_batch(&ctx, &[]).await.unwrap();
            let mut out = Vec::new();
            assert_eq!(q2.delete_min_batch(&ctx, 4, &mut out).await, 4);
            assert_eq!(
                out.iter().map(|e| e.0).collect::<Vec<_>>(),
                vec![0, 2, 2, 8]
            );
            out.clear();
            assert_eq!(q2.delete_min_batch(&ctx, 4, &mut out).await, 1);
            assert_eq!(out, vec![(12, 120)]);
            assert_eq!(q2.delete_min_batch(&ctx, 4, &mut out).await, 0);
        });
        assert!(m.run().is_quiescent());
        assert_eq!(q.validate(&m).unwrap(), 0);
    }

    #[test]
    fn concurrent_conservation() {
        use std::rc::Rc;
        const P: usize = 10;
        const N: usize = 20;
        let mut m = Machine::new(MachineConfig::test_tiny(), 17);
        let q = SimSkipList::build(&mut m, P + 1, 8, P * N);
        let got = Rc::new(RefCell::new(Vec::new()));
        for p in 0..P {
            let ctx = m.ctx();
            let q = q.clone();
            let got = Rc::clone(&got);
            m.spawn(async move {
                for i in 0..N {
                    q.insert(&ctx, ((p + i) % 8) as u64, (p * N + i) as u64)
                        .await;
                    if i % 2 == 0 {
                        if let Some((_, x)) = q.delete_min(&ctx).await {
                            got.borrow_mut().push(x);
                        }
                    }
                }
            });
        }
        assert!(m.run().is_quiescent(), "SkipList deadlocked");
        let ctx = m.ctx();
        let q2 = q.clone();
        let got2 = Rc::clone(&got);
        m.spawn(async move {
            while let Some((_, x)) = q2.delete_min(&ctx).await {
                got2.borrow_mut().push(x);
            }
        });
        assert!(m.run().is_quiescent());
        let mut all = got.borrow().clone();
        all.sort_unstable();
        assert_eq!(all, (0..(P * N) as u64).collect::<Vec<_>>());
    }
}
