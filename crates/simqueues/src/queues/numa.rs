//! Simulated NUMA-adaptive MultiQueue: node-homed heap partitions with a
//! live oblivious/delegation switch-over.
//!
//! This is the sim mirror of the native `funnelpq::NumaPq` (the SmartPQ
//! design): the `c·P` heaps of a [`super::SimMultiQueue`] are partitioned
//! across the machine's NUMA nodes — each queue's cache lines are homed on
//! one node via [`Machine::alloc_on_node`] — and a per-op mode word selects
//! between two disciplines:
//!
//! * **Oblivious** — classic MultiQueue: inserts and two-choice deletes
//!   draw over *all* queues, paying the machine's `remote_ratio` on every
//!   cross-node line. Best when remote traffic is cheap.
//! * **Delegation** — NUMA-aware: operations stay inside the processor's
//!   own node's partition (the locality the native delegation layer buys
//!   with its request/response mailboxes), falling back to a global sweep
//!   only when the local partition runs dry. Best when remote traffic is
//!   dear.
//!
//! The adaptive controller is *measurement-driven*: in oblivious mode each
//! remote two-choice winner contributes its observed top-read latency
//! excess (over an uncontended local access) to an epoch pressure
//! accumulator; in delegation mode an occasional remote *probe read* keeps
//! measuring what remote traffic currently costs, so the controller can
//! switch back when the interconnect calms down — including spikes injected
//! by the fault layer's `RegionDelay`, which inflate the same measurement.
//! Mode changes follow the native hysteresis: a dead band between the
//! enter/exit thresholds and two consecutive deciding epochs before a flip.
//! The mode word and switch counter live in simulated memory, so every
//! operation pays one real transaction to learn the current discipline and
//! switch-overs are observable in traces.

use std::cell::RefCell;
use std::rc::Rc;

use funnelpq::{NumaMode, NumaPolicy};
use funnelpq_sim::{Addr, Machine, ProcCtx};

use crate::costs;
use crate::error::SimPqError;

/// Published-top sentinel for an empty queue; orders after every real
/// priority.
const EMPTY: u64 = u64::MAX;

/// Per-queue header words before the heap entries: lock, top, size.
const HDR: usize = 3;

/// Random try-lock attempts before an insert falls back to a deterministic
/// probe of every reachable queue with blocking locks.
const INSERT_TRIES: usize = 4;

/// Consecutive deciding epochs required before a mode flip (the native
/// controller's hysteresis streak).
const STREAK: u32 = 2;

/// Host-side adaptive controller state. Like the native `AdaptiveCtl` this
/// is bookkeeping the real implementation would keep in thread-local /
/// shared counters; only the mode word and switch counter cost simulated
/// traffic.
#[derive(Debug)]
struct Ctl {
    policy: NumaPolicy,
    mode: NumaMode,
    epoch_ops: u64,
    /// Pressure (average excess remote cycles per op) at or above which an
    /// epoch votes for delegation.
    enter: u64,
    /// Pressure at or below which an epoch votes for oblivious.
    exit: u64,
    ops: u64,
    pressure_accum: u64,
    streak_hi: u32,
    streak_lo: u32,
    epochs: u64,
    /// Per-processor mark of the last epoch whose delegation-mode remote
    /// probe that processor has contributed (`u64::MAX` = never).
    probe_mark: Vec<u64>,
}

impl Ctl {
    /// Counts one completed operation; at an epoch boundary closes the
    /// epoch and returns the new mode if the controller decided to flip.
    fn note_op(&mut self) -> Option<NumaMode> {
        self.ops += 1;
        if !self.ops.is_multiple_of(self.epoch_ops) {
            return None;
        }
        self.epochs += 1;
        let pressure = self.pressure_accum / self.epoch_ops;
        self.pressure_accum = 0;
        if let NumaPolicy::Pinned(_) = self.policy {
            return None;
        }
        if pressure >= self.enter {
            self.streak_hi += 1;
            self.streak_lo = 0;
        } else if pressure <= self.exit {
            self.streak_lo += 1;
            self.streak_hi = 0;
        } else {
            // Dead band: no vote either way.
            self.streak_hi = 0;
            self.streak_lo = 0;
        }
        if self.mode == NumaMode::Oblivious && self.streak_hi >= STREAK {
            self.mode = NumaMode::Delegation;
            self.streak_hi = 0;
            Some(NumaMode::Delegation)
        } else if self.mode == NumaMode::Delegation && self.streak_lo >= STREAK {
            self.mode = NumaMode::Oblivious;
            self.streak_lo = 0;
            Some(NumaMode::Oblivious)
        } else {
            None
        }
    }
}

/// The simulated NUMA-adaptive relaxed priority queue. See the module docs.
#[derive(Debug, Clone)]
pub struct SimNumaPq {
    /// Base address of each queue's region (`HDR + 2 * cap_q` words);
    /// queue `qi` is homed on node `qi * nodes / nqueues`.
    queues: Vec<Addr>,
    /// Per-queue heap capacity.
    cap_q: usize,
    /// Number of NUMA nodes the partitions span (clamped to the machine's).
    nodes: usize,
    /// Mode word in simulated memory: 0 oblivious, 1 delegation.
    mode_addr: Addr,
    /// Switch-over counter in simulated memory.
    switches_addr: Addr,
    /// Uncontended local access latency, from the machine configuration —
    /// the baseline the measured excess is taken against.
    local_ns: u64,
    ctl: Rc<RefCell<Ctl>>,
}

impl SimNumaPq {
    /// Allocates `factor * procs` queues (at least `2 * nodes`) with their
    /// cache lines homed per node. `nodes` is clamped to the machine's
    /// configured node count; pass the same value for a faithful mirror.
    pub fn build(
        m: &mut Machine,
        procs: usize,
        capacity: usize,
        factor: usize,
        nodes: usize,
        epoch_ops: u64,
        policy: NumaPolicy,
    ) -> Self {
        let nodes = nodes.max(1).min(m.nodes().max(1));
        let nqueues = (factor.max(1) * procs.max(1)).max(2 * nodes).max(2);
        let cap_q = capacity.max(1).div_ceil(nqueues);
        let words = HDR + 2 * cap_q;
        let queues: Vec<Addr> = (0..nqueues)
            .map(|qi| {
                let node = qi * nodes / nqueues;
                let base = m.alloc_on_node(words, node);
                m.label(base, words, format!("numapq heap {qi} (node {node})"));
                m.poke(base + 1, EMPTY);
                base
            })
            .collect();
        let mode_addr = m.alloc_on_node(1, 0);
        m.label(mode_addr, 1, "numapq mode word");
        let switches_addr = m.alloc_on_node(1, 0);
        m.label(switches_addr, 1, "numapq switch counter");
        let start_mode = match policy {
            NumaPolicy::Pinned(mode) => mode,
            NumaPolicy::Adaptive => NumaMode::Oblivious,
        };
        m.poke(mode_addr, mode_word(start_mode));
        let cfg = m.config();
        let local_ns = cfg.uncontended_access();
        SimNumaPq {
            queues,
            cap_q,
            nodes,
            mode_addr,
            switches_addr,
            local_ns,
            ctl: Rc::new(RefCell::new(Ctl {
                policy,
                mode: start_mode,
                epoch_ops: epoch_ops.max(1),
                // Thresholds scale with the machine's latency floor: enter
                // once remote excess dwarfs two local accesses per op, exit
                // once it falls under half of one.
                enter: 2 * local_ns,
                exit: local_ns / 2,
                ops: 0,
                pressure_accum: 0,
                streak_hi: 0,
                streak_lo: 0,
                epochs: 0,
                probe_mark: vec![u64::MAX; procs.max(1)],
            })),
        }
    }

    fn lock_addr(&self, q: usize) -> Addr {
        self.queues[q]
    }
    fn top_addr(&self, q: usize) -> Addr {
        self.queues[q] + 1
    }
    fn size_addr(&self, q: usize) -> Addr {
        self.queues[q] + 2
    }
    fn pri_addr(&self, q: usize, i: u64) -> Addr {
        self.queues[q] + HDR + 2 * i as usize
    }
    fn item_addr(&self, q: usize, i: u64) -> Addr {
        self.queues[q] + HDR + 2 * i as usize + 1
    }

    /// Home node of queue `q` (mirrors the native `Topology::node_of_slot`).
    fn node_of_queue(&self, q: usize) -> usize {
        q * self.nodes / self.queues.len()
    }

    /// Node of the calling processor (mirrors the machine's `pid % nodes`).
    fn node_of_proc(&self, pid: usize) -> usize {
        pid % self.nodes
    }

    /// Queue index range `[lo, hi)` homed on `node`.
    fn local_range(&self, node: usize) -> (usize, usize) {
        let nq = self.queues.len();
        let lo = (node * nq).div_ceil(self.nodes);
        let hi = ((node + 1) * nq).div_ceil(self.nodes);
        (lo, hi)
    }

    /// One CAS on the lock word; true iff we now hold the lock.
    async fn try_lock(&self, ctx: &ProcCtx, q: usize) -> bool {
        ctx.cas(self.lock_addr(q), 0, ctx.pid() as u64 + 1).await == 0
    }

    /// Spins until the lock is ours; only fallback paths use this.
    async fn lock_blocking(&self, ctx: &ProcCtx, q: usize) {
        while !self.try_lock(ctx, q).await {
            ctx.work(costs::FUNNEL_SPIN_STEP).await;
        }
    }

    async fn unlock(&self, ctx: &ProcCtx, q: usize) {
        ctx.write(self.lock_addr(q), 0).await;
    }

    /// Reads the mode word (one simulated transaction per operation).
    async fn read_mode(&self, ctx: &ProcCtx) -> NumaMode {
        if ctx.read(self.mode_addr).await == 1 {
            NumaMode::Delegation
        } else {
            NumaMode::Oblivious
        }
    }

    /// Counts one completed op against the controller; on an epoch flip,
    /// publishes the new mode and bumps the switch counter in simulated
    /// memory.
    async fn finish_op(&self, ctx: &ProcCtx) {
        let flipped = self.ctl.borrow_mut().note_op();
        if let Some(new_mode) = flipped {
            ctx.write(self.mode_addr, mode_word(new_mode)).await;
            ctx.faa(self.switches_addr, 1).await;
        }
    }

    /// Feeds measured excess remote cycles into the current epoch's
    /// pressure accumulator.
    fn note_pressure(&self, excess: u64) {
        self.ctl.borrow_mut().pressure_accum += excess;
    }

    /// Reads one top word, returning `(top, measured cycles)`.
    async fn timed_top(&self, ctx: &ProcCtx, q: usize) -> (u64, u64) {
        let t0 = ctx.now();
        let top = ctx.read(self.top_addr(q)).await;
        (top, ctx.now() - t0)
    }

    /// Delegation-mode remote probe: each processor's first delete of an
    /// epoch reads one remote top purely to measure what remote traffic
    /// costs that processor right now. This is the sim analogue of the
    /// native controller's structural pressure floor — without it, a
    /// delegated queue never observes the interconnect again and could
    /// not decide to switch back. Every processor contributes once per
    /// epoch (standing for its share of the epoch's ops) so the epoch's
    /// pressure averages the whole machine's view of the interconnect:
    /// a spike on one node's memory keeps the average up even though the
    /// spiked node's own processors measure a healthy remote path.
    async fn maybe_probe(&self, ctx: &ProcCtx, my_node: usize) {
        if self.nodes < 2 {
            return;
        }
        let stands_for = {
            let mut ctl = self.ctl.borrow_mut();
            let epoch = ctl.epochs;
            let slot = ctx.pid() % ctl.probe_mark.len();
            if ctl.probe_mark[slot] == epoch {
                return;
            }
            ctl.probe_mark[slot] = epoch;
            (ctl.epoch_ops / ctl.probe_mark.len() as u64).max(1)
        };
        let (lo, _) = self.local_range((my_node + 1) % self.nodes);
        let (_, elapsed) = self.timed_top(ctx, lo).await;
        let excess = elapsed.saturating_sub(self.local_ns);
        // The probe stands for this processor's share of the epoch at the
        // structural per-op rate: what an oblivious op would pay in remote
        // transfers, scaled by the fraction of queues that are remote.
        let per_op = 3 * excess * (self.nodes as u64 - 1) / self.nodes as u64;
        self.note_pressure(per_op * stands_for);
    }

    /// Pushes into queue `q`'s heap. Caller holds the lock. False if full.
    async fn push_locked(&self, ctx: &ProcCtx, q: usize, pri: u64, item: u64) -> bool {
        let n = ctx.read(self.size_addr(q)).await;
        if n as usize >= self.cap_q {
            return false;
        }
        ctx.write(self.pri_addr(q, n), pri).await;
        ctx.write(self.item_addr(q, n), item).await;
        ctx.write(self.size_addr(q), n + 1).await;
        {
            let _bubble = ctx.span("heap-bubble");
            let mut i = n;
            while i > 0 {
                ctx.work(costs::SIFT_STEP).await;
                let parent = (i - 1) / 2;
                let ppri = ctx.read(self.pri_addr(q, parent)).await;
                if pri < ppri {
                    let pitem = ctx.read(self.item_addr(q, parent)).await;
                    ctx.write(self.pri_addr(q, i), ppri).await;
                    ctx.write(self.item_addr(q, i), pitem).await;
                    ctx.write(self.pri_addr(q, parent), pri).await;
                    ctx.write(self.item_addr(q, parent), item).await;
                    i = parent;
                } else {
                    break;
                }
            }
        }
        let root = ctx.read(self.pri_addr(q, 0)).await;
        ctx.write(self.top_addr(q), root).await;
        true
    }

    /// Pops queue `q`'s minimum. Caller holds the lock. `None` repairs a
    /// stale published top so later probes skip this queue.
    async fn pop_locked(&self, ctx: &ProcCtx, q: usize) -> Option<(u64, u64)> {
        let n = ctx.read(self.size_addr(q)).await;
        if n == 0 {
            ctx.write(self.top_addr(q), EMPTY).await;
            return None;
        }
        let min_pri = ctx.read(self.pri_addr(q, 0)).await;
        let min_item = ctx.read(self.item_addr(q, 0)).await;
        let last = n - 1;
        ctx.write(self.size_addr(q), last).await;
        if last > 0 {
            let _bubble = ctx.span("heap-bubble");
            let pri = ctx.read(self.pri_addr(q, last)).await;
            let item = ctx.read(self.item_addr(q, last)).await;
            ctx.write(self.pri_addr(q, 0), pri).await;
            ctx.write(self.item_addr(q, 0), item).await;
            let mut i = 0u64;
            loop {
                ctx.work(costs::SIFT_STEP).await;
                let l = 2 * i + 1;
                let r = 2 * i + 2;
                if l >= last {
                    break;
                }
                let lpri = ctx.read(self.pri_addr(q, l)).await;
                let (c, cpri) = if r < last {
                    let rpri = ctx.read(self.pri_addr(q, r)).await;
                    if rpri < lpri {
                        (r, rpri)
                    } else {
                        (l, lpri)
                    }
                } else {
                    (l, lpri)
                };
                if cpri < pri {
                    let citem = ctx.read(self.item_addr(q, c)).await;
                    ctx.write(self.pri_addr(q, i), cpri).await;
                    ctx.write(self.item_addr(q, i), citem).await;
                    ctx.write(self.pri_addr(q, c), pri).await;
                    ctx.write(self.item_addr(q, c), item).await;
                    i = c;
                } else {
                    break;
                }
            }
            let root = ctx.read(self.pri_addr(q, 0)).await;
            ctx.write(self.top_addr(q), root).await;
        } else {
            ctx.write(self.top_addr(q), EMPTY).await;
        }
        Some((min_pri, min_item))
    }

    /// Inserts `(pri, item)`.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full; use [`try_insert`](Self::try_insert)
    /// to handle that case.
    pub async fn insert(&self, ctx: &ProcCtx, pri: u64, item: u64) {
        if let Err(e) = self.try_insert(ctx, pri, item).await {
            panic!("{e}");
        }
    }

    /// Inserts into a random queue — drawn over all queues in oblivious
    /// mode, over the processor's own node's partition in delegation mode.
    /// Reports capacity exhaustion only after a deterministic blocking
    /// probe of **every** queue finds no room.
    pub async fn try_insert(&self, ctx: &ProcCtx, pri: u64, item: u64) -> Result<(), SimPqError> {
        ctx.work(costs::OP_SETUP).await;
        let pid = ctx.pid();
        let nq = self.queues.len();
        let mode = self.read_mode(ctx).await;
        let (lo, hi) = match mode {
            NumaMode::Oblivious => (0, nq),
            NumaMode::Delegation => self.local_range(self.node_of_proc(pid)),
        };
        let span = (hi - lo).max(1);
        for _ in 0..INSERT_TRIES {
            ctx.work(costs::RNG_DRAW).await;
            let q = lo + ctx.random_below(span as u64) as usize;
            if !self.try_lock(ctx, q).await {
                ctx.work(costs::LOOP_ITER).await;
                continue;
            }
            let hold = ctx.span("lock-hold");
            let ok = self.push_locked(ctx, q, pri, item).await;
            hold.end();
            self.unlock(ctx, q).await;
            if ok {
                self.finish_op(ctx).await;
                return Ok(());
            }
            ctx.work(costs::LOOP_ITER).await;
        }
        // Random placement keeps failing (locked or full queues): probe
        // every queue in order, waiting for each lock. Crossing out of the
        // local partition here is deliberate — capacity is a global
        // property, whatever the mode.
        for step in 0..nq {
            let q = (pid + step) % nq;
            ctx.work(costs::LOOP_ITER).await;
            self.lock_blocking(ctx, q).await;
            let hold = ctx.span("lock-hold");
            let ok = self.push_locked(ctx, q, pri, item).await;
            hold.end();
            self.unlock(ctx, q).await;
            if ok {
                self.finish_op(ctx).await;
                return Ok(());
            }
        }
        Err(SimPqError::CapacityExhausted {
            what: "SimNumaPq",
            capacity: self.cap_q * nq,
            proc: ctx.pid(),
            time: ctx.now(),
        })
    }

    /// Removes an item of *near*-minimal priority.
    ///
    /// Oblivious mode is the classic two-choice over all queues; each
    /// remote winner feeds its measured latency excess to the controller.
    /// Delegation mode runs the two-choice inside the processor's own
    /// node's partition (plus the occasional remote probe) and falls back
    /// to a global sweep when the local partition looks empty, so at
    /// quiescence `None` still means the whole queue is empty.
    pub async fn delete_min(&self, ctx: &ProcCtx) -> Option<(u64, u64)> {
        ctx.work(costs::OP_SETUP).await;
        let pid = ctx.pid();
        let my_node = self.node_of_proc(pid);
        let mode = self.read_mode(ctx).await;
        if mode == NumaMode::Delegation {
            self.maybe_probe(ctx, my_node).await;
        }
        let (lo, hi) = match mode {
            NumaMode::Oblivious => (0, self.queues.len()),
            NumaMode::Delegation => self.local_range(my_node),
        };
        loop {
            let span = (hi - lo) as u64;
            let (a, b) = if span < 2 {
                (lo, lo)
            } else {
                ctx.work(costs::RNG_DRAW).await;
                let a = ctx.random_below(span);
                ctx.work(costs::RNG_DRAW).await;
                let mut b = ctx.random_below(span - 1);
                if b >= a {
                    b += 1;
                }
                (lo + a as usize, lo + b as usize)
            };
            let (top_a, cyc_a) = self.timed_top(ctx, a).await;
            let (top_b, cyc_b) = if b == a {
                (top_a, 0)
            } else {
                self.timed_top(ctx, b).await
            };
            if top_a == EMPTY && top_b == EMPTY {
                let got = self.sweep(ctx).await;
                self.finish_op(ctx).await;
                return got;
            }
            let (q, cyc) = if top_b < top_a {
                (b, cyc_b)
            } else {
                (a, cyc_a)
            };
            if mode == NumaMode::Oblivious && self.node_of_queue(q) != my_node {
                // A remote two-choice winner costs ~3 remote transfers in
                // the native queue (lock + top + data); the measured top
                // read stands in for one of them.
                self.note_pressure(3 * cyc.saturating_sub(self.local_ns));
            }
            if !self.try_lock(ctx, q).await {
                ctx.work(costs::LOOP_ITER).await;
                continue;
            }
            let hold = ctx.span("lock-hold");
            let got = self.pop_locked(ctx, q).await;
            hold.end();
            self.unlock(ctx, q).await;
            match got {
                Some(x) => {
                    self.finish_op(ctx).await;
                    return Some(x);
                }
                // Stale published top; it is repaired now.
                None => ctx.work(costs::LOOP_ITER).await,
            }
        }
    }

    /// Slow path when the sampled pair looks empty: scan every published
    /// top (local partition first, then the rest) and pop from the first
    /// queue showing an item.
    async fn sweep(&self, ctx: &ProcCtx) -> Option<(u64, u64)> {
        let nq = self.queues.len();
        let (lo, _) = self.local_range(self.node_of_proc(ctx.pid()));
        for step in 0..nq {
            let q = (lo + step) % nq;
            ctx.work(costs::LOOP_ITER).await;
            if ctx.read(self.top_addr(q)).await == EMPTY {
                continue;
            }
            if !self.try_lock(ctx, q).await {
                continue;
            }
            let hold = ctx.span("lock-hold");
            let got = self.pop_locked(ctx, q).await;
            hold.end();
            self.unlock(ctx, q).await;
            if got.is_some() {
                return got;
            }
        }
        None
    }

    /// Current mode, read host-side (meaningful at any time; free).
    pub fn peek_mode(&self, m: &Machine) -> NumaMode {
        if m.peek(self.mode_addr) == 1 {
            NumaMode::Delegation
        } else {
            NumaMode::Oblivious
        }
    }

    /// Mode switch-overs so far, read host-side.
    pub fn peek_switches(&self, m: &Machine) -> u64 {
        m.peek(self.switches_addr)
    }

    /// Epochs the controller has closed so far.
    pub fn epochs(&self) -> u64 {
        self.ctl.borrow().epochs
    }

    /// Host-side item count (no simulated cost; meaningful at quiescence).
    pub fn peek_len(&self, m: &Machine) -> u64 {
        (0..self.queues.len())
            .map(|q| m.peek(self.size_addr(q)))
            .sum()
    }

    /// Structural validation at quiescence: every lock free, sizes within
    /// capacity, heap property inside each queue, published tops exact,
    /// and the in-memory mode word consistent with the controller's.
    /// Returns the total item count.
    pub fn validate(&self, m: &Machine) -> Result<u64, String> {
        let mut total = 0u64;
        for q in 0..self.queues.len() {
            if m.peek(self.lock_addr(q)) != 0 {
                return Err(format!("SimNumaPq: queue {q} lock held at quiescence"));
            }
            let n = m.peek(self.size_addr(q));
            if n as usize > self.cap_q {
                return Err(format!(
                    "SimNumaPq: queue {q} size {n} exceeds per-queue capacity {}",
                    self.cap_q
                ));
            }
            for i in 1..n {
                let parent = (i - 1) / 2;
                let ppri = m.peek(self.pri_addr(q, parent));
                let cpri = m.peek(self.pri_addr(q, i));
                if ppri > cpri {
                    return Err(format!(
                        "SimNumaPq: queue {q} heap violation at entry {i}: \
                         parent pri {ppri} > child pri {cpri}"
                    ));
                }
            }
            let top = m.peek(self.top_addr(q));
            let want = if n == 0 {
                EMPTY
            } else {
                m.peek(self.pri_addr(q, 0))
            };
            if top != want {
                return Err(format!(
                    "SimNumaPq: queue {q} published top {top} disagrees with heap root {want}"
                ));
            }
            total += n;
        }
        if self.peek_mode(m) != self.ctl.borrow().mode {
            return Err("SimNumaPq: mode word disagrees with controller state".into());
        }
        Ok(total)
    }
}

fn mode_word(mode: NumaMode) -> u64 {
    match mode {
        NumaMode::Oblivious => 0,
        NumaMode::Delegation => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use funnelpq_sim::MachineConfig;
    use std::collections::BTreeSet;

    fn numa_cfg(nodes: usize, ratio: u64) -> MachineConfig {
        MachineConfig::test_tiny().with_topology(nodes, ratio)
    }

    #[test]
    fn sequential_drain_conserves_on_flat_machine() {
        let mut m = Machine::new(MachineConfig::test_tiny(), 7);
        let q = SimNumaPq::build(&mut m, 1, 256, 2, 2, 32, NumaPolicy::Adaptive);
        let ctx = m.ctx();
        let q2 = q.clone();
        m.spawn(async move {
            for i in 0..100u64 {
                q2.insert(&ctx, (i * 37) % 64, i).await;
            }
            let mut items = BTreeSet::new();
            while let Some((_, x)) = q2.delete_min(&ctx).await {
                items.insert(x);
            }
            assert_eq!(items.len(), 100, "every item must come back exactly once");
        });
        assert!(m.run().is_quiescent());
        assert_eq!(q.validate(&m).unwrap(), 0);
    }

    #[test]
    fn pinned_delegation_stays_local_until_the_partition_drains() {
        let mut m = Machine::new(numa_cfg(2, 4), 11);
        let q = SimNumaPq::build(
            &mut m,
            2,
            128,
            2,
            2,
            32,
            NumaPolicy::Pinned(NumaMode::Delegation),
        );
        let ctx = m.ctx();
        let q2 = q.clone();
        m.spawn(async move {
            for i in 0..40u64 {
                q2.insert(&ctx, i % 16, i).await;
            }
            let mut got = 0;
            while q2.delete_min(&ctx).await.is_some() {
                got += 1;
            }
            assert_eq!(got, 40, "sweep fallback must drain remote partitions too");
        });
        assert!(m.run().is_quiescent());
        assert_eq!(q.peek_switches(&m), 0, "pinned policy must never switch");
        assert_eq!(q.validate(&m).unwrap(), 0);
    }

    #[test]
    fn adaptive_switches_to_delegation_on_expensive_interconnect() {
        // Remote legs cost 16x: oblivious two-choice keeps winning remote
        // tops, pressure crosses the enter threshold, and the controller
        // must flip to delegation within a few epochs.
        let mut m = Machine::new(
            MachineConfig {
                net_latency: 4,
                service: 1,
                line_words: 1,
                nodes: 2,
                remote_ratio: 16,
            },
            13,
        );
        let q = SimNumaPq::build(&mut m, 2, 4096, 2, 2, 16, NumaPolicy::Adaptive);
        for p in 0..2 {
            let ctx = m.ctx();
            let q = q.clone();
            m.spawn(async move {
                for i in 0..600u64 {
                    q.insert(&ctx, (p * 600 + i) % 64, p * 600 + i).await;
                    // Concurrent sweeps may miss racily (relaxed
                    // semantics); conservation is re-checked at the end.
                    q.delete_min(&ctx).await;
                }
            });
        }
        assert!(m.run().is_quiescent());
        assert_eq!(q.peek_mode(&m), NumaMode::Delegation);
        assert!(q.peek_switches(&m) >= 1, "a switch-over must be recorded");
        q.validate(&m).expect("structure intact at quiescence");
    }

    #[test]
    fn adaptive_stays_oblivious_on_flat_interconnect() {
        let mut m = Machine::new(numa_cfg(2, 1), 17);
        let q = SimNumaPq::build(&mut m, 2, 4096, 2, 2, 16, NumaPolicy::Adaptive);
        for p in 0..2 {
            let ctx = m.ctx();
            let q = q.clone();
            m.spawn(async move {
                for i in 0..400u64 {
                    q.insert(&ctx, (p * 400 + i) % 64, p * 400 + i).await;
                    q.delete_min(&ctx).await;
                }
            });
        }
        assert!(m.run().is_quiescent());
        assert_eq!(q.peek_mode(&m), NumaMode::Oblivious);
        assert_eq!(q.peek_switches(&m), 0);
        q.validate(&m).expect("structure intact at quiescence");
    }

    #[test]
    fn concurrent_conservation_across_nodes_with_adaptive_controller() {
        use std::cell::RefCell;
        use std::rc::Rc;
        const P: usize = 8;
        const N: usize = 25;
        let mut m = Machine::new(numa_cfg(4, 8), 19);
        let q = SimNumaPq::build(&mut m, P, P * N, 2, 4, 32, NumaPolicy::Adaptive);
        let got = Rc::new(RefCell::new(Vec::new()));
        for p in 0..P {
            let ctx = m.ctx();
            let got = Rc::clone(&got);
            let q = q.clone();
            m.spawn(async move {
                for i in 0..N {
                    q.insert(&ctx, ((p + i) % 5) as u64, (p * N + i) as u64)
                        .await;
                    if i % 2 == 0 {
                        if let Some((_, x)) = q.delete_min(&ctx).await {
                            got.borrow_mut().push(x);
                        }
                    }
                }
            });
        }
        assert!(m.run().is_quiescent());
        let inside = q.validate(&m).expect("structure intact at quiescence");
        assert_eq!(inside as usize + got.borrow().len(), P * N);
        let ctx = m.ctx();
        let got2 = Rc::clone(&got);
        let q2 = q.clone();
        m.spawn(async move {
            while let Some((_, x)) = q2.delete_min(&ctx).await {
                got2.borrow_mut().push(x);
            }
        });
        assert!(m.run().is_quiescent());
        assert_eq!(q.validate(&m).unwrap(), 0);
        let mut all = got.borrow().clone();
        all.sort_unstable();
        assert_eq!(all, (0..(P * N) as u64).collect::<Vec<_>>());
    }
}
