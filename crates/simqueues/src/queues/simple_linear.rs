//! Simulated `SimpleLinear` (paper Figure 2): an array of lock-based bins
//! scanned smallest-priority-first.

use std::rc::Rc;

use funnelpq_sim::{Machine, ProcCtx};

use crate::bin::SimBin;
use crate::costs;
use crate::error::SimPqError;

/// One MCS-locked bin per priority; `delete_min` reads each bin's size word
/// in ascending priority order and tries to delete from non-empty bins.
#[derive(Debug, Clone)]
pub struct SimSimpleLinear {
    bins: Rc<Vec<SimBin>>,
}

impl SimSimpleLinear {
    /// Allocates bins for `num_priorities` priorities.
    pub fn build(
        m: &mut Machine,
        procs: usize,
        num_priorities: usize,
        bin_capacity: usize,
    ) -> Self {
        let bins = (0..num_priorities)
            .map(|_| SimBin::build(m, procs, bin_capacity))
            .collect();
        SimSimpleLinear {
            bins: Rc::new(bins),
        }
    }

    /// Inserts `(pri, item)` — one bin insert, no scanning.
    ///
    /// # Panics
    ///
    /// Panics if the priority's bin is full; use
    /// [`try_insert`](Self::try_insert) to handle that case.
    pub async fn insert(&self, ctx: &ProcCtx, pri: u64, item: u64) {
        if let Err(e) = self.try_insert(ctx, pri, item).await {
            panic!("{e}");
        }
    }

    /// Inserts `(pri, item)`, reporting bin capacity exhaustion (with the
    /// failing processor and simulated time) instead of panicking. On
    /// `Err` the queue is unchanged.
    pub async fn try_insert(&self, ctx: &ProcCtx, pri: u64, item: u64) -> Result<(), SimPqError> {
        ctx.work(costs::OP_SETUP).await;
        self.bins[pri as usize].try_insert(ctx, item).await
    }

    /// Scans bins from smallest priority; deletes from the first non-empty
    /// bin that yields an item.
    pub async fn delete_min(&self, ctx: &ProcCtx) -> Option<(u64, u64)> {
        ctx.work(costs::OP_SETUP).await;
        let _scan = ctx.span("bin-scan");
        for (pri, bin) in self.bins.iter().enumerate() {
            ctx.work(costs::LOOP_ITER).await;
            if !bin.is_empty(ctx).await {
                if let Some(item) = bin.delete(ctx).await {
                    return Some((pri as u64, item));
                }
            }
        }
        None
    }

    /// Host-side item count: sums all bins (no simulated cost; meaningful
    /// at quiescence).
    pub fn peek_len(&self, m: &Machine) -> u64 {
        self.bins.iter().map(|b| b.peek_len(m)).sum()
    }

    /// Structural validation at quiescence: every bin lock free and every
    /// size word within capacity. Returns the item count.
    pub fn validate(&self, m: &Machine) -> Result<u64, String> {
        let mut total = 0u64;
        for (pri, bin) in self.bins.iter().enumerate() {
            total += bin.validate(m).map_err(|e| format!("pri {pri}: {e}"))?;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use funnelpq_sim::MachineConfig;

    #[test]
    fn sequential_order() {
        let mut m = Machine::new(MachineConfig::test_tiny(), 0);
        let q = SimSimpleLinear::build(&mut m, 1, 8, 16);
        let ctx = m.ctx();
        let q2 = q.clone();
        m.spawn(async move {
            for p in [6u64, 1, 4, 1] {
                q2.insert(&ctx, p, p * 100).await;
            }
            assert_eq!(q2.delete_min(&ctx).await.unwrap().0, 1);
            assert_eq!(q2.delete_min(&ctx).await.unwrap().0, 1);
            assert_eq!(q2.delete_min(&ctx).await.unwrap().0, 4);
            assert_eq!(q2.delete_min(&ctx).await.unwrap().0, 6);
            assert_eq!(q2.delete_min(&ctx).await, None);
        });
        assert!(m.run().is_quiescent());
    }
}
