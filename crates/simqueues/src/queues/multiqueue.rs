//! Simulated MultiQueue: `c·P` sequential heaps behind per-queue
//! try-locks, with two-choice delete-min.
//!
//! This is the relaxed design of Rihani, Sanders & Dementiev (*MultiQueues:
//! Simpler, Faster, and Better Relaxed Concurrent Priority Queues*) with
//! the stickiness refinement from Williams, Sanders & Dementiev
//! (*Engineering MultiQueues*), rebuilt against the simulated memory model
//! so it can run in the same figure-7-shaped sweeps as the paper's seven
//! algorithms. It is **not** one of the paper's algorithms: `delete_min`
//! may return an item near, not at, the global minimum. The payoff is that
//! there is no shared hot spot at all — each operation touches one or two
//! queues chosen at random, so coherence traffic stays flat as `P` grows.
//!
//! Each queue's words live in their own allocation (allocations are
//! line-aligned, so distinct queues never share a cache line): a lock word,
//! a published `top` priority (the root of the heap, or [`EMPTY`] —
//! readable without taking the lock, which is what makes the two-choice
//! probe cheap), a size word, and the `[pri, item]` heap entries.

use std::cell::RefCell;
use std::rc::Rc;

use funnelpq_sim::{Addr, Machine, ProcCtx};

use crate::costs;
use crate::error::SimPqError;

/// Published-top sentinel for an empty queue; orders after every real
/// priority.
const EMPTY: u64 = u64::MAX;

/// Per-queue header words before the heap entries: lock, top, size.
const HDR: usize = 3;

/// Random try-lock attempts before an insert falls back to a deterministic
/// probe of every queue with blocking locks.
const INSERT_TRIES: usize = 4;

/// Per-processor stickiness state. This is thread-local in a real
/// MultiQueue, so it lives host-side and costs no simulated memory traffic.
#[derive(Debug, Clone, Default)]
struct Sticky {
    ins_q: usize,
    ins_left: u64,
    del_a: usize,
    del_b: usize,
    del_left: u64,
}

/// The simulated relaxed MultiQueue. See the module docs.
#[derive(Debug, Clone)]
pub struct SimMultiQueue {
    /// Base address of each queue's region (`HDR + 2 * cap_q` words).
    queues: Vec<Addr>,
    /// Per-queue heap capacity; total capacity is `queues.len() * cap_q`.
    cap_q: usize,
    /// Operations an owner keeps reusing its queue choice for.
    stickiness: u64,
    /// Host-side per-processor stickiness state, grown on demand.
    sticky: Rc<RefCell<Vec<Sticky>>>,
}

impl SimMultiQueue {
    /// Allocates `factor * procs` queues (at least two) whose combined
    /// capacity is at least `capacity`.
    pub fn build(
        m: &mut Machine,
        procs: usize,
        capacity: usize,
        factor: usize,
        stickiness: u64,
    ) -> Self {
        let nqueues = (factor.max(1) * procs.max(1)).max(2);
        let cap_q = capacity.max(1).div_ceil(nqueues);
        let words = HDR + 2 * cap_q;
        let queues: Vec<Addr> = (0..nqueues)
            .map(|qi| {
                let base = m.alloc(words);
                m.label(base, words, format!("multiqueue heap {qi}"));
                // Fresh memory is zeroed; an all-zero top would read as "a
                // priority-0 item is present".
                m.poke(base + 1, EMPTY);
                base
            })
            .collect();
        SimMultiQueue {
            queues,
            cap_q,
            stickiness: stickiness.max(1),
            sticky: Rc::new(RefCell::new(Vec::new())),
        }
    }

    fn lock_addr(&self, q: usize) -> Addr {
        self.queues[q]
    }
    fn top_addr(&self, q: usize) -> Addr {
        self.queues[q] + 1
    }
    fn size_addr(&self, q: usize) -> Addr {
        self.queues[q] + 2
    }
    fn pri_addr(&self, q: usize, i: u64) -> Addr {
        self.queues[q] + HDR + 2 * i as usize
    }
    fn item_addr(&self, q: usize, i: u64) -> Addr {
        self.queues[q] + HDR + 2 * i as usize + 1
    }

    /// Runs `f` on this processor's sticky slot (growing the table for
    /// late-spawned processors, e.g. drain phases).
    fn with_sticky<R>(&self, pid: usize, f: impl FnOnce(&mut Sticky) -> R) -> R {
        let mut all = self.sticky.borrow_mut();
        if pid >= all.len() {
            all.resize(pid + 1, Sticky::default());
        }
        f(&mut all[pid])
    }

    /// One CAS on the lock word; true iff we now hold the lock.
    async fn try_lock(&self, ctx: &ProcCtx, q: usize) -> bool {
        ctx.cas(self.lock_addr(q), 0, ctx.pid() as u64 + 1).await == 0
    }

    /// Spins (test-and-set with backoff work) until the lock is ours. Only
    /// the fallback paths use this; the fast paths never wait.
    async fn lock_blocking(&self, ctx: &ProcCtx, q: usize) {
        while !self.try_lock(ctx, q).await {
            ctx.work(costs::FUNNEL_SPIN_STEP).await;
        }
    }

    async fn unlock(&self, ctx: &ProcCtx, q: usize) {
        ctx.write(self.lock_addr(q), 0).await;
    }

    /// Pushes into queue `q`'s heap. Caller holds the lock. False if the
    /// queue is full (heap unchanged).
    async fn push_locked(&self, ctx: &ProcCtx, q: usize, pri: u64, item: u64) -> bool {
        let n = ctx.read(self.size_addr(q)).await;
        if n as usize >= self.cap_q {
            return false;
        }
        ctx.write(self.pri_addr(q, n), pri).await;
        ctx.write(self.item_addr(q, n), item).await;
        ctx.write(self.size_addr(q), n + 1).await;
        {
            let _bubble = ctx.span("heap-bubble");
            let mut i = n;
            while i > 0 {
                ctx.work(costs::SIFT_STEP).await;
                let parent = (i - 1) / 2;
                let ppri = ctx.read(self.pri_addr(q, parent)).await;
                if pri < ppri {
                    let pitem = ctx.read(self.item_addr(q, parent)).await;
                    ctx.write(self.pri_addr(q, i), ppri).await;
                    ctx.write(self.item_addr(q, i), pitem).await;
                    ctx.write(self.pri_addr(q, parent), pri).await;
                    ctx.write(self.item_addr(q, parent), item).await;
                    i = parent;
                } else {
                    break;
                }
            }
        }
        let root = ctx.read(self.pri_addr(q, 0)).await;
        ctx.write(self.top_addr(q), root).await;
        true
    }

    /// Pops queue `q`'s minimum. Caller holds the lock. `None` repairs a
    /// stale published top so later probes skip this queue.
    async fn pop_locked(&self, ctx: &ProcCtx, q: usize) -> Option<(u64, u64)> {
        let n = ctx.read(self.size_addr(q)).await;
        if n == 0 {
            ctx.write(self.top_addr(q), EMPTY).await;
            return None;
        }
        let min_pri = ctx.read(self.pri_addr(q, 0)).await;
        let min_item = ctx.read(self.item_addr(q, 0)).await;
        let last = n - 1;
        ctx.write(self.size_addr(q), last).await;
        if last > 0 {
            let _bubble = ctx.span("heap-bubble");
            let pri = ctx.read(self.pri_addr(q, last)).await;
            let item = ctx.read(self.item_addr(q, last)).await;
            ctx.write(self.pri_addr(q, 0), pri).await;
            ctx.write(self.item_addr(q, 0), item).await;
            let mut i = 0u64;
            loop {
                ctx.work(costs::SIFT_STEP).await;
                let l = 2 * i + 1;
                let r = 2 * i + 2;
                if l >= last {
                    break;
                }
                let lpri = ctx.read(self.pri_addr(q, l)).await;
                let (c, cpri) = if r < last {
                    let rpri = ctx.read(self.pri_addr(q, r)).await;
                    if rpri < lpri {
                        (r, rpri)
                    } else {
                        (l, lpri)
                    }
                } else {
                    (l, lpri)
                };
                if cpri < pri {
                    let citem = ctx.read(self.item_addr(q, c)).await;
                    ctx.write(self.pri_addr(q, i), cpri).await;
                    ctx.write(self.item_addr(q, i), citem).await;
                    ctx.write(self.pri_addr(q, c), pri).await;
                    ctx.write(self.item_addr(q, c), item).await;
                    i = c;
                } else {
                    break;
                }
            }
            let root = ctx.read(self.pri_addr(q, 0)).await;
            ctx.write(self.top_addr(q), root).await;
        } else {
            ctx.write(self.top_addr(q), EMPTY).await;
        }
        Some((min_pri, min_item))
    }

    /// Inserts `(pri, item)`.
    ///
    /// # Panics
    ///
    /// Panics if every queue is full; use [`try_insert`](Self::try_insert)
    /// to handle that case.
    pub async fn insert(&self, ctx: &ProcCtx, pri: u64, item: u64) {
        if let Err(e) = self.try_insert(ctx, pri, item).await {
            panic!("{e}");
        }
    }

    /// Inserts into the sticky queue, or a random one, retrying with fresh
    /// draws on try-lock failure. Reports capacity exhaustion only after a
    /// deterministic probe of **every** queue finds no room, so no spurious
    /// failures happen while the total item count is under capacity.
    pub async fn try_insert(&self, ctx: &ProcCtx, pri: u64, item: u64) -> Result<(), SimPqError> {
        ctx.work(costs::OP_SETUP).await;
        let pid = ctx.pid();
        let nq = self.queues.len();
        for _ in 0..INSERT_TRIES {
            let sticky = self.with_sticky(pid, |s| {
                if s.ins_left > 0 {
                    s.ins_left -= 1;
                    Some(s.ins_q)
                } else {
                    None
                }
            });
            let (q, was_sticky) = match sticky {
                Some(q) => (q, true),
                None => {
                    ctx.work(costs::RNG_DRAW).await;
                    (ctx.random_below(nq as u64) as usize, false)
                }
            };
            if !self.try_lock(ctx, q).await {
                self.with_sticky(pid, |s| s.ins_left = 0);
                ctx.work(costs::LOOP_ITER).await;
                continue;
            }
            let hold = ctx.span("lock-hold");
            let ok = self.push_locked(ctx, q, pri, item).await;
            hold.end();
            self.unlock(ctx, q).await;
            if ok {
                if !was_sticky {
                    let left = self.stickiness - 1;
                    self.with_sticky(pid, |s| {
                        s.ins_q = q;
                        s.ins_left = left;
                    });
                }
                return Ok(());
            }
            self.with_sticky(pid, |s| s.ins_left = 0);
            ctx.work(costs::LOOP_ITER).await;
        }
        // Random placement keeps failing (locked or full queues): probe
        // every queue in order, waiting for each lock.
        for step in 0..nq {
            let q = (pid + step) % nq;
            ctx.work(costs::LOOP_ITER).await;
            self.lock_blocking(ctx, q).await;
            let hold = ctx.span("lock-hold");
            let ok = self.push_locked(ctx, q, pri, item).await;
            hold.end();
            self.unlock(ctx, q).await;
            if ok {
                return Ok(());
            }
        }
        Err(SimPqError::CapacityExhausted {
            what: "SimMultiQueue",
            capacity: self.cap_q * nq,
            proc: ctx.pid(),
            time: ctx.now(),
        })
    }

    /// Removes an item of *near*-minimal priority: sample two distinct
    /// queues (or reuse the sticky pair), read their published tops without
    /// locking, and pop from the smaller. Both tops empty falls back to a
    /// sweep of every queue so that at quiescence `None` really means
    /// empty.
    pub async fn delete_min(&self, ctx: &ProcCtx) -> Option<(u64, u64)> {
        ctx.work(costs::OP_SETUP).await;
        let pid = ctx.pid();
        let nq = self.queues.len() as u64;
        loop {
            let sticky = self.with_sticky(pid, |s| {
                if s.del_left > 0 {
                    s.del_left -= 1;
                    Some((s.del_a, s.del_b))
                } else {
                    None
                }
            });
            let (a, b, was_sticky) = match sticky {
                Some((a, b)) => (a, b, true),
                None => {
                    ctx.work(costs::RNG_DRAW).await;
                    let a = ctx.random_below(nq);
                    ctx.work(costs::RNG_DRAW).await;
                    let mut b = ctx.random_below(nq - 1);
                    if b >= a {
                        b += 1;
                    }
                    (a as usize, b as usize, false)
                }
            };
            let top_a = ctx.read(self.top_addr(a)).await;
            let top_b = ctx.read(self.top_addr(b)).await;
            if top_a == EMPTY && top_b == EMPTY {
                self.with_sticky(pid, |s| s.del_left = 0);
                return self.sweep(ctx).await;
            }
            let q = if top_b < top_a { b } else { a };
            if !self.try_lock(ctx, q).await {
                self.with_sticky(pid, |s| s.del_left = 0);
                ctx.work(costs::LOOP_ITER).await;
                continue;
            }
            let hold = ctx.span("lock-hold");
            let got = self.pop_locked(ctx, q).await;
            hold.end();
            self.unlock(ctx, q).await;
            match got {
                Some(x) => {
                    if !was_sticky {
                        let left = self.stickiness - 1;
                        self.with_sticky(pid, |s| {
                            s.del_a = a;
                            s.del_b = b;
                            s.del_left = left;
                        });
                    }
                    return Some(x);
                }
                // The published top was stale-nonempty; it is repaired now.
                None => {
                    self.with_sticky(pid, |s| s.del_left = 0);
                    ctx.work(costs::LOOP_ITER).await;
                }
            }
        }
    }

    /// Inserts a whole batch into **one** queue under one lock episode,
    /// mirroring the native `MultiQueuePq::insert_batch`: the sticky queue
    /// (or a fresh draw) absorbs the entire batch — one try-lock, one
    /// series of pushes, and the whole batch spends a single unit of the
    /// stickiness budget. Sorted ascending host-side so same-batch sift-ups
    /// are short. If the chosen queue fills mid-batch the remainder falls
    /// back to per-item [`try_insert`](Self::try_insert), which probes for
    /// room elsewhere.
    pub async fn insert_batch(
        &self,
        ctx: &ProcCtx,
        batch: &[(u64, u64)],
    ) -> Result<(), SimPqError> {
        if batch.is_empty() {
            return Ok(());
        }
        let mut sorted: Vec<(u64, u64)> = batch.to_vec();
        sorted.sort_unstable_by_key(|&(pri, _)| pri);
        ctx.work(costs::OP_SETUP).await;
        let pid = ctx.pid();
        let nq = self.queues.len();
        let mut next = 0usize;
        for _ in 0..INSERT_TRIES {
            let sticky = self.with_sticky(pid, |s| {
                if s.ins_left > 0 {
                    s.ins_left -= 1;
                    Some(s.ins_q)
                } else {
                    None
                }
            });
            let (q, was_sticky) = match sticky {
                Some(q) => (q, true),
                None => {
                    ctx.work(costs::RNG_DRAW).await;
                    (ctx.random_below(nq as u64) as usize, false)
                }
            };
            if !self.try_lock(ctx, q).await {
                self.with_sticky(pid, |s| s.ins_left = 0);
                ctx.work(costs::LOOP_ITER).await;
                continue;
            }
            let hold = ctx.span("lock-hold");
            while next < sorted.len() {
                let (pri, item) = sorted[next];
                if !self.push_locked(ctx, q, pri, item).await {
                    break;
                }
                next += 1;
            }
            hold.end();
            self.unlock(ctx, q).await;
            if next == sorted.len() {
                if !was_sticky {
                    let left = self.stickiness - 1;
                    self.with_sticky(pid, |s| {
                        s.ins_q = q;
                        s.ins_left = left;
                    });
                }
                return Ok(());
            }
            // Queue filled mid-batch: spill the rest item-by-item.
            self.with_sticky(pid, |s| s.ins_left = 0);
            break;
        }
        for &(pri, item) in &sorted[next..] {
            self.try_insert(ctx, pri, item).await?;
        }
        Ok(())
    }

    /// Pops up to `k` near-minimal items, appending to `out`; returns the
    /// number taken. Mirrors the native batched drain: one two-choice probe
    /// plus one lock episode drains the winning queue until `k` items are
    /// out or it runs dry, then re-probes. Relaxation grows with `k` — the
    /// tail of a drained queue is served without re-comparing against the
    /// other queues' tops — which is exactly the trade the audit harness
    /// measures.
    pub async fn delete_min_batch(
        &self,
        ctx: &ProcCtx,
        k: usize,
        out: &mut Vec<(u64, u64)>,
    ) -> usize {
        ctx.work(costs::OP_SETUP).await;
        let pid = ctx.pid();
        let nq = self.queues.len() as u64;
        let mut taken = 0;
        while taken < k {
            let sticky = self.with_sticky(pid, |s| {
                if s.del_left > 0 {
                    s.del_left -= 1;
                    Some((s.del_a, s.del_b))
                } else {
                    None
                }
            });
            let (a, b, was_sticky) = match sticky {
                Some((a, b)) => (a, b, true),
                None => {
                    ctx.work(costs::RNG_DRAW).await;
                    let a = ctx.random_below(nq);
                    ctx.work(costs::RNG_DRAW).await;
                    let mut b = ctx.random_below(nq - 1);
                    if b >= a {
                        b += 1;
                    }
                    (a as usize, b as usize, false)
                }
            };
            let top_a = ctx.read(self.top_addr(a)).await;
            let top_b = ctx.read(self.top_addr(b)).await;
            if top_a == EMPTY && top_b == EMPTY {
                self.with_sticky(pid, |s| s.del_left = 0);
                while taken < k {
                    match self.sweep(ctx).await {
                        Some(e) => {
                            out.push(e);
                            taken += 1;
                        }
                        None => return taken,
                    }
                }
                return taken;
            }
            let q = if top_b < top_a { b } else { a };
            if !self.try_lock(ctx, q).await {
                self.with_sticky(pid, |s| s.del_left = 0);
                ctx.work(costs::LOOP_ITER).await;
                continue;
            }
            let hold = ctx.span("lock-hold");
            let before = taken;
            while taken < k {
                match self.pop_locked(ctx, q).await {
                    Some(e) => {
                        out.push(e);
                        taken += 1;
                    }
                    None => break,
                }
            }
            hold.end();
            self.unlock(ctx, q).await;
            if taken == before {
                // Stale published top; it is repaired now.
                self.with_sticky(pid, |s| s.del_left = 0);
                ctx.work(costs::LOOP_ITER).await;
            } else if !was_sticky {
                let left = self.stickiness - 1;
                self.with_sticky(pid, |s| {
                    s.del_a = a;
                    s.del_b = b;
                    s.del_left = left;
                });
            }
        }
        taken
    }

    /// Slow path when a sampled pair looks empty: scan every published top
    /// lock-free and pop from the first queue showing an item. Tops are
    /// published under the queue lock, so during the sequential drain they
    /// are exact and a full-EMPTY scan is a true emptiness proof; during
    /// the concurrent phase a racing operation can make the scan miss —
    /// a spurious empty, which relaxed semantics permits. Locking every
    /// queue here instead would turn each near-empty delete into `O(P)`
    /// CAS traffic and convoy concurrent sweepers behind each other.
    async fn sweep(&self, ctx: &ProcCtx) -> Option<(u64, u64)> {
        for q in 0..self.queues.len() {
            ctx.work(costs::LOOP_ITER).await;
            if ctx.read(self.top_addr(q)).await == EMPTY {
                continue;
            }
            if !self.try_lock(ctx, q).await {
                // Whoever holds the lock is mid-operation; move on.
                continue;
            }
            let hold = ctx.span("lock-hold");
            let got = self.pop_locked(ctx, q).await;
            hold.end();
            self.unlock(ctx, q).await;
            if got.is_some() {
                return got;
            }
        }
        None
    }

    /// Host-side item count (no simulated cost; meaningful at quiescence).
    pub fn peek_len(&self, m: &Machine) -> u64 {
        (0..self.queues.len())
            .map(|q| m.peek(self.size_addr(q)))
            .sum()
    }

    /// Structural validation at quiescence: every lock free, every size
    /// within the per-queue capacity, the heap property inside each queue,
    /// and each published top equal to its heap's root (or [`EMPTY`]).
    /// Returns the total item count.
    pub fn validate(&self, m: &Machine) -> Result<u64, String> {
        let mut total = 0u64;
        for q in 0..self.queues.len() {
            if m.peek(self.lock_addr(q)) != 0 {
                return Err(format!("SimMultiQueue: queue {q} lock held at quiescence"));
            }
            let n = m.peek(self.size_addr(q));
            if n as usize > self.cap_q {
                return Err(format!(
                    "SimMultiQueue: queue {q} size {n} exceeds per-queue capacity {}",
                    self.cap_q
                ));
            }
            for i in 1..n {
                let parent = (i - 1) / 2;
                let ppri = m.peek(self.pri_addr(q, parent));
                let cpri = m.peek(self.pri_addr(q, i));
                if ppri > cpri {
                    return Err(format!(
                        "SimMultiQueue: queue {q} heap violation at entry {i}: \
                         parent pri {ppri} > child pri {cpri}"
                    ));
                }
            }
            let top = m.peek(self.top_addr(q));
            let want = if n == 0 {
                EMPTY
            } else {
                m.peek(self.pri_addr(q, 0))
            };
            if top != want {
                return Err(format!(
                    "SimMultiQueue: queue {q} published top {top} disagrees with heap root {want}"
                ));
            }
            total += n;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use funnelpq_sim::MachineConfig;
    use std::collections::BTreeSet;

    #[test]
    fn sequential_drain_conserves_and_stays_near_sorted() {
        let mut m = Machine::new(MachineConfig::test_tiny(), 7);
        let q = SimMultiQueue::build(&mut m, 1, 256, 2, 4);
        let ctx = m.ctx();
        let q2 = q.clone();
        m.spawn(async move {
            for i in 0..100u64 {
                q2.insert(&ctx, (i * 37) % 64, i).await;
            }
            let mut pris = Vec::new();
            let mut items = BTreeSet::new();
            while let Some((p, x)) = q2.delete_min(&ctx).await {
                pris.push(p);
                items.insert(x);
            }
            assert_eq!(items.len(), 100, "every item must come back exactly once");
            // Relaxed: the drain need not be sorted, but each delete's rank
            // error (smaller priorities still present) is bounded by what
            // the other queues can hide.
            let worst = (0..pris.len())
                .map(|i| pris[i + 1..].iter().filter(|&&p| p < pris[i]).count())
                .max()
                .unwrap();
            assert!(worst < 64, "rank error {worst} implausibly large");
        });
        assert!(m.run().is_quiescent());
    }

    #[test]
    fn two_queues_stickiness_one_drain_is_sorted_after_inserts() {
        // With inserts spread over both queues and a fresh two-choice draw
        // every delete (stickiness 1), each delete compares both tops and
        // takes the global minimum: a quiescent drain comes out sorted.
        let mut m = Machine::new(MachineConfig::test_tiny(), 3);
        let q = SimMultiQueue::build(&mut m, 1, 64, 2, 1);
        let ctx = m.ctx();
        let q2 = q.clone();
        m.spawn(async move {
            for p in [9u64, 1, 5, 1, 7, 3] {
                q2.insert(&ctx, p, p * 10).await;
            }
            let mut got = Vec::new();
            while let Some((p, _)) = q2.delete_min(&ctx).await {
                got.push(p);
            }
            assert_eq!(got, vec![1, 1, 3, 5, 7, 9]);
        });
        assert!(m.run().is_quiescent());
    }

    #[test]
    fn batch_ops_conserve_and_validate() {
        let mut m = Machine::new(MachineConfig::test_tiny(), 13);
        let q = SimMultiQueue::build(&mut m, 1, 256, 2, 4);
        let ctx = m.ctx();
        let q2 = q.clone();
        m.spawn(async move {
            let mut batch = Vec::new();
            for i in 0..96u64 {
                batch.push(((i * 41) % 64, i));
                if batch.len() == 8 {
                    q2.insert_batch(&ctx, &batch).await.unwrap();
                    batch.clear();
                }
            }
            let mut items = BTreeSet::new();
            let mut out = Vec::new();
            loop {
                out.clear();
                let n = q2.delete_min_batch(&ctx, 8, &mut out).await;
                for &(_, x) in &out {
                    items.insert(x);
                }
                if n == 0 {
                    break;
                }
            }
            assert_eq!(items.len(), 96, "every item must come back exactly once");
        });
        assert!(m.run().is_quiescent());
        assert_eq!(q.validate(&m).unwrap(), 0);
    }

    #[test]
    fn concurrent_conservation_and_validate() {
        use std::cell::RefCell;
        use std::rc::Rc;
        const P: usize = 8;
        const N: usize = 25;
        let mut m = Machine::new(MachineConfig::test_tiny(), 11);
        let q = SimMultiQueue::build(&mut m, P, P * N, 2, 8);
        let got = Rc::new(RefCell::new(Vec::new()));
        for p in 0..P {
            let ctx = m.ctx();
            let got = Rc::clone(&got);
            let q = q.clone();
            m.spawn(async move {
                for i in 0..N {
                    q.insert(&ctx, ((p + i) % 5) as u64, (p * N + i) as u64)
                        .await;
                    if i % 2 == 0 {
                        if let Some((_, x)) = q.delete_min(&ctx).await {
                            got.borrow_mut().push(x);
                        }
                    }
                }
            });
        }
        assert!(m.run().is_quiescent());
        let inside = q.validate(&m).expect("structure intact at quiescence");
        assert_eq!(inside as usize + got.borrow().len(), P * N);
        let ctx = m.ctx();
        let got2 = Rc::clone(&got);
        let q2 = q.clone();
        m.spawn(async move {
            while let Some((_, x)) = q2.delete_min(&ctx).await {
                got2.borrow_mut().push(x);
            }
        });
        assert!(m.run().is_quiescent());
        assert_eq!(q.validate(&m).unwrap(), 0);
        let mut all = got.borrow().clone();
        all.sort_unstable();
        assert_eq!(all, (0..(P * N) as u64).collect::<Vec<_>>());
    }

    #[test]
    fn capacity_exhaustion_only_when_every_queue_is_full() {
        let mut m = Machine::new(MachineConfig::test_tiny(), 5);
        let q = SimMultiQueue::build(&mut m, 1, 8, 2, 4);
        let total = q.cap_q * q.queues.len();
        let ctx = m.ctx();
        let q2 = q.clone();
        m.spawn(async move {
            // Random placement alone would hit a full queue early; the
            // probe fallback must keep accepting until *every* slot is
            // used.
            for i in 0..total as u64 {
                q2.try_insert(&ctx, i, i).await.expect("room must be found");
            }
            let err = q2.try_insert(&ctx, 0, 0).await.unwrap_err();
            assert!(matches!(
                err,
                SimPqError::CapacityExhausted {
                    what: "SimMultiQueue",
                    ..
                }
            ));
        });
        assert!(m.run().is_quiescent());
        assert_eq!(q.peek_len(&m), total as u64);
    }
}
