//! Simulated `HuntEtAl`: the concurrent heap of Hunt, Michael,
//! Parthasarathy & Scott with per-node locks and bit-reversed insertions.

use funnelpq_sim::{Addr, Machine, ProcCtx};

use crate::costs;
use crate::error::SimPqError;
use crate::mcs::SimMcsLock;

const TAG_EMPTY: u64 = 0;
const TAG_AVAIL: u64 = 1;
// tags >= 2 encode Owned(pid = tag - 2)

/// Position of the `s`-th item (1-based) under bit-reversed level filling.
pub(crate) fn bit_reversed_position(s: u64) -> u64 {
    debug_assert!(s >= 1);
    let level = 63 - s.leading_zeros() as u64;
    if level == 0 {
        return 1;
    }
    let offset = s - (1 << level);
    let rev = offset.reverse_bits() >> (64 - level);
    (1 << level) + rev
}

/// Per-node layout: [lock, tag, pri, item], padded to whole cache lines.
#[derive(Debug, Clone, Copy)]
pub struct SimHunt {
    size_lock: SimMcsLock,
    size: Addr,
    nodes: Addr,
    node_stride: usize,
    capacity: u64,
}

impl SimHunt {
    /// Allocates a heap of at most `capacity` items for `procs` processors.
    pub fn build(m: &mut Machine, procs: usize, capacity: usize) -> Self {
        let size_lock = SimMcsLock::build(m, procs);
        let size = m.alloc(1);
        let node_stride = 4usize.next_multiple_of(m.line_words());
        let nodes = m.alloc((capacity + 1) * node_stride);
        m.label(size, 1, "heap size word");
        m.label(nodes, (capacity + 1) * node_stride, "heap nodes");
        SimHunt {
            size_lock,
            size,
            nodes,
            node_stride,
            capacity: capacity as u64,
        }
    }

    fn lock_a(&self, i: u64) -> Addr {
        self.nodes + i as usize * self.node_stride
    }
    fn tag_a(&self, i: u64) -> Addr {
        self.lock_a(i) + 1
    }
    fn pri_a(&self, i: u64) -> Addr {
        self.lock_a(i) + 2
    }
    fn item_a(&self, i: u64) -> Addr {
        self.lock_a(i) + 3
    }

    /// Test-and-test-and-set acquire of a node lock, with randomized
    /// backoff between failed attempts. The jitter matters doubly here: it
    /// models real arbitration noise, and it prevents the deterministic
    /// event ordering of the simulator from phase-locking two retrying
    /// processors into mutual starvation.
    async fn lock_node(&self, ctx: &ProcCtx, i: u64) {
        loop {
            ctx.wait_until(self.lock_a(i), |v| v == 0).await;
            if ctx.cas(self.lock_a(i), 0, 1).await == 0 {
                return;
            }
            ctx.work(ctx.random_below(32)).await;
        }
    }

    async fn unlock_node(&self, ctx: &ProcCtx, i: u64) {
        ctx.write(self.lock_a(i), 0).await;
    }

    /// Inserts `(pri, item)`; bubbles up chasing the item by tag.
    ///
    /// # Panics
    ///
    /// Panics if the heap is full; use [`try_insert`](Self::try_insert)
    /// to handle that case.
    pub async fn insert(&self, ctx: &ProcCtx, pri: u64, item: u64) {
        if let Err(e) = self.try_insert(ctx, pri, item).await {
            panic!("{e}");
        }
    }

    /// Inserts `(pri, item)`, reporting capacity exhaustion (with the
    /// failing processor and simulated time) instead of panicking. On
    /// `Err` the heap is unchanged and the size lock released.
    pub async fn try_insert(&self, ctx: &ProcCtx, pri: u64, item: u64) -> Result<(), SimPqError> {
        ctx.work(costs::OP_SETUP).await;
        let my_tag = ctx.pid() as u64 + 2;
        // Reserve a position and publish the item there.
        self.size_lock.acquire(ctx).await;
        let n = ctx.read(self.size).await + 1;
        if n > self.capacity {
            self.size_lock.release(ctx).await;
            return Err(SimPqError::CapacityExhausted {
                what: "SimHunt",
                capacity: self.capacity as usize,
                proc: ctx.pid(),
                time: ctx.now(),
            });
        }
        ctx.write(self.size, n).await;
        let mut i = bit_reversed_position(n);
        self.lock_node(ctx, i).await;
        self.size_lock.release(ctx).await;
        ctx.write(self.pri_a(i), pri).await;
        ctx.write(self.item_a(i), item).await;
        ctx.write(self.tag_a(i), my_tag).await;
        self.unlock_node(ctx, i).await;

        let _bubble = ctx.span("heap-bubble");
        while i > 1 {
            ctx.work(costs::SIFT_STEP).await;
            let parent = i / 2;
            self.lock_node(ctx, parent).await;
            self.lock_node(ctx, i).await;
            let ptag = ctx.read(self.tag_a(parent)).await;
            let itag = ctx.read(self.tag_a(i)).await;
            let mut next_i = i;
            if ptag == TAG_AVAIL && itag == my_tag {
                let ppri = ctx.read(self.pri_a(parent)).await;
                let ipri = ctx.read(self.pri_a(i)).await;
                if ipri < ppri {
                    // Swap entries and tags.
                    let pitem = ctx.read(self.item_a(parent)).await;
                    let iitem = ctx.read(self.item_a(i)).await;
                    ctx.write(self.pri_a(parent), ipri).await;
                    ctx.write(self.item_a(parent), iitem).await;
                    ctx.write(self.tag_a(parent), my_tag).await;
                    ctx.write(self.pri_a(i), ppri).await;
                    ctx.write(self.item_a(i), pitem).await;
                    ctx.write(self.tag_a(i), TAG_AVAIL).await;
                    next_i = parent;
                } else {
                    ctx.write(self.tag_a(i), TAG_AVAIL).await;
                    next_i = 0;
                }
            } else if ptag == TAG_EMPTY {
                next_i = 0;
            } else if itag != my_tag {
                next_i = parent;
            }
            self.unlock_node(ctx, i).await;
            self.unlock_node(ctx, parent).await;
            if next_i == i {
                // The parent is mid-insertion by another thread: back off a
                // random beat before retrying so the two insertions cannot
                // phase-lock.
                ctx.work(ctx.random_below(64) + 8).await;
            }
            i = next_i;
        }
        if i == 1 {
            self.lock_node(ctx, 1).await;
            if ctx.read(self.tag_a(1)).await == my_tag {
                ctx.write(self.tag_a(1), TAG_AVAIL).await;
            }
            self.unlock_node(ctx, 1).await;
        }
        Ok(())
    }

    /// Removes the minimum: detaches the bit-reversed last item, places it
    /// at the root, and sifts down with hand-over-hand locking.
    pub async fn delete_min(&self, ctx: &ProcCtx) -> Option<(u64, u64)> {
        ctx.work(costs::OP_SETUP).await;
        self.size_lock.acquire(ctx).await;
        let n = ctx.read(self.size).await;
        if n == 0 {
            self.size_lock.release(ctx).await;
            return None;
        }
        let bottom = bit_reversed_position(n);
        ctx.write(self.size, n - 1).await;
        self.lock_node(ctx, bottom).await;
        self.size_lock.release(ctx).await;
        let spri = ctx.read(self.pri_a(bottom)).await;
        let sitem = ctx.read(self.item_a(bottom)).await;
        ctx.write(self.tag_a(bottom), TAG_EMPTY).await;
        self.unlock_node(ctx, bottom).await;

        self.lock_node(ctx, 1).await;
        if ctx.read(self.tag_a(1)).await == TAG_EMPTY {
            // The detached bottom was the root (or the root vanished).
            self.unlock_node(ctx, 1).await;
            return Some((spri, sitem));
        }
        let min_pri = ctx.read(self.pri_a(1)).await;
        let min_item = ctx.read(self.item_a(1)).await;
        ctx.write(self.pri_a(1), spri).await;
        ctx.write(self.item_a(1), sitem).await;
        ctx.write(self.tag_a(1), TAG_AVAIL).await;

        let _sift = ctx.span("heap-sift-down");
        let mut i = 1u64;
        loop {
            ctx.work(costs::SIFT_STEP).await;
            let l = 2 * i;
            let r = 2 * i + 1;
            if l > self.capacity {
                break;
            }
            self.lock_node(ctx, l).await;
            let ltag = ctx.read(self.tag_a(l)).await;
            let (child, ctag) = if r <= self.capacity {
                self.lock_node(ctx, r).await;
                let rtag = ctx.read(self.tag_a(r)).await;
                if ltag == TAG_EMPTY && rtag == TAG_EMPTY {
                    self.unlock_node(ctx, r).await;
                    self.unlock_node(ctx, l).await;
                    break;
                } else if ltag == TAG_EMPTY {
                    self.unlock_node(ctx, l).await;
                    (r, rtag)
                } else if rtag == TAG_EMPTY {
                    self.unlock_node(ctx, r).await;
                    (l, ltag)
                } else {
                    let lpri = ctx.read(self.pri_a(l)).await;
                    let rpri = ctx.read(self.pri_a(r)).await;
                    if rpri < lpri {
                        self.unlock_node(ctx, l).await;
                        (r, rtag)
                    } else {
                        self.unlock_node(ctx, r).await;
                        (l, ltag)
                    }
                }
            } else {
                if ltag == TAG_EMPTY {
                    self.unlock_node(ctx, l).await;
                    break;
                }
                (l, ltag)
            };
            let _ = ctag;
            let cpri = ctx.read(self.pri_a(child)).await;
            let ipri = ctx.read(self.pri_a(i)).await;
            if cpri < ipri {
                // Swap entries and tags; descend holding the child.
                let citem = ctx.read(self.item_a(child)).await;
                let iitem = ctx.read(self.item_a(i)).await;
                let ctag2 = ctx.read(self.tag_a(child)).await;
                let itag2 = ctx.read(self.tag_a(i)).await;
                ctx.write(self.pri_a(i), cpri).await;
                ctx.write(self.item_a(i), citem).await;
                ctx.write(self.tag_a(i), ctag2).await;
                ctx.write(self.pri_a(child), ipri).await;
                ctx.write(self.item_a(child), iitem).await;
                ctx.write(self.tag_a(child), itag2).await;
                self.unlock_node(ctx, i).await;
                i = child;
            } else {
                self.unlock_node(ctx, child).await;
                break;
            }
        }
        self.unlock_node(ctx, i).await;
        Some((min_pri, min_item))
    }

    /// Host-side item count (no simulated cost; meaningful at quiescence).
    pub fn peek_len(&self, m: &Machine) -> u64 {
        m.peek(self.size)
    }

    /// Structural validation at quiescence: every lock free, tags
    /// consistent with the bit-reversed occupancy of the size word, and
    /// the heap property over occupied nodes. Returns the item count.
    pub fn validate(&self, m: &Machine) -> Result<u64, String> {
        if !self.size_lock.peek_free(m) {
            return Err("SimHunt: size lock held at quiescence".into());
        }
        let n = m.peek(self.size);
        if n > self.capacity {
            return Err(format!(
                "SimHunt: size {n} exceeds capacity {}",
                self.capacity
            ));
        }
        let occupied: std::collections::HashSet<u64> = (1..=n).map(bit_reversed_position).collect();
        for i in 1..=self.capacity {
            if m.peek(self.lock_a(i)) != 0 {
                return Err(format!("SimHunt: node {i} lock held at quiescence"));
            }
            let tag = m.peek(self.tag_a(i));
            match (occupied.contains(&i), tag) {
                (true, TAG_AVAIL) | (false, TAG_EMPTY) => {}
                (true, t) => {
                    return Err(format!("SimHunt: node {i} should be AVAIL but has tag {t}"))
                }
                (false, t) => {
                    return Err(format!("SimHunt: node {i} should be EMPTY but has tag {t}"))
                }
            }
        }
        for &i in &occupied {
            let parent = i / 2;
            if parent >= 1 && occupied.contains(&parent) {
                let ppri = m.peek(self.pri_a(parent));
                let ipri = m.peek(self.pri_a(i));
                if ppri > ipri {
                    return Err(format!(
                        "SimHunt: heap violation at node {i}: parent pri {ppri} > child pri {ipri}"
                    ));
                }
            }
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use funnelpq_sim::MachineConfig;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn bit_reversal_matches_reference() {
        let got: Vec<u64> = (1..=7).map(bit_reversed_position).collect();
        assert_eq!(got, vec![1, 2, 3, 4, 6, 5, 7]);
        let mut all: Vec<u64> = (1..=32).map(bit_reversed_position).collect();
        all.sort_unstable();
        assert_eq!(all, (1..=32).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_order() {
        let mut m = Machine::new(MachineConfig::test_tiny(), 0);
        let q = SimHunt::build(&mut m, 1, 64);
        let ctx = m.ctx();
        m.spawn(async move {
            for p in [8u64, 0, 3, 3, 11, 6] {
                q.insert(&ctx, p, p).await;
            }
            let mut got = Vec::new();
            while let Some((p, _)) = q.delete_min(&ctx).await {
                got.push(p);
            }
            assert_eq!(got, vec![0, 3, 3, 6, 8, 11]);
        });
        assert!(m.run().is_quiescent());
    }

    #[test]
    fn concurrent_conservation_and_progress() {
        const P: usize = 10;
        const N: usize = 20;
        let mut m = Machine::new(MachineConfig::test_tiny(), 13);
        let q = SimHunt::build(&mut m, P + 1, P * N + 1);
        let got = Rc::new(RefCell::new(Vec::new()));
        for p in 0..P {
            let ctx = m.ctx();
            let got = Rc::clone(&got);
            m.spawn(async move {
                for i in 0..N {
                    q.insert(&ctx, ((p * 3 + i) % 7) as u64, (p * N + i) as u64)
                        .await;
                    if i % 2 == 0 {
                        if let Some((_, x)) = q.delete_min(&ctx).await {
                            got.borrow_mut().push(x);
                        }
                    }
                }
            });
        }
        assert!(m.run().is_quiescent(), "HuntEtAl deadlocked");
        let ctx = m.ctx();
        let got2 = Rc::clone(&got);
        m.spawn(async move {
            while let Some((_, x)) = q.delete_min(&ctx).await {
                got2.borrow_mut().push(x);
            }
        });
        assert!(m.run().is_quiescent());
        let mut all = got.borrow().clone();
        all.sort_unstable();
        assert_eq!(all, (0..(P * N) as u64).collect::<Vec<_>>());
    }
}
