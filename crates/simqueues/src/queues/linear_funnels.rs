//! Simulated `LinearFunnels` (paper §3.2): `SimpleLinear` with
//! combining-funnel stacks as bins.

use std::rc::Rc;

use funnelpq_sim::{Machine, ProcCtx};

use crate::costs;
use crate::error::SimPqError;
use crate::funnel::SimFunnelConfig;
use crate::funnel_stack::SimFunnelStack;

/// One funnel stack per priority, scanned smallest-first with one-read
/// emptiness tests ("crucial to the performance of LinearFunnels").
#[derive(Debug, Clone)]
pub struct SimLinearFunnels {
    stacks: Rc<Vec<SimFunnelStack>>,
}

impl SimLinearFunnels {
    /// Allocates stacks for `num_priorities` priorities.
    pub fn build(
        m: &mut Machine,
        procs: usize,
        num_priorities: usize,
        bin_capacity: usize,
        cfg: SimFunnelConfig,
    ) -> Self {
        let stacks = (0..num_priorities)
            .map(|_| SimFunnelStack::build(m, procs, bin_capacity, cfg.clone()))
            .collect();
        SimLinearFunnels {
            stacks: Rc::new(stacks),
        }
    }

    /// Inserts `(pri, item)` — one funnel push.
    ///
    /// # Panics
    ///
    /// Panics if the priority's stack pool is exhausted; use
    /// [`try_insert`](Self::try_insert) to handle that case.
    pub async fn insert(&self, ctx: &ProcCtx, pri: u64, item: u64) {
        if let Err(e) = self.try_insert(ctx, pri, item).await {
            panic!("{e}");
        }
    }

    /// Inserts `(pri, item)`, reporting pool exhaustion (with the failing
    /// processor and simulated time) instead of panicking. On `Err` the
    /// queue is unchanged.
    pub async fn try_insert(&self, ctx: &ProcCtx, pri: u64, item: u64) -> Result<(), SimPqError> {
        ctx.work(costs::OP_SETUP).await;
        self.stacks[pri as usize].try_push(ctx, item).await
    }

    /// Scans the stacks smallest-first; pops from the first non-empty one
    /// that yields an item.
    pub async fn delete_min(&self, ctx: &ProcCtx) -> Option<(u64, u64)> {
        ctx.work(costs::OP_SETUP).await;
        let _scan = ctx.span("stack-scan");
        for (pri, stack) in self.stacks.iter().enumerate() {
            ctx.work(costs::LOOP_ITER).await;
            if !stack.is_empty(ctx).await {
                if let Some(item) = stack.pop(ctx).await {
                    return Some((pri as u64, item));
                }
            }
        }
        None
    }

    /// Host-side item count: sums all stacks (no simulated cost;
    /// meaningful at quiescence). Errors on a corrupt chain.
    pub fn peek_len(&self, m: &Machine) -> Result<u64, String> {
        let mut total = 0u64;
        for (pri, stack) in self.stacks.iter().enumerate() {
            total += stack.peek_len(m).map_err(|e| format!("pri {pri}: {e}"))?;
        }
        Ok(total)
    }

    /// Structural validation at quiescence: every stack's central lock
    /// free and head chain well-formed. Returns the item count.
    pub fn validate(&self, m: &Machine) -> Result<u64, String> {
        let mut total = 0u64;
        for (pri, stack) in self.stacks.iter().enumerate() {
            total += stack.validate(m).map_err(|e| format!("pri {pri}: {e}"))?;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use funnelpq_sim::MachineConfig;
    use std::cell::RefCell;

    #[test]
    fn sequential_order() {
        let mut m = Machine::new(MachineConfig::test_tiny(), 0);
        let q = SimLinearFunnels::build(&mut m, 1, 6, 16, SimFunnelConfig::for_procs(1));
        let ctx = m.ctx();
        let q2 = q.clone();
        m.spawn(async move {
            for p in [5u64, 0, 3] {
                q2.insert(&ctx, p, p * 100).await;
            }
            assert_eq!(q2.delete_min(&ctx).await, Some((0, 0)));
            assert_eq!(q2.delete_min(&ctx).await, Some((3, 300)));
            assert_eq!(q2.delete_min(&ctx).await, Some((5, 500)));
            assert_eq!(q2.delete_min(&ctx).await, None);
        });
        assert!(m.run().is_quiescent());
    }

    #[test]
    fn concurrent_conservation() {
        const P: usize = 16;
        const N: usize = 20;
        let mut m = Machine::new(MachineConfig::alewife_like(), 31);
        let q = SimLinearFunnels::build(&mut m, P + 1, 4, P * N + 4, SimFunnelConfig::for_procs(P));
        let got = Rc::new(RefCell::new(Vec::new()));
        for p in 0..P {
            let ctx = m.ctx();
            let q = q.clone();
            let got = Rc::clone(&got);
            m.spawn(async move {
                for i in 0..N {
                    q.insert(&ctx, ((p + i) % 4) as u64, (p * N + i) as u64)
                        .await;
                    if i % 2 == 1 {
                        if let Some((_, x)) = q.delete_min(&ctx).await {
                            got.borrow_mut().push(x);
                        }
                    }
                }
            });
        }
        assert!(m.run().is_quiescent(), "LinearFunnels deadlocked");
        let ctx = m.ctx();
        let q2 = q.clone();
        let got2 = Rc::clone(&got);
        m.spawn(async move {
            while let Some((_, x)) = q2.delete_min(&ctx).await {
                got2.borrow_mut().push(x);
            }
        });
        assert!(m.run().is_quiescent());
        let mut all = got.borrow().clone();
        all.sort_unstable();
        assert_eq!(all, (0..(P * N) as u64).collect::<Vec<_>>());
    }

    use std::rc::Rc;
}
