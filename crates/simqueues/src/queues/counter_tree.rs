//! Simulated tree-of-counters layout shared by `SimpleTree` and
//! `FunnelTree` (paper Figure 3): counters per internal node, bins at the
//! leaves; only the counter/bin implementations differ.

use std::rc::Rc;

use funnelpq_sim::{Machine, ProcCtx};

use crate::bin::SimBin;
use crate::costs;
use crate::counter::{SimCounter, SimHwCounter, SimLockedCounter};
use crate::error::SimPqError;
use crate::funnel::{CounterMode, SimFunnelConfig, SimFunnelCounter};
use crate::funnel_stack::SimFunnelStack;

/// Leaf bin dispatch: lock-based (`SimpleTree`) or funnel stack
/// (`FunnelTree`).
#[derive(Debug, Clone)]
pub enum SimTreeBin {
    /// MCS-locked bin.
    Lock(SimBin),
    /// Combining-funnel stack.
    Funnel(SimFunnelStack),
}

impl SimTreeBin {
    async fn try_insert(&self, ctx: &ProcCtx, item: u64) -> Result<(), SimPqError> {
        match self {
            SimTreeBin::Lock(b) => b.try_insert(ctx, item).await,
            SimTreeBin::Funnel(s) => s.try_push(ctx, item).await,
        }
    }

    async fn delete(&self, ctx: &ProcCtx) -> Option<u64> {
        match self {
            SimTreeBin::Lock(b) => b.delete(ctx).await,
            SimTreeBin::Funnel(s) => s.pop(ctx).await,
        }
    }

    fn validate(&self, m: &Machine) -> Result<u64, String> {
        match self {
            SimTreeBin::Lock(b) => b.validate(m),
            SimTreeBin::Funnel(s) => s.validate(m),
        }
    }

    fn peek_len(&self, m: &Machine) -> Result<u64, String> {
        match self {
            SimTreeBin::Lock(b) => Ok(b.peek_len(m)),
            SimTreeBin::Funnel(s) => s.peek_len(m),
        }
    }
}

/// The shared tree engine.
#[derive(Debug, Clone)]
pub struct SimCounterTree {
    n_leaves: usize,
    num_priorities: usize,
    /// Heap-numbered internal nodes 1..n_leaves (index 0 unused → None).
    counters: Rc<Vec<Option<SimCounter>>>,
    bins: Rc<Vec<SimTreeBin>>,
}

/// Which counter/bin implementations the tree should use.
#[derive(Debug, Clone)]
pub enum TreeFlavor {
    /// MCS-locked counters and bins everywhere (`SimpleTree`).
    Simple,
    /// Funnel counters at depths `0..funnel_levels`, MCS-locked counters
    /// below, funnel-stack bins (`FunnelTree`).
    Funnel {
        /// Funnel tuning shared by counters and stacks.
        cfg: SimFunnelConfig,
        /// Depth cutoff below which counters use MCS locks (paper: 4).
        funnel_levels: usize,
    },
    /// Hardware fetch-and-add counters with MCS-locked bins — the ablation
    /// for machines with atomic fetch-and-add (outside the paper's
    /// swap/CAS-only machine model).
    Hardware,
}

/// Static label for a tree counter at `depth` (static strings keep the
/// hot-spot table tidy; deep levels pool together).
fn tree_counter_label(depth: usize) -> &'static str {
    match depth {
        0 => "tree counter depth 0 (root)",
        1 => "tree counter depth 1",
        2 => "tree counter depth 2",
        3 => "tree counter depth 3",
        _ => "tree counters depth 4+",
    }
}

impl SimCounterTree {
    /// Builds the tree for `num_priorities` priorities.
    pub fn build(
        m: &mut Machine,
        procs: usize,
        num_priorities: usize,
        bin_capacity: usize,
        flavor: TreeFlavor,
    ) -> Self {
        assert!(num_priorities > 0);
        let n_leaves = num_priorities.next_power_of_two();
        let mut counters: Vec<Option<SimCounter>> = vec![None];
        for k in 1..n_leaves {
            let depth = (usize::BITS - 1 - k.leading_zeros()) as usize;
            let c = match &flavor {
                TreeFlavor::Simple => SimCounter::Locked(SimLockedCounter::build(m, procs)),
                TreeFlavor::Funnel { cfg, funnel_levels } => {
                    if depth < *funnel_levels {
                        SimCounter::Funnel(SimFunnelCounter::build(
                            m,
                            procs,
                            CounterMode::BOUNDED_AT_ZERO,
                            cfg.clone(),
                        ))
                    } else {
                        SimCounter::Locked(SimLockedCounter::build(m, procs))
                    }
                }
                TreeFlavor::Hardware => SimCounter::Hardware(SimHwCounter::build(m)),
            };
            c.label(m, tree_counter_label(depth));
            counters.push(Some(c));
        }
        let bins = (0..num_priorities)
            .map(|_| match &flavor {
                TreeFlavor::Simple | TreeFlavor::Hardware => {
                    SimTreeBin::Lock(SimBin::build(m, procs, bin_capacity))
                }
                TreeFlavor::Funnel { cfg, .. } => {
                    SimTreeBin::Funnel(SimFunnelStack::build(m, procs, bin_capacity, cfg.clone()))
                }
            })
            .collect();
        SimCounterTree {
            n_leaves,
            num_priorities,
            counters: Rc::new(counters),
            bins: Rc::new(bins),
        }
    }

    /// Inserts `(pri, item)`: bin first, then increment the counters on the
    /// path to the root wherever we ascend from a left child.
    ///
    /// # Panics
    ///
    /// Panics if the priority's bin is full; use
    /// [`try_insert`](Self::try_insert) to handle that case.
    pub async fn insert(&self, ctx: &ProcCtx, pri: u64, item: u64) {
        if let Err(e) = self.try_insert(ctx, pri, item).await {
            panic!("{e}");
        }
    }

    /// Inserts `(pri, item)`, reporting bin capacity exhaustion (with the
    /// failing processor and simulated time) instead of panicking. On
    /// `Err` the queue is unchanged (the bin is filled before any counter
    /// is touched, so a failed bin insert leaves the counters consistent).
    pub async fn try_insert(&self, ctx: &ProcCtx, pri: u64, item: u64) -> Result<(), SimPqError> {
        ctx.work(costs::OP_SETUP).await;
        assert!(
            (pri as usize) < self.num_priorities,
            "priority out of range"
        );
        self.bins[pri as usize].try_insert(ctx, item).await?;
        let _ascent = ctx.span("tree-ascent");
        let mut k = self.n_leaves + pri as usize;
        while k > 1 {
            ctx.work(costs::TREE_STEP).await;
            let parent = k / 2;
            if k.is_multiple_of(2) {
                self.counters[parent]
                    .as_ref()
                    .expect("internal node")
                    .fetch_inc(ctx)
                    .await;
            }
            k = parent;
        }
        Ok(())
    }

    /// Descends from the root by bounded fetch-and-decrement, then deletes
    /// from the reached leaf's bin.
    pub async fn delete_min(&self, ctx: &ProcCtx) -> Option<(u64, u64)> {
        ctx.work(costs::OP_SETUP).await;
        let descent = ctx.span("tree-descent");
        let mut k = 1;
        while k < self.n_leaves {
            ctx.work(costs::TREE_STEP).await;
            let c = self.counters[k].as_ref().expect("internal node");
            if c.fetch_dec(ctx).await > 0 {
                k *= 2;
            } else {
                k = 2 * k + 1;
            }
        }
        descent.end();
        let pri = k - self.n_leaves;
        if pri >= self.num_priorities {
            return None;
        }
        self.bins[pri]
            .delete(ctx)
            .await
            .map(|item| (pri as u64, item))
    }

    /// Host-side item count: sums all leaf bins (no simulated cost;
    /// meaningful at quiescence). Errors on a corrupt funnel-stack chain.
    pub fn peek_len(&self, m: &Machine) -> Result<u64, String> {
        let mut total = 0u64;
        for (pri, bin) in self.bins.iter().enumerate() {
            total += bin.peek_len(m).map_err(|e| format!("pri {pri}: {e}"))?;
        }
        Ok(total)
    }

    /// Leaf heap-index range `[lo, hi)` covered by internal node `k`.
    fn leaf_range(&self, mut k: usize) -> (usize, usize) {
        let mut span = 1;
        while k < self.n_leaves {
            k *= 2;
            span *= 2;
        }
        (k, k + span)
    }

    /// Structural validation at quiescence: every bin valid, every
    /// counter's lock free, and every internal counter equal to the number
    /// of items stored under its *left* subtree — the invariant the
    /// descent routing depends on. Returns the item count.
    pub fn validate(&self, m: &Machine) -> Result<u64, String> {
        let mut leaf_counts = vec![0u64; self.n_leaves];
        let mut total = 0u64;
        for (pri, bin) in self.bins.iter().enumerate() {
            let len = bin.validate(m).map_err(|e| format!("pri {pri}: {e}"))?;
            leaf_counts[pri] = len;
            total += len;
        }
        for k in 1..self.n_leaves {
            let c = self.counters[k].as_ref().expect("internal node");
            if !c.peek_lock_free(m) {
                return Err(format!(
                    "SimCounterTree: counter {k} lock held at quiescence"
                ));
            }
            let val = c.peek(m);
            let (lo, hi) = self.leaf_range(2 * k);
            let expect: u64 = (lo..hi)
                .map(|leaf| {
                    let pri = leaf - self.n_leaves;
                    if pri < self.num_priorities {
                        leaf_counts[pri]
                    } else {
                        0
                    }
                })
                .sum();
            if val != expect as i64 {
                return Err(format!(
                    "SimCounterTree: counter {k} holds {val} but its left \
                     subtree stores {expect} items"
                ));
            }
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use funnelpq_sim::MachineConfig;
    use std::cell::RefCell;

    fn drain(q: SimCounterTree, m: &mut Machine, out: Rc<RefCell<Vec<(u64, u64)>>>) {
        let ctx = m.ctx();
        m.spawn(async move {
            while let Some(e) = q.delete_min(&ctx).await {
                out.borrow_mut().push(e);
            }
        });
        assert!(m.run().is_quiescent());
    }

    #[test]
    fn simple_flavor_sequential_order() {
        let mut m = Machine::new(MachineConfig::test_tiny(), 0);
        // Two processors: the inserter task and the drainer task.
        let q = SimCounterTree::build(&mut m, 2, 8, 32, TreeFlavor::Simple);
        let ctx = m.ctx();
        let q2 = q.clone();
        m.spawn(async move {
            for p in [7u64, 0, 3, 3, 5] {
                q2.insert(&ctx, p, p * 10).await;
            }
        });
        assert!(m.run().is_quiescent());
        let out = Rc::new(RefCell::new(Vec::new()));
        drain(q, &mut m, Rc::clone(&out));
        let pris: Vec<u64> = out.borrow().iter().map(|e| e.0).collect();
        assert_eq!(pris, vec![0, 3, 3, 5, 7]);
    }

    #[test]
    fn funnel_flavor_sequential_order() {
        let mut m = Machine::new(MachineConfig::test_tiny(), 0);
        let flavor = TreeFlavor::Funnel {
            cfg: SimFunnelConfig::for_procs(2),
            funnel_levels: 4,
        };
        let q = SimCounterTree::build(&mut m, 2, 8, 32, flavor);
        let ctx = m.ctx();
        let q2 = q.clone();
        m.spawn(async move {
            for p in [6u64, 1, 4, 1, 7] {
                q2.insert(&ctx, p, p).await;
            }
        });
        assert!(m.run().is_quiescent());
        let out = Rc::new(RefCell::new(Vec::new()));
        drain(q, &mut m, Rc::clone(&out));
        let pris: Vec<u64> = out.borrow().iter().map(|e| e.0).collect();
        assert_eq!(pris, vec![1, 1, 4, 6, 7]);
    }

    #[test]
    fn concurrent_conservation_simple() {
        const P: usize = 12;
        const N: usize = 20;
        let mut m = Machine::new(MachineConfig::test_tiny(), 23);
        let q = SimCounterTree::build(&mut m, P + 1, 16, P * N, TreeFlavor::Simple);
        let got = Rc::new(RefCell::new(Vec::new()));
        for p in 0..P {
            let ctx = m.ctx();
            let q = q.clone();
            let got = Rc::clone(&got);
            m.spawn(async move {
                for i in 0..N {
                    q.insert(&ctx, ((p * 5 + i) % 16) as u64, (p * N + i) as u64)
                        .await;
                    if i % 2 == 0 {
                        if let Some((_, x)) = q.delete_min(&ctx).await {
                            got.borrow_mut().push(x);
                        }
                    }
                }
            });
        }
        assert!(m.run().is_quiescent());
        drainall(&mut m, q, &got);
        let mut all = got.borrow().clone();
        all.sort_unstable();
        assert_eq!(all, (0..(P * N) as u64).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_conservation_funnel() {
        const P: usize = 12;
        const N: usize = 15;
        let mut m = Machine::new(MachineConfig::test_tiny(), 29);
        let flavor = TreeFlavor::Funnel {
            cfg: SimFunnelConfig::for_procs(P),
            funnel_levels: 2,
        };
        let q = SimCounterTree::build(&mut m, P + 1, 8, P * N + 4, flavor);
        let got = Rc::new(RefCell::new(Vec::new()));
        for p in 0..P {
            let ctx = m.ctx();
            let q = q.clone();
            let got = Rc::clone(&got);
            m.spawn(async move {
                for i in 0..N {
                    q.insert(&ctx, ((p + 3 * i) % 8) as u64, (p * N + i) as u64)
                        .await;
                    if i % 3 == 0 {
                        if let Some((_, x)) = q.delete_min(&ctx).await {
                            got.borrow_mut().push(x);
                        }
                    }
                }
            });
        }
        assert!(m.run().is_quiescent(), "FunnelTree deadlocked");
        drainall(&mut m, q, &got);
        let mut all = got.borrow().clone();
        all.sort_unstable();
        assert_eq!(all, (0..(P * N) as u64).collect::<Vec<_>>());
    }

    fn drainall(m: &mut Machine, q: SimCounterTree, got: &Rc<RefCell<Vec<u64>>>) {
        let ctx = m.ctx();
        let got = Rc::clone(got);
        m.spawn(async move {
            while let Some((_, x)) = q.delete_min(&ctx).await {
                got.borrow_mut().push(x);
            }
        });
        assert!(m.run().is_quiescent());
    }

    use std::rc::Rc;
}
