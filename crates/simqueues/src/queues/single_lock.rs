//! Simulated `SingleLock`: a sequential heap under one MCS lock.

use funnelpq_sim::{Addr, Machine, ProcCtx};

use crate::costs;
use crate::error::SimPqError;
use crate::mcs::SimMcsLock;

/// Heap entries live in simulated memory ([pri, item] pairs), so the time
/// the lock is held grows with the heap operations' real memory traffic.
#[derive(Debug, Clone, Copy)]
pub struct SimSingleLock {
    lock: SimMcsLock,
    size: Addr,
    entries: Addr,
    capacity: usize,
}

impl SimSingleLock {
    /// Allocates a heap of at most `capacity` items for `procs` processors.
    pub fn build(m: &mut Machine, procs: usize, capacity: usize) -> Self {
        let lock = SimMcsLock::build(m, procs);
        let size = m.alloc(1);
        let entries = m.alloc(2 * capacity.max(1));
        m.label(size, 1, "heap size word");
        m.label(entries, 2 * capacity.max(1), "heap entries");
        SimSingleLock {
            lock,
            size,
            entries,
            capacity,
        }
    }

    fn pri_addr(&self, i: u64) -> Addr {
        self.entries + 2 * i as usize
    }
    fn item_addr(&self, i: u64) -> Addr {
        self.entries + 2 * i as usize + 1
    }

    /// Inserts under the global lock, sifting up in simulated memory.
    ///
    /// # Panics
    ///
    /// Panics if the heap is full; use [`try_insert`](Self::try_insert)
    /// to handle that case.
    pub async fn insert(&self, ctx: &ProcCtx, pri: u64, item: u64) {
        if let Err(e) = self.try_insert(ctx, pri, item).await {
            panic!("{e}");
        }
    }

    /// Pushes one entry; caller holds the lock. False if the heap is full
    /// (unchanged). The simulated instruction sequence is exactly the old
    /// inline `try_insert` body, so single-op runs stay bit-identical.
    async fn push_locked(&self, ctx: &ProcCtx, pri: u64, item: u64) -> bool {
        let n = ctx.read(self.size).await;
        if n as usize >= self.capacity {
            return false;
        }
        ctx.write(self.pri_addr(n), pri).await;
        ctx.write(self.item_addr(n), item).await;
        ctx.write(self.size, n + 1).await;
        {
            let _bubble = ctx.span("heap-bubble");
            let mut i = n;
            while i > 0 {
                ctx.work(costs::SIFT_STEP).await;
                let parent = (i - 1) / 2;
                let ppri = ctx.read(self.pri_addr(parent)).await;
                if pri < ppri {
                    // Swap child and parent entries.
                    let pitem = ctx.read(self.item_addr(parent)).await;
                    ctx.write(self.pri_addr(i), ppri).await;
                    ctx.write(self.item_addr(i), pitem).await;
                    ctx.write(self.pri_addr(parent), pri).await;
                    ctx.write(self.item_addr(parent), item).await;
                    i = parent;
                } else {
                    break;
                }
            }
        }
        true
    }

    /// Pops the minimum; caller holds the lock. Same instruction sequence
    /// as the old inline `delete_min` body.
    async fn pop_locked(&self, ctx: &ProcCtx) -> Option<(u64, u64)> {
        let n = ctx.read(self.size).await;
        if n == 0 {
            return None;
        }
        let min_pri = ctx.read(self.pri_addr(0)).await;
        let min_item = ctx.read(self.item_addr(0)).await;
        let last = n - 1;
        ctx.write(self.size, last).await;
        if last > 0 {
            let _bubble = ctx.span("heap-bubble");
            let pri = ctx.read(self.pri_addr(last)).await;
            let item = ctx.read(self.item_addr(last)).await;
            ctx.write(self.pri_addr(0), pri).await;
            ctx.write(self.item_addr(0), item).await;
            let mut i = 0u64;
            loop {
                ctx.work(costs::SIFT_STEP).await;
                let l = 2 * i + 1;
                let r = 2 * i + 2;
                if l >= last {
                    break;
                }
                let lpri = ctx.read(self.pri_addr(l)).await;
                let (c, cpri) = if r < last {
                    let rpri = ctx.read(self.pri_addr(r)).await;
                    if rpri < lpri {
                        (r, rpri)
                    } else {
                        (l, lpri)
                    }
                } else {
                    (l, lpri)
                };
                if cpri < pri {
                    let citem = ctx.read(self.item_addr(c)).await;
                    ctx.write(self.pri_addr(i), cpri).await;
                    ctx.write(self.item_addr(i), citem).await;
                    ctx.write(self.pri_addr(c), pri).await;
                    ctx.write(self.item_addr(c), item).await;
                    // Our entry's values are unchanged; its position is now c.
                    i = c;
                } else {
                    break;
                }
            }
        }
        Some((min_pri, min_item))
    }

    /// Inserts under the global lock, reporting capacity exhaustion (with
    /// the failing processor and simulated time) instead of panicking. On
    /// `Err` the heap is unchanged and the lock released.
    pub async fn try_insert(&self, ctx: &ProcCtx, pri: u64, item: u64) -> Result<(), SimPqError> {
        ctx.work(costs::OP_SETUP).await;
        self.lock.acquire(ctx).await;
        let hold = ctx.span("lock-hold");
        let ok = self.push_locked(ctx, pri, item).await;
        hold.end();
        self.lock.release(ctx).await;
        if ok {
            Ok(())
        } else {
            Err(SimPqError::CapacityExhausted {
                what: "SimSingleLock",
                capacity: self.capacity,
                proc: ctx.pid(),
                time: ctx.now(),
            })
        }
    }

    /// Removes the minimum under the global lock.
    pub async fn delete_min(&self, ctx: &ProcCtx) -> Option<(u64, u64)> {
        ctx.work(costs::OP_SETUP).await;
        self.lock.acquire(ctx).await;
        let hold = ctx.span("lock-hold");
        let got = self.pop_locked(ctx).await;
        hold.end();
        self.lock.release(ctx).await;
        got
    }

    /// Inserts a whole batch under **one** lock acquisition, mirroring the
    /// native `SingleLockPq::insert_batch`: the batch is sorted ascending
    /// host-side (free prep, like thread-local state elsewhere), then each
    /// entry pays only its simulated heap traffic while the lock is held
    /// once. On capacity exhaustion the already-filed prefix stays filed,
    /// matching the native partial-batch contract.
    pub async fn insert_batch(
        &self,
        ctx: &ProcCtx,
        batch: &[(u64, u64)],
    ) -> Result<(), SimPqError> {
        if batch.is_empty() {
            return Ok(());
        }
        let mut sorted: Vec<(u64, u64)> = batch.to_vec();
        sorted.sort_unstable_by_key(|&(pri, _)| pri);
        ctx.work(costs::OP_SETUP).await;
        self.lock.acquire(ctx).await;
        let hold = ctx.span("lock-hold");
        let mut full = false;
        for &(pri, item) in &sorted {
            if !self.push_locked(ctx, pri, item).await {
                full = true;
                break;
            }
        }
        hold.end();
        self.lock.release(ctx).await;
        if full {
            return Err(SimPqError::CapacityExhausted {
                what: "SimSingleLock",
                capacity: self.capacity,
                proc: ctx.pid(),
                time: ctx.now(),
            });
        }
        Ok(())
    }

    /// Pops up to `k` minima under **one** lock acquisition, appending to
    /// `out`; returns the number taken (fewer only when the heap drains).
    pub async fn delete_min_batch(
        &self,
        ctx: &ProcCtx,
        k: usize,
        out: &mut Vec<(u64, u64)>,
    ) -> usize {
        ctx.work(costs::OP_SETUP).await;
        self.lock.acquire(ctx).await;
        let hold = ctx.span("lock-hold");
        let mut taken = 0;
        while taken < k {
            match self.pop_locked(ctx).await {
                Some(e) => {
                    out.push(e);
                    taken += 1;
                }
                None => break,
            }
        }
        hold.end();
        self.lock.release(ctx).await;
        taken
    }

    /// Host-side item count (no simulated cost; meaningful at quiescence).
    pub fn peek_len(&self, m: &Machine) -> u64 {
        m.peek(self.size)
    }

    /// Structural validation at quiescence: lock free, size within
    /// capacity, and the heap property over the live entries. Returns the
    /// item count.
    pub fn validate(&self, m: &Machine) -> Result<u64, String> {
        if !self.lock.peek_free(m) {
            return Err("SimSingleLock: lock held at quiescence".into());
        }
        let n = m.peek(self.size);
        if n as usize > self.capacity {
            return Err(format!(
                "SimSingleLock: size {n} exceeds capacity {}",
                self.capacity
            ));
        }
        for i in 1..n {
            let parent = (i - 1) / 2;
            let ppri = m.peek(self.pri_addr(parent));
            let cpri = m.peek(self.pri_addr(i));
            if ppri > cpri {
                return Err(format!(
                    "SimSingleLock: heap violation at entry {i}: parent pri {ppri} > child pri {cpri}"
                ));
            }
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use funnelpq_sim::MachineConfig;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn sequential_order() {
        let mut m = Machine::new(MachineConfig::test_tiny(), 0);
        let q = SimSingleLock::build(&mut m, 1, 32);
        let ctx = m.ctx();
        m.spawn(async move {
            for p in [9u64, 1, 5, 1, 7] {
                q.insert(&ctx, p, p * 10).await;
            }
            let mut got = Vec::new();
            while let Some((p, _)) = q.delete_min(&ctx).await {
                got.push(p);
            }
            assert_eq!(got, vec![1, 1, 5, 7, 9]);
        });
        assert!(m.run().is_quiescent());
    }

    #[test]
    fn batch_ops_match_singles() {
        let mut m = Machine::new(MachineConfig::test_tiny(), 0);
        let q = SimSingleLock::build(&mut m, 1, 32);
        let ctx = m.ctx();
        m.spawn(async move {
            q.insert_batch(&ctx, &[(9, 90), (1, 10), (5, 50), (1, 11)])
                .await
                .unwrap();
            q.insert_batch(&ctx, &[]).await.unwrap();
            let mut out = Vec::new();
            assert_eq!(q.delete_min_batch(&ctx, 3, &mut out).await, 3);
            assert_eq!(out.iter().map(|e| e.0).collect::<Vec<_>>(), vec![1, 1, 5]);
            out.clear();
            assert_eq!(q.delete_min_batch(&ctx, 8, &mut out).await, 1);
            assert_eq!(out, vec![(9, 90)]);
            assert_eq!(q.delete_min_batch(&ctx, 4, &mut out).await, 0);
        });
        assert!(m.run().is_quiescent());
    }

    #[test]
    fn batch_insert_reports_capacity_with_prefix_filed() {
        let mut m = Machine::new(MachineConfig::test_tiny(), 0);
        let q = SimSingleLock::build(&mut m, 1, 3);
        let ctx = m.ctx();
        m.spawn(async move {
            let err = q
                .insert_batch(&ctx, &[(4, 0), (2, 0), (8, 0), (6, 0)])
                .await
                .unwrap_err();
            assert!(matches!(err, SimPqError::CapacityExhausted { .. }));
            // Ascending prefix filed: 2, 4, 6 made it; 8 did not.
            let mut out = Vec::new();
            assert_eq!(q.delete_min_batch(&ctx, 8, &mut out).await, 3);
            assert_eq!(out.iter().map(|e| e.0).collect::<Vec<_>>(), vec![2, 4, 6]);
        });
        assert!(m.run().is_quiescent());
    }

    #[test]
    fn concurrent_conservation() {
        const P: usize = 8;
        const N: usize = 25;
        let mut m = Machine::new(MachineConfig::test_tiny(), 2);
        let q = SimSingleLock::build(&mut m, P + 1, P * N);
        let got = Rc::new(RefCell::new(Vec::new()));
        for p in 0..P {
            let ctx = m.ctx();
            let got = Rc::clone(&got);
            m.spawn(async move {
                for i in 0..N {
                    q.insert(&ctx, ((p + i) % 5) as u64, (p * N + i) as u64)
                        .await;
                    if i % 2 == 0 {
                        if let Some((_, x)) = q.delete_min(&ctx).await {
                            got.borrow_mut().push(x);
                        }
                    }
                }
            });
        }
        assert!(m.run().is_quiescent());
        let ctx = m.ctx();
        let got2 = Rc::clone(&got);
        m.spawn(async move {
            while let Some((_, x)) = q.delete_min(&ctx).await {
                got2.borrow_mut().push(x);
            }
        });
        assert!(m.run().is_quiescent());
        let mut all = got.borrow().clone();
        all.sort_unstable();
        assert_eq!(all, (0..(P * N) as u64).collect::<Vec<_>>());
    }
}
