//! MCS queue lock over simulated shared memory.

use funnelpq_sim::{Addr, Machine, ProcCtx};

/// A simulated MCS list-based queue lock (Mellor-Crummey & Scott).
///
/// Each processor spins on a flag in its own pre-allocated queue node, so
/// waiting generates no traffic on the lock word itself; handoff is one
/// remote write. Layout: a tail word plus one queue node (flag, next) per
/// processor, each on its own cache line.
#[derive(Debug, Clone, Copy)]
pub struct SimMcsLock {
    tail: Addr,
    nodes: Addr,
    stride: usize,
    procs: usize,
}

impl SimMcsLock {
    /// Allocates a lock usable by `procs` processors.
    pub fn build(m: &mut Machine, procs: usize) -> Self {
        let stride = m.line_words().max(2);
        let tail = m.alloc(1);
        let nodes = m.alloc(procs * stride);
        m.label(tail, 1, "MCS lock tail");
        m.label(nodes, procs * stride, "MCS queue nodes");
        SimMcsLock {
            tail,
            nodes,
            stride,
            procs,
        }
    }

    /// Re-labels this lock's words for hot-spot reports.
    pub fn label(&self, m: &mut Machine, name: &str) {
        m.label(self.tail, 1, format!("{name} (lock tail)"));
        m.label(
            self.nodes,
            self.procs * self.stride,
            format!("{name} (queue nodes)"),
        );
    }

    fn flag_of(&self, pid: usize) -> Addr {
        assert!(
            pid < self.procs,
            "processor {pid} used a lock built for {} processors",
            self.procs
        );
        self.nodes + pid * self.stride
    }

    fn next_of(&self, pid: usize) -> Addr {
        self.nodes + pid * self.stride + 1
    }

    /// Acquires the lock for the calling processor.
    pub async fn acquire(&self, ctx: &ProcCtx) {
        let _span = ctx.span("mcs-acquire");
        let pid = ctx.pid();
        ctx.write(self.next_of(pid), 0).await;
        ctx.write(self.flag_of(pid), 1).await;
        let pred = ctx.swap(self.tail, (pid + 1) as u64).await;
        if pred != 0 {
            let pred = (pred - 1) as usize;
            ctx.write(self.next_of(pred), (pid + 1) as u64).await;
            ctx.wait_until(self.flag_of(pid), |v| v == 0).await;
        }
    }

    /// Host-side check that the lock is free (tail word zero). Costs no
    /// simulated time; meaningful only at quiescence, for post-run
    /// structural validation.
    pub fn peek_free(&self, m: &Machine) -> bool {
        m.peek(self.tail) == 0
    }

    /// Releases the lock; the next queued processor (if any) proceeds.
    pub async fn release(&self, ctx: &ProcCtx) {
        let pid = ctx.pid();
        let nxt = ctx.read(self.next_of(pid)).await;
        let nxt = if nxt == 0 {
            let old = ctx.cas(self.tail, (pid + 1) as u64, 0).await;
            if old == (pid + 1) as u64 {
                return; // no successor
            }
            ctx.wait_until(self.next_of(pid), |v| v != 0).await
        } else {
            nxt
        };
        ctx.write(self.flag_of((nxt - 1) as usize), 0).await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use funnelpq_sim::MachineConfig;
    use std::rc::Rc;

    #[test]
    fn mutual_exclusion_and_progress() {
        const P: usize = 16;
        const OPS: usize = 30;
        let mut m = Machine::new(MachineConfig::test_tiny(), 3);
        let lock = SimMcsLock::build(&mut m, P);
        let shared = m.alloc(1); // plain counter incremented non-atomically
        for _ in 0..P {
            let ctx = m.ctx();
            m.spawn(async move {
                for _ in 0..OPS {
                    lock.acquire(&ctx).await;
                    // Non-atomic read-modify-write: only safe under mutex.
                    let v = ctx.read(shared).await;
                    ctx.work(5).await;
                    ctx.write(shared, v + 1).await;
                    lock.release(&ctx).await;
                }
            });
        }
        assert!(m.run().is_quiescent(), "lock deadlocked");
        assert_eq!(m.peek(shared), (P * OPS) as u64);
    }

    #[test]
    fn uncontended_acquire_release_cheap() {
        let mut m = Machine::new(MachineConfig::alewife_like(), 0);
        let lock = SimMcsLock::build(&mut m, 1);
        let t = Rc::new(std::cell::Cell::new(0u64));
        let t2 = Rc::clone(&t);
        let ctx = m.ctx();
        m.spawn(async move {
            lock.acquire(&ctx).await;
            lock.release(&ctx).await;
            t2.set(ctx.now());
        });
        assert!(m.run().is_quiescent());
        // 3 ops to acquire + 2 to release, no queueing.
        let per_op = MachineConfig::alewife_like().uncontended_access();
        assert!(t.get() <= 5 * per_op + 10);
    }
}
